"""Table II and Table III of the paper, regenerated on our substrate.

Paper values (45nm Nangate, commercial synthesis):

Table II — PRESENT-80 encryption:
    naïve duplication   1289 comb + 1807 non-comb = 3096 GE (1.00×)
    our countermeasure  2290 comb + 1807 non-comb = 4097 GE (1.32×)

Table III — one duplicated layer of S-boxes:
    PRESENT: 605 GE → 1397 GE (2.3×);  AES: 8363 GE → 15327 GE (1.8×)

Our absolute GE differs (a from-scratch Python synthesiser is no match for
a commercial flow's mapper), but the quantities the paper argues from —
the overhead *ratios* and the unchanged non-combinational cost — are
reproduced; EXPERIMENTS.md tabulates paper-vs-measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ciphers.netlist_present import PresentSpec
from repro.ciphers.netlist_sbox_layer import build_sbox_layer
from repro.ciphers.sbox import SBox
from repro.countermeasures import build_naive_duplication, build_three_in_one
from repro.tech import PAPER_CALIBRATED, AreaReport, CellLibrary, area_of

__all__ = ["Table2Row", "Table3Row", "table2", "table3"]


@dataclass(frozen=True)
class Table2Row:
    """One row of Table II: a full PRESENT-80 design."""

    design: str
    combinational: float
    non_combinational: float
    total: float
    ratio: float
    paper_total: float | None
    paper_ratio: float | None


@dataclass(frozen=True)
class Table3Row:
    """One row of Table III: a duplicated S-box layer."""

    countermeasure: str
    cipher: str
    total: float
    ratio: float
    paper_total: float | None
    paper_ratio: float | None


_PAPER_TABLE2 = {"naive_duplication": 3096.0, "three_in_one": 4097.0}
_PAPER_TABLE3 = {
    ("naive", "present"): 605.0,
    ("ours", "present"): 1397.0,
    ("naive", "aes"): 8363.0,
    ("ours", "aes"): 15327.0,
}


def table2(
    *,
    library: CellLibrary = PAPER_CALIBRATED,
    sbox_strategy: str = "shannon",
) -> list[Table2Row]:
    """Regenerate Table II: naïve duplication vs the three-in-one design."""
    spec = PresentSpec(sbox_strategy=sbox_strategy)
    naive = build_naive_duplication(spec, sbox_strategy=sbox_strategy)
    ours = build_three_in_one(spec, sbox_strategy=sbox_strategy)
    naive_area = area_of(naive.circuit, library=library)
    ours_area = area_of(ours.circuit, library=library)

    def row(scheme: str, report: AreaReport, baseline: AreaReport) -> Table2Row:
        paper_total = _PAPER_TABLE2.get(scheme)
        return Table2Row(
            design=scheme,
            combinational=report.combinational,
            non_combinational=report.non_combinational,
            total=report.total,
            ratio=report.total / baseline.total,
            paper_total=paper_total,
            paper_ratio=(
                paper_total / _PAPER_TABLE2["naive_duplication"]
                if paper_total
                else None
            ),
        )

    return [
        row("naive_duplication", naive_area, naive_area),
        row("three_in_one", ours_area, naive_area),
    ]


def table3(
    *,
    library: CellLibrary = PAPER_CALIBRATED,
    sbox_strategy: str = "shannon",
    construction: str = "monolithic",
    include_aes: bool = True,
) -> list[Table3Row]:
    """Regenerate Table III: duplicated S-box layers, plain vs merged."""
    from repro.ciphers.aes import AES_SBOX
    from repro.ciphers.sbox import PRESENT_SBOX

    ciphers: list[tuple[str, SBox]] = [("present", PRESENT_SBOX)]
    if include_aes:
        ciphers.append(("aes", AES_SBOX))

    rows: list[Table3Row] = []
    for cipher, sbox in ciphers:
        plain = area_of(
            build_sbox_layer(sbox, merged=False, strategy=sbox_strategy),
            library=library,
        )
        merged = area_of(
            build_sbox_layer(
                sbox, merged=True, construction=construction, strategy=sbox_strategy
            ),
            library=library,
        )
        for label, report in (("naive", plain), ("ours", merged)):
            paper = _PAPER_TABLE3.get((label, cipher))
            paper_base = _PAPER_TABLE3.get(("naive", cipher))
            rows.append(
                Table3Row(
                    countermeasure=label,
                    cipher=cipher,
                    total=report.total,
                    ratio=report.total / plain.total,
                    paper_total=paper,
                    paper_ratio=(paper / paper_base if paper and paper_base else None),
                )
            )
    return rows
