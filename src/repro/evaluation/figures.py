"""Fig. 4 and Fig. 5 of the paper, regenerated as data series.

Both figures plot, for naïve duplication (a) versus the proposed
countermeasure (b), the behaviour of an 80k-run last-round fault campaign
against PRESENT-80:

- **Fig. 4** — a stuck-at-0 on the *second MSB input line of S-box 13*,
  injected into the actual computation only.  The series is the
  distribution of that S-box's last-round input over the runs that
  released output (the ineffective set): 8-value support for naïve
  duplication, uniform 16-value support for ours.
- **Fig. 5** — a stuck-at-0 on the *second LSB input line of S-box 5*,
  injected identically into both computations (the Selmke scenario).  For
  naïve duplication half the runs release *faulty* ciphertexts (the paper's
  visible bias); ours detects every effective fault, so nothing faulty is
  ever released.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.attacks.metrics import sei
from repro.attacks.sifa import ineffective_distribution
from repro.ciphers.netlist_present import PresentSpec
from repro.ciphers.spn import SpnSpec
from repro.countermeasures import build_naive_duplication, build_three_in_one
from repro.countermeasures.base import ProtectedDesign
from repro.faults import FaultSpec, FaultType, Outcome, run_campaign
from repro.faults.models import last_round, sbox_input_net
from repro.telemetry import trace

__all__ = ["Figure4Data", "Figure5Data", "SchemeSeries", "figure4", "figure5"]

DEFAULT_KEY = 0x8F4E2D1C0B5A69783746


@dataclass(frozen=True)
class SchemeSeries:
    """One sub-figure: a campaign summary for one scheme."""

    scheme: str
    n_runs: int
    counts: dict[str, int]
    #: histogram over the target S-box's input values (the bar series)
    distribution: np.ndarray
    #: SEI of that distribution (0 = uniform)
    sei: float
    #: how many *wrong* ciphertexts were released (countermeasure bypasses)
    faulty_released: int


@dataclass(frozen=True)
class Figure4Data:
    """Fig. 4: SIFA bias at S-box 13, naïve (a) vs ours (b)."""

    target_sbox: int
    target_bit: int
    naive: SchemeSeries
    ours: SchemeSeries


@dataclass(frozen=True)
class Figure5Data:
    """Fig. 5: identical faults in both computations at S-box 5."""

    target_sbox: int
    target_bit: int
    naive: SchemeSeries
    ours: SchemeSeries


def _series_single_fault(
    design: ProtectedDesign,
    spec: SpnSpec,
    sbox: int,
    bit: int,
    *,
    n_runs: int,
    key: int,
    seed: int,
    both_cores: bool,
    jobs: int | None = None,
    checkpoint_dir=None,
    resume: bool = False,
    backend: str | None = None,
) -> SchemeSeries:
    specs = []
    cores = design.cores if both_cores else design.cores[:1]
    for core in cores:
        specs.append(
            FaultSpec.at(
                sbox_input_net(core, sbox, bit),
                FaultType.STUCK_AT_0,
                last_round(core),
            )
        )
    if checkpoint_dir is not None:
        # one campaign per scheme → one sub-directory per scheme
        checkpoint_dir = Path(checkpoint_dir) / design.scheme
    with trace.span(
        "figures.series",
        scheme=design.scheme,
        sbox=sbox,
        bit=bit,
        n_runs=n_runs,
        both_cores=both_cores,
    ):
        result = run_campaign(
            design,
            specs,
            n_runs=n_runs,
            key=key,
            seed=seed,
            jobs=jobs,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            backend=backend,
        )
    dist = ineffective_distribution(result, spec, sbox)
    return SchemeSeries(
        scheme=design.scheme,
        n_runs=n_runs,
        counts=result.counts(),
        distribution=dist,
        sei=sei_from_counts(dist),
        faulty_released=result.count(Outcome.EFFECTIVE),
    )


def sei_from_counts(counts: np.ndarray) -> float:
    """SEI of a histogram (empty histograms count as uniform)."""
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(((p - 1.0 / len(counts)) ** 2).sum())


def figure4(
    *,
    n_runs: int = 80_000,
    key: int = DEFAULT_KEY,
    seed: int = 4,
    target_sbox: int = 13,
    target_bit: int = 2,
    spec: SpnSpec | None = None,
    jobs: int | None = None,
    checkpoint_dir=None,
    resume: bool = False,
    backend: str | None = None,
) -> Figure4Data:
    """Regenerate Fig. 4 (single-core stuck-at-0, SIFA bias).

    ``jobs``/``checkpoint_dir``/``resume`` run the underlying campaigns
    through the resilient sharded executor (one checkpoint sub-directory
    per scheme); the series are bit-identical either way.
    """
    spec = spec or PresentSpec()
    checkpoint_dir = Path(checkpoint_dir) / "fig4" if checkpoint_dir else None
    with trace.span(
        "figures.fig4", sbox=target_sbox, bit=target_bit, n_runs=n_runs
    ):
        naive = _series_single_fault(
            build_naive_duplication(spec),
            spec,
            target_sbox,
            target_bit,
            n_runs=n_runs,
            key=key,
            seed=seed,
            both_cores=False,
            jobs=jobs,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            backend=backend,
        )
        ours = _series_single_fault(
            build_three_in_one(spec),
            spec,
            target_sbox,
            target_bit,
            n_runs=n_runs,
            key=key,
            seed=seed,
            both_cores=False,
            jobs=jobs,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            backend=backend,
        )
    return Figure4Data(
        target_sbox=target_sbox, target_bit=target_bit, naive=naive, ours=ours
    )


def figure5(
    *,
    n_runs: int = 80_000,
    key: int = DEFAULT_KEY,
    seed: int = 5,
    target_sbox: int = 5,
    target_bit: int = 1,
    spec: SpnSpec | None = None,
    jobs: int | None = None,
    checkpoint_dir=None,
    resume: bool = False,
    backend: str | None = None,
) -> Figure5Data:
    """Regenerate Fig. 5 (identical stuck-at-0 in both computations).

    Executor knobs as in :func:`figure4`.
    """
    spec = spec or PresentSpec()
    checkpoint_dir = Path(checkpoint_dir) / "fig5" if checkpoint_dir else None
    with trace.span(
        "figures.fig5", sbox=target_sbox, bit=target_bit, n_runs=n_runs
    ):
        naive = _series_single_fault(
            build_naive_duplication(spec),
            spec,
            target_sbox,
            target_bit,
            n_runs=n_runs,
            key=key,
            seed=seed,
            both_cores=True,
            jobs=jobs,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            backend=backend,
        )
        ours = _series_single_fault(
            build_three_in_one(spec),
            spec,
            target_sbox,
            target_bit,
            n_runs=n_runs,
            key=key,
            seed=seed,
            both_cores=True,
            jobs=jobs,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            backend=backend,
        )
    return Figure5Data(
        target_sbox=target_sbox, target_bit=target_bit, naive=naive, ours=ours
    )
