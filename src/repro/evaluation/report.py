"""Plain-text rendering of the regenerated tables and figures.

The benchmark harness prints these artefacts so a reader can compare them
line-by-line with the paper; benchmarks also assert on the underlying data
so the comparison is mechanical, not just visual.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["render_histogram", "render_table"]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Fixed-width ASCII table (right-aligned numbers, left-aligned text)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(headers[c])
        for c in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.rjust(widths[i]) if _numericish(cell) else cell.ljust(widths[i])
            for i, cell in enumerate(cells)
        ).rstrip()

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def render_histogram(
    counts: np.ndarray,
    *,
    title: str = "",
    width: int = 50,
    label_fmt: str = "{:>2x}",
) -> str:
    """Horizontal ASCII bar chart of a histogram (the Fig. 4/5 panels)."""
    counts = np.asarray(counts)
    peak = counts.max() if counts.size and counts.max() > 0 else 1
    lines = [title] if title else []
    for value, count in enumerate(counts):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"  {label_fmt.format(value)} |{bar:<{width}} {int(count)}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def _numericish(cell: str) -> bool:
    stripped = cell.replace(".", "").replace("-", "").replace("x", "").replace("%", "")
    return stripped.isdigit()
