"""Regeneration of every table and figure in the paper's evaluation (§IV).

- :mod:`repro.evaluation.tables` — Table II (PRESENT-80 design areas) and
  Table III (S-box layer areas);
- :mod:`repro.evaluation.figures` — Fig. 4 (SIFA bias, naïve vs ours) and
  Fig. 5 (identical-fault DFA, naïve vs ours) data series;
- :mod:`repro.evaluation.report` — plain-text rendering in the paper's
  layout (tables and ASCII histograms).

Every function returns plain data (dataclasses over numpy arrays) so the
benchmarks can both print the paper-style artefact and assert its shape.
"""

from repro.evaluation.figures import Figure4Data, Figure5Data, figure4, figure5
from repro.evaluation.tables import Table2Row, Table3Row, table2, table3
from repro.evaluation.report import render_histogram, render_table

__all__ = [
    "Figure4Data",
    "Figure5Data",
    "Table2Row",
    "Table3Row",
    "figure4",
    "figure5",
    "render_histogram",
    "render_table",
    "table2",
    "table3",
]
