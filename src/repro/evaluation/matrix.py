"""The attack × scheme matrix and the fault-round sweep.

These back both the benchmark harness and the CLI; see
``benchmarks/bench_attack_matrix.py`` and ``benchmarks/bench_round_sweep.py``
for the asserted, artefact-producing versions.  Both sweeps are generic
over the cipher registry: ``cipher`` names any registered spec and the
keys/plaintexts are widened to the cipher's port sizes.
"""

from __future__ import annotations

from pathlib import Path

from repro.attacks import selmke_attack, sifa_attack
from repro.attacks.fta import fta_key_recovery
from repro.ciphers.registry import make_spec
from repro.countermeasures import (
    build_acisp20,
    build_naive_duplication,
    build_three_in_one,
)
from repro.faults import FaultSpec, FaultType, Outcome, run_campaign
from repro.faults.models import sbox_input_net

__all__ = ["FTA_PLAINTEXTS", "run_attack_matrix", "run_round_sweep"]

DEFAULT_KEY = 0x8F4E2D1C0B5A69783746

FTA_PLAINTEXTS = [
    0x5AF019C3B2487D6E,
    0xC3A1905E7F2B6D84,
    0x0F1E2D3C4B5A6978,
    0x9182736455463728,
]


def _fit_key(key: int, key_bits: int) -> int:
    """Clip the default campaign key to the cipher's key-port width."""
    return key & ((1 << key_bits) - 1)


def _fta_plaintexts(block_bits: int) -> list[int]:
    """The fixed FTA plaintext set, widened to the cipher's block size."""
    if block_bits <= 64:
        return [p & ((1 << block_bits) - 1) for p in FTA_PLAINTEXTS]
    n = len(FTA_PLAINTEXTS)
    return [
        FTA_PLAINTEXTS[i] | (FTA_PLAINTEXTS[(i + 1) % n] << 64)
        for i in range(n)
    ]


def run_attack_matrix(
    n_runs: int,
    *,
    cipher: str = "present80",
    key: int = DEFAULT_KEY,
    jobs: int | None = None,
    checkpoint_dir=None,
    resume: bool = False,
) -> dict[str, dict]:
    """DFA/SIFA/FTA key-recovery attempts against all three duplication
    schemes; returns ``{scheme: {attack: result}}``.

    ``jobs``/``checkpoint_dir``/``resume`` route the DFA and SIFA campaigns
    (the heavy cells) through the resilient sharded executor, one
    checkpoint sub-directory per matrix cell.
    """
    spec = make_spec(cipher)
    key = _fit_key(key, spec.key_bits)
    schemes = {
        "naive_duplication": build_naive_duplication(spec),
        "acisp20": build_acisp20(spec),
        "three_in_one": build_three_in_one(spec),
    }
    ckpt = Path(checkpoint_dir) if checkpoint_dir is not None else None
    matrix: dict[str, dict] = {}
    for label, design in schemes.items():
        selmke = selmke_attack(
            design,
            target_sbox=5,
            faulted_bit=1,
            key=key,
            n_runs=n_runs,
            seed=4,
            jobs=jobs,
            checkpoint_dir=ckpt / f"{label}_dfa" if ckpt else None,
            resume=resume,
        )
        net = sbox_input_net(design.cores[0], 7, 1)
        fault = FaultSpec.at(net, FaultType.STUCK_AT_0, spec.rounds - 2)
        campaign = run_campaign(
            design,
            [fault],
            n_runs=n_runs,
            key=key,
            seed=21,
            jobs=jobs,
            checkpoint_dir=ckpt / f"{label}_sifa" if ckpt else None,
            resume=resume,
        )
        sifa = sifa_attack(campaign, spec, 7, 1)
        # round-1 FTA key recovery templates the key addition *before* the
        # first S-box layer; ciphers that add the key after it (GIFT) have
        # no round-1 template target, so that cell is n/a.
        fta = (
            fta_key_recovery(
                design,
                sbox=3,
                plaintexts=_fta_plaintexts(spec.block_bits),
                key=key,
                n_rep=32,
                seed=7,
            )
            if spec.add_key_first
            else None
        )
        matrix[label] = {"dfa_identical": selmke, "sifa": sifa, "fta": fta}
    return matrix


def run_round_sweep(
    n_runs: int,
    *,
    cipher: str = "present80",
    key: int = DEFAULT_KEY,
    rounds=None,
    target_sbox: int = 13,
    target_bit: int = 2,
) -> list[list]:
    """Per-round campaign stats for naïve duplication and the three-in-one
    design; one row per probed round (see bench_round_sweep for assertions)."""
    spec = make_spec(cipher)
    key = _fit_key(key, spec.key_bits)
    if rounds is None:
        ladder = (1, 5, 10, 16, 24, 30, 31)
        rounds = tuple(r for r in ladder if r < spec.rounds) + (spec.rounds,)
    designs = {
        "naive": build_naive_duplication(spec),
        "ours": build_three_in_one(spec),
    }
    rows = []
    for round_ in rounds:
        row: list = [round_]
        for design in designs.values():
            net = sbox_input_net(design.cores[0], target_sbox, target_bit)
            fault = FaultSpec.at(net, FaultType.STUCK_AT_0, round_ - 1)
            res = run_campaign(design, [fault], n_runs=n_runs, key=key, seed=round_)
            row.extend([res.rate(Outcome.INEFFECTIVE), res.count(Outcome.EFFECTIVE)])
        rows.append(row)
    return rows
