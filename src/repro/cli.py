"""Command-line interface: regenerate any paper artefact with one command.

Usage (after ``pip install -e .``)::

    python -m repro table2
    python -m repro table3
    python -m repro fig4  --runs 80000 --jobs 4 --checkpoint-dir ckpt/fig4
    python -m repro fig5  --runs 80000
    python -m repro matrix --runs 16000 --resume --checkpoint-dir ckpt/matrix
    python -m repro sweep  --runs 10000
    python -m repro certify --scheme three-in-one --budget 50000 --out cert.json
    python -m repro serve  --store /var/tmp/repro-store --port 8642
    python -m repro submit --url http://127.0.0.1:8642 --budget 50000
    python -m repro sca    --traces 500
    python -m repro encrypt --key 0x0123456789abcdef0123 --pt 0xcafebabe
    python -m repro fig4 --runs 4000 --backend reference   # per-gate oracle kernel
    python -m repro fig4 --runs 80000 --backend compiled   # AOT-codegen kernel

Each subcommand prints the same artefact the corresponding benchmark
produces; the CLI exists so a reader can poke at the reproduction without
learning the library API first.
"""

from __future__ import annotations

import argparse
import logging
import sys

__all__ = ["main"]


def _cmd_table2(args) -> int:
    from repro.evaluation import render_table, table2

    rows = table2()
    print(render_table(
        ["design", "comb GE", "non-comb GE", "total GE", "ratio", "paper GE", "paper ratio"],
        [[r.design, r.combinational, r.non_combinational, r.total,
          f"{r.ratio:.2f}x", r.paper_total, f"{r.paper_ratio:.2f}x"] for r in rows],
        title="Table II: PRESENT-80 encryption area",
    ))
    return 0


def _cmd_table3(args) -> int:
    from repro.evaluation import render_table, table3

    rows = table3(include_aes=not args.no_aes)
    print(render_table(
        ["countermeasure", "cipher", "total GE", "ratio", "paper GE", "paper ratio"],
        [[r.countermeasure, r.cipher, r.total, f"{r.ratio:.2f}x",
          r.paper_total, f"{r.paper_ratio:.2f}x"] for r in rows],
        title="Table III: one duplicated S-box layer",
    ))
    return 0


def _cmd_fig4(args) -> int:
    from repro.evaluation import figure4, render_histogram

    fig = figure4(
        n_runs=args.runs,
        seed=args.seed,
        jobs=args.jobs,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        backend=args.backend,
    )
    print(f"Fig. 4 — stuck-at-0 at S-box {fig.target_sbox} bit {fig.target_bit}, "
          f"last round, {args.runs} runs")
    print(render_histogram(
        fig.naive.distribution,
        title=f"(a) naive duplication   SEI={fig.naive.sei:.4f}  {fig.naive.counts}"))
    print(render_histogram(
        fig.ours.distribution,
        title=f"(b) our countermeasure  SEI={fig.ours.sei:.5f}  {fig.ours.counts}"))
    return 0


def _cmd_fig5(args) -> int:
    from repro.evaluation import figure5, render_histogram

    fig = figure5(
        n_runs=args.runs,
        seed=args.seed,
        jobs=args.jobs,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        backend=args.backend,
    )
    print(f"Fig. 5 — identical stuck-at-0 at S-box {fig.target_sbox} bit "
          f"{fig.target_bit} in both computations, {args.runs} runs")
    for series, label in ((fig.naive, "(a) naive duplication"), (fig.ours, "(b) our countermeasure")):
        print(render_histogram(
            series.distribution,
            title=f"{label}: faulty released={series.faulty_released}  {series.counts}"))
    return 0


def _cmd_matrix(args) -> int:
    from repro.evaluation import render_table
    from repro.evaluation.matrix import run_attack_matrix

    matrix = run_attack_matrix(
        args.runs,
        cipher=args.cipher,
        jobs=args.jobs,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )
    rows = [
        [label,
         "BROKEN" if cells["dfa_identical"].success else "protected",
         "BROKEN" if cells["sifa"].success else "protected",
         "n/a" if cells["fta"] is None
         else "BROKEN" if cells["fta"].success else "protected"]
        for label, cells in matrix.items()
    ]
    print(render_table(
        ["scheme", "identical-fault DFA", "SIFA", "FTA"], rows,
        title=f"Attack x scheme matrix, {args.cipher} "
        f"({args.runs} runs per campaign)",
    ))
    return 0


def _cmd_sweep(args) -> int:
    from repro.evaluation import render_table
    from repro.evaluation.matrix import run_round_sweep

    rows = run_round_sweep(args.runs)
    print(render_table(
        ["round", "naive ineff rate", "naive bypass", "ours ineff rate", "ours bypass"],
        rows, title=f"Round sweep ({args.runs} runs per point)",
    ))
    return 0


def _cmd_sca(args) -> int:
    from repro.ciphers.netlist_present import PresentSpec
    from repro.countermeasures import build_three_in_one
    from repro.rng import make_rng, random_ints
    from repro.sca import LeakageModel, max_abs_t, power_trace
    from repro.netlist.gates import GateType

    design = build_three_in_one(PresentSpec())
    key = 0x13579BDF02468ACE1122
    n = args.traces
    fixed = [0x0123456789ABCDEF] * n
    rng = make_rng(2)

    a = power_trace(design, fixed, key, rng=1)
    b = power_trace(design, random_ints(rng, n, 64), key, rng=2)
    print(f"fixed-vs-random plaintext, HD model: max|t| = {max_abs_t(a, b):.1f} "
          "(sanity: unmasked datapath leaks data)")

    core_a = [g.out for g in design.circuit.gates
              if g.gtype is GateType.DFF and g.tag.startswith("a/state")]
    for model, nets, label in (
        (LeakageModel.HAMMING_DISTANCE, None, "whole chip, HD"),
        (LeakageModel.HAMMING_WEIGHT, None, "whole chip, HW"),
        (LeakageModel.HAMMING_DISTANCE, core_a, "core-a probe, HD (cycles>=1)"),
        (LeakageModel.HAMMING_WEIGHT, core_a, "core-a probe, HW"),
    ):
        l0 = power_trace(design, fixed, key, model=model, lambdas=[0] * n, rng=3, nets=nets)
        l1 = power_trace(design, fixed, key, model=model, lambdas=[1] * n, rng=4, nets=nets)
        if "cycles>=1" in label:
            l0, l1 = l0[:, 1:], l1[:, 1:]
        print(f"λ=0 vs λ=1, {label}: max|t| = {max_abs_t(l0, l1):.1f}")
    return 0


def _build_scheme(scheme: str, *, cipher: str, variant: str, rounds: int | None):
    from repro.service.protocol import build_design

    return build_design(scheme, cipher=cipher, variant=variant, rounds=rounds)


def _cmd_certify(args) -> int:
    from repro.certify import DEFAULT_MODELS, CertifyConfig, certify_design

    design = _build_scheme(
        args.scheme, cipher=args.cipher, variant=args.variant, rounds=args.rounds
    )
    config = CertifyConfig(
        budget=args.budget,
        runs_per_location=args.runs_per_location,
        models=tuple(args.models.split(",")) if args.models else DEFAULT_MODELS,
        cycles=tuple(int(c) for c in args.cycles.split(",")) if args.cycles else None,
        seed=args.seed,
        fail_fast=args.fail_fast,
        backend=args.backend,
        jobs=args.jobs or 1,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        wall_budget=args.wall_budget,
    )
    certificate = certify_design(design, key=int(args.key, 0), config=config)
    print(certificate.summary())
    if args.out:
        certificate.save(args.out)
        print(f"certificate written to {args.out}")
    return 0 if certificate.passed else 1


def _cmd_verify(args) -> int:
    """Load a certificate with full validation and report its verdicts.

    Exit status: 0 = verdicts pass, 1 = a verdict failed, 3 = the document
    itself is untrustworthy (schema/version/integrity mismatch — raised as
    :class:`~repro.certify.certificate.CertificateError` and mapped by
    :func:`main`).
    """
    from repro.certify import Certificate

    certificate = Certificate.load(args.certificate)
    print(certificate.summary())
    if certificate.degraded:
        print(
            "note: certificate is DEGRADED (partial coverage); "
            "see coverage.uncovered_per_stratum",
            file=sys.stderr,
        )
    return 0 if certificate.passed else 1


def _cmd_serve(args) -> int:
    """Run the always-on certification daemon (see repro.service.daemon)."""
    from repro.service import CertificationService, ServiceConfig

    config = ServiceConfig(
        store_dir=args.store,
        host=args.host,
        port=args.port,
        concurrency=args.concurrency,
        max_queue=args.max_queue,
        jobs=args.jobs or 1,
        default_deadline_s=args.deadline,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        drain_timeout_s=args.drain_timeout,
    )
    service = CertificationService(config)
    print(
        f"serving on http://{config.host}:{config.port or '<ephemeral>'} "
        f"(store: {args.store}); SIGTERM drains gracefully",
        file=sys.stderr,
    )
    return service.serve()


def _cmd_submit(args) -> int:
    """Submit one certification campaign to a running daemon."""
    from repro.certify import Certificate
    from repro.service.client import ServiceClient, ServiceError

    request = {
        "scheme": args.scheme,
        "cipher": args.cipher,
        "variant": args.variant,
        "rounds": args.rounds,
        "budget": args.budget,
        "runs_per_location": args.runs_per_location,
        "models": args.models.split(",") if args.models else None,
        "cycles": (
            [int(c) for c in args.cycles.split(",")] if args.cycles else None
        ),
        "seed": args.seed,
        "key": args.key,
        "backend": args.backend,
        "deadline_s": args.deadline,
    }
    try:
        client = ServiceClient(args.url)
        status, doc = client.submit(request, wait=args.wait)
    except ServiceError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return EXIT_UNAVAILABLE
    rid = doc.get("request_id")
    if rid:
        print(f"request id: {rid}", file=sys.stderr)
    if status == 400:
        print(f"request rejected: {doc.get('error')}", file=sys.stderr)
        return 2
    if status == 202:
        print(f"accepted: request {rid} key {doc.get('key')}")
        print(
            "follow with 'repro top' or GET /status; fetch the result "
            "with GET /certificate/<key>",
            file=sys.stderr,
        )
        return 0
    if status != 200:
        retry = doc.get("retry_after_s")
        print(
            f"request not served ({doc.get('status')})"
            + (f"; retry after {retry}s" if retry else ""),
            file=sys.stderr,
        )
        return EXIT_UNAVAILABLE
    certificate = Certificate.from_dict(doc["certificate"])
    print(certificate.summary())
    cached = doc.get("cached")
    print(
        f"key: {doc['key']}"
        + (f"  (cache hit: {cached})" if cached else f"  (backend: {doc.get('backend')})"),
        file=sys.stderr,
    )
    if args.out:
        certificate.save(args.out)
        print(f"certificate written to {args.out}")
    return 0 if certificate.passed else 1


def _cmd_top(args) -> int:
    """Live dashboard over a running daemon's GET /status."""
    from repro.service.client import ServiceClient, ServiceError
    from repro.service.top import run_top

    client = ServiceClient(args.url)
    try:
        return run_top(
            client,
            interval=args.interval,
            iterations=1 if args.once else None,
        )
    except ServiceError as exc:
        print(f"top failed: {exc}", file=sys.stderr)
        return EXIT_UNAVAILABLE


def _cmd_trace_analyze(args) -> int:
    """Per-request deep dive into a recorded JSONL trace."""
    from repro.telemetry.stats import (
        TraceError,
        analyze_request,
        load_trace,
        render_analysis,
        request_ids,
    )

    try:
        records = load_trace(args.trace_file)
    except (OSError, TraceError) as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 1
    rid = args.request
    if rid is None:
        ids = request_ids(records)
        with_spans = [r for r, info in ids.items() if info["spans"]]
        if len(with_spans) == 1:
            rid = with_spans[0]
        elif not with_spans:
            print("trace carries no request-correlated spans", file=sys.stderr)
            return 1
        else:
            print("multiple requests in trace; pick one with --request:")
            for name in sorted(ids):
                info = ids[name]
                print(
                    f"  {name}: {info['spans']} spans, {info['events']} events"
                )
            return 1
    try:
        analysis = analyze_request(records, rid)
    except TraceError as exc:
        print(f"analyze failed: {exc}", file=sys.stderr)
        known = sorted(request_ids(records))
        if known:
            print(f"request ids in this trace: {', '.join(known)}", file=sys.stderr)
        return 1
    print(render_analysis(analysis, max_shards=args.max_shards))
    return 0


def _cmd_bench_history(args) -> int:
    """Show the append-only benchmark-history ledger."""
    import json as _json
    from pathlib import Path

    from repro.telemetry.history import (
        append_entry,
        load_history,
        render_history,
        resolve_history_path,
    )

    path = Path(args.history) if args.history else resolve_history_path()
    if args.import_dir:
        # backfill: fold existing BENCH_*.json reports into the ledger
        imported = 0
        for report_path in sorted(Path(args.import_dir).glob("BENCH_*.json")):
            report = _json.loads(report_path.read_text())
            append_entry(path, report)
            imported += 1
        print(f"imported {imported} report(s) into {path}", file=sys.stderr)
    try:
        history = load_history(path)
    except ValueError as exc:
        print(f"corrupt history: {exc}", file=sys.stderr)
        return 1
    print(render_history(history))
    return 0


def _cmd_bench_check(args) -> int:
    """Regression sentinel: newest run vs rolling robust baseline."""
    from pathlib import Path

    from repro.telemetry.history import (
        check,
        load_history,
        render_check,
        resolve_history_path,
    )

    path = Path(args.history) if args.history else resolve_history_path()
    try:
        history = load_history(path)
    except ValueError as exc:
        print(f"corrupt history: {exc}", file=sys.stderr)
        return 1
    if not history:
        print(f"no benchmark history at {path}; nothing to check")
        return 0
    report = check(
        history,
        tolerance=args.tolerance,
        window=args.window,
        min_samples=args.min_samples,
    )
    print(render_check(report))
    return 1 if report["regressions"] else 0


def _cmd_encrypt(args) -> int:
    from repro.ciphers.registry import make_spec
    from repro.countermeasures import build_three_in_one

    spec = make_spec(args.cipher)
    key = int(args.key, 0)
    pt = int(args.pt, 0)
    design = build_three_in_one(spec)
    sim = design.simulator(1, backend=args.backend)
    result = design.run(sim, [pt], key, rng=args.seed)
    ct = sum(int(b) << i for i, b in enumerate(result["ciphertext"][0]))
    expected = spec.reference(key).encrypt(pt)
    width = spec.block_bits // 4
    print(f"protected netlist ciphertext: {ct:0{width}x}")
    print(f"reference ciphertext:         {expected:0{width}x}")
    print(f"fault flag: {int(result['fault'][0])}")
    return 0 if ct == expected else 1


def _cmd_stats(args) -> int:
    from repro.telemetry.stats import TraceError, load_trace, render_stats, summarize

    try:
        records = load_trace(args.trace_file)
    except (OSError, TraceError) as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 1
    print(render_stats(summarize(records), top=args.top))
    return 0


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    from repro.netlist.simulator import BACKENDS

    parser.add_argument(
        "--backend", default=None, choices=list(BACKENDS),
        help="simulation kernel: levelized (fast, default), compiled "
        "(fastest, AOT-generated) or reference (per-gate oracle); "
        "results are bit-identical",
    )


def _cipher_name(value: str) -> str:
    """Argparse type for ``--cipher``: canonicalize or fail at parse time.

    An unknown name exits 2 with the argument named and the registered
    ciphers listed — same eager-validation contract as the REPRO_CHAOS /
    REPRO_SIM_BACKEND environment checks.
    """
    from repro.ciphers.registry import resolve_cipher

    try:
        return resolve_cipher(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_cipher_arg(parser: argparse.ArgumentParser) -> None:
    from repro.ciphers.registry import registered_ciphers

    parser.add_argument(
        "--cipher", default="present80", type=_cipher_name,
        metavar="{" + ",".join(registered_ciphers()) + "}",
        help="registered cipher to build (aliases like 'present'/'aes' "
        "accepted; unknown names are rejected at parse time)",
    )


def _common_options() -> argparse.ArgumentParser:
    """Parent parser: observability flags shared by every subcommand.

    Result tables and histograms stay on stdout; diagnostics go through
    :mod:`logging` on stderr (``-v`` → DEBUG, ``-q`` → errors only) and,
    with ``--trace``, every span/event/metric of the run is appended to a
    JSONL trace readable by ``repro stats``.
    """
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("observability")
    group.add_argument(
        "-v", "--verbose", action="store_true",
        help="log DEBUG diagnostics to stderr",
    )
    group.add_argument(
        "-q", "--quiet", action="store_true",
        help="log errors only (overrides -v)",
    )
    group.add_argument(
        "--trace", default=None, metavar="FILE",
        help="append a JSONL trace of this run (inspect with 'repro stats')",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the DATE'21 'Feeding Three Birds' evaluation.",
    )
    common = _common_options()
    sub = parser.add_subparsers(dest="command", required=True)

    p2 = sub.add_parser(
        "table2", help="Table II: PRESENT-80 design areas", parents=[common]
    )
    p2.set_defaults(fn=_cmd_table2)
    p3 = sub.add_parser(
        "table3", help="Table III: S-box layer areas", parents=[common]
    )
    p3.add_argument("--no-aes", action="store_true", help="skip the AES rows (faster)")
    p3.set_defaults(fn=_cmd_table3)

    for name, fn, default_runs, help_ in (
        ("fig4", _cmd_fig4, 80_000, "Fig. 4: SIFA bias campaign"),
        ("fig5", _cmd_fig5, 80_000, "Fig. 5: identical-fault campaign"),
        ("matrix", _cmd_matrix, 16_000, "attack x scheme key-recovery matrix"),
        ("sweep", _cmd_sweep, 10_000, "fault-round sweep"),
    ):
        p = sub.add_parser(name, help=help_, parents=[common])
        p.add_argument("--runs", type=int, default=default_runs)
        p.add_argument("--seed", type=int, default=4)
        if name != "sweep":
            p.add_argument(
                "--jobs", type=int, default=None,
                help="worker processes for the fault campaigns (default: in-process)",
            )
            p.add_argument(
                "--checkpoint-dir", default=None,
                help="checkpoint campaigns here so they can be resumed",
            )
            p.add_argument(
                "--resume", action="store_true",
                help="reuse completed shards from --checkpoint-dir",
            )
        if name in ("fig4", "fig5"):
            _add_backend_arg(p)
        if name == "matrix":
            _add_cipher_arg(p)
        p.set_defaults(fn=fn)

    psca = sub.add_parser(
        "sca", help="side-channel λ-leakage assessment", parents=[common]
    )
    psca.add_argument("--traces", type=int, default=300)
    psca.set_defaults(fn=_cmd_sca)

    pcert = sub.add_parser(
        "certify",
        help="sweep the single-fault space and emit a coverage certificate",
        parents=[common],
    )
    pcert.add_argument(
        "--scheme", default="three-in-one",
        choices=["three-in-one", "naive", "acisp20", "triplication"],
    )
    _add_cipher_arg(pcert)
    pcert.add_argument(
        "--variant", default="prime", choices=["prime", "per_round", "per_sbox"],
        help="λ variant (three-in-one only)",
    )
    pcert.add_argument(
        "--rounds", type=int, default=None,
        help="reduced-round cipher instance (default: the cipher's full "
        "round count)",
    )
    pcert.add_argument(
        "--budget", type=int, default=None,
        help="total faulted-run budget; omit for an exhaustive sweep",
    )
    pcert.add_argument("--runs-per-location", type=int, default=64)
    pcert.add_argument(
        "--models", default=None,
        help="comma-separated fault models (default: all four)",
    )
    pcert.add_argument(
        "--cycles", default=None,
        help="comma-separated active rounds (default: every round)",
    )
    pcert.add_argument("--seed", type=int, default=4)
    pcert.add_argument("--key", default="0x0123456789abcdef0123")
    pcert.add_argument(
        "--fail-fast", action="store_true",
        help="stop scheduling new shards once a witness is found",
    )
    pcert.add_argument("--jobs", type=int, default=None)
    pcert.add_argument("--checkpoint-dir", default=None)
    pcert.add_argument("--resume", action="store_true")
    pcert.add_argument("--out", default=None, help="write the certificate JSON here")
    pcert.add_argument(
        "--wall-budget", type=float, default=None,
        help="wall-clock budget in seconds; on exhaustion the sweep stops "
        "scheduling and emits a valid partial (degraded) certificate",
    )
    _add_backend_arg(pcert)
    pcert.set_defaults(fn=_cmd_certify)

    pverify = sub.add_parser(
        "verify",
        help="validate a saved certificate (schema + checksum) and report it",
        parents=[common],
    )
    pverify.add_argument("certificate", help="certificate JSON written by certify")
    pverify.set_defaults(fn=_cmd_verify)

    pserve = sub.add_parser(
        "serve",
        help="run the always-on certification daemon (HTTP/JSON, local)",
        parents=[common],
    )
    pserve.add_argument(
        "--store", default="repro-store",
        help="content-addressed result store root (certificates, index, "
        "campaign checkpoints); survives restarts and kill -9",
    )
    pserve.add_argument("--host", default="127.0.0.1")
    pserve.add_argument(
        "--port", type=int, default=8642,
        help="listen port (0 = ephemeral)",
    )
    pserve.add_argument(
        "--concurrency", type=int, default=2,
        help="campaigns run concurrently",
    )
    pserve.add_argument(
        "--max-queue", type=int, default=8,
        help="admission bound (queued + running campaigns) before "
        "load-shedding with Retry-After",
    )
    pserve.add_argument(
        "--jobs", type=int, default=None,
        help="executor worker processes per campaign",
    )
    pserve.add_argument(
        "--deadline", type=float, default=None,
        help="default per-request wall-clock deadline in seconds; exceeding "
        "it yields a valid degraded certificate, never a dropped request",
    )
    pserve.add_argument("--breaker-threshold", type=int, default=3)
    pserve.add_argument("--breaker-cooldown", type=float, default=60.0)
    pserve.add_argument("--drain-timeout", type=float, default=600.0)
    pserve.set_defaults(fn=_cmd_serve)

    psubmit = sub.add_parser(
        "submit",
        help="submit a certification campaign to a running 'repro serve'",
        parents=[common],
    )
    psubmit.add_argument(
        "--url", default="http://127.0.0.1:8642",
        help="daemon base URL",
    )
    psubmit.add_argument(
        "--scheme", default="three-in-one",
        choices=["three-in-one", "naive", "acisp20", "triplication"],
    )
    _add_cipher_arg(psubmit)
    psubmit.add_argument(
        "--variant", default="prime", choices=["prime", "per_round", "per_sbox"],
    )
    psubmit.add_argument("--rounds", type=int, default=None)
    psubmit.add_argument("--budget", type=int, default=None)
    psubmit.add_argument("--runs-per-location", type=int, default=64)
    psubmit.add_argument("--models", default=None)
    psubmit.add_argument("--cycles", default=None)
    psubmit.add_argument("--seed", type=int, default=4)
    psubmit.add_argument("--key", default="0x0123456789abcdef0123")
    psubmit.add_argument(
        "--deadline", type=float, default=None,
        help="per-request deadline in seconds (degraded certificate on "
        "expiry)",
    )
    psubmit.add_argument("--out", default=None, help="save the certificate here")
    psubmit.add_argument(
        "--wait", default=True, action=argparse.BooleanOptionalAction,
        help="--no-wait returns immediately after admission (202) with the "
        "request id; follow progress via 'repro top' or GET /status",
    )
    _add_backend_arg(psubmit)
    psubmit.set_defaults(fn=_cmd_submit)

    ptop = sub.add_parser(
        "top",
        help="live TTY dashboard over a running daemon's GET /status",
        parents=[common],
    )
    ptop.add_argument(
        "--url", default="http://127.0.0.1:8642", help="daemon base URL"
    )
    ptop.add_argument(
        "--interval", type=float, default=1.0, help="seconds between polls"
    )
    ptop.add_argument(
        "--once", action="store_true",
        help="print one frame and exit (scripts/CI)",
    )
    ptop.set_defaults(fn=_cmd_top)

    penc = sub.add_parser(
        "encrypt", help="one protected encryption vs the spec", parents=[common]
    )
    _add_cipher_arg(penc)
    penc.add_argument("--key", default="0x0123456789abcdef0123")
    penc.add_argument("--pt", default="0xcafebabedeadbeef")
    penc.add_argument("--seed", type=int, default=1)
    _add_backend_arg(penc)
    penc.set_defaults(fn=_cmd_encrypt)

    pstats = sub.add_parser(
        "stats",
        help="summarize a JSONL trace recorded with --trace",
        parents=[common],
    )
    pstats.add_argument("trace_file", help="trace file written by --trace")
    pstats.add_argument(
        "--top", type=int, default=15, help="span names to show (by total time)"
    )
    pstats.set_defaults(fn=_cmd_stats)

    ptrace = sub.add_parser(
        "trace",
        help="inspect recorded traces (trace analyze FILE --request ID)",
        parents=[common],
    )
    trace_sub = ptrace.add_subparsers(dest="trace_command", required=True)
    panalyze = trace_sub.add_parser(
        "analyze",
        help="per-request span tree, critical path, phase/shard breakdown",
        parents=[common],
    )
    panalyze.add_argument("trace_file", help="JSONL trace written by --trace")
    panalyze.add_argument(
        "--request", default=None, metavar="ID",
        help="request id to analyze (auto-selected when the trace has "
        "exactly one)",
    )
    panalyze.add_argument(
        "--max-shards", type=int, default=10,
        help="rows in the slowest-shard table",
    )
    panalyze.set_defaults(fn=_cmd_trace_analyze)

    pbench = sub.add_parser(
        "bench",
        help="benchmark history ledger and perf-regression sentinel",
        parents=[common],
    )
    bench_sub = pbench.add_subparsers(dest="bench_command", required=True)
    phistory = bench_sub.add_parser(
        "history",
        help="show the append-only bench_history.jsonl ledger",
        parents=[common],
    )
    phistory.add_argument(
        "--history", default=None, metavar="FILE",
        help="ledger path (default: REPRO_BENCH_HISTORY or "
        "benchmarks/out/bench_history.jsonl)",
    )
    phistory.add_argument(
        "--import-dir", default=None, metavar="DIR",
        help="backfill: append every BENCH_*.json in DIR before listing",
    )
    phistory.set_defaults(fn=_cmd_bench_history)
    pcheck = bench_sub.add_parser(
        "check",
        help="compare each series' newest run against its rolling "
        "median±MAD baseline; exit 1 on regression",
        parents=[common],
    )
    pcheck.add_argument("--history", default=None, metavar="FILE")
    pcheck.add_argument(
        "--tolerance", type=float, default=0.10,
        help="minimum relative noise band (fraction of the median)",
    )
    pcheck.add_argument(
        "--window", type=int, default=8,
        help="baseline runs considered per series",
    )
    pcheck.add_argument(
        "--min-samples", type=int, default=3,
        help="baseline runs required before a series is judged",
    )
    pcheck.set_defaults(fn=_cmd_bench_check)
    return parser


#: exit status for an untrustworthy on-disk artefact: a --resume that does
#: not match the stored checkpoint, or a certificate failing its schema
#: version or integrity checksum
EXIT_CHECKPOINT_MISMATCH = 3

#: exit status when the certification daemon cannot serve the request now
#: (unreachable, load-shed with Retry-After, draining, or quarantined)
EXIT_UNAVAILABLE = 4


class _LiveStderrHandler(logging.StreamHandler):
    """A stderr handler that resolves ``sys.stderr`` at emit time.

    The CLI can be driven in-process (tests, notebooks) where stderr is
    swapped per call; pinning the stream at configure time would leave
    the logger writing to a closed capture file.
    """

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self):
        return sys.stderr


def _configure_logging(args) -> None:
    """Route diagnostics to stderr at the verbosity the flags ask for.

    Results stay on stdout untouched; only :mod:`logging` output (shard
    retries, timeout degradations, partial-campaign warnings) is affected.
    Propagation stays on so embedding applications (and pytest's caplog)
    still observe the records.
    """
    if getattr(args, "quiet", False):
        level = logging.ERROR
    elif getattr(args, "verbose", False):
        level = logging.DEBUG
    else:
        level = logging.INFO
    handler = _LiveStderrHandler()
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    logger = logging.getLogger("repro")
    logger.handlers[:] = [handler]
    logger.setLevel(level)


def main(argv: list[str] | None = None) -> int:
    from repro.certify import CertificateError
    from repro.faults.checkpoint import CheckpointError
    from repro.telemetry import metrics, run_manifest, trace

    args = build_parser().parse_args(argv)
    _configure_logging(args)
    # Eager environment validation: a typo'd REPRO_CHAOS schedule or
    # REPRO_SIM_BACKEND backend name fails here, loudly, before any work —
    # not deep inside a campaign (or silently never firing at all).
    try:
        from repro.netlist.simulator import resolve_backend
        from repro.resilience.chaos import ChaosSpec

        ChaosSpec.from_env()
        resolve_backend(None)
    except ValueError as exc:
        print(f"invalid environment: {exc}", file=sys.stderr)
        return 2
    trace_path = getattr(args, "trace", None)
    if trace_path:
        trace.configure(
            trace_path,
            manifest=run_manifest(
                kind="cli", command=args.command, argv=list(argv or sys.argv[1:])
            ),
        )
    # One-shot commands get a synthetic request id so their records are
    # correlated the same way the daemon's are ('repro trace analyze'
    # works on any trace).  'serve' is exempt: the daemon assigns real
    # per-request ids and must not stamp its whole lifetime with one.
    import contextlib
    import os as _os

    correlate = (
        trace.bind(request_id=f"cli-{_os.getpid()}-{args.command}")
        if args.command != "serve"
        else contextlib.nullcontext()
    )
    try:
        with correlate:
            return args.fn(args)
    except CheckpointError as exc:
        # A stale or foreign checkpoint directory is an operator error, not
        # a crash: name the mismatch and exit with a distinct status so
        # wrapper scripts can tell it apart from a failed verdict (1).
        print(f"checkpoint mismatch: {exc}", file=sys.stderr)
        print(
            "hint: point --checkpoint-dir at the directory created by the "
            "original run, or remove it to start fresh",
            file=sys.stderr,
        )
        return EXIT_CHECKPOINT_MISMATCH
    except CertificateError as exc:
        # A certificate that fails schema or checksum validation is in the
        # same family: the artefact on disk cannot be trusted.
        print(f"certificate invalid: {exc}", file=sys.stderr)
        return EXIT_CHECKPOINT_MISMATCH
    finally:
        if trace_path:
            trace.close(final_metrics=metrics.snapshot())


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
