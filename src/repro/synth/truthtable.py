"""Truth-table representation of ``n → m`` boolean functions.

A :class:`TruthTable` stores, for each of the ``2**n`` input patterns, the
``m``-bit output word.  Single outputs are also exposed as *column masks* —
``2**n``-bit Python integers where bit ``x`` is output bit ``j`` on input
``x`` — which is the representation the synthesis engines recurse on
(cofactoring a column mask is bit slicing, which arbitrary-precision ints do
for free).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

__all__ = ["TruthTable"]


class TruthTable:
    """An explicit ``n``-input, ``m``-output truth table.

    ``table[x]`` is the output word (an ``m``-bit integer, LSB-first) for
    input pattern ``x`` (bit ``i`` of ``x`` is input variable ``i``).
    """

    def __init__(self, n_inputs: int, n_outputs: int, table: Sequence[int]) -> None:
        if n_inputs < 0 or n_inputs > 24:
            raise ValueError(f"n_inputs out of supported range: {n_inputs}")
        if n_outputs <= 0:
            raise ValueError(f"n_outputs must be positive: {n_outputs}")
        table = list(table)
        if len(table) != 1 << n_inputs:
            raise ValueError(
                f"table has {len(table)} entries, expected {1 << n_inputs}"
            )
        for x, value in enumerate(table):
            if value < 0 or value >> n_outputs:
                raise ValueError(
                    f"entry {x} = {value:#x} does not fit in {n_outputs} outputs"
                )
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.table = table

    # ---------------------------------------------------------- constructors

    @classmethod
    def from_function(
        cls, n_inputs: int, n_outputs: int, fn: Callable[[int], int]
    ) -> "TruthTable":
        """Tabulate ``fn`` over all ``2**n_inputs`` patterns."""
        return cls(n_inputs, n_outputs, [fn(x) for x in range(1 << n_inputs)])

    @classmethod
    def from_columns(cls, n_inputs: int, columns: Sequence[int]) -> "TruthTable":
        """Build from per-output column masks (see :meth:`column`)."""
        n_outputs = len(columns)
        table = []
        for x in range(1 << n_inputs):
            word = 0
            for j, col in enumerate(columns):
                word |= ((col >> x) & 1) << j
            table.append(word)
        return cls(n_inputs, n_outputs, table)

    # --------------------------------------------------------------- queries

    def __call__(self, x: int) -> int:
        return self.table[x]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return (
            self.n_inputs == other.n_inputs
            and self.n_outputs == other.n_outputs
            and self.table == other.table
        )

    def __hash__(self) -> int:
        return hash((self.n_inputs, self.n_outputs, tuple(self.table)))

    def column(self, j: int) -> int:
        """Output bit ``j`` as a ``2**n_inputs``-bit mask (bit x = f_j(x))."""
        if not 0 <= j < self.n_outputs:
            raise IndexError(f"output index {j} out of range")
        col = 0
        for x, value in enumerate(self.table):
            col |= ((value >> j) & 1) << x
        return col

    def columns(self) -> list[int]:
        """All output columns, LSB output first."""
        return [self.column(j) for j in range(self.n_outputs)]

    def minterms(self, j: int) -> list[int]:
        """Input patterns where output ``j`` is 1 (for two-level synthesis)."""
        col = self.column(j)
        return [x for x in range(1 << self.n_inputs) if (col >> x) & 1]

    def is_permutation(self) -> bool:
        """True when n == m and the map is a bijection (S-box sanity)."""
        return self.n_inputs == self.n_outputs and sorted(self.table) == list(
            range(1 << self.n_inputs)
        )

    # ------------------------------------------------------------ transforms

    def inverted_domain(self) -> "TruthTable":
        """The *inverted cipher* version of this function (paper Table I).

        Returns ``T̄`` with ``T̄(x̄) = T(x)‾`` — i.e. the function computed by
        the same logic re-expressed in the complemented encoding, where every
        input and output wire carries the complement of its logical value.
        """
        in_mask = (1 << self.n_inputs) - 1
        out_mask = (1 << self.n_outputs) - 1
        table = [0] * (1 << self.n_inputs)
        for x, value in enumerate(self.table):
            table[x ^ in_mask] = value ^ out_mask
        return TruthTable(self.n_inputs, self.n_outputs, table)

    def merged_with_domain_bit(self) -> "TruthTable":
        """The paper's ``(n+1) × m`` merged S-box.

        The new MSB input is the encoding bit λ: with λ = 0 the table is the
        original function; with λ = 1 it is the inverted-domain function.
        Implementing both "at one place", as §III of the paper specifies.
        """
        inverted = self.inverted_domain()
        return TruthTable(
            self.n_inputs + 1,
            self.n_outputs,
            self.table + inverted.table,
        )

    def __repr__(self) -> str:
        return f"TruthTable({self.n_inputs}->{self.n_outputs})"
