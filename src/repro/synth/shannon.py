"""Shannon-decomposition synthesis.

Each output column is decomposed recursively on one variable at a time:
``f = v ? f|v=1 : f|v=0``.  Sub-functions are memoised on their column mask,
so shared logic between cofactors (and between the ``m`` outputs of an
S-box) is built exactly once, and all gates flow through
:class:`~repro.synth.gatecache.GateCache` so constants, literals and
complementary branches fold into cheaper cells (AND/OR/XOR/XNOR) instead of
muxes.

This engine is the workhorse for the paper's merged ``(n+1) × m`` S-boxes:
it handles the AES case (9 inputs, 8 outputs, 512-entry table) in well under
a second and its output is deterministic.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.synth.gatecache import GateCache
from repro.synth.truthtable import TruthTable

__all__ = ["shannon_synthesize_into"]


def shannon_synthesize_into(
    cache: GateCache,
    table: TruthTable,
    input_nets: Sequence[int],
    *,
    var_order: Sequence[int] | None = None,
) -> list[int]:
    """Emit logic computing ``table`` over ``input_nets``; returns output nets.

    ``var_order`` lists input variable indices from the *top* of the
    decomposition down (first entry is split first).  The default splits on
    the highest-numbered variable first, which for the merged S-boxes puts
    the λ bit at the root — matching the intuition that the merged box is a
    select between two sub-boxes, while still letting the cache share logic
    between the two domains.
    """
    if len(input_nets) != table.n_inputs:
        raise ValueError(
            f"expected {table.n_inputs} input nets, got {len(input_nets)}"
        )
    order = list(var_order) if var_order is not None else list(
        reversed(range(table.n_inputs))
    )
    if sorted(order) != list(range(table.n_inputs)):
        raise ValueError(f"var_order must permute 0..{table.n_inputs - 1}: {order}")

    memo: dict[tuple[int, int], int] = {}

    def build(mask: int, depth: int) -> int:
        """Synthesise the sub-function ``mask`` over variables order[depth:]."""
        n_vars = table.n_inputs - depth
        size = 1 << n_vars
        full = (1 << size) - 1
        if mask == 0:
            return cache.zero
        if mask == full:
            return cache.one
        key = (mask, depth)
        hit = memo.get(key)
        if hit is not None:
            return hit

        # Split on order[depth].  The mask is indexed by the *original*
        # variable numbering restricted to the remaining variables in
        # ascending order; translate the split variable to its bit position
        # within that numbering.
        remaining = sorted(order[depth:])
        var = order[depth]
        pos = remaining.index(var)

        lo_mask, hi_mask = _cofactor(mask, size, pos)
        if lo_mask == hi_mask:
            net = build(lo_mask, depth + 1)
        else:
            lo = build(lo_mask, depth + 1)
            hi = build(hi_mask, depth + 1)
            net = cache.g_mux(input_nets[var], lo, hi)
        memo[key] = net
        return net

    return [build(table.column(j), 0) for j in range(table.n_outputs)]


def _cofactor(mask: int, size: int, pos: int) -> tuple[int, int]:
    """Cofactors of a column mask w.r.t. variable at bit position ``pos``.

    Returns ``(f|pos=0, f|pos=1)`` as masks over ``size // 2`` entries, with
    the remaining variables renumbered by dropping bit ``pos``.
    """
    half = size >> 1
    lo = hi = 0
    out_idx = 0
    for x in range(size):
        if (x >> pos) & 1:
            continue
        x_hi = x | (1 << pos)
        lo |= ((mask >> x) & 1) << out_idx
        hi |= ((mask >> x_hi) & 1) << out_idx
        out_idx += 1
    assert out_idx == half
    return lo, hi
