"""A small reduced-ordered-BDD (ROBDD) package with netlist lowering.

Used two ways in the reproduction:

- as a synthesis engine: the shared ROBDD forest of an S-box's outputs is
  lowered node-by-node to 2:1 muxes (one mux per BDD node, shared across
  outputs), which bounds circuit size by BDD size;
- as an equivalence checker: two combinational functions are identical iff
  their ROBDD roots coincide, which the test suite uses to compare
  countermeasure S-boxes against their specification.

Nodes are hash-consed triples ``(var, lo, hi)`` with the standard reduction
rules (no node with ``lo == hi``, no duplicate triples).  Terminals are the
integers 0 and 1; internal node ids start at 2.  ``var`` indices are levels:
smaller var = closer to the root.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.synth.gatecache import GateCache
from repro.synth.truthtable import TruthTable

__all__ = ["BDD", "bdd_synthesize_into"]

ZERO = 0
ONE = 1


class BDD:
    """A ROBDD manager over ``n_vars`` variables (var 0 at the root)."""

    def __init__(self, n_vars: int) -> None:
        if n_vars < 0:
            raise ValueError(f"n_vars must be non-negative: {n_vars}")
        self.n_vars = n_vars
        # node id -> (var, lo, hi); ids 0/1 are terminals
        self._nodes: list[tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}

    # ----------------------------------------------------------- structure

    def node(self, u: int) -> tuple[int, int, int]:
        """The ``(var, lo, hi)`` triple of internal node ``u``."""
        if u < 2:
            raise ValueError(f"node {u} is a terminal")
        return self._nodes[u]

    def is_terminal(self, u: int) -> bool:
        return u < 2

    def mk(self, var: int, lo: int, hi: int) -> int:
        """Reduced, hash-consed node constructor."""
        if not 0 <= var < self.n_vars:
            raise ValueError(f"variable {var} out of range")
        if lo == hi:
            return lo
        key = (var, lo, hi)
        found = self._unique.get(key)
        if found is not None:
            return found
        uid = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = uid
        return uid

    def var(self, i: int) -> int:
        """The BDD of the bare variable ``x_i``."""
        return self.mk(i, ZERO, ONE)

    @property
    def num_nodes(self) -> int:
        """Total live nodes including the two terminals."""
        return len(self._nodes)

    # ------------------------------------------------------------- algebra

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h`` — the universal ROBDD operation."""
        if f == ONE:
            return g
        if f == ZERO:
            return h
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        key = (f, g, h)
        hit = self._ite_cache.get(key)
        if hit is not None:
            return hit
        top = min(self._top_var(f), self._top_var(g), self._top_var(h))
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        h0, h1 = self._cofactors(h, top)
        result = self.mk(top, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        self._ite_cache[key] = result
        return result

    def _top_var(self, u: int) -> int:
        return self.n_vars if u < 2 else self._nodes[u][0]

    def _cofactors(self, u: int, var: int) -> tuple[int, int]:
        if u < 2:
            return u, u
        v, lo, hi = self._nodes[u]
        if v == var:
            return lo, hi
        return u, u

    def apply_not(self, f: int) -> int:
        return self.ite(f, ZERO, ONE)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, ZERO)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, ONE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    # ------------------------------------------------------------- queries

    def evaluate(self, u: int, assignment: Sequence[int]) -> int:
        """Evaluate node ``u`` under a full 0/1 variable assignment."""
        while u >= 2:
            var, lo, hi = self._nodes[u]
            u = hi if assignment[var] else lo
        return u

    def count_sat(self, u: int) -> int:
        """Number of satisfying assignments over all ``n_vars`` variables."""
        memo: dict[int, int] = {}

        def rec(node: int, level: int) -> int:
            if node < 2:
                return node << (self.n_vars - level)
            var, lo, hi = self._nodes[node]
            hit = memo.get(node)
            if hit is None:
                hit = rec(lo, var + 1) + rec(hi, var + 1)
                memo[node] = hit
            return hit << (var - level)

        return rec(u, 0)

    def reachable(self, roots: Sequence[int]) -> set[int]:
        """All node ids reachable from ``roots`` (terminals included)."""
        seen: set[int] = set()
        stack = list(roots)
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            if u >= 2:
                _, lo, hi = self._nodes[u]
                stack.extend((lo, hi))
        return seen

    # -------------------------------------------------------- construction

    @classmethod
    def from_truthtable(
        cls, table: TruthTable, *, var_order: Sequence[int] | None = None
    ) -> tuple["BDD", list[int]]:
        """Build the shared forest of all outputs; returns (manager, roots).

        ``var_order[level]`` gives the original input index placed at BDD
        level ``level`` (root first).  Default: input ``n-1`` at the root,
        matching :func:`repro.synth.shannon.shannon_synthesize_into`.

        Note the returned BDD's node ``var`` fields are *levels*:
        :meth:`evaluate` expects assignments indexed by level, i.e.
        ``assignment[level] = x[var_order[level]]``.
        """
        n = table.n_inputs
        order = list(var_order) if var_order is not None else list(reversed(range(n)))
        if sorted(order) != list(range(n)):
            raise ValueError(f"var_order must permute 0..{n - 1}: {order}")
        bdd = cls(n)
        roots = []
        for j in range(table.n_outputs):
            col = table.column(j)
            roots.append(bdd._from_column(col, order, 0))
        bdd._order = order  # type: ignore[attr-defined]
        return bdd, roots

    def _from_column(self, mask: int, order: Sequence[int], level: int) -> int:
        n_rem = self.n_vars - level
        size = 1 << n_rem
        if mask == 0:
            return ZERO
        if mask == (1 << size) - 1:
            return ONE
        remaining = sorted(order[level:])
        pos = remaining.index(order[level])
        half = size >> 1
        lo_mask = hi_mask = 0
        out_idx = 0
        for x in range(size):
            if (x >> pos) & 1:
                continue
            lo_mask |= ((mask >> x) & 1) << out_idx
            hi_mask |= ((mask >> (x | (1 << pos))) & 1) << out_idx
            out_idx += 1
        assert out_idx == half
        lo = self._from_column(lo_mask, order, level + 1)
        hi = self._from_column(hi_mask, order, level + 1)
        return self.mk(level, lo, hi)


def bdd_synthesize_into(
    cache: GateCache,
    table: TruthTable,
    input_nets: Sequence[int],
    *,
    var_order: Sequence[int] | None = None,
) -> list[int]:
    """Lower the shared ROBDD forest of ``table`` to muxes over ``input_nets``.

    One mux per reachable internal node (modulo the cache's strength
    reduction), so the emitted gate count is bounded by the forest size.
    """
    if len(input_nets) != table.n_inputs:
        raise ValueError(
            f"expected {table.n_inputs} input nets, got {len(input_nets)}"
        )
    n = table.n_inputs
    order = list(var_order) if var_order is not None else list(reversed(range(n)))
    bdd, roots = BDD.from_truthtable(table, var_order=order)

    net_of: dict[int, int] = {ZERO: cache.zero, ONE: cache.one}

    def lower(u: int) -> int:
        hit = net_of.get(u)
        if hit is not None:
            return hit
        level, lo, hi = bdd.node(u)
        sel = input_nets[order[level]]
        net = cache.g_mux(sel, lower(lo), lower(hi))
        net_of[u] = net
        return net

    return [lower(r) for r in roots]
