"""Front door for combinational synthesis of S-boxes (and any truth table).

``synthesize_sbox`` turns a :class:`TruthTable` into a standalone, optimised
:class:`Circuit` with one input port ``x`` and one output port ``y``.
Cipher generators then stamp the result into their datapaths with
:meth:`CircuitBuilder.append_circuit`, so each distinct S-box is synthesised
once no matter how many instances the datapath needs.

Strategies
----------
``shannon``   recursive Shannon decomposition (default; best all-rounder)
``bdd``       shared-ROBDD lowering (identical sharing, useful as an oracle)
``twolevel``  Quine–McCluskey SOP (independent oracle; big but flat)
``auto``      synthesise with every engine and keep the smallest result
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.netlist.builder import CircuitBuilder
from repro.netlist.circuit import Circuit
from repro.netlist.simulator import Simulator
from repro.synth.bdd import bdd_synthesize_into
from repro.synth.gatecache import GateCache
from repro.synth.optimize import optimize
from repro.synth.shannon import shannon_synthesize_into
from repro.synth.truthtable import TruthTable
from repro.synth.twolevel import twolevel_synthesize_into

__all__ = ["STRATEGIES", "synthesize_sbox", "verify_sbox_circuit"]

STRATEGIES = ("shannon", "bdd", "twolevel", "auto")


def synthesize_sbox(
    table: TruthTable,
    *,
    strategy: str = "shannon",
    name: str = "sbox",
    var_order: Sequence[int] | None = None,
    optimize_result: bool = True,
) -> Circuit:
    """Synthesise ``table`` into a fresh circuit (ports ``x`` → ``y``).

    The returned circuit is verified exhaustively against the table before
    being handed back — a wrong netlist is a bug, not a degraded result, so
    this raises rather than warns.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; pick from {STRATEGIES}")
    if strategy == "auto":
        candidates = [
            synthesize_sbox(
                table,
                strategy=s,
                name=name,
                var_order=var_order,
                optimize_result=optimize_result,
            )
            for s in ("shannon", "bdd", "twolevel")
        ]
        from repro.tech.area import area_of

        return min(candidates, key=lambda c: area_of(c).total)

    builder = CircuitBuilder(name)
    inputs = builder.input("x", table.n_inputs)
    cache = GateCache(builder)
    if strategy == "shannon":
        outputs = shannon_synthesize_into(cache, table, inputs, var_order=var_order)
    elif strategy == "bdd":
        outputs = bdd_synthesize_into(cache, table, inputs, var_order=var_order)
    else:
        outputs = twolevel_synthesize_into(cache, table, inputs)
    builder.output("y", outputs)

    circuit = builder.circuit
    if optimize_result:
        circuit = optimize(circuit)
    verify_sbox_circuit(circuit, table)
    return circuit


def verify_sbox_circuit(circuit: Circuit, table: TruthTable) -> None:
    """Exhaustively check that ``circuit`` computes ``table`` (or raise).

    Uses the bit-parallel simulator with one lane per input pattern, so even
    the 9-input merged AES S-box (512 patterns) verifies in one pass.
    """
    n = table.n_inputs
    patterns = list(range(1 << n))
    sim = Simulator(circuit, batch=len(patterns))
    sim.set_input_ints("x", patterns)
    sim.eval_comb()
    got = sim.get_output_ints("y")
    for x, value in enumerate(got):
        if value != table(x):
            raise AssertionError(
                f"synthesised circuit wrong at x={x:#x}: got {value:#x}, "
                f"expected {table(x):#x}"
            )
