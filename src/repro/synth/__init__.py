"""Combinational logic synthesis: truth tables to technology-mapped gates.

The authors synthesised their designs with a commercial flow targeting the
Nangate 45nm PDK; this subpackage is our open substitute.  It offers three
synthesis engines with different area/effort trade-offs — recursive Shannon
decomposition with hash-consing, reduced ordered BDDs lowered to mux trees,
and a Quine–McCluskey two-level minimiser — plus netlist optimisation passes
(constant propagation, structural hashing, inverter-pair elimination, dead
gate removal) applied after every engine.

The front door for cipher work is :func:`repro.synth.sbox_synth.synthesize_sbox`.
"""

from repro.synth.bdd import BDD
from repro.synth.optimize import optimize
from repro.synth.sbox_synth import synthesize_sbox, verify_sbox_circuit
from repro.synth.truthtable import TruthTable

__all__ = ["BDD", "TruthTable", "optimize", "synthesize_sbox", "verify_sbox_circuit"]
