"""Hash-consed, folding gate construction.

All synthesis engines emit gates through a :class:`GateCache`, which gives
three structural optimisations for free at construction time:

- **constant folding** — operations on CONST0/CONST1 collapse;
- **structural hashing** — identical (type, inputs) gates are built once
  (inputs are sorted for commutative cells);
- **complement tracking** — each net remembers its known complement, so
  ``NOT(NOT a)`` vanishes and ``a ⊕ ā``-style identities fold, and muxes of
  complementary branches strength-reduce to XOR/XNOR cells.

The result is close to what a light technology-independent optimisation
pass would produce, without a separate rewrite step.
"""

from __future__ import annotations

from repro.netlist.builder import CircuitBuilder
from repro.netlist.gates import GateType

__all__ = ["GateCache"]

_COMMUTATIVE = {
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
}


class GateCache:
    """Wraps a :class:`CircuitBuilder` with hash-consing constructors."""

    def __init__(self, builder: CircuitBuilder, *, tag: str = "") -> None:
        self.builder = builder
        self.tag = tag
        self._cache: dict[tuple, int] = {}
        self._compl: dict[int, int] = {}

    # ------------------------------------------------------------ plumbing

    @property
    def zero(self) -> int:
        return self.builder.circuit.const(0)

    @property
    def one(self) -> int:
        return self.builder.circuit.const(1)

    def _is0(self, net: int) -> bool:
        return net == self.builder.circuit._const_net.get(GateType.CONST0)

    def _is1(self, net: int) -> bool:
        return net == self.builder.circuit._const_net.get(GateType.CONST1)

    def complement_of(self, net: int) -> int | None:
        """The known complement net of ``net``, if one has been built."""
        if self._is0(net):
            return self.one
        if self._is1(net):
            return self.zero
        return self._compl.get(net)

    def note_complements(self, a: int, b: int) -> None:
        """Record that nets ``a`` and ``b`` always carry opposite values."""
        self._compl.setdefault(a, b)
        self._compl.setdefault(b, a)

    def _emit(self, gtype: GateType, *ins: int) -> int:
        key_ins = tuple(sorted(ins)) if gtype in _COMMUTATIVE else tuple(ins)
        key = (gtype, key_ins)
        net = self._cache.get(key)
        if net is None:
            net = self.builder.gate(gtype, *ins, tag=self.tag)
            self._cache[key] = net
        return net

    # ------------------------------------------------------------ operators

    def g_not(self, a: int) -> int:
        if self._is0(a):
            return self.one
        if self._is1(a):
            return self.zero
        known = self._compl.get(a)
        if known is not None:
            return known
        net = self._emit(GateType.NOT, a)
        self.note_complements(a, net)
        return net

    def g_and(self, a: int, b: int) -> int:
        if a == b:
            return a
        if self._is0(a) or self._is0(b):
            return self.zero
        if self._is1(a):
            return b
        if self._is1(b):
            return a
        if self._compl.get(a) == b:
            return self.zero
        return self._emit(GateType.AND, a, b)

    def g_or(self, a: int, b: int) -> int:
        if a == b:
            return a
        if self._is1(a) or self._is1(b):
            return self.one
        if self._is0(a):
            return b
        if self._is0(b):
            return a
        if self._compl.get(a) == b:
            return self.one
        return self._emit(GateType.OR, a, b)

    def g_nand(self, a: int, b: int) -> int:
        return self.g_not(self.g_and(a, b))

    def g_nor(self, a: int, b: int) -> int:
        return self.g_not(self.g_or(a, b))

    def g_xor(self, a: int, b: int) -> int:
        if a == b:
            return self.zero
        if self._is0(a):
            return b
        if self._is0(b):
            return a
        if self._is1(a):
            return self.g_not(b)
        if self._is1(b):
            return self.g_not(a)
        if self._compl.get(a) == b:
            return self.one
        net = self._emit(GateType.XOR, a, b)
        xnor = self._cache.get((GateType.XNOR, tuple(sorted((a, b)))))
        if xnor is not None:
            self.note_complements(net, xnor)
        return net

    def g_xnor(self, a: int, b: int) -> int:
        if a == b:
            return self.one
        if self._is1(a):
            return b
        if self._is1(b):
            return a
        if self._is0(a):
            return self.g_not(b)
        if self._is0(b):
            return self.g_not(a)
        if self._compl.get(a) == b:
            return self.zero
        net = self._emit(GateType.XNOR, a, b)
        xor = self._cache.get((GateType.XOR, tuple(sorted((a, b)))))
        if xor is not None:
            self.note_complements(net, xor)
        return net

    def g_mux(self, sel: int, d0: int, d1: int) -> int:
        """``d1 if sel else d0`` with strength reduction."""
        if self._is0(sel):
            return d0
        if self._is1(sel):
            return d1
        if d0 == d1:
            return d0
        if self._is0(d0):
            return self.g_and(sel, d1)
        if self._is1(d0):
            return self.g_or(self.g_not(sel), d1)
        if self._is0(d1):
            return self.g_and(self.g_not(sel), d0)
        if self._is1(d1):
            return self.g_or(sel, d0)
        if self._compl.get(d0) == d1:
            # sel ? d1 : NOT d1  ==  XNOR(sel, d1)
            return self.g_xnor(sel, d1)
        if d0 == sel:
            return self.g_and(sel, d1)
        if d1 == sel:
            return self.g_or(sel, d0)
        if self._compl.get(sel) == d0:
            # sel ? d1 : NOT sel == (sel AND d1) OR (NOT sel) == NOT sel OR d1
            return self.g_or(self.g_not(sel), d1)
        if self._compl.get(sel) == d1:
            # sel ? NOT sel : d0 == NOT sel AND d0
            return self.g_and(self.g_not(sel), d0)
        return self._emit(GateType.MUX, sel, d0, d1)
