"""Two-level (SOP) synthesis: Quine–McCluskey + cover selection.

Classic flow: enumerate prime implicants of each output column, select a
cover (exact Petrick's method for small problems, greedy set-cover above a
threshold), then emit a shared AND/OR network.  Product terms are built
through the :class:`~repro.synth.gatecache.GateCache`, so cubes shared
between outputs — ubiquitous in S-boxes — cost their gates once.

Two-level synthesis is rarely the area winner for S-boxes, but it is an
independent oracle: every engine must agree with every other on every input
pattern, which the property tests exploit.
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import combinations

from repro.synth.gatecache import GateCache
from repro.synth.truthtable import TruthTable

__all__ = ["Cube", "prime_implicants", "select_cover", "twolevel_synthesize_into"]


class Cube:
    """A product term over ``n`` variables: (care-mask, value-mask).

    Variable ``i`` appears in the product iff bit ``i`` of ``care`` is set;
    it appears complemented when bit ``i`` of ``value`` is 0.
    """

    __slots__ = ("care", "value")

    def __init__(self, care: int, value: int) -> None:
        if value & ~care:
            raise ValueError("value bits outside care mask")
        self.care = care
        self.value = value

    def covers(self, minterm: int) -> bool:
        return (minterm & self.care) == self.value

    def literals(self, n: int) -> list[tuple[int, bool]]:
        """(variable, positive?) pairs of this product term."""
        return [
            (i, bool((self.value >> i) & 1))
            for i in range(n)
            if (self.care >> i) & 1
        ]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cube):
            return NotImplemented
        return self.care == other.care and self.value == other.value

    def __hash__(self) -> int:
        return hash((self.care, self.value))

    def __repr__(self) -> str:
        return f"Cube(care={self.care:#x}, value={self.value:#x})"


def prime_implicants(n: int, minterms: Sequence[int]) -> list[Cube]:
    """All prime implicants of the on-set ``minterms`` (no don't-cares).

    Standard Quine–McCluskey merging: cubes differing in exactly one cared
    literal combine; cubes that never combine are prime.
    """
    minterms = sorted(set(minterms))
    if not minterms:
        return []
    full_care = (1 << n) - 1
    current: set[tuple[int, int]] = {(full_care, m) for m in minterms}
    primes: set[tuple[int, int]] = set()

    while current:
        merged: set[tuple[int, int]] = set()
        used: set[tuple[int, int]] = set()
        by_care: dict[int, list[tuple[int, int]]] = {}
        for cube in current:
            by_care.setdefault(cube[0], []).append(cube)
        for care, group in by_care.items():
            # group by value with one cared bit cleared: two cubes merge iff
            # same care mask and values differ in exactly one cared bit.
            seen: dict[int, list[int]] = {}
            for _, value in group:
                seen.setdefault(value, [])
            values = sorted(seen)
            value_set = set(values)
            for value in values:
                for i in range(n):
                    bit = 1 << i
                    if not (care & bit) or (value & bit):
                        continue
                    partner = value | bit
                    if partner in value_set:
                        merged.add((care & ~bit, value))
                        used.add((care, value))
                        used.add((care, partner))
        primes.update(current - used)
        current = merged
    return [Cube(c, v) for c, v in sorted(primes)]


def select_cover(
    n: int,
    minterms: Sequence[int],
    primes: Sequence[Cube],
    *,
    exact_limit: int = 14,
) -> list[Cube]:
    """Choose a set of primes covering all minterms.

    Essential primes are taken first.  The residual covering problem is
    solved exactly by Petrick's method when small (≤ ``exact_limit``
    residual minterms), otherwise by greedy largest-cover-first — adequate
    for S-box-sized problems and never incorrect, only possibly non-minimal.
    """
    minterms = sorted(set(minterms))
    if not minterms:
        return []
    cover_map = {m: [c for c in primes if c.covers(m)] for m in minterms}
    for m, covering in cover_map.items():
        if not covering:
            raise ValueError(f"minterm {m} not covered by any prime implicant")

    chosen: list[Cube] = []
    covered: set[int] = set()
    for m, covering in cover_map.items():
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
    for cube in chosen:
        covered.update(m for m in minterms if cube.covers(m))

    remaining = [m for m in minterms if m not in covered]
    if not remaining:
        return chosen
    n_candidates = len({c for m in remaining for c in cover_map[m]})
    if len(remaining) <= exact_limit and n_candidates <= 16:
        chosen.extend(_petrick(remaining, cover_map))
    else:
        chosen.extend(_greedy(remaining, primes))
    return chosen


def _petrick(remaining: Sequence[int], cover_map: dict[int, list[Cube]]) -> list[Cube]:
    """Exact minimum cover of the residual minterms (Petrick's method)."""
    candidates: list[Cube] = []
    for m in remaining:
        for cube in cover_map[m]:
            if cube not in candidates:
                candidates.append(cube)
    for size in range(1, len(candidates) + 1):
        best: list[Cube] | None = None
        for subset in combinations(candidates, size):
            if all(any(c.covers(m) for c in subset) for m in remaining):
                best = list(subset)
                break
        if best is not None:
            return best
    raise AssertionError("residual cover must exist")  # pragma: no cover


def _greedy(remaining: Sequence[int], primes: Sequence[Cube]) -> list[Cube]:
    """Largest-gain-first greedy cover for big residual problems."""
    todo = set(remaining)
    out: list[Cube] = []
    while todo:
        best = max(primes, key=lambda c: sum(1 for m in todo if c.covers(m)))
        gained = {m for m in todo if best.covers(m)}
        if not gained:
            raise AssertionError("no prime covers residual minterms")
        out.append(best)
        todo -= gained
    return out


def twolevel_synthesize_into(
    cache: GateCache,
    table: TruthTable,
    input_nets: Sequence[int],
) -> list[int]:
    """Emit a minimised SOP network for ``table``; returns output nets.

    Each output with more ones than zeros is synthesised complemented (SOP
    of the off-set plus a final inverter) — the classic phase-assignment
    trick that roughly halves average cube count on random functions.
    """
    if len(input_nets) != table.n_inputs:
        raise ValueError(
            f"expected {table.n_inputs} input nets, got {len(input_nets)}"
        )
    n = table.n_inputs
    size = 1 << n
    outputs: list[int] = []
    for j in range(table.n_outputs):
        ones = table.minterms(j)
        invert = len(ones) > size // 2
        target = [x for x in range(size) if x not in set(ones)] if invert else ones
        if not target:
            net = cache.zero if not invert else cache.one
            outputs.append(net)
            continue
        primes = prime_implicants(n, target)
        cover = select_cover(n, target, primes)
        terms = [_emit_cube(cache, cube, input_nets, n) for cube in cover]
        net = terms[0]
        for term in terms[1:]:
            net = cache.g_or(net, term)
        outputs.append(cache.g_not(net) if invert else net)
    return outputs


def _emit_cube(cache: GateCache, cube: Cube, input_nets: Sequence[int], n: int) -> int:
    literals = [
        input_nets[i] if positive else cache.g_not(input_nets[i])
        for i, positive in cube.literals(n)
    ]
    if not literals:
        return cache.one
    net = literals[0]
    for lit in literals[1:]:
        net = cache.g_and(net, lit)
    return net
