"""Post-synthesis netlist optimisation passes.

These operate on whole circuits (the construction-time folding in
:class:`~repro.synth.gatecache.GateCache` only sees gates it built itself).
The pass pipeline is deliberately conservative — semantics-preserving
rewrites only:

- ``fold_constants``   — evaluate gates with constant inputs, simplify
  identities (``x ^ x``, ``x & x``, mux with equal branches, …);
- ``dedupe``           — structural hashing across the whole netlist;
- ``strip_buffers``    — forward BUF and double-NOT chains;
- ``dead_code``        — drop logic that cannot reach an output or a
  register that (transitively) feeds an output.

:func:`optimize` iterates the pipeline to a fixpoint.  Ports, flip-flops
and gate tags survive all passes; only the combinational structure changes.
"""

from __future__ import annotations

from repro.netlist.circuit import Circuit
from repro.netlist.gates import Gate, GateType

__all__ = ["optimize", "dead_code", "rebuild"]


def optimize(circuit: Circuit, *, max_rounds: int = 8) -> Circuit:
    """Run the full pass pipeline to a fixpoint (bounded by ``max_rounds``)."""
    current = circuit
    for _ in range(max_rounds):
        before = len(current.gates)
        current = rebuild(current)
        current = dead_code(current)
        if len(current.gates) >= before:
            break
    return current


def rebuild(circuit: Circuit) -> Circuit:
    """One combined folding + hashing + buffer-forwarding sweep.

    Produces a fresh circuit; nets are renumbered.  Gates are visited in
    dependency order so every input is already simplified when a gate is
    reconsidered, making a single sweep equivalent to iterate-to-local-
    fixpoint of the classic rules.
    """
    out = Circuit(circuit.name)
    subst: dict[int, int] = {}  # old net -> new net
    cache: dict[tuple, int] = {}
    compl: dict[int, int] = {}
    const_val: dict[int, int] = {}  # new net -> 0/1 when known constant

    def is_const(net: int) -> int | None:
        return const_val.get(net)

    def mk_const(value: int) -> int:
        net = out.const(value)
        const_val[net] = value
        return net

    def mk_not(a: int) -> int:
        known = is_const(a)
        if known is not None:
            return mk_const(known ^ 1)
        if a in compl:
            return compl[a]
        net = _emit(GateType.NOT, (a,), "")
        compl[a] = net
        compl[net] = a
        return net

    def _emit(gtype: GateType, ins: tuple[int, ...], tag: str) -> int:
        key_ins = tuple(sorted(ins)) if gtype in _COMM else ins
        key = (gtype, key_ins)
        hit = cache.get(key)
        if hit is not None:
            return hit
        net = out.add_gate(gtype, ins, tag=tag)
        cache[key] = net
        return net

    def fold(gate: Gate, ins: tuple[int, ...]) -> int:
        g = gate.gtype
        consts = [is_const(n) for n in ins]
        if all(c is not None for c in consts):
            return mk_const(g.eval(*consts))  # type: ignore[arg-type]
        if g is GateType.BUF:
            return ins[0]
        if g is GateType.NOT:
            return mk_not(ins[0])
        if g in (GateType.AND, GateType.NAND):
            a, b = ins
            ca, cb = consts
            if a == b:
                base = a
            elif ca == 0 or cb == 0 or compl.get(a) == b:
                base = mk_const(0)
            elif ca == 1:
                base = b
            elif cb == 1:
                base = a
            else:
                base = _emit(GateType.AND, ins, gate.tag)
            return mk_not(base) if g is GateType.NAND else base
        if g in (GateType.OR, GateType.NOR):
            a, b = ins
            ca, cb = consts
            if a == b:
                base = a
            elif ca == 1 or cb == 1 or compl.get(a) == b:
                base = mk_const(1)
            elif ca == 0:
                base = b
            elif cb == 0:
                base = a
            else:
                base = _emit(GateType.OR, ins, gate.tag)
            return mk_not(base) if g is GateType.NOR else base
        if g in (GateType.XOR, GateType.XNOR):
            a, b = ins
            ca, cb = consts
            if a == b:
                base = mk_const(0)
            elif compl.get(a) == b:
                base = mk_const(1)
            elif ca == 0:
                base = b
            elif cb == 0:
                base = a
            elif ca == 1:
                base = mk_not(b)
            elif cb == 1:
                base = mk_not(a)
            else:
                base = _emit(GateType.XOR, ins, gate.tag)
            return mk_not(base) if g is GateType.XNOR else base
        if g is GateType.MUX:
            sel, d0, d1 = ins
            cs = consts[0]
            if cs == 0:
                return d0
            if cs == 1:
                return d1
            if d0 == d1:
                return d0
            if is_const(d0) == 0 and is_const(d1) == 1:
                return sel
            if is_const(d0) == 1 and is_const(d1) == 0:
                return mk_not(sel)
            if is_const(d0) == 0:
                return _emit(GateType.AND, (sel, d1), gate.tag)
            if is_const(d1) == 0:
                return _emit(GateType.AND, (mk_not(sel), d0), gate.tag)
            if is_const(d0) == 1:
                return _emit(GateType.OR, (mk_not(sel), d1), gate.tag)
            if is_const(d1) == 1:
                return _emit(GateType.OR, (sel, d0), gate.tag)
            if compl.get(d0) == d1:
                return _emit(GateType.XNOR, (sel, d1), gate.tag)
            return _emit(GateType.MUX, ins, gate.tag)
        raise AssertionError(f"unhandled gate type {g}")  # pragma: no cover

    # Sources first (including DFF outputs), then combinational in topo
    # order, then register the DFFs with their (now simplified) D inputs.
    dff_new_q: dict[int, int] = {}
    for gate in circuit.gates:
        if gate.gtype is GateType.INPUT:
            subst[gate.out] = out.new_net()
        elif gate.gtype is GateType.CONST0:
            subst[gate.out] = mk_const(0)
        elif gate.gtype is GateType.CONST1:
            subst[gate.out] = mk_const(1)
        elif gate.gtype is GateType.DFF:
            q = out.new_net()
            subst[gate.out] = q
            dff_new_q[gate.out] = q

    # Re-register INPUT gates & ports with the pre-allocated nets.
    for name, nets in circuit.inputs.items():
        new_nets = []
        for i, old in enumerate(nets):
            net = subst[old]
            out.add_gate(GateType.INPUT, out=net, tag=f"{name}[{i}]")
            new_nets.append(net)
        out.inputs[name] = new_nets

    for gate in circuit.topo_order():
        ins = tuple(subst[n] for n in gate.ins)
        subst[gate.out] = fold(gate, ins)

    for gate in circuit.dffs():
        d = subst[gate.ins[0]]
        out.add_gate(
            GateType.DFF,
            (d,),
            out=dff_new_q[gate.out],
            init=gate.init,
            tag=gate.tag,
        )

    for name, nets in circuit.outputs.items():
        out.set_output(name, [subst[n] for n in nets])
    out.validate()
    return out


_COMM = {GateType.AND, GateType.OR, GateType.XOR, GateType.XNOR}


def dead_code(circuit: Circuit) -> Circuit:
    """Remove gates that cannot influence any output.

    Reachability runs backwards from output ports, crossing registers:
    a DFF is live iff its Q net is read by live logic.  Primary inputs are
    always kept (ports are part of the interface even when unused).
    """
    drivers = {g.out: g for g in circuit.gates}
    live: set[int] = set()
    work = [n for nets in circuit.outputs.values() for n in nets]
    while work:
        net = work.pop()
        if net in live:
            continue
        live.add(net)
        gate = drivers.get(net)
        if gate is not None:
            work.extend(gate.ins)

    out = Circuit(circuit.name)
    subst: dict[int, int] = {}

    def map_net(old: int) -> int:
        if old not in subst:
            subst[old] = out.new_net()
        return subst[old]

    # keep port order and all input bits (interface stability)
    for name, nets in circuit.inputs.items():
        new_nets = []
        for i, old in enumerate(nets):
            net = map_net(old)
            out.add_gate(GateType.INPUT, out=net, tag=f"{name}[{i}]")
            new_nets.append(net)
        out.inputs[name] = new_nets

    # pre-allocate DFF outputs so feedback resolves
    for gate in circuit.dffs():
        if gate.out in live:
            map_net(gate.out)

    for gate in circuit.gates:
        if gate.gtype is GateType.INPUT or gate.out not in live:
            continue
        if gate.gtype is GateType.CONST0:
            subst[gate.out] = out.const(0)
        elif gate.gtype is GateType.CONST1:
            subst[gate.out] = out.const(1)

    for gate in circuit.topo_order():
        if gate.out not in live:
            continue
        ins = tuple(subst[n] for n in gate.ins)
        out.add_gate(gate.gtype, ins, out=map_net(gate.out), tag=gate.tag)

    for gate in circuit.dffs():
        if gate.out not in live:
            continue
        out.add_gate(
            GateType.DFF,
            (subst[gate.ins[0]],),
            out=subst[gate.out],
            init=gate.init,
            tag=gate.tag,
        )

    for name, nets in circuit.outputs.items():
        out.set_output(name, [subst[n] for n in nets])
    out.validate()
    return out
