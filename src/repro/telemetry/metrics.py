"""Counters, gauges and histograms with mergeable snapshots.

The registry is process-local and always functional — recording a counter
is a dict lookup and an integer add, cheap enough to leave unguarded at
shard/campaign granularity.  The one genuinely hot site, the levelized
simulation kernel's per-(level, opcode) group loop, is additionally gated
behind :data:`KERNEL_TIMINGS` so the disabled default adds a single
boolean check per ``run()`` call (see
:class:`repro.netlist.levelized.LevelizedKernel`).

Cross-process aggregation: a worker calls :meth:`MetricsRegistry.reset`
before its shard, :meth:`MetricsRegistry.snapshot` after, and ships the
snapshot home with the shard arrays; the supervisor calls
:meth:`MetricsRegistry.merge` — counters add, gauges last-write-wins,
histograms combine their (count, total, min, max) moments.
"""

from __future__ import annotations

import os
import re
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "KERNEL_TIMINGS",
    "MetricsRegistry",
    "enable_kernel_timings",
    "kernel_timings_enabled",
    "metrics",
    "render_prometheus",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-written value (e.g. ``runs_per_second``)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming moments of an observed quantity: count/total/min/max.

    Fixed memory per histogram — safe for per-(level, opcode) kernel
    timings where a reservoir would balloon.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": round(self.total, 9),
            "min": round(self.min, 9) if self.count else None,
            "max": round(self.max, 9) if self.count else None,
        }

    def merge(self, doc: dict) -> None:
        if not doc.get("count"):
            return
        self.count += int(doc["count"])
        self.total += float(doc["total"])
        self.min = min(self.min, float(doc["min"]))
        self.max = max(self.max, float(doc["max"]))


class MetricsRegistry:
    """Named metrics for one process (see module docstring)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -------------------------------------------------------------- access

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter())
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge())
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(name, Histogram())
        return h

    # convenience one-liners for call sites
    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # --------------------------------------------------- snapshot/merge

    def snapshot(self) -> dict:
        """A JSON-safe copy of everything recorded so far."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in sorted(self._counters.items())},
                "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
                "histograms": {
                    k: h.to_dict() for k, h in sorted(self._histograms.items())
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's snapshot into this one."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, doc in snapshot.get("histograms", {}).items():
            self.histogram(name).merge(doc)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    name = _PROM_BAD.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _prom_value(value) -> str:
    if value is None:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text.

    Exposition format version 0.0.4: counters get a ``_total`` suffix,
    histograms expose their streaming moments as ``_count`` / ``_sum`` /
    ``_min`` / ``_max`` (fixed-memory histograms carry no buckets, so
    the moments are exported as a summary-style family).
    """
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        prom = _prom_name(name)
        if not prom.endswith("_total"):
            prom += "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, doc in snapshot.get("histograms", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        lines.append(f"{prom}_count {_prom_value(doc.get('count', 0))}")
        lines.append(f"{prom}_sum {_prom_value(doc.get('total', 0.0))}")
        lines.append(f"{prom}_min {_prom_value(doc.get('min'))}")
        lines.append(f"{prom}_max {_prom_value(doc.get('max'))}")
    return "\n".join(lines) + "\n" if lines else "\n"


#: the process-wide registry
metrics = MetricsRegistry()

#: per-(level, opcode) kernel timing switch; read once per kernel ``run()``
#: call, so the disabled default costs one module-attribute load + branch.
KERNEL_TIMINGS = os.environ.get("REPRO_KERNEL_METRICS", "") not in ("", "0")


def kernel_timings_enabled() -> bool:
    return KERNEL_TIMINGS


def enable_kernel_timings(on: bool = True) -> None:
    """Turn the per-(level, opcode) kernel timing histograms on or off."""
    global KERNEL_TIMINGS
    KERNEL_TIMINGS = bool(on)
