"""The run manifest: an environment fingerprint for every artefact.

Exhaustive sweeps are only auditable if the artefact records *what
produced it*.  :func:`run_manifest` captures the interpreter, numpy, the
platform, the git revision of the working tree, and whatever
workload-specific fields the caller passes (backend, jobs, seed, ...).
It is attached to campaign checkpoints
(:class:`repro.faults.checkpoint.CheckpointStore` manifests, outside the
identity that resume compares), to certificates (under the volatile
``timing`` key, preserving the byte-identical-modulo-timing contract),
to every ``benchmarks/out/BENCH_*.json``, and to the head of every
telemetry trace.
"""

from __future__ import annotations

import functools
import os
import platform
import subprocess
import time

__all__ = ["MANIFEST_SCHEMA_VERSION", "cpu_model", "git_revision", "run_manifest"]

MANIFEST_SCHEMA_VERSION = 1


@functools.lru_cache(maxsize=1)
def cpu_model() -> str | None:
    """Human-readable CPU model, or None when undiscoverable.

    ``platform.processor()`` is empty on most Linux builds, so fall back
    to the first ``model name`` line of ``/proc/cpuinfo`` — bench-history
    series are only comparable when the host silicon is recorded.
    """
    name = platform.processor()
    if name:
        return name
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    _, _, value = line.partition(":")
                    value = value.strip()
                    if value:
                        return value
    except OSError:
        pass
    return None


@functools.lru_cache(maxsize=1)
def git_revision() -> str | None:
    """HEAD of the repository containing this package, or None outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def run_manifest(**extra) -> dict:
    """Environment fingerprint plus caller-supplied workload fields.

    Keyword arguments (``backend=``, ``jobs=``, ``seed=``, ...) are
    merged into the document; a caller key wins over a base key.
    """
    import numpy as np

    doc = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "hostname": platform.node(),
        "cpu": cpu_model(),
        "pid": os.getpid(),
        "git_rev": git_revision(),
    }
    doc.update(extra)
    return doc
