"""Live progress for sharded sweeps: throughput, ETA, one status line.

The tracker counts *units* (campaign runs, certify locations) as shards
complete.  Each update is mirrored three ways:

- a ``progress`` trace event (when the tracer is enabled) carrying
  ``done``/``total``/``rate``/``eta_s`` — this is what the acceptance
  trace and ``repro stats`` consume;
- the module-level *live board*: when the tracker's thread carries a
  bound ``request_id`` (:meth:`Tracer.bind`), the latest snapshot is
  published under that id so the service's ``GET /status`` can report
  shard-level progress and ETA for in-flight requests — independent of
  whether tracing is enabled;
- a status line on the attached stream.  Two render modes: *live*
  (carriage-return repaints, throttled to one per ``min_interval``
  seconds) on interactive TTYs, and *plain* (a single summary line at
  :meth:`ProgressTracker.finish`) everywhere else, so CI logs are never
  flooded with ``\\r`` frames.  ``REPRO_PROGRESS=0`` silences rendering
  entirely; any other value forces it on (still plain off-TTY); the
  ``NO_COLOR`` convention (https://no-color.org) downgrades a TTY to
  plain mode.
"""

from __future__ import annotations

import os
import sys
import threading
import time

from repro.telemetry.trace import trace

__all__ = [
    "ProgressTracker",
    "clear_live",
    "eta_seconds",
    "live_progress",
    "publish_live",
]


def eta_seconds(done: float, total: float, elapsed: float) -> float | None:
    """Remaining seconds at the observed average rate (None when unknowable)."""
    if done <= 0 or total <= 0 or elapsed < 0 or done >= total:
        return 0.0 if 0 < total <= done else None
    return elapsed * (total - done) / done


def _render_mode(stream) -> tuple[bool, bool]:
    """Resolve ``(render, live)`` from env + stream.

    ``render`` is whether any status output happens at all; ``live`` is
    whether it repaints in place with carriage returns.  Live requires a
    real TTY *and* no ``NO_COLOR`` — ``REPRO_PROGRESS=1`` can force
    rendering on, but never forces CR repaints onto a pipe.
    """
    isatty = getattr(stream, "isatty", None)
    tty = bool(isatty and isatty())
    live_ok = tty and not os.environ.get("NO_COLOR")
    env = os.environ.get("REPRO_PROGRESS", "")
    if env == "0":
        return False, False
    if env:
        return True, live_ok
    return tty, live_ok


# --------------------------------------------------------------- live board

_live_lock = threading.Lock()
_live: dict[str, dict] = {}


def publish_live(request_id: str, snap: dict) -> None:
    """Publish the latest progress snapshot for a request id."""
    with _live_lock:
        _live[request_id] = snap


def live_progress(request_id: str | None = None):
    """Current snapshot for one request id, or a copy of the whole board."""
    with _live_lock:
        if request_id is not None:
            return _live.get(request_id)
        return dict(_live)


def clear_live(request_id: str) -> None:
    """Drop a finished request from the board."""
    with _live_lock:
        _live.pop(request_id, None)


class ProgressTracker:
    """Accumulates completed units and renders/emits progress updates."""

    def __init__(
        self,
        total_units: int,
        *,
        label: str = "progress",
        total_items: int | None = None,
        unit: str = "runs",
        stream=None,
        enabled: bool | None = None,
        min_interval: float = 0.2,
    ) -> None:
        self.total_units = int(total_units)
        self.total_items = total_items
        self.label = label
        self.unit = unit
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            self.render, self.live = _render_mode(self.stream)
        else:
            # explicit override: legacy behaviour, both modes follow it
            self.render = self.live = bool(enabled)
        self.min_interval = min_interval
        self.done_units = 0
        self.done_items = 0
        self._t0 = time.perf_counter()
        self._last_paint = 0.0
        self._painted = False
        self._last_snap: dict | None = None
        self._live_key = trace.context().get("request_id")

    # ------------------------------------------------------------- updates

    def advance(self, units: int, *, items: int = 1, **attrs) -> dict:
        """Record ``units`` more finished work; emit event + status line.

        Returns the progress snapshot (done/total/rate/eta_s) so callers
        can reuse the math (e.g. for their own log lines).
        """
        self.done_units += int(units)
        self.done_items += items
        elapsed = time.perf_counter() - self._t0
        rate = self.done_units / elapsed if elapsed > 0 else 0.0
        eta = eta_seconds(self.done_units, self.total_units, elapsed)
        snap = {
            "label": self.label,
            "done": self.done_units,
            "total": self.total_units,
            "items_done": self.done_items,
            "items_total": self.total_items,
            "elapsed_s": round(elapsed, 3),
            "rate": round(rate, 3),
            "eta_s": round(eta, 3) if eta is not None else None,
        }
        self._last_snap = snap
        trace.event("progress", **snap, **attrs)
        if self._live_key is not None:
            publish_live(self._live_key, snap)
        if self.render and self.live:
            now = time.perf_counter()
            final = self.done_units >= self.total_units
            if final or now - self._last_paint >= self.min_interval:
                self._last_paint = now
                self._paint(snap)
        return snap

    def _format(self, snap: dict) -> str:
        pct = (
            100.0 * snap["done"] / snap["total"] if snap["total"] else 100.0
        )
        items = (
            f" ({snap['items_done']}/{snap['items_total']} shards)"
            if snap["items_total"] is not None
            else ""
        )
        eta = f" eta {snap['eta_s']:.0f}s" if snap["eta_s"] else ""
        return (
            f"{self.label}: {snap['done']}/{snap['total']} {self.unit}"
            f" {pct:5.1f}%{items} {snap['rate']:,.0f} {self.unit}/s{eta}"
        )

    def _paint(self, snap: dict) -> None:
        self.stream.write(("\r" + self._format(snap)).ljust(79)[:120])
        self.stream.flush()
        self._painted = True

    def finish(self) -> None:
        """Terminate the status line; plain mode emits its one summary here."""
        if self._live_key is not None:
            clear_live(self._live_key)
        if self._painted:
            self.stream.write("\n")
            self.stream.flush()
            self._painted = False
        elif self.render and not self.live and self._last_snap is not None:
            self.stream.write(self._format(self._last_snap) + "\n")
            self.stream.flush()
