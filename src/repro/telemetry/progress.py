"""Live progress for sharded sweeps: throughput, ETA, one status line.

The tracker counts *units* (campaign runs, certify locations) as shards
complete.  Each update is mirrored two ways:

- a ``progress`` trace event (when the tracer is enabled) carrying
  ``done``/``total``/``rate``/``eta_s`` — this is what the acceptance
  trace and ``repro stats`` consume;
- a single carriage-return status line on the attached stream, only when
  that stream is a TTY (or ``REPRO_PROGRESS=1`` forces it); set
  ``REPRO_PROGRESS=0`` to silence rendering entirely.  Rendering is
  throttled to one repaint per ``min_interval`` seconds so tight shard
  loops don't spend their time painting.
"""

from __future__ import annotations

import os
import sys
import time

from repro.telemetry.trace import trace

__all__ = ["ProgressTracker", "eta_seconds"]


def eta_seconds(done: float, total: float, elapsed: float) -> float | None:
    """Remaining seconds at the observed average rate (None when unknowable)."""
    if done <= 0 or total <= 0 or elapsed < 0 or done >= total:
        return 0.0 if 0 < total <= done else None
    return elapsed * (total - done) / done


def _render_enabled(stream) -> bool:
    env = os.environ.get("REPRO_PROGRESS", "")
    if env == "0":
        return False
    if env and env != "0":
        return True
    isatty = getattr(stream, "isatty", None)
    return bool(isatty and isatty())


class ProgressTracker:
    """Accumulates completed units and renders/emits progress updates."""

    def __init__(
        self,
        total_units: int,
        *,
        label: str = "progress",
        total_items: int | None = None,
        unit: str = "runs",
        stream=None,
        enabled: bool | None = None,
        min_interval: float = 0.2,
    ) -> None:
        self.total_units = int(total_units)
        self.total_items = total_items
        self.label = label
        self.unit = unit
        self.stream = stream if stream is not None else sys.stderr
        self.render = (
            enabled if enabled is not None else _render_enabled(self.stream)
        )
        self.min_interval = min_interval
        self.done_units = 0
        self.done_items = 0
        self._t0 = time.perf_counter()
        self._last_paint = 0.0
        self._painted = False

    # ------------------------------------------------------------- updates

    def advance(self, units: int, *, items: int = 1, **attrs) -> dict:
        """Record ``units`` more finished work; emit event + status line.

        Returns the progress snapshot (done/total/rate/eta_s) so callers
        can reuse the math (e.g. for their own log lines).
        """
        self.done_units += int(units)
        self.done_items += items
        elapsed = time.perf_counter() - self._t0
        rate = self.done_units / elapsed if elapsed > 0 else 0.0
        eta = eta_seconds(self.done_units, self.total_units, elapsed)
        snap = {
            "label": self.label,
            "done": self.done_units,
            "total": self.total_units,
            "items_done": self.done_items,
            "items_total": self.total_items,
            "elapsed_s": round(elapsed, 3),
            "rate": round(rate, 3),
            "eta_s": round(eta, 3) if eta is not None else None,
        }
        trace.event("progress", **snap, **attrs)
        if self.render:
            now = time.perf_counter()
            final = self.done_units >= self.total_units
            if final or now - self._last_paint >= self.min_interval:
                self._last_paint = now
                self._paint(snap)
        return snap

    def _paint(self, snap: dict) -> None:
        pct = (
            100.0 * snap["done"] / snap["total"] if snap["total"] else 100.0
        )
        items = (
            f" ({snap['items_done']}/{snap['items_total']} shards)"
            if snap["items_total"] is not None
            else ""
        )
        eta = f" eta {snap['eta_s']:.0f}s" if snap["eta_s"] else ""
        line = (
            f"\r{self.label}: {snap['done']}/{snap['total']} {self.unit}"
            f" {pct:5.1f}%{items} {snap['rate']:,.0f} {self.unit}/s{eta}"
        )
        self.stream.write(line.ljust(79)[:120])
        self.stream.flush()
        self._painted = True

    def finish(self) -> None:
        """Terminate the status line (newline) if anything was painted."""
        if self._painted:
            self.stream.write("\n")
            self.stream.flush()
            self._painted = False
