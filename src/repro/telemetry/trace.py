"""Span-based tracing with a JSONL sink.

One :class:`Tracer` instance (:data:`trace`) serves the whole process.
It starts *disabled*: ``trace.span(...)`` hands back a shared no-op
context manager and ``trace.event(...)`` returns immediately, so
instrumented code paths cost one attribute load and one branch — nothing
else.  Enabling is explicit (``trace.configure(path)``, typically from
the CLI's ``--trace FILE`` flag).

Record shapes (one JSON object per line, in completion order):

``{"type": "manifest", ...}``
    The run manifest (environment fingerprint), written once at
    configure time.

``{"type": "span", "name", "pid", "span_id", "parent_id", "t",
"dur_s", "attrs"?, "error"?}``
    One finished span.  ``parent_id`` is the enclosing span's id (``None``
    at top level), so nesting reconstructs into a tree; ``t`` is wall-clock
    epoch seconds at entry, ``dur_s`` a monotonic-clock duration.

``{"type": "event", "name", "pid", "parent_id", "t", "attrs"}``
    A one-shot occurrence: shard retries/failures, progress ticks, ...

``{"type": "metrics", "metrics": {...}}``
    A registry snapshot, written by :meth:`Tracer.close`.

Worker processes never hold the sink file.  They record into an
in-memory buffer (:meth:`Tracer.capture`) and ship the records back with
their shard results; the supervisor writes them with
:meth:`Tracer.ingest`, so a multi-process run still yields one coherent
trace file.

Request correlation.  :meth:`Tracer.bind` attaches correlation fields
(``request_id=...``) to the *current thread*; every record written while
the binding is active carries them top-level (``record["request_id"]``),
including records :meth:`Tracer.ingest`-ed from workers in that thread.
Binding works even while the tracer is disabled, so a service can bind
once per campaign thread and let any later ``capture()``/``configure()``
see the context.  Records created on threads that cannot hold a binding
across awaits (an asyncio event loop) promote an explicit
``attrs["request_id"]`` to the top level instead.  :meth:`Tracer.adopt`
parents a thread's spans under a span opened on another thread, so a
request's spans reconstruct into one tree across the service's
loop-thread → campaign-thread handoff.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = ["NULL_SPAN", "Span", "Tracer", "trace"]

#: sentinel distinguishing "key absent" from "key bound to None" in bind()
_MISSING = object()


class _NullSpan:
    """The disabled path: a reusable, stateless ``with`` target."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


#: shared no-op span returned by a disabled tracer
NULL_SPAN = _NullSpan()


class Span:
    """A live span; records itself to the tracer when the ``with`` exits."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "_t0", "_wall")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id: str | None = None
        self.parent_id: str | None = None
        self._t0 = 0.0
        self._wall = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes mid-flight (recorded at span close)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack()
        self.parent_id = stack[-1] if stack else None
        self.span_id = tracer._new_id()
        stack.append(self.span_id)
        self._wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self._t0
        stack = self._tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        record = {
            "type": "span",
            "name": self.name,
            "pid": os.getpid(),
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t": round(self._wall, 6),
            "dur_s": round(dur, 9),
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self.attrs:
            record["attrs"] = _jsonable(self.attrs)
        self._tracer._write(record)
        return False


def _jsonable(attrs: dict) -> dict:
    """Best-effort coercion so odd attr values never kill a span."""
    out = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif isinstance(value, (list, tuple)):
            out[key] = [_jsonable({"v": v})["v"] for v in value]
        elif isinstance(value, dict):
            out[key] = _jsonable(value)
        else:
            out[key] = str(value)
    return out


class Tracer:
    """Process-wide trace recorder (see module docstring)."""

    def __init__(self) -> None:
        self.enabled = False
        self._sink = None
        self._path: Path | None = None
        self._buffer: list[dict] | None = None
        self._lock = threading.Lock()
        self._local = threading.local()
        self._counter = 0

    # ------------------------------------------------------------ plumbing

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _ctx(self) -> dict:
        ctx = getattr(self._local, "ctx", None)
        if ctx is None:
            ctx = self._local.ctx = {}
        return ctx

    def _new_id(self) -> str:
        with self._lock:
            self._counter += 1
            return f"{os.getpid()}:{self._counter}"

    def _write(self, record: dict) -> None:
        attrs = record.get("attrs")
        if attrs and "request_id" in attrs:
            record.setdefault("request_id", attrs["request_id"])
        ctx = getattr(self._local, "ctx", None)
        if ctx:
            for key, value in ctx.items():
                record.setdefault(key, value)
        with self._lock:
            if self._buffer is not None:
                self._buffer.append(record)
            elif self._sink is not None:
                self._sink.write(json.dumps(record, sort_keys=True) + "\n")
                self._sink.flush()

    # ----------------------------------------------------------- lifecycle

    def configure(self, path, *, manifest: dict | None = None) -> None:
        """Open ``path`` as the JSONL sink and enable tracing.

        ``manifest`` (see :func:`repro.telemetry.manifest.run_manifest`)
        is written as the first record so every trace is self-describing.
        """
        self.close()
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._sink = open(self._path, "a", encoding="utf-8")
        self.enabled = True
        if manifest is not None:
            self._write({"type": "manifest", **_jsonable(manifest)})

    def close(self, *, final_metrics: dict | None = None) -> None:
        """Flush a final metrics snapshot (if given) and disable tracing."""
        if final_metrics is not None and (self._sink or self._buffer is not None):
            self._write({"type": "metrics", "metrics": _jsonable(final_metrics)})
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None
            self._path = None
            if self._buffer is None:
                self.enabled = False

    # ------------------------------------------------------------- context

    def context(self) -> dict:
        """A copy of the calling thread's bound correlation fields."""
        return dict(self._ctx())

    @contextmanager
    def bind(self, **ctx):
        """Attach correlation fields to every record this thread writes.

        ``None`` values are ignored.  Bindings nest (inner values shadow
        outer ones for the duration) and work while the tracer is
        disabled, so a service can bind per-request context
        unconditionally and any later ``capture()`` sees it.
        """
        ctx = {k: v for k, v in ctx.items() if v is not None}
        if not ctx:
            yield
            return
        store = self._ctx()
        saved = {k: store.get(k, _MISSING) for k in ctx}
        store.update(ctx)
        try:
            yield
        finally:
            for key, prev in saved.items():
                if prev is _MISSING:
                    store.pop(key, None)
                else:
                    store[key] = prev

    @contextmanager
    def adopt(self, span_id):
        """Parent this thread's spans under a span from another thread.

        Pushes ``span_id`` onto the calling thread's span stack so the
        next span opened here records it as ``parent_id`` — the piece
        that keeps a request's tree connected across a loop-thread →
        worker-thread handoff.  ``None`` is a no-op.
        """
        if span_id is None:
            yield
            return
        stack = self._stack()
        stack.append(span_id)
        try:
            yield
        finally:
            if stack and stack[-1] == span_id:
                stack.pop()

    # ----------------------------------------------------------- recording

    def span(self, name: str, **attrs):
        """Context manager timing one named operation (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a one-shot occurrence (no-op when disabled)."""
        if not self.enabled:
            return
        stack = self._stack()
        self._write(
            {
                "type": "event",
                "name": name,
                "pid": os.getpid(),
                "parent_id": stack[-1] if stack else None,
                "t": round(time.time(), 6),
                "attrs": _jsonable(attrs),
            }
        )

    @contextmanager
    def capture(self):
        """Buffer records in memory instead of a sink (worker-process mode).

        Yields the record list; the caller ships it across the process
        boundary and the supervisor replays it with :meth:`ingest`.  On
        exit the tracer returns to its previous (usually disabled) state.
        """
        prev_buffer, prev_enabled = self._buffer, self.enabled
        records: list[dict] = []
        with self._lock:
            self._buffer = records
        self.enabled = True
        try:
            yield records
        finally:
            with self._lock:
                self._buffer = prev_buffer
            self.enabled = prev_enabled

    def ingest(self, records) -> None:
        """Append records captured in another process to this trace."""
        if not self.enabled or not records:
            return
        for record in records:
            self._write(record)


#: the process-wide tracer
trace = Tracer()
