"""Dependency-free observability for the reproduction's long-running jobs.

The paper-scale artefacts — 80k-run fault campaigns, full fault-space
certification sweeps — are sharded, multi-process workloads that would
otherwise run dark.  This package gives them structured visibility with
stdlib-only machinery and **zero overhead when disabled**:

:mod:`repro.telemetry.trace`
    Span-based tracing: ``with trace.span("certify.sweep", total=n):``
    context managers with monotonic timings, nested span ids, one JSON
    object per line in the sink file (JSONL).  Disabled (the default),
    ``trace.span`` returns a shared no-op object.  ``trace.bind``
    attaches per-request correlation fields (``request_id``) that stamp
    every record written by the bound thread and its pool workers.

:mod:`repro.telemetry.metrics`
    A process-local registry of counters, gauges and histograms with
    mergeable snapshots — worker processes return their snapshot with
    each shard result and the supervisor folds it into the parent
    registry.  Per-(level, opcode) simulator kernel timings hang off the
    same registry behind :func:`~repro.telemetry.metrics.kernel_timings_enabled`.
    :func:`~repro.telemetry.metrics.render_prometheus` renders any
    snapshot as Prometheus text exposition for the service's
    ``/metrics`` endpoint.

:mod:`repro.telemetry.progress`
    Shard-granular progress with throughput and ETA, rendered live on an
    interactive TTY and as one plain summary line everywhere else
    (``REPRO_PROGRESS=0`` disables, ``=1`` forces; ``NO_COLOR``
    downgrades to plain), mirrored as ``progress`` events into the
    trace, and published to a request-keyed live board that the service
    daemon's ``GET /status`` reads.

:mod:`repro.telemetry.manifest`
    The run manifest: backend, worker count, seed, git revision,
    python/numpy versions, hostname and CPU model — attached to campaign
    checkpoints, certificates and every ``benchmarks/out/BENCH_*.json``.

:mod:`repro.telemetry.stats`
    Offline summarisation of a recorded trace (``repro stats FILE``) and
    per-request deep dives (``repro trace analyze FILE --request ID``):
    span tree, critical path, per-phase and per-shard breakdowns.

:mod:`repro.telemetry.history`
    The benchmark-history ledger and perf-regression sentinel behind
    ``repro bench history`` / ``repro bench check``: every
    ``bench_report`` emission appends one JSONL line; the check compares
    each series' newest run against a rolling median ± MAD noise band.
"""

from repro.telemetry.history import (
    append_entry,
    check as bench_check,
    config_digest,
    load_history,
    resolve_history_path,
)
from repro.telemetry.manifest import cpu_model, run_manifest
from repro.telemetry.metrics import (
    MetricsRegistry,
    enable_kernel_timings,
    kernel_timings_enabled,
    metrics,
    render_prometheus,
)
from repro.telemetry.progress import (
    ProgressTracker,
    clear_live,
    eta_seconds,
    live_progress,
    publish_live,
)
from repro.telemetry.trace import Tracer, trace

__all__ = [
    "MetricsRegistry",
    "ProgressTracker",
    "Tracer",
    "append_entry",
    "bench_check",
    "clear_live",
    "config_digest",
    "cpu_model",
    "enable_kernel_timings",
    "eta_seconds",
    "kernel_timings_enabled",
    "live_progress",
    "load_history",
    "metrics",
    "publish_live",
    "render_prometheus",
    "resolve_history_path",
    "run_manifest",
    "trace",
]
