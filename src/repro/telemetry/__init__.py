"""Dependency-free observability for the reproduction's long-running jobs.

The paper-scale artefacts — 80k-run fault campaigns, full fault-space
certification sweeps — are sharded, multi-process workloads that would
otherwise run dark.  This package gives them structured visibility with
stdlib-only machinery and **zero overhead when disabled**:

:mod:`repro.telemetry.trace`
    Span-based tracing: ``with trace.span("certify.sweep", total=n):``
    context managers with monotonic timings, nested span ids, one JSON
    object per line in the sink file (JSONL).  Disabled (the default),
    ``trace.span`` returns a shared no-op object.

:mod:`repro.telemetry.metrics`
    A process-local registry of counters, gauges and histograms with
    mergeable snapshots — worker processes return their snapshot with
    each shard result and the supervisor folds it into the parent
    registry.  Per-(level, opcode) simulator kernel timings hang off the
    same registry behind :func:`~repro.telemetry.metrics.kernel_timings_enabled`.

:mod:`repro.telemetry.progress`
    Shard-granular progress with throughput and ETA, rendered as a live
    single status line on a TTY (``REPRO_PROGRESS=0`` disables, ``=1``
    forces) and mirrored as ``progress`` events into the trace.

:mod:`repro.telemetry.manifest`
    The run manifest: backend, worker count, seed, git revision,
    python/numpy versions — attached to campaign checkpoints,
    certificates and every ``benchmarks/out/BENCH_*.json``.

:mod:`repro.telemetry.stats`
    Offline summarisation of a recorded trace (``repro stats FILE``):
    top spans by wall time, retry counts, throughput.
"""

from repro.telemetry.manifest import run_manifest
from repro.telemetry.metrics import (
    MetricsRegistry,
    enable_kernel_timings,
    kernel_timings_enabled,
    metrics,
)
from repro.telemetry.progress import ProgressTracker, eta_seconds
from repro.telemetry.trace import Tracer, trace

__all__ = [
    "MetricsRegistry",
    "ProgressTracker",
    "Tracer",
    "enable_kernel_timings",
    "eta_seconds",
    "kernel_timings_enabled",
    "metrics",
    "run_manifest",
    "trace",
]
