"""Offline trace summarisation — ``repro stats`` and ``repro trace analyze``.

Reads a JSONL trace recorded via ``--trace FILE``, aggregates it, and
renders a terminal digest: the run manifest, top spans by cumulative wall
time, shard retry/failure counts, and end-of-sweep throughput/ETA from
the recorded ``progress`` events.  :func:`analyze_request` goes deeper
for one request id: it reconstructs the request's span tree (workers'
spans nest under the supervisor's via ``Tracer.adopt``), walks the
critical path, and breaks wall time down per phase (span name) and per
shard.  Pure functions over parsed records so the test suite can drive
them on synthetic traces.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "analyze_request",
    "load_trace",
    "render_analysis",
    "render_stats",
    "request_ids",
    "summarize",
]


class TraceError(ValueError):
    """The trace file is missing or not parseable JSONL."""


def load_trace(path) -> list[dict]:
    """Parse a JSONL trace; raises :class:`TraceError` on garbage."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from exc
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}:{lineno}: not JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise TraceError(f"{path}:{lineno}: record is not an object")
        records.append(record)
    return records


def summarize(records: list[dict]) -> dict:
    """Aggregate a trace into a JSON-safe summary document."""
    spans: dict[str, dict] = {}
    events: dict[str, int] = {}
    progress_last: dict[str, dict] = {}
    manifest: dict = {}
    metrics_snapshot: dict = {}
    retries = 0
    failures = 0
    pids: set[int] = set()

    for record in records:
        rtype = record.get("type")
        if "pid" in record:
            pids.add(record["pid"])
        if rtype == "manifest":
            manifest = {k: v for k, v in record.items() if k != "type"}
        elif rtype == "metrics":
            metrics_snapshot = record.get("metrics", {})
        elif rtype == "span":
            agg = spans.setdefault(
                record.get("name", "?"),
                {"count": 0, "total_s": 0.0, "max_s": 0.0, "errors": 0},
            )
            dur = float(record.get("dur_s", 0.0))
            agg["count"] += 1
            agg["total_s"] += dur
            agg["max_s"] = max(agg["max_s"], dur)
            if "error" in record:
                agg["errors"] += 1
        elif rtype == "event":
            name = record.get("name", "?")
            events[name] = events.get(name, 0) + 1
            attrs = record.get("attrs", {})
            if name == "progress":
                progress_last[attrs.get("label", "progress")] = attrs
            elif name == "shard.retry":
                retries += 1
            elif name == "shard.failed":
                failures += 1

    retries = max(
        retries,
        int(metrics_snapshot.get("counters", {}).get("executor.shards_retried", 0)),
    )
    for agg in spans.values():
        agg["total_s"] = round(agg["total_s"], 6)
        agg["max_s"] = round(agg["max_s"], 6)
        agg["mean_s"] = round(agg["total_s"] / agg["count"], 6)
    return {
        "records": len(records),
        "pids": sorted(pids),
        "manifest": manifest,
        "spans": dict(
            sorted(spans.items(), key=lambda kv: -kv[1]["total_s"])
        ),
        "events": dict(sorted(events.items())),
        "retries": retries,
        "failed_shards": failures,
        "progress": progress_last,
        "metrics": metrics_snapshot,
    }


def request_ids(records: list[dict]) -> dict[str, dict]:
    """Index a trace by top-level ``request_id``: counts + first activity."""
    out: dict[str, dict] = {}
    for record in records:
        rid = record.get("request_id")
        if rid is None:
            continue
        info = out.setdefault(
            rid, {"spans": 0, "events": 0, "first_t": None, "names": set()}
        )
        rtype = record.get("type")
        if rtype == "span":
            info["spans"] += 1
            info["names"].add(record.get("name", "?"))
        elif rtype == "event":
            info["events"] += 1
        t = record.get("t")
        if t is not None and (info["first_t"] is None or t < info["first_t"]):
            info["first_t"] = t
    for info in out.values():
        info["names"] = sorted(info["names"])
    return out


def analyze_request(records: list[dict], request_id: str) -> dict:
    """Deep-dive one request: span tree, critical path, phase/shard tables.

    Raises :class:`TraceError` when the id matches no spans, so callers
    can list what *is* in the trace instead of printing an empty report.
    """
    spans = [
        r
        for r in records
        if r.get("type") == "span" and r.get("request_id") == request_id
    ]
    if not spans:
        raise TraceError(f"no spans carry request_id={request_id!r}")
    events = [
        r
        for r in records
        if r.get("type") == "event" and r.get("request_id") == request_id
    ]

    by_id = {s["span_id"]: s for s in spans if s.get("span_id")}
    children: dict[str | None, list[dict]] = {}
    roots: list[dict] = []
    for span in spans:
        parent = span.get("parent_id")
        if parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    for kids in children.values():
        kids.sort(key=lambda s: s.get("t", 0.0))
    roots.sort(key=lambda s: s.get("t", 0.0))

    # critical path: from the longest root, repeatedly descend into the
    # longest child — the chain a latency fix has to shorten
    critical: list[dict] = []
    if roots:
        node = max(roots, key=lambda s: s.get("dur_s", 0.0))
        while node is not None:
            critical.append(node)
            kids = children.get(node.get("span_id"), [])
            node = max(kids, key=lambda s: s.get("dur_s", 0.0)) if kids else None

    phases: dict[str, dict] = {}
    for span in spans:
        agg = phases.setdefault(
            span.get("name", "?"), {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        dur = float(span.get("dur_s", 0.0))
        agg["count"] += 1
        agg["total_s"] += dur
        agg["max_s"] = max(agg["max_s"], dur)
    for agg in phases.values():
        agg["total_s"] = round(agg["total_s"], 6)
        agg["max_s"] = round(agg["max_s"], 6)
        agg["mean_s"] = round(agg["total_s"] / agg["count"], 6)

    shards = sorted(
        (
            {
                "shard": span.get("attrs", {}).get("shard"),
                "lo": span.get("attrs", {}).get("lo"),
                "hi": span.get("attrs", {}).get("hi"),
                "attempt": span.get("attrs", {}).get("attempt"),
                "dur_s": round(float(span.get("dur_s", 0.0)), 6),
                "pid": span.get("pid"),
            }
            for span in spans
            if span.get("name") == "executor.shard"
        ),
        key=lambda row: -row["dur_s"],
    )

    event_counts: dict[str, int] = {}
    last_progress: dict | None = None
    for event in events:
        name = event.get("name", "?")
        event_counts[name] = event_counts.get(name, 0) + 1
        if name == "progress":
            last_progress = event.get("attrs", {})

    return {
        "request_id": request_id,
        "spans": len(spans),
        "pids": sorted({s.get("pid") for s in spans if s.get("pid") is not None}),
        "roots": roots,
        "children": children,
        "critical_path": [
            {"name": s.get("name"), "dur_s": round(float(s.get("dur_s", 0.0)), 6)}
            for s in critical
        ],
        "phases": dict(sorted(phases.items(), key=lambda kv: -kv[1]["total_s"])),
        "shards": shards,
        "events": dict(sorted(event_counts.items())),
        "progress": last_progress,
    }


def render_analysis(analysis: dict, *, max_shards: int = 10) -> str:
    """Human-readable report of :func:`analyze_request`'s output."""
    lines: list[str] = []
    lines.append(
        f"request {analysis['request_id']}: {analysis['spans']} spans "
        f"across {len(analysis['pids'])} process(es)"
    )

    lines.append("")
    lines.append("span tree:")
    children = analysis["children"]

    def walk(span: dict, depth: int) -> None:
        attrs = span.get("attrs", {})
        shard = f" shard={attrs['shard']}" if "shard" in attrs else ""
        err = f"  ERROR {span['error']}" if span.get("error") else ""
        lines.append(
            f"  {'  ' * depth}{span.get('name', '?'):<{max(1, 30 - 2 * depth)}} "
            f"{float(span.get('dur_s', 0.0)):>9.3f}s{shard}{err}"
        )
        for kid in children.get(span.get("span_id"), []):
            walk(kid, depth + 1)

    for root in analysis["roots"]:
        walk(root, 0)

    if analysis["critical_path"]:
        path = " -> ".join(
            f"{step['name']} ({step['dur_s']:.3f}s)"
            for step in analysis["critical_path"]
        )
        lines.append("")
        lines.append(f"critical path: {path}")

    lines.append("")
    lines.append("per-phase wall time:")
    lines.append(
        f"  {'phase':<28} {'count':>6} {'total s':>10} {'mean s':>10} {'max s':>10}"
    )
    for name, agg in analysis["phases"].items():
        lines.append(
            f"  {name:<28} {agg['count']:>6} {agg['total_s']:>10.3f} "
            f"{agg['mean_s']:>10.4f} {agg['max_s']:>10.3f}"
        )

    if analysis["shards"]:
        lines.append("")
        lines.append(f"slowest shards (of {len(analysis['shards'])}):")
        lines.append(
            f"  {'shard':>5} {'range':>15} {'attempt':>7} {'dur s':>10} {'pid':>8}"
        )
        for row in analysis["shards"][:max_shards]:
            rng = f"[{row['lo']},{row['hi']})"
            lines.append(
                f"  {row['shard'] if row['shard'] is not None else '?':>5} "
                f"{rng:>15} {row['attempt'] if row['attempt'] is not None else '?':>7} "
                f"{row['dur_s']:>10.3f} {row['pid'] if row['pid'] is not None else '?':>8}"
            )

    if analysis["events"]:
        lines.append("")
        lines.append(
            "events: "
            + ", ".join(f"{k}={v}" for k, v in analysis["events"].items())
        )
    snap = analysis.get("progress")
    if snap:
        lines.append(
            f"final progress: {snap.get('done')}/{snap.get('total')} units"
            + (f" at {snap['rate']:,.0f}/s" if snap.get("rate") else "")
        )
    return "\n".join(lines)


def render_stats(summary: dict, *, top: int = 15) -> str:
    """Human-readable digest of :func:`summarize`'s output."""
    lines: list[str] = []
    manifest = summary["manifest"]
    if manifest:
        head = [
            f"{k}={manifest[k]}"
            for k in ("command", "backend", "jobs", "seed", "git_rev")
            if manifest.get(k) is not None
        ]
        lines.append("manifest: " + (" ".join(head) if head else "(no workload fields)"))
        lines.append(
            f"  python {manifest.get('python', '?')}, numpy "
            f"{manifest.get('numpy', '?')}, {manifest.get('timestamp', '?')}"
        )
    lines.append(
        f"records: {summary['records']} across "
        f"{len(summary['pids'])} process(es)"
    )

    if summary["spans"]:
        lines.append("")
        lines.append("top spans by cumulative wall time:")
        lines.append(
            f"  {'span':<28} {'count':>6} {'total s':>10} {'mean s':>10} {'max s':>10}"
        )
        for name, agg in list(summary["spans"].items())[:top]:
            lines.append(
                f"  {name:<28} {agg['count']:>6} {agg['total_s']:>10.3f} "
                f"{agg['mean_s']:>10.4f} {agg['max_s']:>10.3f}"
                + (f"  ({agg['errors']} errored)" if agg["errors"] else "")
            )

    lines.append("")
    lines.append(
        f"shards: {summary['retries']} retried, "
        f"{summary['failed_shards']} failed permanently"
    )
    for label, snap in summary["progress"].items():
        done, total = snap.get("done"), snap.get("total")
        rate = snap.get("rate")
        lines.append(
            f"throughput [{label}]: {done}/{total} units"
            + (f" at {rate:,.0f}/s" if rate else "")
            + (
                f", eta {snap['eta_s']:.0f}s"
                if snap.get("eta_s")
                else " (complete)"
            )
        )
    counters = summary["metrics"].get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {name} = {value}")
    gauges = summary["metrics"].get("gauges", {})
    for name, value in gauges.items():
        lines.append(f"  {name} = {value:,.2f}")
    return "\n".join(lines)
