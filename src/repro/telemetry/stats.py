"""Offline trace summarisation — the engine behind ``repro stats``.

Reads a JSONL trace recorded via ``--trace FILE``, aggregates it, and
renders a terminal digest: the run manifest, top spans by cumulative wall
time, shard retry/failure counts, and end-of-sweep throughput/ETA from
the recorded ``progress`` events.  Pure functions over parsed records so
the test suite can drive them on synthetic traces.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["load_trace", "render_stats", "summarize"]


class TraceError(ValueError):
    """The trace file is missing or not parseable JSONL."""


def load_trace(path) -> list[dict]:
    """Parse a JSONL trace; raises :class:`TraceError` on garbage."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from exc
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}:{lineno}: not JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise TraceError(f"{path}:{lineno}: record is not an object")
        records.append(record)
    return records


def summarize(records: list[dict]) -> dict:
    """Aggregate a trace into a JSON-safe summary document."""
    spans: dict[str, dict] = {}
    events: dict[str, int] = {}
    progress_last: dict[str, dict] = {}
    manifest: dict = {}
    metrics_snapshot: dict = {}
    retries = 0
    failures = 0
    pids: set[int] = set()

    for record in records:
        rtype = record.get("type")
        if "pid" in record:
            pids.add(record["pid"])
        if rtype == "manifest":
            manifest = {k: v for k, v in record.items() if k != "type"}
        elif rtype == "metrics":
            metrics_snapshot = record.get("metrics", {})
        elif rtype == "span":
            agg = spans.setdefault(
                record.get("name", "?"),
                {"count": 0, "total_s": 0.0, "max_s": 0.0, "errors": 0},
            )
            dur = float(record.get("dur_s", 0.0))
            agg["count"] += 1
            agg["total_s"] += dur
            agg["max_s"] = max(agg["max_s"], dur)
            if "error" in record:
                agg["errors"] += 1
        elif rtype == "event":
            name = record.get("name", "?")
            events[name] = events.get(name, 0) + 1
            attrs = record.get("attrs", {})
            if name == "progress":
                progress_last[attrs.get("label", "progress")] = attrs
            elif name == "shard.retry":
                retries += 1
            elif name == "shard.failed":
                failures += 1

    retries = max(
        retries,
        int(metrics_snapshot.get("counters", {}).get("executor.shards_retried", 0)),
    )
    for agg in spans.values():
        agg["total_s"] = round(agg["total_s"], 6)
        agg["max_s"] = round(agg["max_s"], 6)
        agg["mean_s"] = round(agg["total_s"] / agg["count"], 6)
    return {
        "records": len(records),
        "pids": sorted(pids),
        "manifest": manifest,
        "spans": dict(
            sorted(spans.items(), key=lambda kv: -kv[1]["total_s"])
        ),
        "events": dict(sorted(events.items())),
        "retries": retries,
        "failed_shards": failures,
        "progress": progress_last,
        "metrics": metrics_snapshot,
    }


def render_stats(summary: dict, *, top: int = 15) -> str:
    """Human-readable digest of :func:`summarize`'s output."""
    lines: list[str] = []
    manifest = summary["manifest"]
    if manifest:
        head = [
            f"{k}={manifest[k]}"
            for k in ("command", "backend", "jobs", "seed", "git_rev")
            if manifest.get(k) is not None
        ]
        lines.append("manifest: " + (" ".join(head) if head else "(no workload fields)"))
        lines.append(
            f"  python {manifest.get('python', '?')}, numpy "
            f"{manifest.get('numpy', '?')}, {manifest.get('timestamp', '?')}"
        )
    lines.append(
        f"records: {summary['records']} across "
        f"{len(summary['pids'])} process(es)"
    )

    if summary["spans"]:
        lines.append("")
        lines.append("top spans by cumulative wall time:")
        lines.append(
            f"  {'span':<28} {'count':>6} {'total s':>10} {'mean s':>10} {'max s':>10}"
        )
        for name, agg in list(summary["spans"].items())[:top]:
            lines.append(
                f"  {name:<28} {agg['count']:>6} {agg['total_s']:>10.3f} "
                f"{agg['mean_s']:>10.4f} {agg['max_s']:>10.3f}"
                + (f"  ({agg['errors']} errored)" if agg["errors"] else "")
            )

    lines.append("")
    lines.append(
        f"shards: {summary['retries']} retried, "
        f"{summary['failed_shards']} failed permanently"
    )
    for label, snap in summary["progress"].items():
        done, total = snap.get("done"), snap.get("total")
        rate = snap.get("rate")
        lines.append(
            f"throughput [{label}]: {done}/{total} units"
            + (f" at {rate:,.0f}/s" if rate else "")
            + (
                f", eta {snap['eta_s']:.0f}s"
                if snap.get("eta_s")
                else " (complete)"
            )
        )
    counters = summary["metrics"].get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {name} = {value}")
    gauges = summary["metrics"].get("gauges", {})
    for name, value in gauges.items():
        lines.append(f"  {name} = {value:,.2f}")
    return "\n".join(lines)
