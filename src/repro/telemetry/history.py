"""Benchmark history: an append-only JSONL ledger + regression sentinel.

``BENCH_*.json`` floors catch cliffs; they are blind to slow drift.  This
module keeps every :func:`bench_report` emission as one line of an
append-only JSONL file (``benchmarks/out/bench_history.jsonl`` by
default, ``REPRO_BENCH_HISTORY`` overrides), keyed by benchmark name +
a digest of its config + the run manifest's git rev/host/CPU, and checks
the newest run of each (benchmark, config) series against a rolling
robust baseline: median ± a noise band of ``max(sigmas·1.4826·MAD,
tolerance·|median|)`` over the previous ``window`` runs.  MAD-based
bands ignore outliers a mean/stddev would chase; the tolerance floor
keeps near-zero-variance series from flagging measurement jitter.

Metric direction is inferred from the name: throughputs/speedups/rates
regress *down*, times/latencies/overheads regress *up*; anything
ambiguous is skipped rather than guessed.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import statistics
from pathlib import Path

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "append_entry",
    "check",
    "config_digest",
    "flatten_metrics",
    "load_history",
    "metric_direction",
    "render_check",
    "render_history",
    "resolve_history_path",
]

HISTORY_SCHEMA_VERSION = 1

#: MAD → stddev for normally distributed noise
_MAD_SCALE = 1.4826

_HIGHER_BETTER = (
    "speedup", "throughput", "rate", "per_second", "per_s", "_ops",
    "runs_per", "over_",
)
_LOWER_BETTER = (
    "seconds", "latency", "_time", "time_", "duration", "overhead",
    "_s", "_ns", "_ms", "_us",
)


def resolve_history_path(default_dir=None) -> Path:
    """Where the ledger lives: ``REPRO_BENCH_HISTORY`` wins, else
    ``<default_dir or benchmarks/out>/bench_history.jsonl``."""
    env = os.environ.get("REPRO_BENCH_HISTORY")
    if env:
        return Path(env)
    if default_dir is None:
        default_dir = Path("benchmarks") / "out"
    return Path(default_dir) / "bench_history.jsonl"


def config_digest(config: dict) -> str:
    """Stable short digest of a benchmark config (series key component)."""
    canon = json.dumps(config or {}, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()[:12]


def flatten_metrics(metrics: dict, prefix: str = "") -> dict[str, float]:
    """Flatten nested metric dicts to dotted scalar keys.

    Only real numbers survive — bools, strings, lists (sweep tables) are
    configuration/evidence, not trendable series.
    """
    out: dict[str, float] = {}
    for key, value in (metrics or {}).items():
        dotted = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)) and math.isfinite(value):
            out[dotted] = float(value)
        elif isinstance(value, dict):
            out.update(flatten_metrics(value, prefix=f"{dotted}."))
    return out


def append_entry(path, report: dict) -> dict:
    """Append one ``bench_report`` document to the ledger; returns the entry."""
    manifest = report.get("manifest") or {}
    config = report.get("config") or {}
    entry = {
        "schema": HISTORY_SCHEMA_VERSION,
        "name": report.get("name", "?"),
        "config": config,
        "config_digest": config_digest(config),
        "metrics": flatten_metrics(report.get("metrics") or {}),
        "timestamp": manifest.get("timestamp"),
        "git_rev": manifest.get("git_rev"),
        "hostname": manifest.get("hostname"),
        "cpu": manifest.get("cpu"),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(path) -> list[dict]:
    """Parse the ledger, oldest first; tolerant of a missing file."""
    path = Path(path)
    if not path.exists():
        return []
    entries = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
        if isinstance(entry, dict):
            entries.append(entry)
    return entries


def metric_direction(name: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 unknown (skip)."""
    lname = name.lower()
    for marker in _HIGHER_BETTER:
        if marker in lname:
            return 1
    for marker in _LOWER_BETTER:
        if marker in lname:
            return -1
    return 0


def check(
    history: list[dict],
    *,
    tolerance: float = 0.10,
    window: int = 8,
    min_samples: int = 3,
    sigmas: float = 3.0,
) -> dict:
    """Compare each series' newest run against its rolling robust baseline.

    A series is one (benchmark name, config digest, metric) triple.  The
    newest entry of each (name, digest) pair is judged against the
    median of up to ``window`` *previous* runs; series with fewer than
    ``min_samples`` baseline points pass vacuously (not enough history
    to know what normal looks like).
    """
    series: dict[tuple[str, str], list[dict]] = {}
    for entry in history:
        key = (entry.get("name", "?"), entry.get("config_digest", "?"))
        series.setdefault(key, []).append(entry)

    results: list[dict] = []
    for (name, digest), entries in sorted(series.items()):
        newest = entries[-1]
        baseline_entries = entries[:-1][-window:]
        for metric, value in sorted((newest.get("metrics") or {}).items()):
            direction = metric_direction(metric)
            if direction == 0:
                continue
            samples = [
                e["metrics"][metric]
                for e in baseline_entries
                if isinstance((e.get("metrics") or {}).get(metric), (int, float))
            ]
            result = {
                "benchmark": name,
                "config_digest": digest,
                "metric": metric,
                "value": value,
                "direction": "higher" if direction > 0 else "lower",
                "samples": len(samples),
                "git_rev": newest.get("git_rev"),
            }
            if len(samples) < min_samples:
                result["status"] = "no-baseline"
                results.append(result)
                continue
            median = statistics.median(samples)
            mad = statistics.median(abs(s - median) for s in samples)
            band = max(sigmas * _MAD_SCALE * mad, tolerance * abs(median))
            result["median"] = round(median, 9)
            result["band"] = round(band, 9)
            regressed = (
                value < median - band if direction > 0 else value > median + band
            )
            result["status"] = "regression" if regressed else "ok"
            if median:
                result["delta_pct"] = round(100.0 * (value - median) / median, 2)
            results.append(result)

    regressions = [r for r in results if r["status"] == "regression"]
    return {
        "checked": len(results),
        "series": len(series),
        "regressions": len(regressions),
        "results": results,
        "params": {
            "tolerance": tolerance,
            "window": window,
            "min_samples": min_samples,
            "sigmas": sigmas,
        },
    }


def render_history(history: list[dict]) -> str:
    """One line per run, grouped by (benchmark, config) series."""
    if not history:
        return "bench history: empty"
    lines = [f"bench history: {len(history)} run(s)"]
    series: dict[tuple[str, str], list[dict]] = {}
    for entry in history:
        key = (entry.get("name", "?"), entry.get("config_digest", "?"))
        series.setdefault(key, []).append(entry)
    for (name, digest), entries in sorted(series.items()):
        lines.append(f"  {name} [{digest}]: {len(entries)} run(s)")
        for entry in entries[-5:]:
            rev = (entry.get("git_rev") or "?")[:10]
            metrics = entry.get("metrics") or {}
            shown = ", ".join(
                f"{k}={v:g}" for k, v in sorted(metrics.items())[:4]
            )
            more = f" (+{len(metrics) - 4} more)" if len(metrics) > 4 else ""
            lines.append(
                f"    {entry.get('timestamp', '?')} {rev} {shown}{more}"
            )
    return "\n".join(lines)


def render_check(report: dict) -> str:
    """Human-readable verdict of :func:`check`'s output."""
    lines = [
        f"bench check: {report['checked']} metric(s) across "
        f"{report['series']} series — {report['regressions']} regression(s)"
    ]
    for result in report["results"]:
        status = result["status"]
        if status == "no-baseline":
            lines.append(
                f"  SKIP {result['benchmark']}:{result['metric']} "
                f"({result['samples']} baseline sample(s), need "
                f"{report['params']['min_samples']})"
            )
            continue
        mark = "FAIL" if status == "regression" else "  ok"
        delta = (
            f" ({result['delta_pct']:+.1f}% vs median {result['median']:g}"
            f" ± {result['band']:g})"
            if "median" in result
            else ""
        )
        lines.append(
            f"  {mark} {result['benchmark']}:{result['metric']} = "
            f"{result['value']:g}{delta} [{result['direction']}-is-better]"
        )
    return "\n".join(lines)
