"""Chaos engineering and self-healing for the campaign/certification stack.

The reproduction's central claim is that a design under fault injection
must detect-or-survive every fault.  This package holds our own execution
substrate to that standard:

:mod:`repro.resilience.chaos`
    :class:`ChaosInjector` — deterministic, seed-driven infrastructure
    faults (worker crashes, hangs, checkpoint truncation/bit-rot,
    duplicated results) at named sites, configured programmatically or
    via ``REPRO_CHAOS``.

:mod:`repro.resilience.errors`
    The typed error taxonomy (transient / timeout / crash / corruption /
    permanent) every shard failure is classified into, plus the
    quarantine semantics recorded in checkpoint ledgers.

:mod:`repro.resilience.persist`
    Atomic tmp+\\ ``os.replace`` writes and SHA-256 content digests — the
    single implementation behind shard archives, manifests, certificates
    and benchmark reports.

The golden invariant, enforced by ``tests/test_chaos.py``: any chaos
schedule that leaves at least one healthy retry path yields bit-identical
campaign results to the undisturbed run; anything less ends as structured
quarantine records and degraded certificates, never unhandled exceptions.
"""

from repro.resilience.chaos import (
    CHAOS_ENV,
    ChaosFault,
    ChaosInjector,
    ChaosSpec,
    chaos,
)
from repro.resilience.errors import (
    ChaosError,
    ErrorKind,
    ShardHang,
    WallBudgetExceeded,
    classify_error,
)
from repro.resilience.persist import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    sha256_bytes,
    sha256_file,
)

__all__ = [
    "CHAOS_ENV",
    "ChaosError",
    "ChaosFault",
    "ChaosInjector",
    "ChaosSpec",
    "ErrorKind",
    "ShardHang",
    "WallBudgetExceeded",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "chaos",
    "classify_error",
    "sha256_bytes",
    "sha256_file",
]
