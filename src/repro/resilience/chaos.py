"""Deterministic, seed-driven fault injection for the campaign stack itself.

The paper injects faults into *circuits* and demands detect-or-survive;
this module injects faults into our own execution substrate — workers,
checkpoints, result plumbing — and the chaos test suite demands the same:
any chaos schedule that leaves at least one healthy retry path must yield
**bit-identical** results to the undisturbed run.

Faults fire at named *sites* instrumented through the executor and
checkpoint store:

=====================  =====================================================
site                   where it fires
=====================  =====================================================
``worker``             inside the shard guard, before the shard's work
                       (serial path and pool workers alike)
``checkpoint.shard``   after a shard ``.npz`` is persisted (corrupts the
                       file on disk, never the in-memory arrays)
``checkpoint.manifest``after the manifest ledger is flushed
``supervisor.result``  in the supervisor, as a finished shard's result is
                       folded in
``service.request``    in the certification daemon, as an admitted request
                       begins executing
``service.store``      after the daemon's result store persists an artefact
                       (certificate or index — corrupts the file on disk)
``service.drain``      in the daemon's SIGTERM drain sequence, before the
                       store index is flushed
=====================  =====================================================

and each fault has a *kind*, mirroring the paper's taxonomy aimed at
infrastructure (transient/permanent × crash/corrupt/delay):

``crash``      the worker process dies without cleanup (``os._exit``,
               i.e. ``kill -9``-equivalent); in-process execution
               degrades to raising :class:`ChaosError`
``raise``      raise :class:`ChaosError` (a transient software fault)
``hang``       sleep far past the shard deadline (exercises SIGALRM
               timeouts and the supervisor's heartbeat hang detection)
``truncate``   cut the just-written artefact short (torn write)
``bitrot``     flip one byte of the just-written artefact
``delay``      sleep briefly before delivering a result
``duplicate``  deliver a shard result twice

Determinism: whether a fault fires at ``(site, index, attempt)`` is a pure
hash of ``(spec.seed, site, kind, index)`` — no shared state — so a
schedule replays identically across processes, worker counts and resumes.
By default a fault only fires on ``attempt <= max_attempt`` (1), which is
exactly the "healthy retry path" the golden invariant requires.

Configuration: programmatic (:meth:`ChaosInjector.configure`) or the
``REPRO_CHAOS`` environment variable, e.g.::

    REPRO_CHAOS="seed=7;worker:crash:0.3;checkpoint.shard:truncate:0.5"

Disabled (the default) every instrumented site costs one attribute load
and one branch — the same zero-overhead contract as telemetry.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field

from repro.resilience.errors import ChaosError
from repro.telemetry import metrics, trace

__all__ = ["CHAOS_ENV", "ChaosFault", "ChaosInjector", "ChaosSpec", "chaos"]

CHAOS_ENV = "REPRO_CHAOS"

#: sites the executor/checkpoint instrument (documented above)
SITES = (
    "worker",
    "checkpoint.shard",
    "checkpoint.manifest",
    "supervisor.result",
    "service.request",
    "service.store",
    "service.drain",
)

#: fault kinds, grouped by how they are delivered
EXEC_KINDS = ("crash", "raise", "hang", "delay")
FILE_KINDS = ("truncate", "bitrot")
RESULT_KINDS = ("delay", "duplicate")
KINDS = tuple(dict.fromkeys(EXEC_KINDS + FILE_KINDS + RESULT_KINDS))


@dataclass(frozen=True)
class ChaosFault:
    """One (site, kind) fault with a firing rate and an attempt bound."""

    site: str
    kind: str
    #: probability that the fault fires at a given (site, index)
    rate: float = 1.0
    #: fire only on attempts ``<= max_attempt`` — leaves retries healthy.
    #: 0 or negative = every attempt (a *persistent* infrastructure fault).
    max_attempt: int = 1

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown chaos site {self.site!r} (known: {', '.join(SITES)})"
            )
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r} (known: {', '.join(KINDS)})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"chaos rate {self.rate} outside [0, 1]")


@dataclass(frozen=True)
class ChaosSpec:
    """A full chaos schedule: seed + fault list + delivery tunables."""

    seed: int = 0
    faults: tuple[ChaosFault, ...] = field(default_factory=tuple)
    #: how long a ``hang`` sleeps (must exceed the shard deadline to bite)
    hang_s: float = 30.0
    #: how long a ``delay`` sleeps
    delay_s: float = 0.02

    @classmethod
    def parse(cls, text: str) -> "ChaosSpec":
        """Parse the ``REPRO_CHAOS`` mini-language (see module docstring).

        ``;``/``,``-separated segments: ``seed=N``, ``hang=SECONDS``,
        ``delay=SECONDS``, or ``site:kind[:rate[:max_attempt]]``.
        """
        seed, hang_s, delay_s = 0, 30.0, 0.02
        faults: list[ChaosFault] = []
        for segment in text.replace(",", ";").split(";"):
            segment = segment.strip()
            if not segment:
                continue
            if "=" in segment and ":" not in segment:
                name, _, value = segment.partition("=")
                name = name.strip()
                try:
                    if name == "seed":
                        seed = int(value)
                    elif name == "hang":
                        hang_s = float(value)
                    elif name == "delay":
                        delay_s = float(value)
                    else:
                        raise ValueError(f"unknown chaos option {name!r}")
                except ValueError as exc:
                    if "unknown chaos option" in str(exc):
                        raise
                    raise ValueError(
                        f"bad chaos option {segment!r}: {name} wants a number"
                    ) from exc
                continue
            parts = segment.split(":")
            if len(parts) < 2:
                raise ValueError(
                    f"bad chaos fault {segment!r} (want site:kind[:rate"
                    f"[:max_attempt]])"
                )
            site, kind = parts[0], parts[1]
            try:
                rate = float(parts[2]) if len(parts) > 2 else 1.0
                max_attempt = int(parts[3]) if len(parts) > 3 else 1
            except ValueError as exc:
                raise ValueError(
                    f"bad chaos fault {segment!r}: rate must be a float and "
                    f"max_attempt an integer"
                ) from exc
            faults.append(ChaosFault(site, kind, rate, max_attempt))
        return cls(
            seed=seed, faults=tuple(faults), hang_s=hang_s, delay_s=delay_s
        )

    @classmethod
    def from_env(cls) -> "ChaosSpec | None":
        """Parse ``REPRO_CHAOS``; a malformed value is an eager, named error.

        A schedule that never fires because of a typo would silently turn a
        chaos run into a clean run — so an unknown site/kind or unparsable
        number raises immediately, naming the environment variable.
        """
        text = os.environ.get(CHAOS_ENV, "").strip()
        if not text:
            return None
        try:
            return cls.parse(text)
        except ValueError as exc:
            raise ValueError(f"invalid {CHAOS_ENV}: {exc}") from exc


def _fires(spec: ChaosSpec, fault: ChaosFault, index: int, attempt: int) -> bool:
    """Pure decision function — identical in every process (see module doc)."""
    if fault.max_attempt > 0 and attempt > fault.max_attempt:
        return False
    if fault.rate >= 1.0:
        return True
    token = f"{spec.seed}:{fault.site}:{fault.kind}:{index}".encode()
    draw = int.from_bytes(hashlib.sha256(token).digest()[:8], "big") / 2.0**64
    return draw < fault.rate


class ChaosInjector:
    """Process-wide chaos hook; disabled (``spec is None``) by default."""

    def __init__(self) -> None:
        self._spec: ChaosSpec | None = None

    # ----------------------------------------------------------- lifecycle

    @property
    def enabled(self) -> bool:
        return self._spec is not None

    @property
    def spec(self) -> ChaosSpec | None:
        return self._spec

    def configure(self, spec: ChaosSpec | None) -> None:
        self._spec = spec

    def disable(self) -> None:
        self._spec = None

    def configure_from_env(self) -> None:
        """Adopt ``REPRO_CHAOS`` if set and nothing was configured yet."""
        if self._spec is None:
            self._spec = ChaosSpec.from_env()

    # ------------------------------------------------------------ delivery

    def _record(self, fault: ChaosFault, index: int, attempt: int) -> None:
        metrics.inc("chaos.injected")
        metrics.inc(f"chaos.{fault.site}.{fault.kind}")
        trace.event(
            "chaos.injected",
            site=fault.site,
            kind=fault.kind,
            index=index,
            attempt=attempt,
        )

    def _matching(self, site: str, kinds, index: int, attempt: int):
        spec = self._spec
        for fault in spec.faults:
            if fault.site != site or fault.kind not in kinds:
                continue
            if _fires(spec, fault, index, attempt):
                yield fault

    def at(
        self, site: str, *, index: int = 0, attempt: int = 1,
        in_worker: bool = False,
    ) -> None:
        """Execution-site hook: maybe crash, raise, hang or delay here."""
        if self._spec is None:
            return
        for fault in self._matching(site, EXEC_KINDS, index, attempt):
            self._record(fault, index, attempt)
            if fault.kind == "crash":
                if in_worker:
                    # kill -9-equivalent: no cleanup, no exception, the
                    # pool discovers a dead process (BrokenProcessPool)
                    os._exit(23)
                raise ChaosError(
                    f"injected worker crash at shard {index} "
                    f"(in-process delivery)"
                )
            if fault.kind == "raise":
                raise ChaosError(f"injected failure at shard {index}")
            if fault.kind == "hang":
                time.sleep(self._spec.hang_s)
            elif fault.kind == "delay":
                time.sleep(self._spec.delay_s)

    def corrupt_file(self, site: str, path, *, index: int = 0) -> None:
        """File-site hook: maybe truncate or bit-rot the artefact at ``path``.

        Called *after* a successful persist, so it models a torn write or
        media decay that the next reader must detect via its digest.
        """
        if self._spec is None:
            return
        for fault in self._matching(site, FILE_KINDS, index, attempt=1):
            self._record(fault, index, 1)
            try:
                size = os.path.getsize(path)
                if fault.kind == "truncate":
                    with open(path, "r+b") as fh:
                        fh.truncate(size // 2)
                else:  # bitrot
                    with open(path, "r+b") as fh:
                        fh.seek(max(0, size // 2 - 1))
                        byte = fh.read(1) or b"\0"
                        fh.seek(max(0, size // 2 - 1))
                        fh.write(bytes([byte[0] ^ 0x40]))
            except OSError:
                pass  # the artefact vanished; nothing left to corrupt

    def should(
        self, site: str, kind: str, *, index: int = 0, attempt: int = 1
    ) -> bool:
        """Query-style hook (``duplicate``/``delay`` at result sites)."""
        if self._spec is None:
            return False
        for fault in self._matching(site, (kind,), index, attempt):
            self._record(fault, index, attempt)
            if kind == "delay":
                time.sleep(self._spec.delay_s)
            return True
        return False


#: the process-wide injector (mirrors ``telemetry.trace``'s singleton shape)
chaos = ChaosInjector()
