"""Typed error taxonomy for infrastructure faults.

The paper classifies *circuit* faults (transient/permanent, stuck/flip)
and demands that every one of them is detected or survived.  This module
applies the same discipline to the campaign stack's own failures: every
exception that kills a shard is classified into a small closed taxonomy,
the classification is recorded in the checkpoint ledger and in the
structured failure records a partial result carries, and the retry policy
can reason about it ("a timeout is worth retrying; a pickling bug is
not going to fix itself").

The taxonomy mirrors the paper's transient/permanent split:

========== =====================================================
kind        meaning
========== =====================================================
transient   one-off infrastructure hiccup (I/O error, chaos
            injection, flaky resource) — a retry should succeed
timeout     the shard exceeded its wall-clock budget (SIGALRM)
crash       the worker process died (``kill -9``, ``os._exit``,
            OOM-kill, broken pool) or was declared hung by the
            supervisor's heartbeat
corruption  a persisted artefact failed its checksum / parse —
            the data is recomputed deterministically
permanent   a deterministic programming or input error that no
            retry can fix (still retried a bounded number of
            times: misclassification must not lose data)
========== =====================================================

A shard whose retries are exhausted is not dropped silently: it is
*quarantined* — recorded as a structured :class:`ShardRecord` failure in
the checkpoint manifest (status ``quarantined``, with the kind, attempt
count and last error) and surfaced in ``result.extra["failed_shards"]``
and certificate coverage, never as an unhandled exception.
"""

from __future__ import annotations

import enum

__all__ = [
    "ChaosError",
    "ErrorKind",
    "ShardHang",
    "WallBudgetExceeded",
    "classify_error",
]


class ErrorKind(str, enum.Enum):
    """Closed classification of infrastructure failures (see module doc)."""

    TRANSIENT = "transient"
    TIMEOUT = "timeout"
    CRASH = "crash"
    CORRUPTION = "corruption"
    PERMANENT = "permanent"

    def __str__(self) -> str:  # manifest-friendly
        return self.value


class ChaosError(RuntimeError):
    """An error deliberately injected by the chaos layer (transient)."""


class ShardHang(RuntimeError):
    """The supervisor's heartbeat declared a worker hung past its deadline."""


class WallBudgetExceeded(RuntimeError):
    """The global wall-clock budget ran out before the workload finished."""


def classify_error(exc: BaseException) -> ErrorKind:
    """Map an exception to its :class:`ErrorKind`.

    Import-light by design: executor-local types are matched by name so
    this module never imports the executor (which imports us).
    """
    from concurrent.futures.process import BrokenProcessPool

    name = type(exc).__name__
    if name == "ShardTimeout":
        return ErrorKind.TIMEOUT
    if isinstance(exc, (ShardHang, BrokenProcessPool)):
        return ErrorKind.CRASH
    if isinstance(exc, ChaosError):
        return ErrorKind.TRANSIENT
    if name == "CheckpointError" or isinstance(exc, (EOFError,)):
        return ErrorKind.CORRUPTION
    if isinstance(exc, (OSError, MemoryError, ConnectionError)):
        return ErrorKind.TRANSIENT
    if isinstance(exc, (ValueError, TypeError, KeyError, IndexError,
                        AttributeError, AssertionError, ArithmeticError)):
        return ErrorKind.PERMANENT
    return ErrorKind.TRANSIENT
