"""Crash-safe persistence primitives: atomic writes + content digests.

Every artefact the campaign stack persists — shard ``.npz`` archives, the
checkpoint manifest, certificates, ``BENCH_*.json`` reports — goes through
the same two-step discipline:

1. **Atomic replace** — write to a temporary file in the *same directory*
   (same filesystem, so the final ``os.replace`` is atomic), fsync, then
   replace.  A ``kill -9`` mid-write leaves either the old artefact or
   nothing with the final name, never a torn file.
2. **Content digest** — artefacts that are read back (shards,
   certificates) carry a SHA-256 digest checked on load, so bit-rot or an
   out-of-band edit is *detected* and handled (recompute / refuse), never
   silently trusted.

These helpers are the single implementation; the checkpoint store,
certificate writer and benchmark reporter all call through here.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "sha256_bytes",
    "sha256_file",
]


def sha256_bytes(data: bytes) -> str:
    """Hex SHA-256 of ``data``."""
    return hashlib.sha256(data).hexdigest()


def sha256_file(path, chunk: int = 1 << 20) -> str:
    """Hex SHA-256 of a file's contents, streamed."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        while block := fh.read(chunk):
            h.update(block)
    return h.hexdigest()


def atomic_write_bytes(path, data: bytes) -> None:
    """Write ``data`` to ``path`` via tempfile + fsync + ``os.replace``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path, text: str, encoding: str = "utf-8") -> None:
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(
    path, obj, *, indent: int | None = 2, sort_keys: bool = True
) -> None:
    """Serialise ``obj`` deterministically and write it atomically."""
    atomic_write_text(
        path, json.dumps(obj, indent=indent, sort_keys=sort_keys) + "\n"
    )
