"""Certification-as-a-service: the always-on daemon around the certifier.

``repro serve`` turns cold ``repro certify`` batch jobs into a long-lived
service: overlapping fault-space sweeps from many clients dedupe onto one
simulation through a crash-recoverable content-addressed store, load is
shed with structured backpressure instead of queueing without bound,
deadlines degrade to valid partial certificates, a circuit breaker routes
around a sick backend, and SIGTERM drains gracefully.  See
:mod:`repro.service.daemon` for the full robustness contract.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import (
    CertificationService,
    ServiceConfig,
    ServiceUnavailable,
)
from repro.service.protocol import (
    CertifyRequest,
    build_design,
    circuit_digest,
    request_key,
)
from repro.service.store import ResultStore
from repro.service.top import render_status, run_top

__all__ = [
    "CertificationService",
    "CertifyRequest",
    "CircuitBreaker",
    "ResultStore",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceUnavailable",
    "build_design",
    "circuit_digest",
    "render_status",
    "request_key",
    "run_top",
]
