"""Minimal stdlib client for the certification daemon.

``http.client`` only — the same no-dependency discipline as the server.
Used by ``repro submit``, the CI service-smoke job and the tests; small
enough to crib for any other client.
"""

from __future__ import annotations

import http.client
import json
from urllib.parse import urlsplit

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The daemon could not be reached or spoke something unparseable."""


class ServiceClient:
    """Talk JSON to a running ``repro serve`` daemon."""

    def __init__(self, url: str = "http://127.0.0.1:8642", timeout: float = 600.0):
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ServiceError(f"only http:// URLs are supported, got {url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 8642
        self.timeout = timeout

    def _request(
        self, method: str, path: str, body: dict | None = None,
        *, headers: dict | None = None, raw: bool = False,
    ) -> tuple[int, object, dict]:
        """Returns ``(status, parsed_json_or_text, headers)``."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode() if body is not None else None
            send_headers = dict(headers or {})
            if payload:
                send_headers.setdefault("Content-Type", "application/json")
            conn.request(method, path, body=payload, headers=send_headers)
            response = conn.getresponse()
            data = response.read()
            if raw:
                return response.status, data.decode(), dict(response.getheaders())
            try:
                doc = json.loads(data.decode() or "{}")
            except ValueError as exc:
                raise ServiceError(
                    f"unparseable response ({response.status}): {data[:200]!r}"
                ) from exc
            return response.status, doc, dict(response.getheaders())
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceError(f"cannot reach daemon at "
                               f"{self.host}:{self.port}: {exc}") from exc
        finally:
            conn.close()

    def health(self) -> dict:
        status, doc, _ = self._request("GET", "/healthz")
        if status != 200:
            raise ServiceError(f"healthz returned {status}: {doc}")
        return doc

    def metrics(self) -> dict:
        status, doc, _ = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"metrics returned {status}: {doc}")
        return doc.get("metrics", {})

    def metrics_text(self) -> str:
        """Prometheus text exposition of the daemon's metrics."""
        status, text, _ = self._request(
            "GET", "/metrics", headers={"Accept": "text/plain"}, raw=True
        )
        if status != 200:
            raise ServiceError(f"metrics returned {status}: {text[:200]}")
        return text

    def status(self) -> dict:
        """Live introspection doc: in-flight requests, progress, counters."""
        status, doc, _ = self._request("GET", "/status")
        if status != 200:
            raise ServiceError(f"status returned {status}: {doc}")
        return doc

    def submit(self, request: dict, *, wait: bool = True) -> tuple[int, dict]:
        """POST a certify request; returns ``(http_status, response_doc)``.

        200 → ``{"status": "done", "certificate": {...}, "cached": ...}``;
        202 → accepted without waiting (``wait=False``; poll ``status()``
        then ``certificate(doc["key"])``); 429 → shed (honour
        ``retry_after_s``); 503 → draining/quarantined.  Every response
        carries the server-assigned ``request_id``.
        """
        body = dict(request)
        if not wait:
            body["wait"] = False
        status, doc, _ = self._request("POST", "/certify", body=body)
        return status, doc

    def certificate(self, key: str) -> dict | None:
        status, doc, _ = self._request("GET", f"/certificate/{key}")
        return doc if status == 200 else None
