"""Circuit breaker over (cipher, backend) execution lanes.

The daemon runs campaigns on one of three bit-exact simulation backends.
When a particular backend/cipher combination keeps failing — a codegen
bug tripped by one netlist shape, a pathological timeout interaction —
the breaker *opens* that lane after ``threshold`` consecutive failures
and the daemon routes the work over a healthy backend instead (bit-exact
backends make the reroute result-transparent; only wall-clock changes).

State machine per lane (classic closed → open → half-open):

- **closed** — failures are counted; a success resets the count.
- **open** — entered at ``threshold`` consecutive failures; ``allow()``
  refuses the lane for ``cooldown_s`` seconds.
- **half-open** — after the cooldown, one probe request is let through;
  its success closes the lane, its failure re-opens it (with a fresh
  cooldown) immediately.

Failures carry the PR 5 :class:`~repro.resilience.errors.ErrorKind`
taxonomy so the trace shows *why* a lane died, and the clock is
injectable for deterministic tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.telemetry import metrics, trace

__all__ = ["CircuitBreaker", "LaneState"]


@dataclass
class LaneState:
    failures: int = 0
    opened_at: float | None = None
    half_open: bool = False
    #: ErrorKind tallies of everything this lane ever failed with
    error_kinds: dict = field(default_factory=dict)


class CircuitBreaker:
    """Per-(cipher, backend) failure isolation; see module docstring."""

    def __init__(
        self, *, threshold: int = 3, cooldown_s: float = 60.0, clock=time.monotonic
    ) -> None:
        self.threshold = max(1, threshold)
        self.cooldown_s = cooldown_s
        self.clock = clock
        self.lanes: dict[tuple[str, str], LaneState] = {}

    def _lane(self, cipher: str, backend: str) -> LaneState:
        return self.lanes.setdefault((cipher, backend), LaneState())

    def allow(self, cipher: str, backend: str) -> bool:
        """May a request run on this lane right now?

        An open lane whose cooldown has elapsed admits exactly one probe
        (half-open); everything else queued behind the probe keeps being
        routed around until the probe's success closes the lane.
        """
        lane = self._lane(cipher, backend)
        if lane.opened_at is None:
            return True
        if lane.half_open:
            return False  # a probe is already out
        if self.clock() - lane.opened_at >= self.cooldown_s:
            lane.half_open = True
            trace.event(
                "service.breaker_half_open", cipher=cipher, backend=backend
            )
            return True
        return False

    def record_success(self, cipher: str, backend: str) -> None:
        lane = self._lane(cipher, backend)
        if lane.opened_at is not None:
            trace.event("service.breaker_closed", cipher=cipher, backend=backend)
            metrics.inc("service.breaker.closed")
        lane.failures = 0
        lane.opened_at = None
        lane.half_open = False

    def record_failure(self, cipher: str, backend: str, error_kind: str) -> None:
        lane = self._lane(cipher, backend)
        lane.failures += 1
        lane.error_kinds[error_kind] = lane.error_kinds.get(error_kind, 0) + 1
        reopened_probe = lane.half_open
        lane.half_open = False
        if reopened_probe or lane.failures >= self.threshold:
            if lane.opened_at is None or reopened_probe:
                trace.event(
                    "service.breaker_opened",
                    cipher=cipher,
                    backend=backend,
                    failures=lane.failures,
                    error_kind=error_kind,
                )
                metrics.inc("service.breaker.opened")
            lane.opened_at = self.clock()

    def is_open(self, cipher: str, backend: str) -> bool:
        lane = self._lane(cipher, backend)
        return lane.opened_at is not None

    def snapshot(self) -> dict:
        """JSON-safe state for /healthz."""
        return {
            f"{cipher}/{backend}": {
                "failures": lane.failures,
                "open": lane.opened_at is not None,
                "half_open": lane.half_open,
                "error_kinds": dict(lane.error_kinds),
            }
            for (cipher, backend), lane in sorted(self.lanes.items())
        }
