"""Request schema and content addressing for the certification service.

A :class:`CertifyRequest` is the wire form of one certification campaign:
which protected design to build, which slice of its fault space to sweep,
under which seed/key/backend.  Two requests that would provably produce
the same certificate must collapse to the same :func:`request_key` — the
content address under which the daemon dedupes in-flight work and stores
finished certificates.

The key is a SHA-256 over a canonical document combining

- the **netlist hash** (:func:`circuit_digest` over the built design's
  gate list — the same design identity the PR 4 run manifest pins via
  scheme/variant/rounds, but structural, so a builder change invalidates
  stale cache entries),
- the **fault-space selection** (models × cycles, budget, runs/location —
  the inputs of ``enumerate_fault_space`` + the budget sampler),
- the campaign **seed and key**, and
- the normalised **backend** (kept in the key per the store contract even
  though backends are bit-exact: a cache entry records which kernel earned
  it, and re-keying on it makes backend-comparison sweeps explicit).

Normalisation happens *before* hashing: ``rounds=None`` resolves to the
cipher's full-round count, ``models=None`` to the default model tuple and
``backend=None`` through :func:`~repro.netlist.simulator.resolve_backend`,
so spelling a default out loud never causes a spurious cache miss.  The
per-request ``deadline_s`` is deliberately **not** part of the identity:
a deadline changes how much of the sweep finishes, not what is being
certified — the store only ever caches *complete* certificates, and a
truncated run leaves its checkpoints behind for the next identical
request to resume and finish.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace

__all__ = [
    "CertifyRequest",
    "SCHEMES",
    "build_design",
    "circuit_digest",
    "request_key",
]

#: protected-design builders the service knows how to instantiate
SCHEMES = ("three-in-one", "naive", "acisp20", "triplication")


def build_design(
    scheme: str,
    *,
    cipher: str = "present80",
    variant: str = "prime",
    rounds: int | None = None,
):
    """Instantiate a protected design by name (the CLI's vocabulary).

    ``cipher`` resolves through :mod:`repro.ciphers.registry`, so every
    registered cipher (PRESENT, GIFT-64, GIFT-128, AES-128, …) can be
    wrapped by every scheme; unsupported λ-variants (e.g. ``per_sbox`` on
    AES) are rejected with the registry's capability error before any
    synthesis work.
    """
    from repro.ciphers.registry import get_entry
    from repro.countermeasures import (
        build_acisp20,
        build_naive_duplication,
        build_three_in_one,
        build_triplication,
    )
    from repro.countermeasures.three_in_one import LambdaVariant

    entry = get_entry(cipher)
    if scheme == "three-in-one" and variant not in entry.variants:
        raise ValueError(
            f"cipher {entry.name!r} does not support the {variant!r} λ-variant "
            f"(supported: {', '.join(entry.variants)})"
        )
    spec = entry.make(rounds=rounds)
    if scheme == "three-in-one":
        return build_three_in_one(spec, variant=LambdaVariant(variant))
    if scheme == "naive":
        return build_naive_duplication(spec)
    if scheme == "acisp20":
        return build_acisp20(spec)
    if scheme == "triplication":
        return build_triplication(spec)
    raise ValueError(f"unknown scheme {scheme!r} (known: {', '.join(SCHEMES)})")


def circuit_digest(circuit) -> str:
    """SHA-256 identity of a netlist: every gate's type, pins and init.

    Net ids are allocation-ordered and gates are kept in insertion order,
    so the digest is deterministic for a given builder version and changes
    whenever the synthesised structure does.  Tags are excluded — they are
    labels for humans and fault-space enumeration, not circuit semantics
    (and the enumeration itself is pinned separately via the space digest
    inside the certify checkpoint identity).
    """
    h = hashlib.sha256()
    h.update(f"{circuit.name}:{circuit.num_nets}\n".encode())
    for gate in circuit.gates:
        h.update(
            f"{gate.gtype.value}:{gate.out}:"
            f"{','.join(map(str, gate.ins))}:{gate.init}\n".encode()
        )
    return h.hexdigest()


@dataclass(frozen=True)
class CertifyRequest:
    """One certification campaign, as submitted to the daemon."""

    scheme: str = "three-in-one"
    cipher: str = "present80"
    variant: str = "prime"
    rounds: int | None = None
    budget: int | None = None
    runs_per_location: int = 64
    models: tuple[str, ...] | None = None
    cycles: tuple[int, ...] | None = None
    seed: int = 4
    key: str = "0x0123456789abcdef0123"
    backend: str | None = None
    #: wall-clock budget for this request; exceeded → valid *degraded*
    #: certificate via the executor's ``wall_budget`` path.  Not identity.
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        from repro.ciphers.registry import resolve_cipher

        if self.scheme not in SCHEMES:
            raise ValueError(
                f"unknown scheme {self.scheme!r} (known: {', '.join(SCHEMES)})"
            )
        resolve_cipher(self.cipher)  # raises ValueError listing the registry
        int(self.key, 0)  # must be a parseable integer literal

    @classmethod
    def from_dict(cls, doc: dict) -> "CertifyRequest":
        """Build a request from parsed JSON, rejecting unknown fields."""
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        known = set(cls.__dataclass_fields__)
        unknown = set(doc) - known
        if unknown:
            raise ValueError(
                f"unknown request field(s): {', '.join(sorted(unknown))}"
            )
        kwargs = dict(doc)
        if kwargs.get("models") is not None:
            kwargs["models"] = tuple(kwargs["models"])
        if kwargs.get("cycles") is not None:
            kwargs["cycles"] = tuple(int(c) for c in kwargs["cycles"])
        return cls(**kwargs)

    def to_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "cipher": self.cipher,
            "variant": self.variant,
            "rounds": self.rounds,
            "budget": self.budget,
            "runs_per_location": self.runs_per_location,
            "models": list(self.models) if self.models is not None else None,
            "cycles": list(self.cycles) if self.cycles is not None else None,
            "seed": self.seed,
            "key": self.key,
            "backend": self.backend,
            "deadline_s": self.deadline_s,
        }

    def normalized(self) -> "CertifyRequest":
        """Resolve every defaultable field to its canonical value."""
        from repro.certify import DEFAULT_MODELS
        from repro.ciphers.registry import resolve_cipher
        from repro.netlist.simulator import resolve_backend

        return replace(
            self,
            cipher=resolve_cipher(self.cipher),
            models=tuple(self.models) if self.models is not None else DEFAULT_MODELS,
            key=str(int(self.key, 0)),
            backend=resolve_backend(self.backend),
        )


def request_key(request: CertifyRequest, design=None) -> str:
    """The content address of a request: netlist hash + sweep identity.

    ``design`` may be passed to reuse an already-built design (the daemon
    caches them); otherwise it is built here.
    """
    norm = request.normalized()
    if design is None:
        design = build_design(
            norm.scheme, cipher=norm.cipher, variant=norm.variant, rounds=norm.rounds
        )
    doc = {
        "kind": "certify-request",
        "netlist": circuit_digest(design.circuit),
        "scheme": norm.scheme,
        "variant": norm.variant,
        "cipher": design.spec.name,
        "rounds": design.spec.rounds,
        "key": norm.key,
        "seed": norm.seed,
        "runs_per_location": norm.runs_per_location,
        "budget": norm.budget,
        "models": list(norm.models),
        "cycles": list(norm.cycles) if norm.cycles is not None else None,
        "backend": norm.backend,
    }
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()
