"""``repro top`` — a TTY dashboard over the daemon's ``GET /status``.

Pure rendering (:func:`render_status`) split from the polling loop
(:func:`run_top`) so tests drive the former on synthetic status docs and
the latter against an in-process daemon with ``iterations=1``.  On an
interactive TTY the loop repaints in place (ANSI home+clear, suppressed
by ``NO_COLOR``); everywhere else each poll appends a plain frame.
"""

from __future__ import annotations

import os
import sys
import time

__all__ = ["render_status", "run_top"]

_BAR_WIDTH = 24


def _bar(pct: float | None) -> str:
    if pct is None:
        return "·" * _BAR_WIDTH
    filled = int(_BAR_WIDTH * min(100.0, max(0.0, pct)) / 100.0)
    return "#" * filled + "-" * (_BAR_WIDTH - filled)


def _fmt_eta(eta_s) -> str:
    if eta_s is None:
        return "  --"
    eta_s = float(eta_s)
    if eta_s >= 3600:
        return f"{eta_s / 3600:.1f}h"
    if eta_s >= 60:
        return f"{eta_s / 60:.1f}m"
    return f"{eta_s:.0f}s"


def render_status(doc: dict) -> str:
    """One dashboard frame from a ``/status`` document."""
    lines: list[str] = []
    counters = doc.get("counters", {})
    store = doc.get("store", {})
    lines.append(
        f"repro service [{doc.get('status', '?')}] — "
        f"queue {doc.get('queue_depth', 0)}, "
        f"in-flight {doc.get('in_flight', 0)}, "
        f"store {store.get('entries', 0)} cert(s), "
        f"{store.get('pending_work', 0)} resumable"
    )
    lines.append(
        f"requests {counters.get('requests', 0)} | dedupe "
        f"store={counters.get('dedupe_hits_store', 0)} "
        f"inflight={counters.get('dedupe_hits_inflight', 0)} | "
        f"shed {counters.get('shed', 0)} | campaigns "
        f"ok={counters.get('campaigns_completed', 0)} "
        f"degraded={counters.get('campaigns_degraded', 0)} "
        f"failed={counters.get('campaigns_failed', 0)}"
    )

    open_lanes = [
        f"{lane}:{info.get('state')}"
        for lane, info in (doc.get("breaker") or {}).items()
        if info.get("state") != "closed"
    ]
    if open_lanes:
        lines.append("breaker: " + ", ".join(sorted(open_lanes)))

    requests = doc.get("requests", [])
    lines.append("")
    if requests:
        lines.append(
            f"  {'request':<12} {'state':<8} {'scheme':<12} {'backend':<10} "
            f"{'progress':<{_BAR_WIDTH + 2}} {'pct':>6} {'eta':>6} {'rate':>10}"
        )
        for item in requests:
            progress = item.get("progress") or {}
            pct = progress.get("pct")
            rate = progress.get("rate")
            lines.append(
                f"  {item.get('request_id', '?'):<12} "
                f"{item.get('state', '?'):<8} "
                f"{str(item.get('scheme', '?')):<12} "
                f"{str(item.get('backend', '?')):<10} "
                f"[{_bar(pct)}] "
                f"{(f'{pct:5.1f}%' if pct is not None else '    --'):>6} "
                f"{_fmt_eta(progress.get('eta_s')):>6} "
                f"{(f'{rate:,.0f}/s' if rate else '--'):>10}"
            )
    else:
        lines.append("  (no requests in flight)")

    recent = doc.get("recent", [])
    if recent:
        lines.append("")
        lines.append("recent:")
        for item in recent[:5]:
            took = ""
            if item.get("finished_t") and item.get("started_t"):
                took = f" in {item['finished_t'] - item['started_t']:.1f}s"
            lines.append(
                f"  {item.get('request_id', '?'):<12} "
                f"{item.get('state', '?'):<8} "
                f"{str(item.get('scheme', '?')):<12}{took}"
            )
    return "\n".join(lines)


def run_top(
    client,
    *,
    interval: float = 1.0,
    iterations: int | None = None,
    stream=None,
    clear: bool | None = None,
) -> int:
    """Poll ``client.status()`` and repaint until interrupted.

    ``iterations`` bounds the loop for ``--once``/tests; ``clear=None``
    auto-detects (TTY and not ``NO_COLOR``).
    """
    stream = stream if stream is not None else sys.stdout
    if clear is None:
        isatty = getattr(stream, "isatty", None)
        clear = bool(isatty and isatty()) and not os.environ.get("NO_COLOR")
    count = 0
    try:
        while iterations is None or count < iterations:
            doc = client.status()
            frame = render_status(doc)
            if clear:
                stream.write("\x1b[H\x1b[2J" + frame + "\n")
            else:
                stream.write(frame + "\n")
            stream.flush()
            count += 1
            if iterations is not None and count >= iterations:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return 0
