"""Crash-recoverable content-addressed certificate store.

Layout (everything under one ``root`` directory)::

    root/
      index.json        the ledger: request key -> entry metadata, with a
                        whole-document checksum (same discipline as the
                        checkpoint manifest)
      certs/<key>.json  one finished certificate per content address,
                        written by Certificate.save (atomic + integrity)
      work/<key>/       the executor checkpoint directory of an unfinished
                        campaign for that key; removed once the complete
                        certificate is stored

Every durable artefact is written with the PR 5 primitives (tmp + fsync +
``os.replace``) and carries its own digest, so a ``kill -9`` at any point
leaves only (a) verifiable finished artefacts, (b) resumable checkpoint
shards, or (c) garbage that validation rejects.  Recovery is therefore
*read-side*: a torn or bit-rotted index is rebuilt by scanning ``certs/``,
and a certificate that fails its integrity check on ``get`` is discarded
(counted, never served) and recomputed by the caller.

Only **complete** certificates are stored.  A degraded certificate
(deadline/wall-budget truncation, quarantined shards) is returned to its
requester but not cached — its checkpoints stay in ``work/<key>/`` so the
next identical request resumes where it left off and, given enough
budget, completes and *then* enters the cache.  This is what makes a
daemon restart after ``kill -9`` serve the same request to a bit-identical
certificate: either the finished artefact is already in ``certs/``, or the
campaign re-runs over its surviving shards deterministically.

Chaos: writes are followed by ``chaos.corrupt_file("service.store", ...)``
hooks, so the seeded replay suite can tear/bit-rot exactly these artefacts
and assert the recovery paths above.
"""

from __future__ import annotations

import json
import logging
import os
import shutil
from pathlib import Path

from repro.certify.certificate import Certificate, CertificateError
from repro.resilience.chaos import chaos
from repro.resilience.persist import atomic_write_json, sha256_bytes
from repro.telemetry import metrics, trace

__all__ = ["ResultStore", "StoreCorrupt"]

log = logging.getLogger(__name__)

STORE_VERSION = 1


class StoreCorrupt(RuntimeError):
    """The index ledger is unreadable (recovered from, never fatal)."""


class ResultStore:
    """Content-addressed certificate store with a checksummed index."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.certs_dir = self.root / "certs"
        self.work_root = self.root / "work"
        self.index_path = self.root / "index.json"
        self.entries: dict[str, dict] = {}
        self.root.mkdir(parents=True, exist_ok=True)
        self.certs_dir.mkdir(exist_ok=True)
        self.work_root.mkdir(exist_ok=True)
        self._load_index()

    # ---------------------------------------------------------------- index

    def _load_index(self) -> None:
        if not self.index_path.exists():
            self.entries = {}
            return
        try:
            doc = json.loads(self.index_path.read_text())
            if doc.get("version") != STORE_VERSION:
                raise StoreCorrupt(
                    f"unsupported store version {doc.get('version')!r}"
                )
            body = {"version": doc["version"], "entries": doc["entries"]}
            payload = json.dumps(
                body, sort_keys=True, separators=(",", ":")
            ).encode()
            if doc.get("checksum") != sha256_bytes(payload):
                raise StoreCorrupt("index fails its checksum")
            self.entries = dict(doc["entries"])
        except (OSError, ValueError, KeyError, StoreCorrupt) as exc:
            # A torn/bit-rotted ledger holds no trustworthy state; the
            # certificates themselves are self-validating, so rebuild the
            # ledger from them instead of refusing to start.
            log.warning("store index unusable (%s); rebuilding from certs/", exc)
            trace.event("service.store_index_recovered", error=str(exc))
            metrics.inc("service.store.index_recovered")
            self._rebuild_index()

    def _rebuild_index(self) -> None:
        self.entries = {}
        for path in sorted(self.certs_dir.glob("*.json")):
            key = path.stem
            try:
                certificate = Certificate.load(path)
            except CertificateError as exc:
                log.warning("dropping unverifiable certificate %s (%s)", path, exc)
                metrics.inc("service.store.certs_dropped")
                path.unlink(missing_ok=True)
                continue
            self.entries[key] = self._entry(key, certificate)
        self.flush()

    @staticmethod
    def _entry(key: str, certificate: Certificate) -> dict:
        return {
            "scheme": certificate.scheme,
            "cipher": certificate.cipher,
            "rounds": certificate.rounds,
            "backend": (
                (certificate.timing.get("manifest") or {}).get("backend")
            ),
            "passed": certificate.passed,
        }

    def flush(self) -> None:
        """Atomically persist the index with a whole-document checksum."""
        body = {"version": STORE_VERSION, "entries": self.entries}
        payload = json.dumps(
            body, sort_keys=True, separators=(",", ":")
        ).encode()
        atomic_write_json(
            self.index_path, {**body, "checksum": sha256_bytes(payload)}
        )
        chaos.corrupt_file("service.store", self.index_path)

    # ---------------------------------------------------------- certificates

    def cert_path(self, key: str) -> Path:
        return self.certs_dir / f"{key}.json"

    def work_dir(self, key: str) -> Path:
        """The checkpoint directory for an in-progress campaign on ``key``."""
        return self.work_root / key[:32]

    def __contains__(self, key: str) -> bool:
        return key in self.entries

    def get(self, key: str) -> Certificate | None:
        """Fetch and *verify* a stored certificate; a bad one is evicted."""
        if key not in self.entries:
            return None
        path = self.cert_path(key)
        try:
            certificate = Certificate.load(path)
        except CertificateError as exc:
            # Bit-rot/torn write since it was stored: never serve it —
            # evict and let the caller recompute deterministically.
            log.warning("stored certificate %s fails validation (%s)", path, exc)
            trace.event("service.store_cert_corrupt", key=key, error=str(exc))
            metrics.inc("service.store.certs_corrupt")
            path.unlink(missing_ok=True)
            self.entries.pop(key, None)
            self.flush()
            return None
        metrics.inc("service.store.hits")
        return certificate

    def put(self, key: str, certificate: Certificate) -> None:
        """Store a *complete* certificate and retire its work directory."""
        if certificate.degraded:
            raise ValueError(
                "refusing to cache a degraded certificate; its checkpoints "
                "remain resumable under work/"
            )
        path = self.cert_path(key)
        certificate.save(path)
        chaos.corrupt_file("service.store", path)
        self.entries[key] = self._entry(key, certificate)
        self.flush()
        metrics.inc("service.store.puts")
        work = self.work_dir(key)
        if work.exists():
            shutil.rmtree(work, ignore_errors=True)

    def keys(self) -> list[str]:
        return sorted(self.entries)

    def pending_work(self) -> list[str]:
        """Key prefixes with surviving checkpoints (crash debris to resume)."""
        return sorted(
            p.name for p in self.work_root.iterdir() if p.is_dir()
        ) if self.work_root.exists() else []
