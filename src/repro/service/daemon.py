"""The always-on certification daemon (``repro serve``).

A stdlib-``asyncio`` service that multiplexes concurrent certification
campaigns over the existing sharded executor.  One process, three moving
parts:

- an **HTTP/JSON listener** (hand-rolled over ``asyncio.start_server`` —
  no framework dependency) exposing ``POST /certify``, ``GET
  /certificate/<key>``, ``GET /healthz``, ``GET /status`` and ``GET
  /metrics`` (JSON by default, Prometheus text exposition when the
  client sends ``Accept: text/plain``);
- a pool of **campaign workers** (asyncio tasks) that pull admitted
  requests off a queue and run :func:`repro.certify.certify_design` in a
  thread, checkpointed under the store's ``work/<key>`` directory so any
  interruption — including ``kill -9`` of the whole daemon — resumes
  deterministically;
- the :class:`~repro.service.store.ResultStore` front-ending it all with
  content-addressed dedupe.

Robustness contract (the headline of this subsystem):

**Dedupe** — a request whose :func:`~repro.service.protocol.request_key`
matches a stored certificate is served from disk (``cached: "store"``);
one matching a campaign already running awaits that campaign's future
(``cached: "inflight"``) — N identical concurrent requests cost exactly
one simulation, asserted by the ``dedupe_hits`` counters.

**Admission control** — at most ``max_queue`` campaigns may be admitted
(queued + running).  Beyond that, requests are *shed* with a structured
``429`` carrying ``Retry-After`` — predictable latency for admitted work
beats unbounded queueing.  Dedupe hits bypass admission entirely (they
cost no simulation).

**Deadlines degrade, never drop** — a per-request ``deadline_s`` maps
onto the executor's ``wall_budget``: when it expires the campaign stops
scheduling shards and emits a *valid degraded* certificate with explicit
uncovered-space accounting, and its checkpoints stay resumable.

**Circuit breaker** — repeated campaign failures (typed by PR 5's
``ErrorKind``) open the (cipher, backend) lane and new work is routed
over a healthy bit-exact backend; with every lane open the request is
refused with a structured ``503``.

**Graceful drain** — SIGTERM/SIGINT stops admission (``503 draining``),
lets in-flight campaigns finish (or checkpoint, bounded by
``drain_timeout_s``), persists the store index and exits 0.

Chaos sites ``service.request`` / ``service.store`` / ``service.drain``
instrument the request path, the store writes and the drain sequence, so
the seeded replay methodology of ``tests/test_chaos.py`` extends to the
daemon end to end.

**Request correlation** — every ``POST /certify`` is assigned a
``request_id`` (``req-NNNNNN``), returned in the response and threaded
through the campaign thread (:meth:`Tracer.bind`), the executor and pool
workers, so every span and event of the campaign carries the id and
``repro trace analyze --request`` reconstructs the request end to end.
The campaign's :class:`~repro.telemetry.progress.ProgressTracker`
publishes under the same id to the live board, which ``GET /status``
merges with the request registry: per-request state, shard progress %,
ETA, plus queue depth, breaker lanes and store/dedupe counters.  A
request carrying ``"wait": false`` is acknowledged immediately with
``202 Accepted`` (poll ``/status`` then ``/certificate/<key>``).
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.resilience.chaos import ChaosSpec, chaos
from repro.resilience.errors import classify_error
from repro.service.breaker import CircuitBreaker
from repro.service.protocol import CertifyRequest, build_design, request_key
from repro.service.store import ResultStore
from repro.telemetry import (
    clear_live,
    live_progress,
    metrics,
    render_prometheus,
    trace,
)

__all__ = ["CertificationService", "ServiceConfig", "ServiceUnavailable"]

log = logging.getLogger(__name__)


class ServiceUnavailable(RuntimeError):
    """Every candidate (cipher, backend) lane is quarantined."""


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the certification daemon."""

    #: store root; certificates, index and campaign checkpoints live here
    store_dir: object = "repro-store"
    host: str = "127.0.0.1"
    #: 0 = pick an ephemeral port (recorded on ``service.port`` once bound)
    port: int = 0
    #: concurrent campaigns (asyncio workers, each running one campaign
    #: in a thread over the sharded executor)
    concurrency: int = 2
    #: admission bound: campaigns admitted (queued + running) before
    #: load-shedding kicks in; dedupe hits do not count against it
    max_queue: int = 8
    #: executor worker processes *per campaign*
    jobs: int = 1
    #: deadline applied to requests that do not carry their own
    default_deadline_s: float | None = None
    #: consecutive (cipher, backend) failures before the lane opens
    breaker_threshold: int = 3
    #: seconds an open lane stays quarantined before a half-open probe
    breaker_cooldown_s: float = 60.0
    #: how long a drain waits for in-flight campaigns before giving up
    #: (their checkpoints make the abandonment lossless)
    drain_timeout_s: float = 600.0
    #: Retry-After hint (seconds) on shed responses, scaled by queue depth
    retry_after_s: float = 2.0


class CertificationService:
    """See module docstring.  ``certify`` is injectable for tests."""

    def __init__(
        self, config: ServiceConfig, *, certify=None
    ) -> None:
        from repro.certify import certify_design
        from repro.netlist.simulator import resolve_backend

        # Eager environment validation: a typo'd REPRO_CHAOS schedule or
        # REPRO_SIM_BACKEND override must refuse to start the daemon, not
        # silently never fire / blow up mid-campaign in a worker.
        ChaosSpec.from_env()
        resolve_backend(None)
        chaos.configure_from_env()

        self.config = config
        self.store = ResultStore(config.store_dir)
        self.breaker = CircuitBreaker(
            threshold=config.breaker_threshold,
            cooldown_s=config.breaker_cooldown_s,
        )
        self._certify = certify or certify_design
        self._designs: dict = {}
        self._design_lock = threading.Lock()
        self._store_lock = threading.Lock()
        self.counters = {
            "requests": 0,
            "bad_requests": 0,
            "dedupe_hits_store": 0,
            "dedupe_hits_inflight": 0,
            "shed": 0,
            "campaigns_started": 0,
            "campaigns_completed": 0,
            "campaigns_degraded": 0,
            "campaigns_failed": 0,
            "rerouted": 0,
            "drains": 0,
        }
        self.port: int | None = None
        self.ready = threading.Event()
        self._draining = False
        self._req_index = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._stop: asyncio.Event | None = None
        #: request_id -> live registry entry (queued/running campaigns)
        self._requests: dict[str, dict] = {}
        #: most recently finished requests, newest first (for /status)
        self._recent: deque = deque(maxlen=16)

    # ------------------------------------------------------------- plumbing

    def _count(self, name: str, n: int = 1) -> None:
        self.counters[name] += n
        metrics.inc(f"service.{name}", n)

    def _key_and_design(self, norm: CertifyRequest):
        sig = (norm.scheme, norm.cipher, norm.variant, norm.rounds)
        with self._design_lock:
            design = self._designs.get(sig)
            if design is None:
                design = build_design(
                    norm.scheme,
                    cipher=norm.cipher,
                    variant=norm.variant,
                    rounds=norm.rounds,
                )
                self._designs[sig] = design
        return request_key(norm, design), design

    def _choose_backend(self, norm: CertifyRequest, cipher: str) -> str:
        """Requested lane if healthy, else route around the open breaker."""
        from repro.netlist.simulator import BACKENDS

        requested = norm.backend
        for backend in [requested] + [b for b in BACKENDS if b != requested]:
            if self.breaker.allow(cipher, backend):
                if backend != requested:
                    self._count("rerouted")
                    trace.event(
                        "service.rerouted",
                        cipher=cipher,
                        requested=requested,
                        used=backend,
                    )
                return backend
        raise ServiceUnavailable(
            f"all simulation backends quarantined for cipher {cipher!r}"
        )

    # ------------------------------------------------------------- campaign

    def _run_campaign(
        self, norm: CertifyRequest, design, backend: str, key: str,
        rid: str, parent_span: str | None,
    ):
        from repro.certify import CertifyConfig

        deadline = (
            norm.deadline_s
            if norm.deadline_s is not None
            else self.config.default_deadline_s
        )
        config = CertifyConfig(
            budget=norm.budget,
            runs_per_location=norm.runs_per_location,
            models=norm.models,
            cycles=norm.cycles,
            seed=norm.seed,
            backend=backend,
            jobs=self.config.jobs,
            checkpoint_dir=str(self.store.work_dir(key)),
            resume=True,
            wall_budget=deadline,
        )
        # The campaign thread binds the request id so every span/event it
        # (and its pool workers) writes is stamped, publishes live
        # progress under it, and adopts the loop thread's
        # ``service.campaign`` span so the trace stays one tree.
        with trace.bind(request_id=rid), trace.adopt(parent_span):
            certificate = self._certify(
                design, key=int(norm.key, 0), config=config
            )
        if not certificate.degraded:
            with self._store_lock:
                self.store.put(key, certificate)
        return certificate

    async def _worker(self) -> None:
        while True:
            key, norm, design, future, rid = await self._queue.get()
            try:
                if not future.done():
                    await self._execute(key, norm, design, future, rid)
            finally:
                self._inflight.pop(key, None)
                self._queue.task_done()

    async def _execute(self, key, norm, design, future, rid) -> None:
        cipher = design.spec.name
        try:
            backend = self._choose_backend(norm, cipher)
        except ServiceUnavailable as exc:
            future.set_exception(exc)
            return
        self._count("campaigns_started")
        entry = self._requests.get(rid)
        if entry is not None:
            entry["state"] = "running"
            entry["backend"] = backend
            entry["started_t"] = round(time.time(), 3)
        with trace.span(
            "service.campaign", key=key[:16], scheme=norm.scheme,
            backend=backend, request_id=rid,
        ) as campaign_span:
            parent_span = getattr(campaign_span, "span_id", None)
            try:
                certificate = await asyncio.to_thread(
                    self._run_campaign, norm, design, backend, key, rid,
                    parent_span,
                )
            except Exception as exc:
                kind = str(classify_error(exc))
                self.breaker.record_failure(cipher, backend, kind)
                self._count("campaigns_failed")
                log.error(
                    "campaign %s failed on %s/%s [%s]: %s",
                    key[:16], cipher, backend, kind, exc,
                )
                if not future.done():
                    future.set_exception(exc)
                return
        coverage = certificate.coverage
        infra_dead = (
            coverage.get("locations_covered") == 0
            and coverage.get("failed_shards")
            and coverage.get("locations_planned", 0) > 0
        )
        if infra_dead:
            # Every shard was quarantined: the lane, not the design, is
            # sick — feed the breaker the first shard's typed error.
            kind = coverage["failed_shards"][0].get("error_kind", "transient")
            self.breaker.record_failure(cipher, backend, kind)
            self._count("campaigns_failed")
        else:
            self.breaker.record_success(cipher, backend)
        self._count("campaigns_completed")
        if certificate.degraded:
            self._count("campaigns_degraded")
        if not future.done():
            future.set_result((certificate, backend))

    # -------------------------------------------------------------- request

    async def handle_request(self, doc: dict, *, wait: bool = True) -> tuple[int, dict]:
        """Process one ``POST /certify`` body; returns (http_status, doc).

        ``wait=False`` acknowledges an admitted campaign with ``202``
        immediately (``request_id`` + ``key`` for /status + /certificate
        polling) instead of holding the connection open.
        """
        self._req_index += 1
        rid = f"req-{self._req_index:06d}"
        self._count("requests")
        chaos.at("service.request", index=self._req_index)
        try:
            request = CertifyRequest.from_dict(doc).normalized()
        except (ValueError, TypeError) as exc:
            self._count("bad_requests")
            return 400, {"status": "bad_request", "error": str(exc), "request_id": rid}
        if self._draining:
            return 503, {
                "status": "draining",
                "retry_after_s": self.config.retry_after_s,
                "request_id": rid,
            }
        key, design = await asyncio.to_thread(self._key_and_design, request)

        with self._store_lock:
            stored = self.store.get(key)
        if stored is not None:
            self._count("dedupe_hits_store")
            doc = self._done(key, stored, cached="store")
            doc["request_id"] = rid
            return 200, doc

        future = self._inflight.get(key)
        if future is not None:
            self._count("dedupe_hits_inflight")
            if not wait:
                return 202, {
                    "status": "accepted",
                    "request_id": rid,
                    "key": key,
                    "cached": "inflight",
                }
            status, doc = await self._await_result(key, future, cached="inflight")
            doc["request_id"] = rid
            return status, doc

        admitted = self._queue.qsize() + sum(
            1 for f in self._inflight.values() if not f.done()
        )
        if admitted >= self.config.max_queue:
            self._count("shed")
            retry = self.config.retry_after_s * max(1, admitted)
            trace.event("service.shed", queue_depth=admitted, request_id=rid)
            return 429, {
                "status": "shed",
                "queue_depth": admitted,
                "retry_after_s": retry,
                "request_id": rid,
            }

        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self._requests[rid] = {
            "request_id": rid,
            "key": key,
            "state": "queued",
            "scheme": request.scheme,
            "cipher": request.cipher,
            "backend": request.backend,
            "queued_t": round(time.time(), 3),
        }
        trace.event(
            "request.accepted", request_id=rid, key=key[:16],
            scheme=request.scheme, cipher=request.cipher, wait=wait,
        )
        # The callback both maintains the registry and retrieves the
        # future's exception, so fire-and-forget (wait=False) campaign
        # failures never log "exception was never retrieved".
        future.add_done_callback(
            lambda f, rid=rid, key=key: self._finish_request(rid, key, f)
        )
        await self._queue.put((key, request, design, future, rid))
        if not wait:
            return 202, {"status": "accepted", "request_id": rid, "key": key}
        status, doc = await self._await_result(key, future, cached=None)
        doc["request_id"] = rid
        return status, doc

    def _finish_request(self, rid: str, key: str, future) -> None:
        """Move a finished request from the live registry to /status recents."""
        clear_live(rid)
        entry = self._requests.pop(rid, None)
        if entry is None:
            return
        entry["finished_t"] = round(time.time(), 3)
        if future.cancelled():
            entry["state"] = "cancelled"
        elif future.exception() is not None:
            exc = future.exception()
            entry["state"] = "failed"
            entry["error"] = f"{type(exc).__name__}: {exc}"
        else:
            certificate, backend = future.result()
            entry["state"] = "degraded" if certificate.degraded else "done"
            entry["backend"] = backend
            entry["passed"] = certificate.passed
        trace.event(
            "request.done", request_id=rid, key=key[:16], state=entry["state"]
        )
        self._recent.appendleft(entry)

    async def _await_result(self, key, future, *, cached) -> tuple[int, dict]:
        try:
            certificate, backend = await asyncio.shield(future)
        except ServiceUnavailable as exc:
            return 503, {
                "status": "quarantined",
                "error": str(exc),
                "retry_after_s": self.config.breaker_cooldown_s,
            }
        except Exception as exc:
            return 500, {
                "status": "error",
                "error": f"{type(exc).__name__}: {exc}",
                "error_kind": str(classify_error(exc)),
            }
        return 200, self._done(key, certificate, cached=cached, backend=backend)

    def _done(self, key, certificate, *, cached, backend=None) -> dict:
        return {
            "status": "done",
            "key": key,
            "cached": cached,
            "backend": backend,
            "passed": certificate.passed,
            "degraded": certificate.degraded,
            "certificate": certificate.to_dict(),
        }

    # ----------------------------------------------------------------- http

    async def _handle_conn(self, reader, writer) -> None:
        try:
            status, doc, extra = await self._handle_http(reader)
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                ConnectionError, asyncio.TimeoutError):
            writer.close()
            return
        except Exception as exc:  # a handler bug must not kill the daemon
            log.exception("request handler crashed")
            status, doc, extra = 500, {
                "status": "error", "error": f"{type(exc).__name__}: {exc}",
            }, {}
        if isinstance(doc, str):
            # pre-rendered text body (Prometheus exposition)
            body = doc.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = (json.dumps(doc, sort_keys=True) + "\n").encode()
            content_type = "application/json"
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 429: "Too Many Requests",
                  500: "Internal Server Error", 503: "Service Unavailable"}
        headers = [
            f"HTTP/1.1 {status} {reason.get(status, 'OK')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        if isinstance(doc, dict) and "retry_after_s" in doc:
            headers.append(f"Retry-After: {max(1, round(doc['retry_after_s']))}")
        for name, value in (extra or {}).items():
            headers.append(f"{name}: {value}")
        try:
            writer.write("\r\n".join(headers).encode() + b"\r\n\r\n" + body)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _handle_http(self, reader) -> tuple[int, dict, dict]:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=30.0
        )
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, path, _ = lines[0].split(" ", 2)
        except ValueError:
            return 400, {"status": "bad_request", "error": "malformed request line"}, {}
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=60.0
            )

        if method == "GET" and path == "/healthz":
            return 200, self.health(), {}
        if method == "GET" and path == "/metrics":
            accept = headers.get("accept", "")
            if "text/plain" in accept or "openmetrics" in accept:
                return 200, render_prometheus(metrics.snapshot()), {}
            return 200, {"metrics": metrics.snapshot()}, {}
        if method == "GET" and path == "/status":
            return 200, self.status(), {}
        if method == "GET" and path.startswith("/certificate/"):
            key = path[len("/certificate/"):]
            with self._store_lock:
                certificate = self.store.get(key)
            if certificate is None:
                return 404, {"status": "not_found", "key": key}, {}
            return 200, self._done(key, certificate, cached="store"), {}
        if method == "POST" and path == "/certify":
            try:
                doc = json.loads(body.decode() or "{}")
            except ValueError as exc:
                return 400, {"status": "bad_request", "error": f"bad JSON: {exc}"}, {}
            # "wait" is transport-level (hold the connection or not), not
            # part of the request identity — peel it off before parsing.
            wait = True
            if isinstance(doc, dict):
                wait = bool(doc.pop("wait", True))
            status, response = await self.handle_request(doc, wait=wait)
            return status, response, {}
        return 404, {"status": "not_found", "path": path}, {}

    def health(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "in_flight": sum(
                1 for f in self._inflight.values() if not f.done()
            ),
            "counters": dict(self.counters),
            "breaker": self.breaker.snapshot(),
            "store": {
                "entries": len(self.store.entries),
                "pending_work": self.store.pending_work(),
            },
        }

    def status(self) -> dict:
        """Live introspection: health + per-request registry and progress.

        Each in-flight request is joined against the telemetry live
        board, so a running campaign reports shard-level progress %,
        throughput and ETA in real time.
        """
        board = live_progress()
        requests = []
        for entry in list(self._requests.values()):
            item = dict(entry)
            snap = board.get(item["request_id"])
            if snap:
                total = snap.get("total") or 0
                done = snap.get("done", 0)
                item["progress"] = {
                    "label": snap.get("label"),
                    "done": done,
                    "total": total,
                    "pct": round(100.0 * done / total, 1) if total else None,
                    "shards_done": snap.get("items_done"),
                    "shards_total": snap.get("items_total"),
                    "rate": snap.get("rate"),
                    "eta_s": snap.get("eta_s"),
                    "elapsed_s": snap.get("elapsed_s"),
                }
            requests.append(item)
        requests.sort(key=lambda item: item["request_id"])
        doc = self.health()
        doc["requests"] = requests
        doc["recent"] = [dict(entry) for entry in self._recent]
        return doc

    # ---------------------------------------------------------------- drain

    def begin_drain(self) -> None:
        """Stop admitting new campaigns (idempotent, thread-safe to call)."""
        if not self._draining:
            self._draining = True
            self._count("drains")
            trace.event("service.drain_begin")
            log.info("drain: admission stopped; finishing in-flight campaigns")

    async def _drain_and_stop(self) -> None:
        self.begin_drain()
        try:
            chaos.at("service.drain")
        except Exception as exc:
            # Chaos (or any hook failure) in the drain path must never
            # leave the daemon undead: log it and keep draining.
            log.warning("drain hook raised (%s); draining anyway", exc)
            trace.event("service.drain_hook_failed", error=str(exc))
        pending = [f for f in self._inflight.values() if not f.done()]
        if pending:
            done, not_done = await asyncio.wait(
                pending, timeout=self.config.drain_timeout_s
            )
            if not_done:
                # Abandoning is lossless: every campaign checkpoints under
                # work/<key> and the next identical request resumes it.
                log.warning(
                    "drain: %d campaign(s) still running after %.1fs; "
                    "their checkpoints remain resumable",
                    len(not_done), self.config.drain_timeout_s,
                )
                trace.event("service.drain_timeout", abandoned=len(not_done))
        with self._store_lock:
            self.store.flush()
        trace.event("service.drain_complete")
        log.info("drain complete; store index persisted")
        self._stop.set()

    def request_shutdown(self) -> None:
        """Thread-safe graceful-drain trigger (what SIGTERM is wired to)."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(
                lambda: asyncio.ensure_future(self._drain_and_stop())
            )

    # ------------------------------------------------------------------ run

    async def run(self) -> None:
        """Serve until a drain completes (SIGTERM or request_shutdown)."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._stop = asyncio.Event()
        workers = [
            asyncio.ensure_future(self._worker())
            for _ in range(max(1, self.config.concurrency))
        ]
        server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(self._drain_and_stop()),
                )
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # not the main thread, or platform without signals
        log.info(
            "certification service listening on http://%s:%d (store: %s)",
            self.config.host, self.port, self.store.root,
        )
        trace.event(
            "service.listening", host=self.config.host, port=self.port
        )
        self.ready.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            for worker in workers:
                worker.cancel()
            await asyncio.gather(*workers, return_exceptions=True)
            self.ready.clear()

    def serve(self) -> int:
        """Blocking entry point; returns 0 after a graceful drain."""
        asyncio.run(self.run())
        return 0
