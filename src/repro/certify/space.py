"""Enumeration of a protected design's single-fault space.

The paper's security claim quantifies over *every* single-fault location,
not just the hand-picked S-box lines the figure campaigns target.  This
module turns that quantifier into a concrete, indexable set: a
:class:`FaultSpace` enumerates ``location × fault type × active round``
for each adversarial model and maps any integer index to a replayable
:class:`~repro.faults.models.FaultScenario` with pure arithmetic — no
scenario materialises until asked for, so a six-figure space costs a few
tuples of net ids.

The certified region per model:

``single``
    Every net in the union of the cores' ciphertext fan-in cones
    (:func:`repro.netlist.analysis.datapath_nets`), under stuck-at-0/1 and
    bit-flip, at every active round.  Primary inputs and constants are
    excluded (faulting an input is querying a different plaintext, not
    attacking the computation), as is the comparator/release backend: it
    sits *behind* the redundancy boundary, where a stuck output gate
    trivially bypasses any redundancy scheme — that boundary is the
    paper's fault model and the lint pass checks the backend structurally
    instead.
``identical_mask``
    Selmke FDTC'16 generalised: the same stuck-at landing on the
    *corresponding* state-carrying nets of every core (S-box inputs and
    outputs, register state, pre-decode output) — the model that breaks
    naive duplication and that the complementary λ/λ̄ encoding defeats.
    Only the biased types are swept: a common *bit-flip* commutes with any
    XOR encoding (flipping x⊕λ and x⊕λ̄ flips both decoded values
    identically), so no duplication-with-XOR-masking scheme can detect
    it — it is outside the countermeasure's claim, and sweeping it would
    certify nothing but that known algebraic fact.
``layer_glitch``
    A clock glitch truncating one core's combinational stage: every net of
    an S-box layer (inputs or outputs) corrupted simultaneously in one
    cycle.
``coupled``
    One physical event bleeding into adjacent wires of the same core:
    neighbouring S-box input lines faulted together, per-run hit pattern
    shared through the specs' coupling group.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.faults.models import (
    FaultScenario,
    FaultType,
    coupled_fault,
    identical_mask_fault,
    layer_glitch_fault,
    single_fault,
)
from repro.netlist.analysis import datapath_nets
from repro.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.countermeasures.base import ProtectedDesign

__all__ = [
    "DEFAULT_MODELS",
    "FaultSpace",
    "SpaceSection",
    "enumerate_fault_space",
    "locations_for_budget",
]

DEFAULT_MODELS = ("single", "identical_mask", "layer_glitch", "coupled")

#: fault types swept per model (biased-only where noted in the module doc)
_MODEL_TYPES = {
    "single": (FaultType.STUCK_AT_0, FaultType.STUCK_AT_1, FaultType.BIT_FLIP),
    "identical_mask": (FaultType.STUCK_AT_0, FaultType.STUCK_AT_1),
    "layer_glitch": (FaultType.BIT_FLIP, FaultType.RESET_FLIP),
    "coupled": (FaultType.STUCK_AT_0, FaultType.STUCK_AT_1, FaultType.BIT_FLIP),
}


@dataclass(frozen=True)
class SpaceSection:
    """One model's slice of the space: ``locations × types × cycles``.

    ``locs`` holds plain net ids (``single``) or tuples of net ids (the
    multi-net models); everything is picklable data so executor workers can
    rebuild any scenario from an index.  Index layout (row-major):
    ``((loc * n_types) + type) * n_cycles + cycle`` — all cycles of one
    (location, type) are adjacent, which keeps the stratified sampler's
    arithmetic trivial.
    """

    model: str
    locs: tuple
    fault_types: tuple[FaultType, ...]
    cycles: tuple[int, ...]

    @property
    def count(self) -> int:
        return len(self.locs) * len(self.fault_types) * len(self.cycles)

    def split(self, local: int) -> tuple[int, int, int]:
        """Index → ``(loc_index, type_index, cycle_index)``."""
        loc, rest = divmod(local, len(self.fault_types) * len(self.cycles))
        type_idx, cycle_idx = divmod(rest, len(self.cycles))
        return loc, type_idx, cycle_idx

    def scenario(self, local: int) -> FaultScenario:
        loc_idx, type_idx, cycle_idx = self.split(local)
        loc = self.locs[loc_idx]
        ftype = self.fault_types[type_idx]
        cycle = self.cycles[cycle_idx]
        if self.model == "single":
            return single_fault(loc, ftype, cycle, label=f"r{cycle}:{ftype.value}@{loc}")
        if self.model == "identical_mask":
            return identical_mask_fault(
                loc, ftype, cycle, label=f"r{cycle}:idmask:{ftype.value}@{'/'.join(map(str, loc))}"
            )
        if self.model == "layer_glitch":
            return layer_glitch_fault(
                loc, cycle, fault_type=ftype,
                label=f"r{cycle}:glitch:{ftype.value}@[{loc[0]}..{loc[-1]}]",
            )
        if self.model == "coupled":
            return coupled_fault(
                loc, ftype, cycle, label=f"r{cycle}:coupled:{ftype.value}@{'/'.join(map(str, loc))}"
            )
        raise ValueError(f"unknown fault model {self.model!r}")


@dataclass(frozen=True)
class FaultSpace:
    """The full fault space of one design, lazily indexable."""

    sections: tuple[SpaceSection, ...]

    @property
    def total(self) -> int:
        return sum(s.count for s in self.sections)

    def per_model(self) -> dict[str, int]:
        return {s.model: s.count for s in self.sections}

    def _locate(self, index: int) -> tuple[SpaceSection, int]:
        if index < 0:
            raise IndexError(index)
        offset = index
        for section in self.sections:
            if offset < section.count:
                return section, offset
            offset -= section.count
        raise IndexError(f"fault-space index {index} >= total {self.total}")

    def scenario(self, index: int) -> FaultScenario:
        """Materialise the scenario at a global index."""
        section, local = self._locate(index)
        return section.scenario(local)

    def stratum(self, index: int) -> tuple[str, str, int]:
        """``(model, fault_type, cycle)`` of an index, without building it."""
        section, local = self._locate(index)
        _, type_idx, cycle_idx = section.split(local)
        return (
            section.model,
            section.fault_types[type_idx].value,
            section.cycles[cycle_idx],
        )

    def digest(self) -> str:
        """SHA-256 identity of the space (pins certify checkpoints)."""
        doc = [
            {
                "model": s.model,
                "locs": [
                    list(loc) if isinstance(loc, tuple) else loc for loc in s.locs
                ],
                "types": [t.value for t in s.fault_types],
                "cycles": list(s.cycles),
            }
            for s in self.sections
        ]
        return hashlib.sha256(
            json.dumps(doc, sort_keys=True).encode()
        ).hexdigest()

    def sample(self, n_locations: int, *, seed: int) -> np.ndarray:
        """Deterministic stratified sample of ``n_locations`` indices.

        Strata are ``(model, fault type, cycle)`` cells; the budget is
        allocated proportionally to each cell's size (largest-remainder
        rounding, every non-empty cell gets at least one slot while slots
        remain) so no corner of the space is silently skipped.  Within a
        cell, locations are drawn without replacement from
        ``derive_rng(seed, cell_rank)`` — the sample depends only on
        ``(space, n_locations, seed)``.
        """
        if n_locations >= self.total:
            return np.arange(self.total, dtype=np.int64)
        # Enumerate cells in canonical order: section, type, cycle.
        cells: list[tuple[int, int, int, int]] = []  # (base, stride-info...)
        base = 0
        for s_idx, section in enumerate(self.sections):
            for type_idx in range(len(section.fault_types)):
                for cycle_idx in range(len(section.cycles)):
                    cells.append((s_idx, type_idx, cycle_idx, base))
            base += section.count
        sizes = [len(self.sections[c[0]].locs) for c in cells]
        total = self.total

        quotas = [n_locations * size / total for size in sizes]
        alloc = [min(int(q), size) for q, size in zip(quotas, sizes)]
        # Every non-empty cell gets at least one slot while the budget
        # allows — tiny strata (e.g. layer_glitch) must not be starved by
        # proportionality.
        if n_locations >= len(cells):
            for i, a in enumerate(alloc):
                if a == 0:
                    alloc[i] = 1
        leftover = n_locations - sum(alloc)
        if leftover < 0:
            # The minimum-one guarantee oversubscribed: shave the largest
            # allocations back down (never below one), deterministically.
            while leftover < 0:
                i = max(range(len(cells)), key=lambda j: (alloc[j], -j))
                if alloc[i] <= 1:  # pragma: no cover - budget >= n_cells guards this
                    break
                alloc[i] -= 1
                leftover += 1
        order = sorted(
            range(len(cells)),
            key=lambda i: (-(quotas[i] - int(quotas[i])), i),
        )
        for i in order:
            if leftover <= 0:
                break
            if alloc[i] < sizes[i]:
                alloc[i] += 1
                leftover -= 1
        # If fractional ties left slots over, round-robin the remainder.
        while leftover > 0:
            progressed = False
            for i in order:
                if leftover <= 0:
                    break
                if alloc[i] < sizes[i]:
                    alloc[i] += 1
                    leftover -= 1
                    progressed = True
            if not progressed:  # pragma: no cover - n_locations < total guards this
                break

        chosen: list[np.ndarray] = []
        for rank, ((s_idx, type_idx, cycle_idx, cell_base), k) in enumerate(
            zip(cells, alloc)
        ):
            if k <= 0:
                continue
            section = self.sections[s_idx]
            rng = derive_rng(seed, rank)
            locs = np.sort(rng.choice(len(section.locs), size=k, replace=False))
            n_cyc = len(section.cycles)
            stride = len(section.fault_types) * n_cyc
            chosen.append(
                cell_base + locs * stride + type_idx * n_cyc + cycle_idx
            )
        return np.sort(np.concatenate(chosen).astype(np.int64))


def _corresponding_nets(design: "ProtectedDesign") -> list[tuple[int, ...]]:
    """Tuples of the same logical wire in every core (identical-mask locs)."""
    per_core: list[list[int]] = []
    for core in design.cores:
        nets: list[int] = []
        for word in core.sbox_inputs:
            nets.extend(word)
        for word in core.sbox_outputs:
            nets.extend(word)
        nets.extend(core.state_in)
        nets.extend(core.raw_output)
        per_core.append(nets)
    widths = {len(nets) for nets in per_core}
    if len(widths) != 1:
        raise ValueError(
            f"cores expose differently sized state layers: {sorted(widths)}"
        )
    return [tuple(group) for group in zip(*per_core)]


def enumerate_fault_space(
    design: "ProtectedDesign",
    *,
    models: tuple[str, ...] = DEFAULT_MODELS,
    cycles: tuple[int, ...] | None = None,
) -> FaultSpace:
    """Build the :class:`FaultSpace` of ``design``.

    ``cycles`` restricts the active-round dimension (default: every round).
    ``models`` selects the adversarial models; unknown names raise.
    """
    unknown = set(models) - set(DEFAULT_MODELS)
    if unknown:
        raise ValueError(
            f"unknown fault models {sorted(unknown)}; pick from {DEFAULT_MODELS}"
        )
    if cycles is None:
        cycles = tuple(range(design.spec.rounds))
    else:
        cycles = tuple(cycles)
        bad = [c for c in cycles if not 0 <= c < design.spec.rounds]
        if bad:
            raise ValueError(f"cycles out of range [0, {design.spec.rounds}): {bad}")

    sections: list[SpaceSection] = []
    for model in DEFAULT_MODELS:  # canonical order, independent of request order
        if model not in models:
            continue
        if model == "single":
            locs = tuple(sorted(datapath_nets(design.circuit, design.cores)))
        elif model == "identical_mask":
            locs = tuple(_corresponding_nets(design))
        elif model == "layer_glitch":
            layer_locs: list[tuple[int, ...]] = []
            for core in design.cores:
                layer_locs.append(
                    tuple(n for word in core.sbox_inputs for n in word)
                )
                layer_locs.append(
                    tuple(n for word in core.sbox_outputs for n in word)
                )
            locs = tuple(layer_locs)
        else:  # coupled
            pair_locs: list[tuple[int, ...]] = []
            for core in design.cores:
                for word in core.sbox_inputs:
                    for a, b in zip(word, word[1:]):
                        pair_locs.append((a, b))
            locs = tuple(pair_locs)
        if not locs:
            continue
        sections.append(
            SpaceSection(
                model=model,
                locs=locs,
                fault_types=_MODEL_TYPES[model],
                cycles=cycles,
            )
        )
    return FaultSpace(sections=tuple(sections))


def locations_for_budget(budget: int, runs_per_location: int) -> int:
    """How many locations a run budget affords (at least one)."""
    if budget <= 0:
        raise ValueError(f"budget must be positive: {budget}")
    return max(1, math.ceil(budget / runs_per_location))
