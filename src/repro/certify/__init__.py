"""Fault-space coverage certifier.

Enumerates the full single-fault space of a protected design
(:mod:`repro.certify.space`), sweeps it — exhaustively or as a stratified
sample under a run budget — through the resilient sharded executor
(:mod:`repro.certify.certifier`), and emits a deterministic, replayable
JSON certificate (:mod:`repro.certify.certificate`) with a verdict per
paper claim.  Surfaced as ``repro certify`` on the CLI.
"""

from repro.certify.certificate import (
    CERTIFICATE_VERSION,
    Certificate,
    CertificateError,
)
from repro.certify.certifier import (
    CERTIFY_KEYS,
    CertifyConfig,
    certify_design,
    replay_witness,
)
from repro.certify.space import (
    DEFAULT_MODELS,
    FaultSpace,
    SpaceSection,
    enumerate_fault_space,
    locations_for_budget,
)

__all__ = [
    "CERTIFICATE_VERSION",
    "CERTIFY_KEYS",
    "Certificate",
    "CertificateError",
    "CertifyConfig",
    "DEFAULT_MODELS",
    "FaultSpace",
    "SpaceSection",
    "certify_design",
    "enumerate_fault_space",
    "locations_for_budget",
    "replay_witness",
]
