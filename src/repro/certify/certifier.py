"""Drive an exhaustive (or budgeted) sweep and assemble the certificate.

The sweep runs one mini-campaign per fault-space location — ``R`` fresh
randomised invocations under that location's scenario, classified against
the clean twin simulation — sharded through the resilient executor
(:func:`repro.faults.executor.run_sharded`), so a certify run inherits the
campaign machinery's checkpointing, resume, parallelism, retry and
timeout semantics wholesale.

Determinism: every location's runs use ``run_range(lo=0, hi=R)`` with the
certificate's seed, i.e. all locations share one plaintext/λ draw (common
random numbers — differences between locations are never RNG noise) and
any witness replays *exactly* as
``run_campaign(design, scenario.specs, n_runs=R, key=key, seed=seed)``.
The emitted document depends only on ``(design, space, sample, key, seed,
R)`` — never on sharding, worker count, or interruption history.
"""

from __future__ import annotations

import functools
import time
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.certify.certificate import Certificate
from repro.certify.space import (
    DEFAULT_MODELS,
    FaultSpace,
    enumerate_fault_space,
    locations_for_budget,
)
from repro.countermeasures.base import ProtectedDesign, RecoveryPolicy
from repro.faults.campaign import run_campaign, run_range
from repro.faults.classification import Outcome, classify
from repro.faults.executor import ExecutorConfig, prewarm_backend, run_sharded
from repro.faults.models import FaultScenario
from repro.netlist.analysis import lint_countermeasure
from repro.telemetry import metrics, run_manifest, trace

__all__ = ["CERTIFY_KEYS", "CertifyConfig", "certify_design", "replay_witness"]

#: arrays each certify shard produces (leading dim = locations in shard)
CERTIFY_KEYS = ("index", "counts", "witness_run")

#: certificates embed at most this many witnesses (the verdict still
#: counts all of them; a broken scheme does not need a gigabyte of proof)
WITNESS_CAP = 32


@dataclass(frozen=True)
class CertifyConfig:
    """Knobs of a certify run."""

    #: total faulted-run budget; None = exhaustive sweep of the space.
    #: A budget smaller than the space degrades to a stratified sample —
    #: reported as such in the certificate, never silently.
    budget: int | None = None
    #: randomised invocations per fault location
    runs_per_location: int = 64
    #: adversarial models to sweep (see :mod:`repro.certify.space`)
    models: tuple[str, ...] = DEFAULT_MODELS
    #: active rounds to sweep; None = every round
    cycles: tuple[int, ...] | None = None
    #: campaign seed (plaintexts, λ, probabilistic masks, and the sample)
    seed: int = 1
    #: stop scheduling new shards as soon as one yields a witness
    fail_fast: bool = False
    #: locations per executor shard
    shard_locations: int = 64
    #: simulation kernel for the sweep ("levelized"/"reference"; None =
    #: simulator default).  Bit-exact either way — a certificate's verdict
    #: never depends on the backend, only its wall-clock does.
    backend: str | None = None
    # -- resilient-executor passthrough
    jobs: int = 1
    checkpoint_dir: object = None
    resume: bool = False
    timeout: float | None = None
    retries: int = 2
    backoff: float = 0.5
    #: global wall-clock budget for the sweep; once spent the certifier
    #: stops scheduling shards and emits a *degraded* partial certificate
    #: with explicit uncovered-fault-space accounting (never an abort)
    wall_budget: float | None = None


def _certify_task(
    design: ProtectedDesign,
    space: FaultSpace,
    indices: np.ndarray,
    key: int,
    seed: int,
    runs: int,
    flag_observable: bool,
    infective: bool,
    backend: str | None,
    lo: int,
    hi: int,
) -> dict[str, np.ndarray]:
    """Shard task: mini-campaign each of ``indices[lo:hi]``."""
    sel = np.asarray(indices[lo:hi], dtype=np.int64)
    counts = np.zeros((len(sel), len(Outcome)), dtype=np.int64)
    witness = np.full(len(sel), -1, dtype=np.int64)
    for row, index in enumerate(sel):
        scenario = space.scenario(int(index))
        _, rel, exp, flags = run_range(
            design, scenario.specs, key=key, seed=seed, lo=0, hi=runs,
            backend=backend,
        )
        outcomes = classify(
            rel, flags, exp, flag_observable=flag_observable, infective=infective
        )
        counts[row] = np.bincount(outcomes, minlength=len(Outcome))
        effective = np.flatnonzero(outcomes == Outcome.EFFECTIVE)
        if effective.size:
            witness[row] = effective[0]
    metrics.inc("certify.locations_swept", len(sel))
    metrics.inc("certify.runs_executed", len(sel) * runs)
    return {"index": sel, "counts": counts, "witness_run": witness}


def _shard_found_witness(index: int, arrays: dict[str, np.ndarray]) -> bool:
    return bool((arrays["witness_run"] >= 0).any())


def certify_design(
    design: ProtectedDesign,
    *,
    key: int,
    config: CertifyConfig | None = None,
) -> Certificate:
    """Sweep ``design``'s fault space and emit a :class:`Certificate`.

    Preamble: the structural lint runs first (non-strict) — a design whose
    wiring already violates a security invariant gets a failing
    certificate without burning the sweep budget.  Then the space is
    enumerated, budget-sampled if needed, sharded, executed, and the
    per-location outcome histograms are folded into verdicts:

    - ``structural_lint`` — the preamble's report;
    - ``dfa_detection`` — no covered location may produce an ``EFFECTIVE``
      run (a wrong ciphertext released unflagged); any that does becomes a
      replayable witness;
    - ``sifa_uniformity`` — for λ-encoded schemes, every biased single
      fault on an encoded net must be ineffective at a data-independent
      ≈½ rate (within a 6σ binomial band).  Necessary, not sufficient:
      the full SEI analysis lives in the Fig. 4 pipeline; this catches a
      location whose ineffectiveness is grossly value-correlated.
    """
    config = config or CertifyConfig()
    started = time.time()
    flag_observable = design.scheme != "triplication"
    infective = design.policy is RecoveryPolicy.INFECTIVE
    runs = config.runs_per_location

    manifest = run_manifest(
        kind="certify",
        scheme=design.scheme,
        variant=design.variant,
        backend=config.backend,
        jobs=config.jobs,
        seed=config.seed,
    )
    request_id = trace.context().get("request_id")
    if request_id is not None:
        manifest["request_id"] = request_id
    with trace.span("certify.lint", scheme=design.scheme):
        lint = lint_countermeasure(design, strict=False)
    with trace.span("certify.enumerate", scheme=design.scheme):
        space = enumerate_fault_space(
            design, models=config.models, cycles=config.cycles
        )
    space_doc = {
        "total": space.total,
        "per_model": space.per_model(),
        "digest": space.digest(),
        "models": list(config.models),
        "cycles": (
            list(config.cycles) if config.cycles is not None else None
        ),
    }
    base = dict(
        scheme=design.scheme,
        variant=design.variant,
        cipher=design.spec.name,
        rounds=design.spec.rounds,
        key=str(key),
        seed=config.seed,
        runs_per_location=runs,
        space=space_doc,
        lint=lint.to_dict(),
    )

    if not lint.passed:
        # Structurally unsound: certify nothing beyond the lint verdict.
        skipped = {"status": "skipped", "reason": "structural lint failed"}
        return Certificate(
            **base,
            coverage={
                "locations_total": space.total,
                "locations_planned": 0,
                "locations_covered": 0,
                "locations_uncovered": 0,
                "uncovered_per_stratum": {},
                "runs_executed": 0,
                "fraction": 0.0,
                "sampled": False,
                "budget": config.budget,
                "stopped_early": False,
                "budget_exhausted": False,
                "degraded": False,
                "failed_shards": [],
            },
            histograms={},
            verdicts={
                "structural_lint": {
                    "status": "fail",
                    "n_datapath": lint.n_datapath,
                },
                "dfa_detection": dict(skipped),
                "sifa_uniformity": dict(skipped),
            },
            timing={
                "wall_time_s": round(time.time() - started, 3),
                "manifest": manifest,
            },
        )

    if config.budget is not None:
        n_locations = min(
            space.total, locations_for_budget(config.budget, runs)
        )
        indices = space.sample(n_locations, seed=config.seed)
    else:
        indices = np.arange(space.total, dtype=np.int64)

    step = max(1, config.shard_locations)
    ranges = [
        (lo, min(lo + step, len(indices)))
        for lo in range(0, len(indices), step)
    ]
    identity = {
        "kind": "certify",
        "scheme": design.scheme,
        "variant": design.variant,
        "cipher": design.spec.name,
        "rounds": design.spec.rounds,
        "key": str(key),
        "seed": config.seed,
        "runs_per_location": runs,
        "budget": config.budget,
        "models": list(config.models),
        "cycles": list(config.cycles) if config.cycles is not None else None,
        "space_digest": space_doc["digest"],
        "n_locations": int(len(indices)),
        "shard_locations": step,
    }
    task = functools.partial(
        _certify_task,
        design,
        space,
        indices,
        key,
        config.seed,
        runs,
        flag_observable,
        infective,
        config.backend,
    )
    with trace.span(
        "certify.sweep",
        scheme=design.scheme,
        locations=int(len(indices)),
        shards=len(ranges),
        jobs=config.jobs,
    ):
        run = run_sharded(
            task,
            ranges,
            config=ExecutorConfig(
                jobs=config.jobs,
                chunk=max(runs, 1),
                checkpoint_dir=config.checkpoint_dir,
                resume=config.resume,
                timeout=config.timeout,
                retries=config.retries,
                backoff=config.backoff,
                wall_budget=config.wall_budget,
                prewarm=functools.partial(
                    prewarm_backend, design, config.backend
                ),
            ),
            identity=identity,
            keys=CERTIFY_KEYS,
            on_shard_done=_shard_found_witness if config.fail_fast else None,
            label=f"certify[{design.scheme}]",
        )

    merged = run.merged(CERTIFY_KEYS)
    if merged is None:
        merged = {
            "index": np.zeros(0, dtype=np.int64),
            "counts": np.zeros((0, len(Outcome)), dtype=np.int64),
            "witness_run": np.zeros(0, dtype=np.int64),
        }
    order = np.argsort(merged["index"], kind="stable")
    covered = merged["index"][order]
    counts = merged["counts"][order]
    witness_runs = merged["witness_run"][order]

    histograms: dict[str, np.ndarray] = {}
    strata = [space.stratum(int(i)) for i in covered]
    for (model, ftype, _cycle), row in zip(strata, counts):
        bucket = histograms.setdefault(
            f"{model}/{ftype}", np.zeros(len(Outcome), dtype=np.int64)
        )
        bucket += row

    effective_rows = np.flatnonzero(counts[:, Outcome.EFFECTIVE] > 0)
    witnesses = []
    for row in effective_rows[:WITNESS_CAP]:
        index = int(covered[row])
        scenario = space.scenario(index)
        witnesses.append(
            {
                "space_index": index,
                "scenario": scenario.to_dict(),
                "seed": config.seed,
                "n_runs": runs,
                "run": int(witness_runs[row]),
                "effective_runs": int(counts[row, Outcome.EFFECTIVE]),
                "replay": (
                    "run_campaign(design, scenario.specs, "
                    f"n_runs={runs}, key=<key>, seed={config.seed})"
                    f".outcomes[{int(witness_runs[row])}] == EFFECTIVE"
                ),
            }
        )

    verdicts = {
        "structural_lint": {"status": "pass", "n_datapath": lint.n_datapath},
        "dfa_detection": {
            "status": "fail" if effective_rows.size else "pass",
            "effective_locations": int(effective_rows.size),
            "effective_runs": int(counts[:, Outcome.EFFECTIVE].sum()),
        },
        "sifa_uniformity": _sifa_uniformity_verdict(
            design, space, covered, counts, runs
        ),
    }

    n_covered = int(len(covered))
    # Uncovered-fault-space accounting: a partial sweep (quarantined
    # shards, exhausted wall budget, fail-fast stop) must say exactly what
    # it did NOT check — a degraded certificate is explicit, never silent.
    uncovered = np.setdiff1d(
        np.asarray(indices, dtype=np.int64), covered, assume_unique=False
    )
    uncovered_per_stratum: dict[str, int] = {}
    for i in uncovered:
        model, ftype, _cycle = space.stratum(int(i))
        bucket = f"{model}/{ftype}"
        uncovered_per_stratum[bucket] = uncovered_per_stratum.get(bucket, 0) + 1
    degraded = bool(uncovered.size)
    if degraded:
        # Sweep-derived claims hold only over the covered locations; the
        # structural lint ran in full and stays undegraded.
        for claim in ("dfa_detection", "sifa_uniformity"):
            verdicts[claim] = {
                **verdicts[claim],
                "degraded": True,
                "note": (
                    f"verdict covers {n_covered} of {len(indices)} planned "
                    f"locations; see coverage.uncovered_per_stratum"
                ),
            }

    certificate = Certificate(
        **base,
        coverage={
            "locations_total": space.total,
            "locations_planned": int(len(indices)),
            "locations_covered": n_covered,
            "locations_uncovered": int(uncovered.size),
            "uncovered_per_stratum": dict(sorted(uncovered_per_stratum.items())),
            "runs_executed": n_covered * runs,
            "fraction": (n_covered / space.total) if space.total else 0.0,
            "sampled": bool(len(indices) < space.total),
            "budget": config.budget,
            "stopped_early": bool(run.stopped_early),
            "budget_exhausted": bool(run.budget_exhausted),
            "degraded": degraded,
            "failed_shards": run.failures,
        },
        histograms={
            k: [int(x) for x in v] for k, v in sorted(histograms.items())
        },
        locations=[
            [int(i), [int(x) for x in row]] for i, row in zip(covered, counts)
        ],
        witnesses=witnesses,
        verdicts=verdicts,
        timing={
            "wall_time_s": round(time.time() - started, 3),
            "manifest": manifest,
        },
    )
    return certificate


def _sifa_uniformity_verdict(
    design: ProtectedDesign,
    space: FaultSpace,
    covered: Sequence[int],
    counts: np.ndarray,
    runs: int,
) -> dict:
    """Per-location ineffective-rate band check (see certify_design doc)."""
    if not design.lambda_width:
        return {
            "status": "not_applicable",
            "reason": "scheme carries no λ encoding",
        }
    encoded: set[int] = set()
    for core in design.cores:
        for word in core.sbox_inputs:
            encoded.update(word)
        for word in core.sbox_outputs:
            encoded.update(word)
    sigma = (0.25 / runs) ** 0.5
    lo, hi = 0.5 - 6 * sigma, 0.5 + 6 * sigma
    checked = 0
    outliers: list[dict] = []
    for row, index in enumerate(covered):
        section, local = space._locate(int(index))
        if section.model != "single":
            continue
        loc_idx, type_idx, cycle_idx = section.split(local)
        ftype = section.fault_types[type_idx]
        net = section.locs[loc_idx]
        if not ftype.is_biased or net not in encoded:
            continue
        checked += 1
        rate = counts[row, Outcome.INEFFECTIVE] / runs
        if not lo <= rate <= hi:
            outliers.append(
                {
                    "space_index": int(index),
                    "net": int(net),
                    "fault_type": ftype.value,
                    "cycle": int(section.cycles[cycle_idx]),
                    "ineffective_rate": round(float(rate), 6),
                }
            )
    return {
        "status": (
            "not_applicable"
            if checked == 0
            else ("fail" if outliers else "pass")
        ),
        "checked_locations": checked,
        "band": [round(lo, 6), round(hi, 6)],
        "outliers": outliers[:WITNESS_CAP],
        "note": (
            "necessary-not-sufficient screen; the SEI analysis of Fig. 4 "
            "is the full statistical treatment"
        ),
    }


def replay_witness(
    design: ProtectedDesign, witness: dict, *, key: int
) -> tuple[Outcome, object]:
    """Re-run a certificate witness; returns ``(outcome, CampaignResult)``.

    The outcome of the recorded run index under the recorded scenario,
    seed and run count — ``Outcome.EFFECTIVE`` confirms the witness.
    """
    scenario = FaultScenario.from_dict(witness["scenario"])
    result = run_campaign(
        design,
        list(scenario.specs),
        n_runs=int(witness["n_runs"]),
        key=key,
        seed=int(witness["seed"]),
    )
    return Outcome(result.outcomes[int(witness["run"])]), result
