"""The machine-readable coverage certificate.

A certificate is the auditable artefact of one certify run: what space was
swept, how much of it, what happened at every covered location, every
``EFFECTIVE`` witness with enough information to replay it exactly, and a
verdict per paper claim.  Rendering is deterministic — ``sort_keys`` JSON
with all wall-clock data isolated under the single ``timing`` key — so two
runs over the same inputs (including an interrupted-and-resumed run) emit
byte-identical documents once ``timing`` is dropped; the test suite and CI
diff them that way.

Integrity: :meth:`Certificate.save` writes atomically and embeds an
``integrity`` block (SHA-256 over the canonical rendering of everything
else).  :meth:`Certificate.load` re-verifies it — a certificate that was
torn mid-write, bit-rotted, or hand-edited raises
:class:`CertificateError`, which the CLI maps to the documented exit
code 3 (artefact mismatch), the same family as a foreign checkpoint.
A certificate is a *security verdict*; trusting a corrupted one silently
would defeat the whole exercise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.resilience.persist import atomic_write_text, sha256_bytes

__all__ = ["CERTIFICATE_VERSION", "Certificate", "CertificateError"]

CERTIFICATE_VERSION = 1


class CertificateError(ValueError):
    """A certificate document is unreadable, unversioned or fails integrity."""


def _canonical_digest(doc: dict) -> str:
    """SHA-256 over the canonical (sorted, compact) JSON of ``doc``."""
    return sha256_bytes(
        json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
    )


@dataclass
class Certificate:
    """Everything a certify run asserts, in JSON-safe form."""

    scheme: str
    variant: str | None
    cipher: str
    rounds: int
    key: str
    seed: int
    runs_per_location: int
    #: enumeration summary: total size, per-model sizes, space digest
    space: dict
    #: locations_total / locations_covered / runs_executed / fraction /
    #: sampled / budget / stopped_early / failed_shards
    coverage: dict
    #: :meth:`repro.netlist.analysis.LintReport.to_dict` of the preamble
    lint: dict
    #: aggregate outcome histograms keyed ``model/fault_type``
    histograms: dict
    #: per-location records: ``[space_index, [ineff, det, eff, inf]]``
    locations: list = field(default_factory=list)
    #: every EFFECTIVE location (capped), each with a replayable recipe
    witnesses: list = field(default_factory=list)
    #: claim → verdict dict (``status`` plus claim-specific evidence)
    verdicts: dict = field(default_factory=dict)
    #: wall-clock data; everything volatile lives here and only here
    timing: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """True when every applicable verdict passed."""
        return all(
            v.get("status") in ("pass", "not_applicable")
            for v in self.verdicts.values()
        )

    @property
    def degraded(self) -> bool:
        """True when the sweep lost coverage to quarantine or a wall budget.

        A degraded certificate is still *valid* — its verdicts hold over
        exactly the covered locations, and ``coverage`` accounts for the
        uncovered remainder explicitly — but it is not the full claim.
        """
        return bool(self.coverage.get("degraded")) or any(
            v.get("degraded") for v in self.verdicts.values()
        )

    def to_dict(self, *, include_timing: bool = True) -> dict:
        doc = {
            "version": CERTIFICATE_VERSION,
            "scheme": self.scheme,
            "variant": self.variant,
            "cipher": self.cipher,
            "rounds": self.rounds,
            "key": self.key,
            "seed": self.seed,
            "runs_per_location": self.runs_per_location,
            "space": self.space,
            "coverage": self.coverage,
            "lint": self.lint,
            "histograms": self.histograms,
            "locations": self.locations,
            "witnesses": self.witnesses,
            "verdicts": self.verdicts,
        }
        if include_timing:
            doc["timing"] = self.timing
        return doc

    def render(self, *, include_timing: bool = True) -> str:
        """Deterministic JSON text (see module docstring)."""
        return json.dumps(
            self.to_dict(include_timing=include_timing),
            indent=1,
            sort_keys=True,
        )

    def save(self, path) -> None:
        """Atomically persist the certificate with an integrity digest."""
        doc = self.to_dict()
        doc["integrity"] = {
            "algorithm": "sha256",
            "digest": _canonical_digest(doc),
        }
        atomic_write_text(
            path, json.dumps(doc, indent=1, sort_keys=True) + "\n"
        )

    @classmethod
    def from_dict(cls, doc: dict) -> "Certificate":
        if doc.get("version") != CERTIFICATE_VERSION:
            raise CertificateError(
                f"unsupported certificate version {doc.get('version')!r}"
            )
        return cls(
            scheme=doc["scheme"],
            variant=doc["variant"],
            cipher=doc["cipher"],
            rounds=doc["rounds"],
            key=doc["key"],
            seed=doc["seed"],
            runs_per_location=doc["runs_per_location"],
            space=doc["space"],
            coverage=doc["coverage"],
            lint=doc["lint"],
            histograms=doc["histograms"],
            locations=doc.get("locations", []),
            witnesses=doc.get("witnesses", []),
            verdicts=doc.get("verdicts", {}),
            timing=doc.get("timing", {}),
        )

    @classmethod
    def load(cls, path) -> "Certificate":
        """Load and *verify* a certificate (schema version + checksum).

        Raises :class:`CertificateError` on an unparseable document, an
        unsupported schema version, a malformed structure, or an
        ``integrity`` digest that does not match the content.  Documents
        written before the integrity block existed (no ``integrity`` key)
        load without the checksum check.
        """
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            raise CertificateError(
                f"unreadable certificate {path}: {exc}"
            ) from exc
        if not isinstance(doc, dict):
            raise CertificateError(
                f"certificate {path} is not a JSON object"
            )
        integrity = doc.pop("integrity", None)
        if integrity is not None:
            stored = (integrity or {}).get("digest")
            if stored != _canonical_digest(doc):
                raise CertificateError(
                    f"certificate {path} fails its integrity checksum "
                    f"(torn write, bit-rot, or out-of-band edit)"
                )
        try:
            return cls.from_dict(doc)
        except CertificateError:
            raise
        except (KeyError, TypeError) as exc:
            raise CertificateError(
                f"malformed certificate {path}: missing/invalid {exc}"
            ) from exc

    def summary(self) -> str:
        """A short human-readable digest for CLI output."""
        cov = self.coverage
        lines = [
            f"certificate: {self.scheme}"
            + (f" ({self.variant})" if self.variant else "")
            + f" on {self.cipher}, {self.rounds} rounds",
            f"space: {self.space['total']} locations "
            + " ".join(f"{m}={n}" for m, n in sorted(self.space["per_model"].items())),
            f"coverage: {cov['locations_covered']}/{cov['locations_total']} "
            f"locations ({cov['fraction']:.4f})"
            + (" [stratified sample]" if cov["sampled"] else " [exhaustive]")
            + f", {cov['runs_executed']} faulted runs",
        ]
        if self.degraded:
            lines.append(
                f"DEGRADED: {cov.get('locations_uncovered', 0)} planned "
                f"location(s) uncovered "
                f"({len(cov.get('failed_shards', []))} quarantined shard(s)"
                + (
                    ", wall budget exhausted"
                    if cov.get("budget_exhausted")
                    else ""
                )
                + ")"
            )
        for claim, verdict in sorted(self.verdicts.items()):
            lines.append(f"verdict {claim}: {verdict['status']}")
        if self.witnesses:
            w = self.witnesses[0]
            lines.append(
                f"witnesses: {len(self.witnesses)} EFFECTIVE location(s); first: "
                f"{w['scenario']['label']} (replay: seed={w['seed']}, "
                f"run={w['run']})"
            )
        else:
            lines.append("witnesses: none")
        return "\n".join(lines)
