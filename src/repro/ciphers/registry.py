"""The cipher registry: one name → everything the stack needs.

Every front-end that takes a cipher by name — ``repro certify --cipher``,
``repro submit``/the service request key, the evaluation matrix, the
cipherlight conformance battery, the cipher benchmark suite — resolves
through this table.  Registering a spec here is the *whole* integration
contract: the countermeasure builders, the certifier, the service and the
parametrized test battery are all generic over :class:`CipherSpec`, so a
new cipher inherits the full pipeline (and its test suite) for free.

Each entry records, besides the spec factory:

- ``full_rounds`` — the spec's nominal round count;
- ``fast_rounds`` — a reduced-round instance used by smoke sweeps and the
  CI battery (spec-faithful per round, just fewer iterations);
- ``variants`` — which three-in-one λ-variants the cipher supports (AES's
  MixColumns needs one shared λ, so ``per_sbox`` is excluded there);
- ``aliases`` — accepted spellings (``present`` → ``present80`` …).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.ciphers.spn import CipherSpec

__all__ = [
    "CipherEntry",
    "get_entry",
    "make_spec",
    "register_cipher",
    "registered_ciphers",
    "resolve_cipher",
]


@dataclass(frozen=True)
class CipherEntry:
    """One registered cipher: identity, factory and capability flags."""

    name: str
    factory: Callable[..., CipherSpec]
    full_rounds: int
    fast_rounds: int
    #: three-in-one λ-variants this cipher supports
    variants: tuple[str, ...]
    description: str
    aliases: tuple[str, ...] = ()

    def make(self, *, rounds: int | None = None) -> CipherSpec:
        return self.factory(rounds=rounds)


_REGISTRY: dict[str, CipherEntry] = {}
_ALIASES: dict[str, str] = {}


def register_cipher(entry: CipherEntry) -> CipherEntry:
    """Add a cipher to the registry (idempotent per name)."""
    if entry.name in _REGISTRY:
        raise ValueError(f"cipher {entry.name!r} already registered")
    for alias in entry.aliases:
        if alias in _REGISTRY or alias in _ALIASES:
            raise ValueError(f"cipher alias {alias!r} already registered")
    _REGISTRY[entry.name] = entry
    for alias in entry.aliases:
        _ALIASES[alias] = entry.name
    return entry


def registered_ciphers() -> tuple[str, ...]:
    """Canonical names, in registration order."""
    return tuple(_REGISTRY)


def resolve_cipher(name: str) -> str:
    """Canonicalize ``name`` (case-insensitive, aliases allowed).

    Raises :class:`ValueError` naming the registered ciphers on a miss —
    front-ends surface this verbatim (the CLI at argument-parse time).
    """
    norm = name.strip().lower()
    if norm in _REGISTRY:
        return norm
    if norm in _ALIASES:
        return _ALIASES[norm]
    raise ValueError(
        f"unknown cipher {name!r} (registered: {', '.join(_REGISTRY)})"
    )


def get_entry(name: str) -> CipherEntry:
    return _REGISTRY[resolve_cipher(name)]


def make_spec(name: str, *, rounds: int | None = None) -> CipherSpec:
    """Build a spec by registry name; ``rounds=None`` means full-round."""
    return get_entry(name).make(rounds=rounds)


# ------------------------------------------------------- default entries


def _present80(*, rounds: int | None = None) -> CipherSpec:
    from repro.ciphers.netlist_present import PresentSpec

    return PresentSpec(rounds=rounds)


def _gift64(*, rounds: int | None = None) -> CipherSpec:
    from repro.ciphers.netlist_gift import GiftSpec

    return GiftSpec(rounds=rounds)


def _gift128(*, rounds: int | None = None) -> CipherSpec:
    from repro.ciphers.netlist_gift import Gift128Spec

    return Gift128Spec(rounds=rounds)


def _aes128(*, rounds: int | None = None) -> CipherSpec:
    from repro.ciphers.netlist_aes import AesSpec

    return AesSpec(rounds=rounds)


ALL_VARIANTS = ("prime", "per_round", "per_sbox")

register_cipher(CipherEntry(
    name="present80",
    factory=_present80,
    full_rounds=31,
    fast_rounds=4,
    variants=ALL_VARIANTS,
    description="PRESENT-80 (CHES'07): the paper's target design",
    aliases=("present",),
))
register_cipher(CipherEntry(
    name="gift64",
    factory=_gift64,
    full_rounds=28,
    fast_rounds=4,
    variants=ALL_VARIANTS,
    description="GIFT-64-128 (CHES'17): key added after the permutation",
    aliases=("gift",),
))
register_cipher(CipherEntry(
    name="gift128",
    factory=_gift128,
    full_rounds=40,
    fast_rounds=3,
    variants=ALL_VARIANTS,
    description="GIFT-128-128 (CHES'17): 128-bit state, two key words/round",
))
register_cipher(CipherEntry(
    name="aes128",
    factory=_aes128,
    full_rounds=10,
    fast_rounds=3,
    variants=("prime", "per_round"),  # MixColumns needs one shared λ
    description="AES-128 (FIPS-197): non-permutation linear layer",
    aliases=("aes",),
))
