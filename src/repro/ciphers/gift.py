"""GIFT-64-128 reference implementation (Banik et al., CHES 2017).

GIFT is not part of the paper's evaluation; it is included to demonstrate
the *generic* claim — the three-in-one countermeasure wraps any S-box/
permutation cipher expressed over this package's netlist IR.  No official
test vectors are bundled (the environment is offline); correctness is
established by structural properties and encrypt/decrypt round-trip tests,
and the netlist generator is checked against this reference.
"""

from __future__ import annotations

from repro.ciphers.sbox import GIFT_SBOX

__all__ = ["Gift64", "GIFT64_PERM", "GIFT64_PERM_INV"]

ROUNDS = 28

#: GIFT-64 bit permutation: bit ``i`` of the state moves to ``GIFT64_PERM[i]``.
GIFT64_PERM = [
    0, 17, 34, 51, 48, 1, 18, 35, 32, 49, 2, 19, 16, 33, 50, 3,
    4, 21, 38, 55, 52, 5, 22, 39, 36, 53, 6, 23, 20, 37, 54, 7,
    8, 25, 42, 59, 56, 9, 26, 43, 40, 57, 10, 27, 24, 41, 58, 11,
    12, 29, 46, 63, 60, 13, 30, 47, 44, 61, 14, 31, 28, 45, 62, 15,
]
GIFT64_PERM_INV = [0] * 64
for _i, _p in enumerate(GIFT64_PERM):
    GIFT64_PERM_INV[_p] = _i


def _round_constants(n_rounds: int) -> list[int]:
    """The 6-bit LFSR constants: c ← (c << 1) | (c5 ⊕ c4 ⊕ 1)."""
    constants = []
    c = 0
    for _ in range(n_rounds):
        c = ((c << 1) & 0x3F) | ((((c >> 5) ^ (c >> 4)) & 1) ^ 1)
        constants.append(c)
    return constants


_CONSTANTS = _round_constants(ROUNDS + 20)


class Gift64:
    """GIFT-64 with a 128-bit key, 28 rounds."""

    key_bits = 128
    block_bits = 64
    rounds = ROUNDS
    sbox = GIFT_SBOX

    def __init__(self, key: int) -> None:
        if key < 0 or key >> self.key_bits:
            raise ValueError("key does not fit in 128 bits")
        self.key = key
        self.round_keys = self._key_schedule(key)

    def _key_schedule(self, key: int) -> list[tuple[int, int]]:
        """Per-round ``(U, V)`` 16-bit words (U = k1, V = k0 at each round)."""
        words = [(key >> (16 * i)) & 0xFFFF for i in range(8)]  # k0..k7
        out = []
        for _ in range(self.rounds):
            u, v = words[1], words[0]
            out.append((u, v))
            rot2 = ((words[1] >> 2) | (words[1] << 14)) & 0xFFFF
            rot12 = ((words[0] >> 12) | (words[0] << 4)) & 0xFFFF
            words = words[2:] + [rot12, rot2]  # new k7 = k1>>>2, k6 = k0>>>12
        return out

    @staticmethod
    def _sub_cells(state: int, sbox) -> int:
        out = 0
        for nib in range(16):
            out |= sbox((state >> (4 * nib)) & 0xF) << (4 * nib)
        return out

    @staticmethod
    def _perm_bits(state: int, perm) -> int:
        out = 0
        for i in range(64):
            if (state >> i) & 1:
                out |= 1 << perm[i]
        return out

    @staticmethod
    def _round_key_mask(u: int, v: int, constant: int) -> int:
        """The 64-bit XOR mask for one round's key/constant addition."""
        mask = 1 << 63
        for i in range(16):
            mask |= ((u >> i) & 1) << (4 * i + 1)
            mask |= ((v >> i) & 1) << (4 * i)
        for j in range(6):
            mask |= ((constant >> j) & 1) << (4 * j + 3)
        return mask

    def encrypt(self, plaintext: int) -> int:
        if plaintext < 0 or plaintext >> 64:
            raise ValueError("plaintext does not fit in 64 bits")
        state = plaintext
        for rnd in range(self.rounds):
            state = self._sub_cells(state, self.sbox)
            state = self._perm_bits(state, GIFT64_PERM)
            u, v = self.round_keys[rnd]
            state ^= self._round_key_mask(u, v, _CONSTANTS[rnd])
        return state

    def round_states(self, plaintext: int) -> list[int]:
        """State entering each round (index 0 = plaintext).

        For GIFT the S-box layer comes first, so entry ``r`` is exactly the
        S-box-layer input of round ``r + 1`` (template attacks use this as
        ground truth).
        """
        states = [plaintext]
        state = plaintext
        for rnd in range(self.rounds):
            state = self._sub_cells(state, self.sbox)
            state = self._perm_bits(state, GIFT64_PERM)
            u, v = self.round_keys[rnd]
            state ^= self._round_key_mask(u, v, _CONSTANTS[rnd])
            states.append(state)
        return states

    def decrypt(self, ciphertext: int) -> int:
        if ciphertext < 0 or ciphertext >> 64:
            raise ValueError("ciphertext does not fit in 64 bits")
        inv = self.sbox.inverse_sbox()
        state = ciphertext
        for rnd in reversed(range(self.rounds)):
            u, v = self.round_keys[rnd]
            state ^= self._round_key_mask(u, v, _CONSTANTS[rnd])
            state = self._perm_bits(state, GIFT64_PERM_INV)
            state = self._sub_cells(state, inv)
        return state
