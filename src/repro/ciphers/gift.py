"""GIFT-64-128 and GIFT-128-128 reference implementations (Banik et al.,
CHES 2017).

GIFT is not part of the paper's evaluation; it is included to demonstrate
the *generic* claim — the three-in-one countermeasure wraps any S-box/
permutation cipher expressed over this package's netlist IR.  Both members
of the family are checked against the test vectors published with the
CHES 2017 paper (see ``tests/cipherlight/vectors.py``), and the netlist
generators are checked against these references.
"""

from __future__ import annotations

from repro.ciphers.sbox import GIFT_SBOX

__all__ = [
    "Gift64",
    "Gift128",
    "GIFT64_PERM",
    "GIFT64_PERM_INV",
    "GIFT128_PERM",
    "GIFT128_PERM_INV",
]

ROUNDS = 28
ROUNDS128 = 40

#: GIFT-64 bit permutation: bit ``i`` of the state moves to ``GIFT64_PERM[i]``.
GIFT64_PERM = [
    0, 17, 34, 51, 48, 1, 18, 35, 32, 49, 2, 19, 16, 33, 50, 3,
    4, 21, 38, 55, 52, 5, 22, 39, 36, 53, 6, 23, 20, 37, 54, 7,
    8, 25, 42, 59, 56, 9, 26, 43, 40, 57, 10, 27, 24, 41, 58, 11,
    12, 29, 46, 63, 60, 13, 30, 47, 44, 61, 14, 31, 28, 45, 62, 15,
]
GIFT64_PERM_INV = [0] * 64
for _i, _p in enumerate(GIFT64_PERM):
    GIFT64_PERM_INV[_p] = _i

#: GIFT-128 bit permutation (the spec's closed form over 4-bit slices).
GIFT128_PERM = [
    4 * (i // 16) + 32 * ((3 * ((i % 16) // 4) + (i % 4)) % 4) + (i % 4)
    for i in range(128)
]
GIFT128_PERM_INV = [0] * 128
for _i, _p in enumerate(GIFT128_PERM):
    GIFT128_PERM_INV[_p] = _i


def _round_constants(n_rounds: int) -> list[int]:
    """The 6-bit LFSR constants: c ← (c << 1) | (c5 ⊕ c4 ⊕ 1)."""
    constants = []
    c = 0
    for _ in range(n_rounds):
        c = ((c << 1) & 0x3F) | ((((c >> 5) ^ (c >> 4)) & 1) ^ 1)
        constants.append(c)
    return constants


_CONSTANTS = _round_constants(ROUNDS128 + 8)


class Gift64:
    """GIFT-64 with a 128-bit key, 28 rounds.

    >>> hex(Gift64(0).encrypt(0))
    '0xf62bc3ef34f775ac'
    """

    key_bits = 128
    block_bits = 64
    rounds = ROUNDS
    sbox = GIFT_SBOX
    perm = GIFT64_PERM
    perm_inv = GIFT64_PERM_INV

    def __init__(self, key: int, *, rounds: int | None = None) -> None:
        if key < 0 or key >> self.key_bits:
            raise ValueError("key does not fit in 128 bits")
        if rounds is not None:
            if not 1 <= rounds <= type(self).rounds:
                raise ValueError(
                    f"rounds must be in [1, {type(self).rounds}]: {rounds}"
                )
            self.rounds = rounds
        self.key = key
        self.round_keys = self._key_schedule(key)

    def _key_schedule(self, key: int) -> list[tuple[int, int]]:
        """Per-round ``(U, V)`` 16-bit words (U = k1, V = k0 at each round)."""
        words = [(key >> (16 * i)) & 0xFFFF for i in range(8)]  # k0..k7
        out = []
        for _ in range(self.rounds):
            u, v = words[1], words[0]
            out.append((u, v))
            rot2 = ((words[1] >> 2) | (words[1] << 14)) & 0xFFFF
            rot12 = ((words[0] >> 12) | (words[0] << 4)) & 0xFFFF
            words = words[2:] + [rot12, rot2]  # new k7 = k1>>>2, k6 = k0>>>12
        return out

    @classmethod
    def _sub_cells(cls, state: int, sbox) -> int:
        out = 0
        for nib in range(cls.block_bits // 4):
            out |= sbox((state >> (4 * nib)) & 0xF) << (4 * nib)
        return out

    @classmethod
    def _perm_bits(cls, state: int, perm) -> int:
        out = 0
        for i in range(cls.block_bits):
            if (state >> i) & 1:
                out |= 1 << perm[i]
        return out

    @staticmethod
    def _round_key_mask(u: int, v: int, constant: int) -> int:
        """The 64-bit XOR mask for one round's key/constant addition."""
        mask = 1 << 63
        for i in range(16):
            mask |= ((u >> i) & 1) << (4 * i + 1)
            mask |= ((v >> i) & 1) << (4 * i)
        for j in range(6):
            mask |= ((constant >> j) & 1) << (4 * j + 3)
        return mask

    def encrypt(self, plaintext: int) -> int:
        if plaintext < 0 or plaintext >> self.block_bits:
            raise ValueError(f"plaintext does not fit in {self.block_bits} bits")
        state = plaintext
        for rnd in range(self.rounds):
            state = self._sub_cells(state, self.sbox)
            state = self._perm_bits(state, self.perm)
            u, v = self.round_keys[rnd]
            state ^= self._round_key_mask(u, v, _CONSTANTS[rnd])
        return state

    def round_states(self, plaintext: int) -> list[int]:
        """State entering each round (index 0 = plaintext).

        For GIFT the S-box layer comes first, so entry ``r`` is exactly the
        S-box-layer input of round ``r + 1`` (template attacks use this as
        ground truth).
        """
        states = [plaintext]
        state = plaintext
        for rnd in range(self.rounds):
            state = self._sub_cells(state, self.sbox)
            state = self._perm_bits(state, self.perm)
            u, v = self.round_keys[rnd]
            state ^= self._round_key_mask(u, v, _CONSTANTS[rnd])
            states.append(state)
        return states

    def decrypt(self, ciphertext: int) -> int:
        if ciphertext < 0 or ciphertext >> self.block_bits:
            raise ValueError(f"ciphertext does not fit in {self.block_bits} bits")
        inv = self.sbox.inverse_sbox()
        state = ciphertext
        for rnd in reversed(range(self.rounds)):
            u, v = self.round_keys[rnd]
            state ^= self._round_key_mask(u, v, _CONSTANTS[rnd])
            state = self._perm_bits(state, self.perm_inv)
            state = self._sub_cells(state, inv)
        return state


class Gift128(Gift64):
    """GIFT-128 with a 128-bit key, 40 rounds.

    Same family: the round keeps SubCells → PermBits → AddRoundKey, the
    key register update is identical, but the round key injects *two*
    32-bit words — ``U = k5‖k4`` into state bits ``4i+2`` and
    ``V = k1‖k0`` into bits ``4i+1`` — and the top bit is 127.

    >>> hex(Gift128(0).encrypt(0))
    '0xcd0bd738388ad3f668b15a36ceb6ff92'
    """

    key_bits = 128
    block_bits = 128
    rounds = ROUNDS128
    perm = GIFT128_PERM
    perm_inv = GIFT128_PERM_INV

    def _key_schedule(self, key: int) -> list[tuple[int, int]]:
        """Per-round ``(U, V)`` 32-bit words (U = k5‖k4, V = k1‖k0)."""
        words = [(key >> (16 * i)) & 0xFFFF for i in range(8)]  # k0..k7
        out = []
        for _ in range(self.rounds):
            out.append(((words[5] << 16) | words[4], (words[1] << 16) | words[0]))
            rot2 = ((words[1] >> 2) | (words[1] << 14)) & 0xFFFF
            rot12 = ((words[0] >> 12) | (words[0] << 4)) & 0xFFFF
            words = words[2:] + [rot12, rot2]
        return out

    @staticmethod
    def _round_key_mask(u: int, v: int, constant: int) -> int:
        """The 128-bit XOR mask for one round's key/constant addition."""
        mask = 1 << 127
        for i in range(32):
            mask |= ((u >> i) & 1) << (4 * i + 2)
            mask |= ((v >> i) & 1) << (4 * i + 1)
        for j in range(6):
            mask |= ((constant >> j) & 1) << (4 * j + 3)
        return mask
