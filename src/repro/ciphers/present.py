"""PRESENT reference implementation (Bogdanov et al., CHES 2007).

Pure-integer spec code following the paper's big-endian bit numbering
(bit 63 of the state is the most significant).  Both the 80-bit and 128-bit
key schedules are provided; the DATE'21 evaluation uses PRESENT-80.

This module is the oracle: the gate-level datapaths in
:mod:`repro.ciphers.netlist_present` and every countermeasure wrapper must
agree with it bit-for-bit, and the test suite checks the four official
test vectors from the CHES 2007 paper.
"""

from __future__ import annotations

from repro.ciphers.sbox import PRESENT_SBOX, SBox

__all__ = ["Present80", "Present128", "PLAYER", "PLAYER_INV", "ROUNDS"]

ROUNDS = 31

#: pLayer: output position of input bit ``i`` (spec: P(i) = 16·i mod 63).
PLAYER = [(16 * i) % 63 if i != 63 else 63 for i in range(64)]
PLAYER_INV = [0] * 64
for _i, _p in enumerate(PLAYER):
    PLAYER_INV[_p] = _i


def _sbox_layer(state: int, sbox: SBox) -> int:
    out = 0
    for nib in range(16):
        out |= sbox((state >> (4 * nib)) & 0xF) << (4 * nib)
    return out


def _p_layer(state: int, perm) -> int:
    out = 0
    for i in range(64):
        if (state >> i) & 1:
            out |= 1 << perm[i]
    return out


class Present80:
    """PRESENT with the 80-bit key schedule (the paper's target design).

    >>> hex(Present80(0).encrypt(0))
    '0x5579c1387b228445'
    """

    key_bits = 80
    block_bits = 64
    rounds = ROUNDS
    sbox = PRESENT_SBOX

    def __init__(self, key: int, *, rounds: int | None = None) -> None:
        if key < 0 or key >> self.key_bits:
            raise ValueError(f"key does not fit in {self.key_bits} bits")
        if rounds is not None:
            if not 1 <= rounds <= type(self).rounds:
                raise ValueError(
                    f"rounds must be in [1, {type(self).rounds}]: {rounds}"
                )
            self.rounds = rounds
        self.key = key
        self.round_keys = self._key_schedule(key)

    def _key_schedule(self, key: int) -> list[int]:
        """All 32 round keys (K1..K32), per the spec's 80-bit schedule."""
        reg = key
        keys = []
        for rnd in range(1, self.rounds + 2):
            keys.append(reg >> 16)  # leftmost 64 bits of the 80-bit register
            # rotate left by 61
            reg = ((reg << 61) | (reg >> 19)) & ((1 << 80) - 1)
            # S-box on the leftmost nibble [79:76]
            top = (reg >> 76) & 0xF
            reg = (reg & ~(0xF << 76)) | (self.sbox(top) << 76)
            # XOR round counter into bits [19:15]
            reg ^= rnd << 15
        return keys

    def encrypt(self, plaintext: int) -> int:
        """One 64-bit block, 31 rounds plus the final key addition."""
        if plaintext < 0 or plaintext >> 64:
            raise ValueError("plaintext does not fit in 64 bits")
        state = plaintext
        for rnd in range(self.rounds):
            state ^= self.round_keys[rnd]
            state = _sbox_layer(state, self.sbox)
            state = _p_layer(state, PLAYER)
        return state ^ self.round_keys[self.rounds]

    def decrypt(self, ciphertext: int) -> int:
        """Inverse of :meth:`encrypt`."""
        if ciphertext < 0 or ciphertext >> 64:
            raise ValueError("ciphertext does not fit in 64 bits")
        inv = self.sbox.inverse_sbox()
        state = ciphertext ^ self.round_keys[self.rounds]
        for rnd in reversed(range(self.rounds)):
            state = _p_layer(state, PLAYER_INV)
            state = _sbox_layer(state, inv)
            state ^= self.round_keys[rnd]
        return state

    # ------------------------------------------------- attack helper views

    def round_states(self, plaintext: int) -> list[int]:
        """State *before* the key addition of each round (index 0 = input).

        Index ``r`` is the state entering round ``r+1``; the last entry is
        the pre-whitening value whose XOR with K32 is the ciphertext.  The
        SIFA/FTA analyses use these intermediates as ground truth.
        """
        states = [plaintext]
        state = plaintext
        for rnd in range(self.rounds):
            state ^= self.round_keys[rnd]
            state = _sbox_layer(state, self.sbox)
            state = _p_layer(state, PLAYER)
            states.append(state)
        return states

    def last_round_sbox_input(self, plaintext: int, nibble: int) -> int:
        """Value entering S-box ``nibble`` in the final (31st) round."""
        state = self.round_states(plaintext)[self.rounds - 1]
        state ^= self.round_keys[self.rounds - 1]
        return (state >> (4 * nibble)) & 0xF


class Present128(Present80):
    """PRESENT with the 128-bit key schedule (completeness; same datapath)."""

    key_bits = 128

    def _key_schedule(self, key: int) -> list[int]:
        reg = key
        keys = []
        for rnd in range(1, self.rounds + 2):
            keys.append(reg >> 64)
            reg = ((reg << 61) | (reg >> 67)) & ((1 << 128) - 1)
            hi = (reg >> 124) & 0xF
            lo = (reg >> 120) & 0xF
            reg = (reg & ~(0xFF << 120)) | (self.sbox(hi) << 124) | (self.sbox(lo) << 120)
            reg ^= rnd << 62
        return keys
