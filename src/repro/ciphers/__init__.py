"""Cipher reference models and gate-level datapath generators.

Each cipher appears twice:

- a *reference* implementation (``present``, ``aes``, ``gift``) — pure
  integer spec code, validated against published test vectors where those
  exist; it is the oracle every netlist and countermeasure is tested
  against;
- a *netlist* generator (``netlist_present``, ``netlist_gift``,
  ``netlist_aes``, ``netlist_sbox_layer``) — a round-iterative hardware
  datapath built on :mod:`repro.netlist`, which is what the fault
  campaigns attack.

The :mod:`~repro.ciphers.registry` maps cipher names to spec factories;
every by-name front-end (CLI, service, evaluation matrix, the cipherlight
battery) resolves through it.
"""

from repro.ciphers.aes import AES128
from repro.ciphers.gift import Gift64, Gift128
from repro.ciphers.present import Present80
from repro.ciphers.registry import (
    CipherEntry,
    get_entry,
    make_spec,
    register_cipher,
    registered_ciphers,
    resolve_cipher,
)
from repro.ciphers.sbox import SBox

__all__ = [
    "AES128",
    "CipherEntry",
    "Gift64",
    "Gift128",
    "Present80",
    "SBox",
    "get_entry",
    "make_spec",
    "register_cipher",
    "registered_ciphers",
    "resolve_cipher",
]
