"""Cipher reference models and gate-level datapath generators.

Each cipher appears twice:

- a *reference* implementation (``present``, ``aes``, ``gift``) — pure
  integer spec code, validated against published test vectors where those
  exist; it is the oracle every netlist and countermeasure is tested
  against;
- a *netlist* generator (``netlist_present``, ``netlist_gift``,
  ``netlist_sbox_layer``) — a round-iterative hardware datapath built on
  :mod:`repro.netlist`, which is what the fault campaigns attack.
"""

from repro.ciphers.aes import AES128
from repro.ciphers.gift import Gift64
from repro.ciphers.present import Present80
from repro.ciphers.sbox import SBox

__all__ = ["AES128", "Gift64", "Present80", "SBox"]
