"""AES-128 reference implementation (FIPS-197).

The DATE'21 paper uses AES only for its S-box layer cost (Table III), but a
full, test-vector-checked AES-128 is included so the countermeasure can be
demonstrated on a second real cipher and so the AES S-box object used for
synthesis is generated from first principles (GF(2^8) inversion + affine
map) rather than a typed-in table.
"""

from __future__ import annotations

from repro.ciphers.sbox import SBox

__all__ = ["AES128", "AES_SBOX", "gf_mul"]


def gf_mul(a: int, b: int) -> int:
    """Multiplication in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        carry = a & 0x80
        a = (a << 1) & 0xFF
        if carry:
            a ^= 0x1B
        b >>= 1
    return result


def _gf_inverse_table() -> list[int]:
    inv = [0] * 256
    # x^254 == x^{-1} in GF(2^8); square-and-multiply avoids a nested scan.
    for a in range(1, 256):
        acc = 1
        power = a
        exp = 254
        while exp:
            if exp & 1:
                acc = gf_mul(acc, power)
            power = gf_mul(power, power)
            exp >>= 1
        inv[a] = acc
    return inv


def _build_aes_sbox() -> SBox:
    inv = _gf_inverse_table()
    table = []
    for x in range(256):
        y = inv[x]
        out = 0
        for i in range(8):
            bit = (
                (y >> i)
                ^ (y >> ((i + 4) % 8))
                ^ (y >> ((i + 5) % 8))
                ^ (y >> ((i + 6) % 8))
                ^ (y >> ((i + 7) % 8))
                ^ (0x63 >> i)
            ) & 1
            out |= bit << i
        table.append(out)
    return SBox(table, name="aes")


#: The AES S-box, derived from the field inversion + affine map.
AES_SBOX = _build_aes_sbox()

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


class AES128:
    """AES with a 128-bit key, operating on 16-byte blocks.

    Blocks and keys are ``bytes`` (big-endian network order, as in
    FIPS-197).

    >>> key = bytes(range(16))
    >>> pt = bytes.fromhex("00112233445566778899aabbccddeeff")
    >>> AES128(key).encrypt_block(pt).hex()
    '69c4e0d86a7b0430d8cdb78070b4c55a'
    """

    rounds = 10
    sbox = AES_SBOX

    def __init__(self, key: bytes, *, rounds: int | None = None) -> None:
        if len(key) != 16:
            raise ValueError(f"AES-128 key must be 16 bytes, got {len(key)}")
        if rounds is not None:
            if not 1 <= rounds <= type(self).rounds:
                raise ValueError(
                    f"rounds must be in [1, {type(self).rounds}]: {rounds}"
                )
            self.rounds = rounds
        self.key = bytes(key)
        self.round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes) -> list[list[int]]:
        words = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
        for i in range(4, 4 * (self.rounds + 1)):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]
                temp = [self.sbox(b) for b in temp]
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([a ^ b for a, b in zip(words[i - 4], temp)])
        return [
            [b for w in words[4 * r : 4 * r + 4] for b in w]
            for r in range(self.rounds + 1)
        ]

    # state is a 16-byte list in FIPS column-major order: state[r + 4c]

    @staticmethod
    def _add_round_key(state: list[int], rk: list[int]) -> list[int]:
        return [s ^ k for s, k in zip(state, rk)]

    def _sub_bytes(self, state: list[int]) -> list[int]:
        return [self.sbox(b) for b in state]

    def _inv_sub_bytes(self, state: list[int]) -> list[int]:
        inv = self.sbox.inverse_sbox()
        return [inv(b) for b in state]

    @staticmethod
    def _shift_rows(state: list[int]) -> list[int]:
        out = list(state)
        for row in range(4):
            vals = [state[row + 4 * col] for col in range(4)]
            vals = vals[row:] + vals[:row]
            for col in range(4):
                out[row + 4 * col] = vals[col]
        return out

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> list[int]:
        out = list(state)
        for row in range(4):
            vals = [state[row + 4 * col] for col in range(4)]
            vals = vals[-row:] + vals[:-row] if row else vals
            for col in range(4):
                out[row + 4 * col] = vals[col]
        return out

    @staticmethod
    def _mix_columns(state: list[int]) -> list[int]:
        out = [0] * 16
        for col in range(4):
            a = state[4 * col : 4 * col + 4]
            out[4 * col + 0] = gf_mul(a[0], 2) ^ gf_mul(a[1], 3) ^ a[2] ^ a[3]
            out[4 * col + 1] = a[0] ^ gf_mul(a[1], 2) ^ gf_mul(a[2], 3) ^ a[3]
            out[4 * col + 2] = a[0] ^ a[1] ^ gf_mul(a[2], 2) ^ gf_mul(a[3], 3)
            out[4 * col + 3] = gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ gf_mul(a[3], 2)
        return out

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> list[int]:
        out = [0] * 16
        for col in range(4):
            a = state[4 * col : 4 * col + 4]
            out[4 * col + 0] = (
                gf_mul(a[0], 14) ^ gf_mul(a[1], 11) ^ gf_mul(a[2], 13) ^ gf_mul(a[3], 9)
            )
            out[4 * col + 1] = (
                gf_mul(a[0], 9) ^ gf_mul(a[1], 14) ^ gf_mul(a[2], 11) ^ gf_mul(a[3], 13)
            )
            out[4 * col + 2] = (
                gf_mul(a[0], 13) ^ gf_mul(a[1], 9) ^ gf_mul(a[2], 14) ^ gf_mul(a[3], 11)
            )
            out[4 * col + 3] = (
                gf_mul(a[0], 11) ^ gf_mul(a[1], 13) ^ gf_mul(a[2], 9) ^ gf_mul(a[3], 14)
            )
        return out

    def encrypt_block(self, plaintext: bytes) -> bytes:
        if len(plaintext) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = self._add_round_key(list(plaintext), self.round_keys[0])
        for rnd in range(1, self.rounds):
            state = self._sub_bytes(state)
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            state = self._add_round_key(state, self.round_keys[rnd])
        state = self._sub_bytes(state)
        state = self._shift_rows(state)
        state = self._add_round_key(state, self.round_keys[self.rounds])
        return bytes(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = self._add_round_key(list(ciphertext), self.round_keys[self.rounds])
        state = self._inv_shift_rows(state)
        state = self._inv_sub_bytes(state)
        for rnd in reversed(range(1, self.rounds)):
            state = self._add_round_key(state, self.round_keys[rnd])
            state = self._inv_mix_columns(state)
            state = self._inv_shift_rows(state)
            state = self._inv_sub_bytes(state)
        return bytes(self._add_round_key(state, self.round_keys[0]))
