"""PRESENT-80 as a round-iterative hardware datapath.

The scheduler implements the spec's 80-bit key schedule: rotate-left-61,
S-box on the top nibble, round-counter XOR into bits 19..15, with a 5-bit
counter register (init 1).  The unprotected single-core circuit built by
:func:`build_present_circuit` encrypts one block in 31 clock cycles and is
the base design every countermeasure wraps.
"""

from __future__ import annotations

from repro.ciphers.present import PLAYER, ROUNDS, Present80
from repro.ciphers.sbox import PRESENT_SBOX
from repro.ciphers.spn import SpnCore, SpnSpec, build_spn_core
from repro.netlist.builder import CircuitBuilder
from repro.netlist.circuit import Circuit
from repro.synth.sbox_synth import synthesize_sbox

__all__ = ["PresentSpec", "build_present_circuit"]

Word = list[int]


class PresentSpec(SpnSpec):
    """PRESENT-80 parameters for the generic SPN template."""

    name = "present80"
    block_bits = 64
    key_bits = 80
    rounds = ROUNDS
    sbox = PRESENT_SBOX
    perm = list(PLAYER)
    add_key_first = True
    final_whitening = True

    def __init__(
        self, *, sbox_strategy: str = "shannon", rounds: int | None = None
    ) -> None:
        if rounds is not None:
            # Reduced-round instance (CI smoke sweeps, quick certifies).
            # The netlist stays spec-faithful per round; only the iteration
            # count shrinks, and reference() returns a matching
            # reduced-round oracle so KAT-equivalence checks still apply.
            if not 1 <= rounds <= ROUNDS:
                raise ValueError(f"rounds must be in [1, {ROUNDS}]: {rounds}")
            self.rounds = rounds
        self._key_sbox_circuit = synthesize_sbox(
            self.sbox.truthtable(), strategy=sbox_strategy, name="present_key_sbox"
        )

    def reference(self, key: int) -> Present80:
        return Present80(key, rounds=self.rounds)

    def build_scheduler(
        self, builder: CircuitBuilder, key_in: Word, first: int, tag: str
    ) -> Word:
        if len(key_in) != 80:
            raise ValueError("PRESENT-80 key port must be 80 bits")
        key_q, key_connect = builder.register(80, tag=f"{tag}/keyreg")
        cur = builder.mux_word(first, key_q, key_in, tag=f"{tag}/keyload")

        # Round key: the leftmost 64 bits (bits 79..16) of the register.
        round_mask = cur[16:80]

        # Update: rotate left 61 — bit j of the rotated word is bit
        # (j + 19) mod 80 of the current word.
        rot = [cur[(j + 19) % 80] for j in range(80)]

        # S-box on the top nibble (bits 79..76, LSB-first slice [76:80]).
        ports = builder.append_circuit(
            self._key_sbox_circuit,
            {"x": rot[76:80]},
            tag_prefix=f"{tag}/keysbox/",
        )
        nxt = rot[:76] + ports["y"]

        # Round counter (1..31) XORed into bits 19..15 (LSB at bit 15).
        counter_q, counter_connect = builder.register(
            5, init=1, tag=f"{tag}/roundctr"
        )
        counter_connect(builder.incrementer(counter_q, tag=f"{tag}/roundctr"))
        for i in range(5):
            nxt[15 + i] = builder.xor(nxt[15 + i], counter_q[i], tag=f"{tag}/ctrxor")

        key_connect(nxt)
        return round_mask


def build_present_circuit(
    *,
    sbox_strategy: str = "shannon",
    name: str = "present80",
) -> tuple[Circuit, SpnCore]:
    """A bare (unprotected) PRESENT-80 encryption circuit.

    Ports: ``plaintext`` (64), ``key`` (80) → ``ciphertext`` (64).  Run the
    simulator for 31 cycles, then evaluate combinationally and read the
    output (see :class:`~repro.ciphers.spn.SpnCore`).
    """
    spec = PresentSpec(sbox_strategy=sbox_strategy)
    builder = CircuitBuilder(name)
    pt = builder.input("plaintext", 64)
    key = builder.input("key", 80)
    sbox_circuit = synthesize_sbox(
        spec.sbox.truthtable(), strategy=sbox_strategy, name="present_sbox"
    )
    core = build_spn_core(
        builder, spec, pt, key, sbox_circuit=sbox_circuit, tag="u"
    )
    builder.output("ciphertext", core.ciphertext)
    return builder.build(), core
