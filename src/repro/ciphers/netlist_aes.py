"""AES-128 as a round-iterative hardware datapath, countermeasure-ready.

AES is the stress test for the countermeasure's genericity claim: unlike
PRESENT/GIFT its linear layer is not a bit permutation, so the inverted
domain is only usable if MixColumns is *inversion-transparent*.  It is:
MixColumns is GF(2)-linear and its column matrix rows sum to
``2 ⊕ 3 ⊕ 1 ⊕ 1 = 1`` in GF(2⁸), hence ``M(1…1) = 1…1`` and

    M(x̄) = M(x ⊕ 1…1) = M(x) ⊕ M(1…1) = M(x)‾.

ShiftRows is a byte permutation and AddRoundKey is an XOR with a
plain-domain word, so the whole linear layer carries the encoding for free
— the S-boxes (as merged 9×8 boxes) are again the only thing the
countermeasure touches.  The same argument needs the whole state to share
*one* λ, so AES supports the ``PRIME`` and ``PER_ROUND`` variants; the
``PER_SBOX`` variant would need a domain-mixing circuit through MixColumns
and is rejected with a clear error.

Bit conventions: the 128-bit ports carry the FIPS state bytes in
``state[r + 4c]`` order, byte ``j`` at bits ``8j .. 8j+7`` (LSB first);
:func:`block_to_int` / :func:`int_to_block` convert to/from the byte
strings the reference implementation uses.
"""

from __future__ import annotations

from repro.ciphers.aes import AES128, AES_SBOX
from repro.ciphers.spn import CipherSpec, SpnCore
from repro.netlist.builder import CircuitBuilder
from repro.netlist.circuit import Circuit
from repro.synth.sbox_synth import synthesize_sbox

__all__ = ["AesSpec", "AesReference", "block_to_int", "int_to_block", "build_aes_circuit"]

Word = list[int]

ROUNDS = 10


def block_to_int(block: bytes) -> int:
    """16 bytes (FIPS order) → the 128-bit port integer."""
    if len(block) != 16:
        raise ValueError("AES block must be 16 bytes")
    return int.from_bytes(block, "little")


def int_to_block(value: int) -> bytes:
    """Inverse of :func:`block_to_int`."""
    if value < 0 or value >> 128:
        raise ValueError("value does not fit in 128 bits")
    return value.to_bytes(16, "little")


class AesReference:
    """Integer-port adapter over :class:`repro.ciphers.aes.AES128`."""

    def __init__(self, key: int, *, rounds: int | None = None) -> None:
        self.cipher = AES128(int_to_block(key), rounds=rounds)
        self.rounds = self.cipher.rounds
        #: round keys as port integers (index 0 = whitening key)
        self.round_keys = [
            block_to_int(bytes(rk)) for rk in self.cipher.round_keys
        ]

    def encrypt(self, plaintext: int) -> int:
        return block_to_int(self.cipher.encrypt_block(int_to_block(plaintext)))

    def decrypt(self, ciphertext: int) -> int:
        return block_to_int(self.cipher.decrypt_block(int_to_block(ciphertext)))


def _byte(word: Word, j: int) -> Word:
    return word[8 * j : 8 * (j + 1)]


def _xtime(builder: CircuitBuilder, byte: Word, *, tag: str) -> Word:
    """GF(2⁸) multiplication by x: shift left, conditionally XOR 0x1B.

    Pure wiring plus three XOR gates (0x1B sets output bits 0,1,3,4; bit 0
    is the bare carry wire).
    """
    b7 = byte[7]
    return [
        b7,
        builder.xor(byte[0], b7, tag=tag),
        byte[1],
        builder.xor(byte[2], b7, tag=tag),
        builder.xor(byte[3], b7, tag=tag),
        byte[4],
        byte[5],
        byte[6],
    ]


def _xor_bytes(builder: CircuitBuilder, terms: list[Word], *, tag: str) -> Word:
    out = terms[0]
    for term in terms[1:]:
        out = builder.xor_word(out, term, tag=tag)
    return out


class AesSpec(CipherSpec):
    """AES-128 parameters + datapath generator for the countermeasures."""

    name = "aes128"
    block_bits = 128
    key_bits = 128
    rounds = ROUNDS
    sbox = AES_SBOX

    def __init__(
        self, *, sbox_strategy: str = "shannon", rounds: int | None = None
    ) -> None:
        if rounds is not None:
            # Reduced-round instance (CI smoke sweeps, quick certifies).
            if not 1 <= rounds <= ROUNDS:
                raise ValueError(f"rounds must be in [1, {ROUNDS}]: {rounds}")
            self.rounds = rounds
        # the key schedule always uses the plain S-box (paper §III: "the
        # key schedule is not affected")
        self._key_sbox = synthesize_sbox(
            AES_SBOX.truthtable(), strategy=sbox_strategy, name="aes_key_sbox"
        )

    def reference(self, key: int) -> AesReference:
        return AesReference(key, rounds=self.rounds)

    # -- last-round structure (C = ShiftRows(S(x)) ⊕ K10) ----------------

    @staticmethod
    def _shiftrows_dest(byte: int) -> int:
        """Where state byte ``r + 4c`` lands after ShiftRows."""
        r, c = byte % 4, byte // 4
        return r + 4 * ((c - r) % 4)

    def gather_positions(self, target_sbox: int) -> list[int]:
        dest = self._shiftrows_dest(target_sbox)
        return [8 * dest + i for i in range(8)]

    def last_round_subkey(self, key: int, target_sbox: int) -> int:
        dest = self._shiftrows_dest(target_sbox)
        return (self.reference(key).round_keys[-1] >> (8 * dest)) & 0xFF

    # ------------------------------------------------------------ datapath

    def build_core(
        self,
        builder: CircuitBuilder,
        plaintext: Word,
        key: Word,
        *,
        sbox_circuit: Circuit,
        lam: Word | None = None,
        dynamic_domain: bool = False,
        tag: str = "core",
    ) -> SpnCore:
        if len(plaintext) != 128 or len(key) != 128:
            raise ValueError("AES ports must be 128 bits")
        if lam is not None and len(set(lam)) != 1:
            raise ValueError(
                "AES supports one shared λ per cycle (PRIME/PER_ROUND): "
                "per-S-box domains would need a domain-mixing circuit "
                "through MixColumns"
            )
        expected = 9 if lam is not None else 8
        if len(sbox_circuit.inputs.get("x", [])) != expected:
            raise ValueError(
                f"sbox_circuit has {len(sbox_circuit.inputs.get('x', []))} "
                f"inputs, need {expected}"
            )
        lam_net = lam[0] if lam is not None else None

        first = builder.dff(builder.circuit.const(0), init=1, tag=f"{tag}/first")
        state_q, state_connect = builder.register(128, tag=f"{tag}/state")

        # --- key schedule (plain domain) --------------------------------
        key_q, key_connect = builder.register(128, tag=f"{tag}/keyreg")
        key_cur = builder.mux_word(first, key_q, key, tag=f"{tag}/keyload")
        key_next = self._expand_key(builder, key_cur, tag)
        key_connect(key_next)

        # --- load path ----------------------------------------------------
        loaded = builder.xor_word(plaintext, key_cur, tag=f"{tag}/whitenin")
        domain_in: Word
        if lam_net is None:
            domain_in = [builder.circuit.const(0)] * 128
        elif dynamic_domain:
            lam_prev, lam_connect = builder.register(1, tag=f"{tag}/lamprev")
            lam_connect([lam_net])
            domain_in = [lam_prev[0]] * 128
        else:
            loaded = builder.xor_bit_into_word(loaded, lam_net, tag=f"{tag}/encode")
            domain_in = [lam_net] * 128
        state_in = builder.mux_word(first, state_q, loaded, tag=f"{tag}/load")

        # --- re-encode (dynamic only) --------------------------------------
        s = list(state_in)
        if lam_net is not None and dynamic_domain:
            delta = builder.xor(domain_in[0], lam_net, tag=f"{tag}/recode")
            s = builder.xor_bit_into_word(s, delta, tag=f"{tag}/recode")

        # --- SubBytes -------------------------------------------------------
        sbox_inputs: list[Word] = []
        sbox_outputs: list[Word] = []
        sub: Word = []
        for j in range(16):
            ins = _byte(s, j)
            bound = list(ins)
            if lam_net is not None:
                bound.append(lam_net)
            ports = builder.append_circuit(
                sbox_circuit, {"x": bound}, tag_prefix=f"{tag}/sbox{j}/"
            )
            sbox_inputs.append(ins)
            sbox_outputs.append(ports["y"])
            sub.extend(ports["y"])

        # --- ShiftRows (byte wiring) ---------------------------------------
        sr: Word = [0] * 128
        for c in range(4):
            for r in range(4):
                src = _byte(sub, r + 4 * ((c + r) % 4))
                sr[8 * (r + 4 * c) : 8 * (r + 4 * c + 1)] = src

        # --- MixColumns ------------------------------------------------------
        mc: Word = []
        for c in range(4):
            a = [_byte(sr, 4 * c + r) for r in range(4)]
            xt = [_xtime(builder, byte, tag=f"{tag}/mc") for byte in a]
            mc.extend(_xor_bytes(builder, [xt[0], xt[1], a[1], a[2], a[3]], tag=f"{tag}/mc"))
            mc.extend(_xor_bytes(builder, [a[0], xt[1], xt[2], a[2], a[3]], tag=f"{tag}/mc"))
            mc.extend(_xor_bytes(builder, [a[0], a[1], xt[2], xt[3], a[3]], tag=f"{tag}/mc"))
            mc.extend(_xor_bytes(builder, [xt[0], a[0], a[1], a[2], xt[3]], tag=f"{tag}/mc"))

        # --- final-round select + AddRoundKey ------------------------------
        counter_q, counter_connect = builder.register(4, tag=f"{tag}/roundctr")
        counter_connect(builder.incrementer(counter_q, tag=f"{tag}/roundctr"))
        # is_last == (counter == rounds - 1), as a 4-bit equality comparator
        target = self.rounds - 1
        matched = [
            counter_q[i]
            if (target >> i) & 1
            else builder.not_(counter_q[i], tag=f"{tag}/roundctr")
            for i in range(4)
        ]
        is_last = builder.and_(
            builder.and_(matched[0], matched[3], tag=f"{tag}/roundctr"),
            builder.and_(matched[1], matched[2], tag=f"{tag}/roundctr"),
            tag=f"{tag}/roundctr",
        )
        selected = builder.mux_word(is_last, mc, sr, tag=f"{tag}/lastsel")
        state_connect(builder.xor_word(selected, key_next, tag=f"{tag}/addkey"))

        # --- output ----------------------------------------------------------
        raw = list(state_in)
        ciphertext = [
            builder.xor(bit, dom, tag=f"{tag}/decode")
            for bit, dom in zip(raw, domain_in)
        ] if lam_net is not None else raw

        return SpnCore(
            tag=tag,
            spec=self,
            ciphertext=ciphertext,
            raw_output=raw,
            state_in=list(state_in),
            round_mask=list(key_next),
            sbox_inputs=sbox_inputs,
            sbox_outputs=sbox_outputs,
            lam=list(lam) if lam is not None else None,
        )

    def _expand_key(self, builder: CircuitBuilder, cur: Word, tag: str) -> Word:
        """One combinational key-expansion step: cur = Kᵣ → Kᵣ₊₁."""
        rcon_q, rcon_connect = builder.register(8, init=0x01, tag=f"{tag}/rcon")
        rcon_connect(_xtime(builder, rcon_q, tag=f"{tag}/rcon"))

        w = [cur[32 * i : 32 * (i + 1)] for i in range(4)]
        # RotWord(w3): bytes (b1, b2, b3, b0) of the word
        rot = w[3][8:32] + w[3][0:8]
        temp: Word = []
        for j in range(4):
            ports = builder.append_circuit(
                self._key_sbox,
                {"x": rot[8 * j : 8 * (j + 1)]},
                tag_prefix=f"{tag}/keysbox{j}/",
            )
            temp.extend(ports["y"])
        temp[0:8] = builder.xor_word(temp[0:8], rcon_q, tag=f"{tag}/rconxor")

        out: Word = []
        prev = temp
        for i in range(4):
            prev = builder.xor_word(w[i], prev, tag=f"{tag}/keyxor")
            out.extend(prev)
        return out


def build_aes_circuit(
    *,
    sbox_strategy: str = "shannon",
    name: str = "aes128",
) -> tuple[Circuit, SpnCore]:
    """A bare (unprotected) AES-128 encryption circuit.

    Ports: ``plaintext`` (128), ``key`` (128) → ``ciphertext`` (128);
    10 clock cycles per block.
    """
    spec = AesSpec(sbox_strategy=sbox_strategy)
    builder = CircuitBuilder(name)
    pt = builder.input("plaintext", 128)
    key = builder.input("key", 128)
    sbox_circuit = synthesize_sbox(
        AES_SBOX.truthtable(), strategy=sbox_strategy, name="aes_sbox"
    )
    core = spec.build_core(builder, pt, key, sbox_circuit=sbox_circuit, tag="u")
    builder.output("ciphertext", core.ciphertext)
    builder.circuit.validate()
    return builder.circuit, core
