"""S-box objects: lookup, inverse, and the cryptanalytic tables attacks use.

The difference distribution table (DDT) drives the DFA key-recovery step;
the paper's SIFA figure is a histogram over S-box input values, and the FTA
template is built per S-box — so this class is shared by ciphers,
countermeasures and attacks alike.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.synth.truthtable import TruthTable

__all__ = ["SBox", "PRESENT_SBOX", "GIFT_SBOX"]


class SBox:
    """An ``n × n`` bijective substitution box."""

    def __init__(self, table: Sequence[int], *, name: str = "sbox") -> None:
        table = list(table)
        size = len(table)
        n = size.bit_length() - 1
        if 1 << n != size:
            raise ValueError(f"table length {size} is not a power of two")
        if sorted(table) != list(range(size)):
            raise ValueError("S-box must be a bijection")
        self.name = name
        self.n = n
        self.table = table
        self._inverse = [0] * size
        for x, y in enumerate(table):
            self._inverse[y] = x

    def __call__(self, x: int) -> int:
        return self.table[x]

    def __len__(self) -> int:
        return len(self.table)

    def inverse(self, y: int) -> int:
        """The unique ``x`` with ``S(x) == y``."""
        return self._inverse[y]

    def inverse_sbox(self) -> "SBox":
        """The inverse S-box as its own object."""
        return SBox(self._inverse, name=f"{self.name}_inv")

    # ------------------------------------------------------------- analysis

    def ddt(self) -> list[list[int]]:
        """Difference distribution table: ``ddt[dx][dy] = #{x : S(x)⊕S(x⊕dx) = dy}``."""
        size = len(self.table)
        out = [[0] * size for _ in range(size)]
        for x in range(size):
            for dx in range(size):
                out[dx][self.table[x] ^ self.table[x ^ dx]] += 1
        return out

    def diff_candidates(self, dx: int, dy: int) -> list[int]:
        """Inputs ``x`` with ``S(x) ⊕ S(x ⊕ dx) == dy`` (DFA solving step)."""
        return [
            x
            for x in range(len(self.table))
            if self.table[x] ^ self.table[x ^ dx] == dy
        ]

    # ----------------------------------------------------------- synthesis

    def truthtable(self) -> TruthTable:
        """The S-box as a synthesisable truth table."""
        return TruthTable(self.n, self.n, self.table)

    def merged_truthtable(self) -> TruthTable:
        """The paper's ``(n+1) × n`` merged table (λ on the extra MSB input).

        ``T(λ=0, x) = S(x)`` and ``T(λ=1, x) = S(x̄)‾`` — the original box
        and its inverted-domain twin implemented "at one place" (§III).
        """
        return self.truthtable().merged_with_domain_bit()

    def __repr__(self) -> str:
        return f"SBox({self.name!r}, {self.n}x{self.n})"


#: The PRESENT cipher S-box (Bogdanov et al., CHES 2007, Table 1).
PRESENT_SBOX = SBox(
    [0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2],
    name="present",
)

#: The GIFT cipher S-box (Banik et al., CHES 2017).
GIFT_SBOX = SBox(
    [0x1, 0xA, 0x4, 0xC, 0x6, 0xF, 0x3, 0x9, 0x2, 0xD, 0xB, 0x7, 0x5, 0x0, 0x8, 0xE],
    name="gift",
)
