"""Standalone S-box layer circuits (the paper's Table III units).

Table III prices *one layer of S-boxes* under both countermeasures —
sixteen 4×4 boxes for PRESENT, sixteen 8×8 boxes for AES — because the
linear parts scale identically under duplication while the non-linear part
is where the merged boxes pay their premium.  These builders produce
exactly those units: ``copies=2`` instantiates the duplicated layer
(complementary λ per copy when merged, matching the three-in-one wiring).
"""

from __future__ import annotations

from repro.ciphers.sbox import SBox
from repro.countermeasures.merged_sbox import build_merged_sbox
from repro.netlist.builder import CircuitBuilder
from repro.netlist.circuit import Circuit
from repro.synth.sbox_synth import synthesize_sbox

__all__ = ["build_sbox_layer"]


def build_sbox_layer(
    sbox: SBox,
    *,
    n_boxes: int = 16,
    copies: int = 2,
    merged: bool = False,
    construction: str = "monolithic",
    strategy: str = "shannon",
    name: str | None = None,
) -> Circuit:
    """One S-box layer, instantiated ``copies`` times over shared inputs.

    Ports: ``x`` (``n·n_boxes`` bits), ``lambda`` (1 bit, merged only) →
    ``y0`` … ``y{copies-1}``.  With ``merged=True`` copy 0 uses λ and copy
    1 uses λ̄ (further copies alternate), mirroring the countermeasure's
    complementary encoding; note the *inputs* are shared raw, as the layer
    is priced in isolation exactly as the paper does.
    """
    if merged:
        unit = build_merged_sbox(sbox, construction=construction, strategy=strategy)
        label = f"{sbox.name}_merged_layer"
    else:
        unit = synthesize_sbox(sbox.truthtable(), strategy=strategy, name="unit")
        label = f"{sbox.name}_plain_layer"
    builder = CircuitBuilder(name or label)
    x = builder.input("x", sbox.n * n_boxes)
    lam = builder.input("lambda", 1)[0] if merged else None
    lam_bar = builder.not_(lam, tag="lambda_bar") if merged else None

    for copy in range(copies):
        outs: list[int] = []
        for j in range(n_boxes):
            bound = x[sbox.n * j : sbox.n * (j + 1)]
            if merged:
                bound = bound + [lam if copy % 2 == 0 else lam_bar]
            ports = builder.append_circuit(
                unit, {"x": bound}, tag_prefix=f"c{copy}/sbox{j}/"
            )
            outs.extend(ports["y"])
        builder.output(f"y{copy}", outs)
    builder.circuit.validate()
    return builder.circuit
