"""Generic round-iterative SPN datapath generator.

One hardware template covers every cipher in the repository (and any other
S-box/bit-permutation SPN a user brings): a block-wide state register, a key
scheduler, one physical S-box layer reused every clock cycle, and the
bit-permutation as wiring.  The template also knows how to build the
*encoded* (λ-domain) variant of itself, which is the machinery the paper's
three-in-one countermeasure is made of:

- **no domain** (``lam=None``) — the plain core used in the unprotected
  design and in naïve duplication / triplication;
- **static domain** (``lam`` given, ``dynamic_domain=False``) — the paper's
  *prime* variant: a single λ encodes the entire computation.  The
  plaintext is encoded once on load, the merged ``(n+1)``-input S-boxes
  carry the domain through the non-linear layer, the linear layers are
  domain-transparent (``x̄ ⊕ k = (x ⊕ k)‾``, permutations move complements
  unchanged), and the output is decoded at the end;
- **dynamic domain** (``dynamic_domain=True``) — the *per-round* and
  *per-S-box* variants: λ may change every cycle, so the core keeps the
  previous cycle's λ in a register and re-encodes each S-box input from the
  domain its bits were produced in to the domain of the S-box consuming
  them (one XOR per state bit).

The returned :class:`SpnCore` records the S-box input/output nets per box —
fault campaigns use these to aim at "the 2nd MSB input line of S-box 13",
exactly how the paper describes its injections.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.netlist.builder import CircuitBuilder
from repro.netlist.circuit import Circuit
from repro.ciphers.sbox import SBox

__all__ = ["CipherSpec", "SpnSpec", "SpnCore", "build_spn_core"]

Word = list[int]


class CipherSpec(abc.ABC):
    """What a countermeasure wrapper needs from *any* cipher datapath.

    :class:`SpnSpec` covers S-box/bit-permutation ciphers via the shared
    round template; ciphers with richer linear layers (AES's MixColumns)
    implement :meth:`build_core` themselves — see
    :class:`repro.ciphers.netlist_aes.AesSpec`.
    """

    name: str
    block_bits: int
    key_bits: int
    rounds: int
    sbox: "SBox"

    @property
    def n_sboxes(self) -> int:
        if self.block_bits % self.sbox.n:
            raise ValueError("block width not a multiple of the S-box size")
        return self.block_bits // self.sbox.n

    @abc.abstractmethod
    def build_core(
        self,
        builder: CircuitBuilder,
        plaintext: "Word",
        key: "Word",
        *,
        sbox_circuit: Circuit,
        lam: "Word | None" = None,
        dynamic_domain: bool = False,
        tag: str = "core",
    ) -> "SpnCore":
        """Stamp one core of this cipher into ``builder``."""

    def reference(self, key: int):  # pragma: no cover - overridden where used
        """Spec-level oracle object with an ``encrypt`` method (tests)."""
        raise NotImplementedError

    # -- last-round structure (shared by the SIFA/DFA/PFA solvers) --------
    #
    # Every cipher here ends in the same shape: C = P(S(x)) ⊕ mask, where
    # P is a bit/byte permutation and mask is the final round key material
    # (PRESENT's whitening key, GIFT's partial round key + constants,
    # AES's K10 after ShiftRows).  The attacks only need to know where one
    # S-box's outputs land and what the true mask bits there are.

    def gather_positions(self, target_sbox: int) -> list[int]:
        """Ciphertext bit positions carrying ``target_sbox``'s last-round
        outputs (LSB of the S-box output first)."""
        raise NotImplementedError

    def last_round_subkey(self, key: int, target_sbox: int) -> int:
        """True final-mask bits at :meth:`gather_positions` (ground truth
        for attack rank reporting)."""
        raise NotImplementedError


class SpnSpec(CipherSpec):
    """Everything the generic template needs to know about one cipher."""

    #: cipher name (used in circuit/tag names)
    name: str
    #: block width in bits
    block_bits: int
    #: key width in bits
    key_bits: int
    #: number of round iterations (= clock cycles per block)
    rounds: int
    #: the substitution box applied to every ``sbox.n``-bit slice
    sbox: SBox
    #: bit permutation: state bit ``i`` moves to ``perm[i]``
    perm: list[int]
    #: True: round mask XORed before the S-box layer (PRESENT);
    #: False: after the permutation (GIFT)
    add_key_first: bool
    #: True: ciphertext = final state ⊕ the next round mask (PRESENT's
    #: post-whitening); False: ciphertext = final state (GIFT)
    final_whitening: bool

    @abc.abstractmethod
    def build_scheduler(
        self, builder: CircuitBuilder, key_in: Word, first: int, tag: str
    ) -> Word:
        """Emit the key schedule; return this cycle's ``block_bits`` mask.

        ``first`` is 1 during cycle 0 only (for load muxes).  The scheduler
        owns whatever registers it needs (key state, round counter, LFSR);
        they must advance on every clock so that cycle ``r`` produces the
        mask for round ``r + 1``.
        """

    def gather_positions(self, target_sbox: int) -> list[int]:
        n = self.sbox.n
        return [self.perm[n * target_sbox + i] for i in range(n)]

    def last_round_subkey(self, key: int, target_sbox: int) -> int:
        mask = self.final_round_mask(key)
        value = 0
        for i, pos in enumerate(self.gather_positions(target_sbox)):
            value |= ((mask >> pos) & 1) << i
        return value

    def final_round_mask(self, key: int) -> int:
        """The block-wide XOR mask applied after the last permutation.

        Whitened key-first ciphers (PRESENT) use the extra round key; GIFT
        overrides this with its last partial round key plus constants.
        """
        if not self.final_whitening:
            raise NotImplementedError(
                f"{self.name}: override final_round_mask for key-last ciphers"
            )
        return self.reference(key).round_keys[-1]

    def build_core(
        self,
        builder: CircuitBuilder,
        plaintext: Word,
        key: Word,
        *,
        sbox_circuit: Circuit,
        lam: Word | None = None,
        dynamic_domain: bool = False,
        tag: str = "core",
    ) -> "SpnCore":
        return build_spn_core(
            builder,
            self,
            plaintext,
            key,
            sbox_circuit=sbox_circuit,
            lam=lam,
            dynamic_domain=dynamic_domain,
            tag=tag,
        )


@dataclass
class SpnCore:
    """Handle onto one instantiated core inside a larger circuit.

    All net lists are *combinational taps* of the single physical round:
    during cycle ``r`` they carry round ``r + 1``'s values.  After
    ``spec.rounds`` clock steps plus one combinational evaluation,
    ``ciphertext`` carries the (decoded) result.
    """

    tag: str
    spec: CipherSpec
    ciphertext: Word
    raw_output: Word
    state_in: Word
    round_mask: Word
    sbox_inputs: list[Word] = field(default_factory=list)
    sbox_outputs: list[Word] = field(default_factory=list)
    lam: Word | None = None


def build_spn_core(
    builder: CircuitBuilder,
    spec: SpnSpec,
    plaintext: Word,
    key: Word,
    *,
    sbox_circuit: Circuit,
    lam: Word | None = None,
    dynamic_domain: bool = False,
    tag: str = "core",
) -> SpnCore:
    """Stamp one round-iterative core into ``builder``.

    Parameters
    ----------
    sbox_circuit:
        A synthesised S-box with ports ``x`` → ``y``.  Without a domain this
        must be the plain ``n × n`` box; with ``lam`` it must be the merged
        ``(n+1) × n`` box whose extra MSB input is λ
        (:meth:`SBox.merged_truthtable`).
    lam:
        Per-S-box domain nets (length ``spec.n_sboxes``).  Callers
        implement the paper's variants purely by wiring: the *prime* and
        *per-round* variants pass the same net 16 times, *per-S-box* passes
        16 distinct nets.
    dynamic_domain:
        Set when λ can change between cycles (per-round / per-S-box
        variants); adds the λ history register and the re-encoding XOR layer.
    """
    if len(plaintext) != spec.block_bits:
        raise ValueError(f"plaintext must be {spec.block_bits} nets")
    if len(key) != spec.key_bits:
        raise ValueError(f"key must be {spec.key_bits} nets")
    n_sb = spec.n_sboxes
    sb_n = spec.sbox.n
    if lam is not None and len(lam) != n_sb:
        raise ValueError(f"lam must provide {n_sb} nets (one per S-box)")
    expected_sbox_inputs = sb_n + (1 if lam is not None else 0)
    got_inputs = len(sbox_circuit.inputs.get("x", []))
    if got_inputs != expected_sbox_inputs:
        raise ValueError(
            f"sbox_circuit has {got_inputs} inputs, need {expected_sbox_inputs} "
            f"({'merged' if lam is not None else 'plain'} box)"
        )

    # `first` is 1 only during cycle 0: a flop initialised to 1 fed with 0.
    first = builder.dff(builder.circuit.const(0), init=1, tag=f"{tag}/first")

    state_q, state_connect = builder.register(
        spec.block_bits, tag=f"{tag}/state"
    )

    # Static domain: encode the plaintext once on load (P ⊕ λ).
    loaded = plaintext
    if lam is not None and not dynamic_domain:
        loaded = [
            builder.xor(bit, lam[i // sb_n], tag=f"{tag}/encode")
            for i, bit in enumerate(plaintext)
        ]
    state_in = builder.mux_word(first, state_q, loaded, tag=f"{tag}/load")

    round_mask = spec.build_scheduler(builder, key, first, tag)

    s = list(state_in)
    if spec.add_key_first:
        s = builder.xor_word(s, round_mask, tag=f"{tag}/addkey")

    # Domain bookkeeping: domain_in[p] = encoding of state_in bit p.
    domain_in: Word | None = None
    if lam is not None:
        if dynamic_domain:
            lam_prev, lam_connect = builder.register(n_sb, tag=f"{tag}/lamprev")
            lam_connect(lam)
            perm_inv = [0] * spec.block_bits
            for i, p in enumerate(spec.perm):
                perm_inv[p] = i
            # state_in came through the permutation, so bit p was produced
            # by S-box perm_inv[p] // n in the previous cycle; λ_prev resets
            # to 0, matching the unencoded plaintext on cycle 0.
            domain_in = [lam_prev[perm_inv[p] // sb_n] for p in range(spec.block_bits)]
            # Re-encode every S-box input into its consumer's domain.
            recode_cache: dict[tuple[int, int], int] = {}
            recoded: Word = []
            for p, bit in enumerate(s):
                d_old = domain_in[p]
                d_new = lam[p // sb_n]
                key_pair = (min(d_old, d_new), max(d_old, d_new))
                if d_old == d_new:
                    recoded.append(bit)
                    continue
                delta = recode_cache.get(key_pair)
                if delta is None:
                    delta = builder.xor(d_old, d_new, tag=f"{tag}/recode")
                    recode_cache[key_pair] = delta
                recoded.append(builder.xor(bit, delta, tag=f"{tag}/recode"))
            s = recoded
        else:
            domain_in = [lam[p // sb_n] for p in range(spec.block_bits)]

    # The one physical S-box layer.
    sbox_inputs: list[Word] = []
    sbox_outputs: list[Word] = []
    out_bits: Word = []
    for j in range(n_sb):
        # The slice nets are one-to-one with S-box input lines (each driver
        # feeds exactly one box), so fault campaigns can target them
        # directly — "the 2nd MSB input line of S-box 13" is
        # ``sbox_inputs[13][2]``.
        ins = s[sb_n * j : sb_n * (j + 1)]
        bound = list(ins)
        if lam is not None:
            bound.append(lam[j])
        ports = builder.append_circuit(
            sbox_circuit, {"x": bound}, tag_prefix=f"{tag}/sbox{j}/"
        )
        outs = ports["y"]
        sbox_inputs.append(ins)
        sbox_outputs.append(outs)
        out_bits.extend(outs)

    permuted: Word = [0] * spec.block_bits
    for i, p in enumerate(spec.perm):
        permuted[p] = out_bits[i]

    s = permuted
    if not spec.add_key_first:
        s = builder.xor_word(s, round_mask, tag=f"{tag}/addkey")
    state_connect(s)

    raw = list(state_in)
    if spec.final_whitening:
        raw = builder.xor_word(raw, round_mask, tag=f"{tag}/whiten")
    ciphertext = raw
    if lam is not None:
        assert domain_in is not None
        ciphertext = [
            builder.xor(bit, dom, tag=f"{tag}/decode")
            for bit, dom in zip(raw, domain_in)
        ]

    return SpnCore(
        tag=tag,
        spec=spec,
        ciphertext=ciphertext,
        raw_output=raw,
        state_in=list(state_in),
        round_mask=list(round_mask),
        sbox_inputs=sbox_inputs,
        sbox_outputs=sbox_outputs,
        lam=list(lam) if lam is not None else None,
    )
