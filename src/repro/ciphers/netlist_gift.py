"""GIFT-64-128 as a round-iterative hardware datapath.

Demonstrates the countermeasure's genericity claim: the same SPN template
and the same countermeasure wrappers apply unchanged to a cipher with a
different S-box, permutation, round-key structure (partial-state key
addition plus LFSR round constants) and round ordering (key added *after*
the permutation).
"""

from __future__ import annotations

from repro.ciphers.gift import GIFT64_PERM, ROUNDS, Gift64
from repro.ciphers.sbox import GIFT_SBOX
from repro.ciphers.spn import SpnCore, SpnSpec, build_spn_core
from repro.netlist.builder import CircuitBuilder
from repro.netlist.circuit import Circuit
from repro.synth.sbox_synth import synthesize_sbox

__all__ = ["GiftSpec", "build_gift_circuit"]

Word = list[int]


class GiftSpec(SpnSpec):
    """GIFT-64-128 parameters for the generic SPN template."""

    name = "gift64"
    block_bits = 64
    key_bits = 128
    rounds = ROUNDS
    sbox = GIFT_SBOX
    perm = list(GIFT64_PERM)
    add_key_first = False
    final_whitening = False

    def reference(self, key: int) -> Gift64:
        return Gift64(key)

    def final_round_mask(self, key: int) -> int:
        """GIFT's last-round XOR: partial round key + constants + bit 63."""
        from repro.ciphers.gift import _CONSTANTS

        cipher = Gift64(key)
        u, v = cipher.round_keys[-1]
        return cipher._round_key_mask(u, v, _CONSTANTS[cipher.rounds - 1])

    def build_scheduler(
        self, builder: CircuitBuilder, key_in: Word, first: int, tag: str
    ) -> Word:
        if len(key_in) != 128:
            raise ValueError("GIFT-64 key port must be 128 bits")
        key_q, key_connect = builder.register(128, tag=f"{tag}/keyreg")
        cur = builder.mux_word(first, key_q, key_in, tag=f"{tag}/keyload")

        u = cur[16:32]  # k1
        v = cur[0:16]  # k0

        # 6-bit LFSR for the round constants: feeding the register with the
        # *next* value and reading that same value makes cycle 0 produce
        # constant 0b000001 from the all-zero reset state, exactly the
        # reference sequence.
        lfsr_q, lfsr_connect = builder.register(6, tag=f"{tag}/lfsr")
        feedback = builder.xnor(lfsr_q[5], lfsr_q[4], tag=f"{tag}/lfsr")
        constant = [feedback] + lfsr_q[0:5]
        lfsr_connect(constant)

        zero = builder.circuit.const(0)
        one = builder.circuit.const(1)
        mask: Word = [zero] * 64
        for i in range(16):
            mask[4 * i] = v[i]
            mask[4 * i + 1] = u[i]
        for j in range(6):
            mask[4 * j + 3] = constant[j]
        mask[63] = one

        # Key state update: (k7..k0) -> (k1>>>2, k0>>>12, k7..k2).
        nxt: Word = [zero] * 128
        for w in range(6):
            for b in range(16):
                nxt[16 * w + b] = cur[16 * (w + 2) + b]
        for b in range(16):
            nxt[16 * 6 + b] = cur[16 * 0 + (b + 12) % 16]  # k0 >>> 12
            nxt[16 * 7 + b] = cur[16 * 1 + (b + 2) % 16]  # k1 >>> 2
        key_connect(nxt)
        return mask


def build_gift_circuit(
    *,
    sbox_strategy: str = "shannon",
    name: str = "gift64",
) -> tuple[Circuit, SpnCore]:
    """A bare (unprotected) GIFT-64 encryption circuit.

    Ports: ``plaintext`` (64), ``key`` (128) → ``ciphertext`` (64); 28
    clock cycles per block.
    """
    spec = GiftSpec()
    builder = CircuitBuilder(name)
    pt = builder.input("plaintext", 64)
    key = builder.input("key", 128)
    sbox_circuit = synthesize_sbox(
        spec.sbox.truthtable(), strategy=sbox_strategy, name="gift_sbox"
    )
    core = build_spn_core(
        builder, spec, pt, key, sbox_circuit=sbox_circuit, tag="u"
    )
    builder.output("ciphertext", core.ciphertext)
    builder.circuit.validate()
    return builder.circuit, core
