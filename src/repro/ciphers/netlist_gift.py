"""GIFT-64-128 and GIFT-128-128 as round-iterative hardware datapaths.

Demonstrates the countermeasure's genericity claim: the same SPN template
and the same countermeasure wrappers apply unchanged to ciphers with a
different S-box, permutation, round-key structure (partial-state key
addition plus LFSR round constants) and round ordering (key added *after*
the permutation).  GIFT-128 doubles the state and injects two 32-bit key
words per round; everything else is shared with GIFT-64.
"""

from __future__ import annotations

from repro.ciphers.gift import (
    GIFT64_PERM,
    GIFT128_PERM,
    ROUNDS,
    ROUNDS128,
    Gift64,
    Gift128,
)
from repro.ciphers.sbox import GIFT_SBOX
from repro.ciphers.spn import SpnCore, SpnSpec, build_spn_core
from repro.netlist.builder import CircuitBuilder
from repro.netlist.circuit import Circuit
from repro.synth.sbox_synth import synthesize_sbox

__all__ = ["GiftSpec", "Gift128Spec", "build_gift_circuit"]

Word = list[int]


def _gift_key_update(builder: CircuitBuilder, cur: Word, zero, tag: str) -> Word:
    """Shared key-state update: (k7..k0) → (k1>>>2, k0>>>12, k7..k2)."""
    nxt: Word = [zero] * 128
    for w in range(6):
        for b in range(16):
            nxt[16 * w + b] = cur[16 * (w + 2) + b]
    for b in range(16):
        nxt[16 * 6 + b] = cur[16 * 0 + (b + 12) % 16]  # k0 >>> 12
        nxt[16 * 7 + b] = cur[16 * 1 + (b + 2) % 16]  # k1 >>> 2
    return nxt


def _gift_lfsr(builder: CircuitBuilder, tag: str) -> Word:
    """The 6-bit round-constant LFSR.

    Feeding the register with the *next* value and reading that same value
    makes cycle 0 produce constant 0b000001 from the all-zero reset state,
    exactly the reference sequence.
    """
    lfsr_q, lfsr_connect = builder.register(6, tag=f"{tag}/lfsr")
    feedback = builder.xnor(lfsr_q[5], lfsr_q[4], tag=f"{tag}/lfsr")
    constant = [feedback] + lfsr_q[0:5]
    lfsr_connect(constant)
    return constant


class GiftSpec(SpnSpec):
    """GIFT-64-128 parameters for the generic SPN template."""

    name = "gift64"
    block_bits = 64
    key_bits = 128
    rounds = ROUNDS
    sbox = GIFT_SBOX
    perm = list(GIFT64_PERM)
    add_key_first = False
    final_whitening = False

    def __init__(self, *, rounds: int | None = None) -> None:
        if rounds is not None:
            # Reduced-round instance (CI smoke sweeps, quick certifies);
            # the netlist stays spec-faithful per round.
            if not 1 <= rounds <= type(self).rounds:
                raise ValueError(
                    f"rounds must be in [1, {type(self).rounds}]: {rounds}"
                )
            self.rounds = rounds

    def reference(self, key: int) -> Gift64:
        return Gift64(key, rounds=self.rounds)

    def final_round_mask(self, key: int) -> int:
        """GIFT's last-round XOR: partial round key + constants + top bit."""
        from repro.ciphers.gift import _CONSTANTS

        cipher = self.reference(key)
        u, v = cipher.round_keys[-1]
        return cipher._round_key_mask(u, v, _CONSTANTS[cipher.rounds - 1])

    def build_scheduler(
        self, builder: CircuitBuilder, key_in: Word, first: int, tag: str
    ) -> Word:
        if len(key_in) != 128:
            raise ValueError("GIFT-64 key port must be 128 bits")
        key_q, key_connect = builder.register(128, tag=f"{tag}/keyreg")
        cur = builder.mux_word(first, key_q, key_in, tag=f"{tag}/keyload")

        u = cur[16:32]  # k1
        v = cur[0:16]  # k0
        constant = _gift_lfsr(builder, tag)

        zero = builder.circuit.const(0)
        one = builder.circuit.const(1)
        mask: Word = [zero] * 64
        for i in range(16):
            mask[4 * i] = v[i]
            mask[4 * i + 1] = u[i]
        for j in range(6):
            mask[4 * j + 3] = constant[j]
        mask[63] = one

        key_connect(_gift_key_update(builder, cur, zero, tag))
        return mask


class Gift128Spec(GiftSpec):
    """GIFT-128-128 parameters for the generic SPN template.

    The key register and its update are byte-identical to GIFT-64; only
    the extraction changes: two 32-bit words ``U = k5‖k4`` (state bits
    ``4i+2``) and ``V = k1‖k0`` (bits ``4i+1``), constants at ``4j+3``,
    top bit 127.
    """

    name = "gift128"
    block_bits = 128
    rounds = ROUNDS128
    perm = list(GIFT128_PERM)

    def reference(self, key: int) -> Gift128:
        return Gift128(key, rounds=self.rounds)

    def build_scheduler(
        self, builder: CircuitBuilder, key_in: Word, first: int, tag: str
    ) -> Word:
        if len(key_in) != 128:
            raise ValueError("GIFT-128 key port must be 128 bits")
        key_q, key_connect = builder.register(128, tag=f"{tag}/keyreg")
        cur = builder.mux_word(first, key_q, key_in, tag=f"{tag}/keyload")

        u = cur[64:96]  # k5 ‖ k4
        v = cur[0:32]  # k1 ‖ k0
        constant = _gift_lfsr(builder, tag)

        zero = builder.circuit.const(0)
        one = builder.circuit.const(1)
        mask: Word = [zero] * 128
        for i in range(32):
            mask[4 * i + 1] = v[i]
            mask[4 * i + 2] = u[i]
        for j in range(6):
            mask[4 * j + 3] = constant[j]
        mask[127] = one

        key_connect(_gift_key_update(builder, cur, zero, tag))
        return mask


def build_gift_circuit(
    *,
    sbox_strategy: str = "shannon",
    name: str = "gift64",
) -> tuple[Circuit, SpnCore]:
    """A bare (unprotected) GIFT-64 encryption circuit.

    Ports: ``plaintext`` (64), ``key`` (128) → ``ciphertext`` (64); 28
    clock cycles per block.
    """
    spec = GiftSpec()
    builder = CircuitBuilder(name)
    pt = builder.input("plaintext", 64)
    key = builder.input("key", 128)
    sbox_circuit = synthesize_sbox(
        spec.sbox.truthtable(), strategy=sbox_strategy, name="gift_sbox"
    )
    core = build_spn_core(
        builder, spec, pt, key, sbox_circuit=sbox_circuit, tag="u"
    )
    builder.output("ciphertext", core.ciphertext)
    builder.circuit.validate()
    return builder.circuit, core
