"""Cell libraries: GE cost per gate type.

Two libraries ship with the package:

``NANGATE45``
    GE values computed from the Nangate 45nm Open Cell Library X1-drive cell
    areas, normalised to NAND2_X1 (0.798 µm² = 1.00 GE).  The flip-flop is
    priced as DFFR_X1 (D flip-flop with reset), the cell a synthesiser picks
    for a resettable datapath register.

``PAPER_CALIBRATED``
    Identical combinational costs, but the flip-flop is calibrated so that
    the naïve-duplication PRESENT-80 register file (2 × (64-bit state +
    80-bit key) = 288 flops) prices at the paper's Table II
    non-combinational figure of 1807 GE → 6.2743 GE per flop.  This pins the
    one free parameter of the area model to the paper's flow and makes
    Table II comparable line-by-line; DESIGN.md documents the substitution.

Primary inputs and constants are free: inputs are ports, and constant
drivers synthesise into tie cells whose area a synthesis flow attributes to
the consuming logic (and which largely fold away during mapping).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.gates import GateType

__all__ = ["CellLibrary", "NANGATE45", "PAPER_CALIBRATED"]


@dataclass(frozen=True)
class CellLibrary:
    """GE price list for every gate type the netlist IR can contain."""

    name: str
    ge: dict[GateType, float] = field(repr=False)

    def cost(self, gtype: GateType) -> float:
        """GE cost of one instance of ``gtype``."""
        try:
            return self.ge[gtype]
        except KeyError:
            raise KeyError(f"library {self.name!r} has no cell for {gtype.name}") from None

    def is_sequential(self, gtype: GateType) -> bool:
        """Whether the cell counts toward the non-combinational total."""
        return gtype is GateType.DFF


_NANGATE_GE: dict[GateType, float] = {
    GateType.INPUT: 0.0,
    GateType.CONST0: 0.0,
    GateType.CONST1: 0.0,
    GateType.BUF: 1.00,  # BUF_X1      0.798 µm²
    GateType.NOT: 0.67,  # INV_X1      0.532 µm²
    GateType.AND: 1.33,  # AND2_X1     1.064 µm²
    GateType.OR: 1.33,  # OR2_X1      1.064 µm²
    GateType.NAND: 1.00,  # NAND2_X1    0.798 µm²
    GateType.NOR: 1.00,  # NOR2_X1     0.798 µm²
    GateType.XOR: 2.00,  # XOR2_X1     1.596 µm²
    GateType.XNOR: 2.00,  # XNOR2_X1    1.596 µm²
    GateType.MUX: 2.33,  # MUX2_X1     1.862 µm²
    GateType.DFF: 6.67,  # DFFR_X1     5.320 µm²
}

NANGATE45 = CellLibrary(name="nangate45", ge=dict(_NANGATE_GE))

# 1807 GE (paper Table II, non-combinational, both designs) / 288 flops.
_PAPER_DFF_GE = 1807 / 288

PAPER_CALIBRATED = CellLibrary(
    name="nangate45-paper-calibrated",
    ge={**_NANGATE_GE, GateType.DFF: _PAPER_DFF_GE},
)
