"""Area reports in gate equivalents, in the format of the paper's Table II."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.netlist.circuit import Circuit
from repro.tech.library import PAPER_CALIBRATED, CellLibrary

__all__ = ["AreaReport", "area_of"]


@dataclass(frozen=True)
class AreaReport:
    """GE totals for one design, split the way the paper reports them."""

    design: str
    library: str
    combinational: float
    non_combinational: float
    cell_counts: dict[str, int]

    @property
    def total(self) -> float:
        return self.combinational + self.non_combinational

    def ratio_to(self, baseline: "AreaReport") -> float:
        """Total-area overhead factor relative to ``baseline`` (1.00 = equal)."""
        if baseline.total == 0:
            raise ZeroDivisionError("baseline design has zero area")
        return self.total / baseline.total

    def __str__(self) -> str:
        return (
            f"{self.design}: comb={self.combinational:.0f} GE, "
            f"non-comb={self.non_combinational:.0f} GE, "
            f"total={self.total:.0f} GE [{self.library}]"
        )


def area_of(
    circuit: Circuit, *, library: CellLibrary = PAPER_CALIBRATED
) -> AreaReport:
    """Price every cell of ``circuit`` with ``library``.

    Inputs and constants are free (see the library module docstring); all
    other cells contribute their GE to the combinational or
    non-combinational bucket.
    """
    comb = 0.0
    seq = 0.0
    counts: Counter[str] = Counter()
    for gate in circuit.gates:
        cost = library.cost(gate.gtype)
        if cost == 0.0:
            continue
        counts[gate.gtype.value] += 1
        if library.is_sequential(gate.gtype):
            seq += cost
        else:
            comb += cost
    return AreaReport(
        design=circuit.name,
        library=library.name,
        combinational=comb,
        non_combinational=seq,
        cell_counts=dict(counts),
    )
