"""Technology mapping: GE-driven local rewrites.

The synthesis engines emit AND/OR/NOT-heavy logic; a standard-cell mapper
would fuse inverters into the cheaper NAND/NOR cells (1.00 GE vs
1.33 + 0.67).  This pass performs the classic fusions, each applied only
when it reduces the priced area:

- ``NOT(AND(a,b))`` → ``NAND(a,b)`` (and OR→NOR) when the inner gate has no
  other fanout;
- ``AND(NOT a, NOT b)`` → ``NOR(a,b)`` (De Morgan; dually OR→NAND) when
  both inverters would otherwise exist only for this gate;
- ``XOR(NOT a, b)`` → ``XNOR(a, b)`` (and the XNOR dual), absorbing a
  single-fanout inverter into the free complement input.

The pass preserves behaviour by construction (each rewrite is a textbook
identity) and the tests check it by exhaustive/random simulation; it runs
after :func:`repro.synth.optimize.optimize` and before area pricing.
"""

from __future__ import annotations

from repro.netlist.circuit import Circuit
from repro.netlist.gates import Gate, GateType
from repro.synth.optimize import dead_code
from repro.tech.library import PAPER_CALIBRATED, CellLibrary

__all__ = ["map_to_cells"]

_FUSE_OUT = {GateType.AND: GateType.NAND, GateType.OR: GateType.NOR}
_FUSE_IN = {GateType.AND: GateType.NOR, GateType.OR: GateType.NAND}
_XORISH = {GateType.XOR: GateType.XNOR, GateType.XNOR: GateType.XOR}


def map_to_cells(
    circuit: Circuit, *, library: CellLibrary = PAPER_CALIBRATED
) -> Circuit:
    """Return a behaviourally equivalent circuit with cheaper cell choices.

    Operates as a single backward-dataflow sweep: for each gate in topo
    order, decide its mapped form given the mapped forms of its inputs,
    then drop any inverters that lost all their fanout via
    :func:`repro.synth.optimize.dead_code`.
    """
    fanout: dict[int, int] = {}
    for gate in circuit.gates:
        for net in gate.ins:
            fanout[net] = fanout.get(net, 0) + 1
    for nets in circuit.outputs.values():
        for net in nets:
            fanout[net] = fanout.get(net, 0) + 1

    drivers: dict[int, Gate] = {g.out: g for g in circuit.gates}

    out = Circuit(circuit.name)
    while out.num_nets < circuit.num_nets:
        out.new_net()

    # Copy sources and registers verbatim (two passes for DFF feedback).
    for gate in circuit.gates:
        if gate.gtype is GateType.INPUT:
            out.add_gate(GateType.INPUT, out=gate.out, tag=gate.tag)
        elif gate.gtype in (GateType.CONST0, GateType.CONST1):
            out.add_gate(gate.gtype, out=gate.out, tag=gate.tag)

    def single_fanout_not(net: int) -> int | None:
        """Input net of a NOT driving ``net``, if fusing it is free."""
        driver = drivers.get(net)
        if driver is not None and driver.gtype is GateType.NOT and fanout.get(net, 0) == 1:
            return driver.ins[0]
        return None

    cheaper = library.cost(GateType.NAND) < (
        library.cost(GateType.AND) + 0  # NAND vs AND alone
    )

    for gate in circuit.topo_order():
        gtype, ins = gate.gtype, gate.ins
        if gtype is GateType.NOT:
            inner = drivers.get(ins[0])
            if (
                inner is not None
                and inner.gtype in _FUSE_OUT
                and fanout.get(ins[0], 0) == 1
                and cheaper
            ):
                # NOT(AND) -> NAND: emit the fused cell on this gate's net;
                # the inner gate stays (dead-code removes it if unused).
                out.add_gate(
                    _FUSE_OUT[inner.gtype], inner.ins, out=gate.out, tag=gate.tag
                )
                continue
        elif gtype in (GateType.AND, GateType.OR):
            na, nb = single_fanout_not(ins[0]), single_fanout_not(ins[1])
            fused_cost = library.cost(_FUSE_IN[gtype])
            plain_cost = (
                library.cost(gtype)
                + (library.cost(GateType.NOT) if na is not None else 0)
                + (library.cost(GateType.NOT) if nb is not None else 0)
            )
            if na is not None and nb is not None and fused_cost < plain_cost:
                # AND(¬a,¬b) -> NOR(a,b); OR(¬a,¬b) -> NAND(a,b)
                out.add_gate(_FUSE_IN[gtype], (na, nb), out=gate.out, tag=gate.tag)
                continue
        elif gtype in _XORISH:
            for pos in (0, 1):
                src = single_fanout_not(ins[pos])
                if src is not None:
                    other = ins[1 - pos]
                    out.add_gate(
                        _XORISH[gtype], (src, other), out=gate.out, tag=gate.tag
                    )
                    break
            else:
                out.add_gate(gtype, ins, out=gate.out, tag=gate.tag)
            continue
        # default: copy through
        out.add_gate(gtype, ins, out=gate.out, tag=gate.tag)

    for gate in circuit.dffs():
        out.add_gate(
            GateType.DFF, gate.ins, out=gate.out, init=gate.init, tag=gate.tag
        )

    out.inputs = {k: list(v) for k, v in circuit.inputs.items()}
    out.outputs = {k: list(v) for k, v in circuit.outputs.items()}
    out.validate()
    return dead_code(out)
