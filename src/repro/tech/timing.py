"""Static timing analysis: critical path and clock-period estimate.

The paper's §IV-A remark — "the required number of clock periods would be
essentially the same" — has a hardware cousin worth checking: does the
countermeasure stretch the *critical path* (and hence the clock period)?
Both designs run the same cycle count, so total latency scales with the
longest register-to-register combinational delay.

Delays are a unit-less normalised model derived from Nangate 45nm X1-drive
typical propagation delays (NAND2 ≈ 1.0); absolute picoseconds depend on
load and corner, but path *ratios* between two designs mapped to the same
cells are meaningful, which is all the comparison needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.circuit import Circuit
from repro.netlist.gates import Gate, GateType

__all__ = ["TimingReport", "CELL_DELAY", "critical_path"]

#: normalised propagation delay per cell (NAND2 = 1.0)
CELL_DELAY: dict[GateType, float] = {
    GateType.INPUT: 0.0,
    GateType.CONST0: 0.0,
    GateType.CONST1: 0.0,
    GateType.BUF: 1.0,
    GateType.NOT: 0.6,
    GateType.AND: 1.3,
    GateType.OR: 1.3,
    GateType.NAND: 1.0,
    GateType.NOR: 1.1,
    GateType.XOR: 1.9,
    GateType.XNOR: 1.9,
    GateType.MUX: 1.7,
    GateType.DFF: 1.6,  # clk->Q; counted once at the path start
}


@dataclass(frozen=True)
class TimingReport:
    """Longest register-to-register (or port-to-port) path of a design."""

    design: str
    delay: float
    #: gates along the critical path, source first
    path: tuple[str, ...]

    def ratio_to(self, baseline: "TimingReport") -> float:
        if baseline.delay == 0:
            raise ZeroDivisionError("baseline has zero delay")
        return self.delay / baseline.delay

    def __str__(self) -> str:
        return (
            f"{self.design}: critical path {self.delay:.1f} "
            f"(NAND2-normalised), {len(self.path)} stages"
        )


def critical_path(circuit: Circuit) -> TimingReport:
    """Longest combinational delay from any source to any sink.

    Sources are primary inputs (arrival 0) and DFF outputs (arrival =
    clk→Q).  Sinks are DFF inputs and primary outputs.  Wire delay is
    folded into the cell delays, as in any zeroth-order pre-layout
    estimate.
    """
    arrival: dict[int, float] = {}
    via: dict[int, Gate | None] = {}
    for gate in circuit.gates:
        if gate.gtype in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
            arrival[gate.out] = 0.0
            via[gate.out] = gate
        elif gate.gtype is GateType.DFF:
            arrival[gate.out] = CELL_DELAY[GateType.DFF]
            via[gate.out] = gate

    for gate in circuit.topo_order():
        worst_in = max((arrival.get(n, 0.0) for n in gate.ins), default=0.0)
        arrival[gate.out] = worst_in + CELL_DELAY[gate.gtype]
        via[gate.out] = gate

    sinks: list[int] = [g.ins[0] for g in circuit.dffs()]
    for nets in circuit.outputs.values():
        sinks.extend(nets)
    if not sinks:
        return TimingReport(design=circuit.name, delay=0.0, path=())

    end = max(sinks, key=lambda n: arrival.get(n, 0.0))
    # walk the path backwards through worst-arrival inputs
    path: list[str] = []
    net = end
    while True:
        gate = via.get(net)
        if gate is None:
            break
        label = gate.tag or gate.gtype.value
        path.append(f"{gate.gtype.value}({label})")
        if not gate.ins or gate.gtype is GateType.DFF:
            break
        net = max(gate.ins, key=lambda n: arrival.get(n, 0.0))
    return TimingReport(
        design=circuit.name,
        delay=arrival.get(end, 0.0),
        path=tuple(reversed(path)),
    )
