"""Gate-equivalent area accounting (the synthesis-report substitute).

The paper reports area in *gate equivalents* (GE) — cell area divided by the
area of a NAND2 — for designs mapped to the open Nangate 45nm PDK.  We carry
the same convention: every cell type has a GE cost derived from the Nangate
45nm Open Cell Library datasheet, and circuits are priced by summing their
cells, split into combinational and non-combinational (flip-flop) totals
exactly as the paper's Table II does.
"""

from repro.tech.library import NANGATE45, PAPER_CALIBRATED, CellLibrary
from repro.tech.area import AreaReport, area_of

__all__ = ["AreaReport", "CellLibrary", "NANGATE45", "PAPER_CALIBRATED", "area_of"]
