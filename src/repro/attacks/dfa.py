"""Classic last-round DFA (Biham–Shamir style, paper ref [3]).

Given (correct, faulty) ciphertext pairs produced by a known fault model in
the last S-box layer, each last-round subkey guess implies a pre-S-box
value for both executions; guesses whose implied pair is inconsistent with
the fault model are eliminated.  A handful of pairs pins the subkey down to
the single correct value.

This attack needs *released faulty outputs*, which is exactly what
countermeasures are built to prevent — it succeeds against an unprotected
core and against any campaign that yields EFFECTIVE runs (e.g. the Selmke
identical-fault scenario on naïve duplication), and starves against the
three-in-one scheme.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.ciphers.spn import SpnSpec
from repro.faults.models import FaultType

__all__ = ["DfaResult", "dfa_attack_last_round"]


@dataclass(frozen=True)
class DfaResult:
    """Survivor set of one last-round DFA nibble recovery."""

    target_sbox: int
    survivors: list[int]
    true_subkey: int
    n_pairs: int

    @property
    def success(self) -> bool:
        """Unique survivor and it is the true subkey."""
        return self.survivors == [self.true_subkey]

    @property
    def recovered_bits(self) -> float:
        """Entropy reduction achieved (4 bits when unique)."""
        import math

        if not self.survivors:
            return 0.0
        return 4 - math.log2(len(self.survivors))


def _apply_fault_model(x: int, bit: int, fault_type: FaultType) -> int:
    if fault_type is FaultType.STUCK_AT_0 or fault_type is FaultType.RESET_FLIP:
        return x & ~(1 << bit)
    if fault_type is FaultType.STUCK_AT_1 or fault_type is FaultType.SET_FLIP:
        return x | (1 << bit)
    return x ^ (1 << bit)  # BIT_FLIP


def dfa_attack_last_round(
    spec: SpnSpec,
    correct_bits: np.ndarray,
    faulty_bits: np.ndarray,
    target_sbox: int,
    faulted_bit: int,
    fault_type: FaultType | Sequence[FaultType],
    *,
    key: int,
) -> DfaResult:
    """Eliminate subkey guesses inconsistent with the fault model.

    ``correct_bits`` / ``faulty_bits`` are ``(pairs, block)`` matrices of
    matched outputs from the same plaintexts.  Pairs where the two words
    agree (the fault happened to be ineffective) carry no elimination power
    and are skipped automatically.

    ``fault_type`` may be a *set* of models: a guess survives a pair when it
    is consistent with at least one of them.  This is how the attacker
    handles randomised-encoding victims (ACISP'20 with λₐ = λᵣ = 1 turns a
    physical stuck-at-0 into a logical stuck-at-1), at the cost of needing
    a few more pairs to reach a unique survivor.
    """
    n = spec.sbox.n
    positions = spec.gather_positions(target_sbox)
    weights = 1 << np.arange(n, dtype=np.int64)
    y_c = correct_bits[:, positions].astype(np.int64) @ weights
    y_f = faulty_bits[:, positions].astype(np.int64) @ weights
    informative = y_c != y_f
    y_c, y_f = y_c[informative], y_f[informative]

    fault_types = (
        [fault_type] if isinstance(fault_type, FaultType) else list(fault_type)
    )
    survivors = []
    for guess in range(1 << n):
        ok = True
        for yc, yf in zip(y_c, y_f):
            x = spec.sbox.inverse(int(yc) ^ guess)
            if not any(
                spec.sbox(_apply_fault_model(x, faulted_bit, ft)) == (int(yf) ^ guess)
                for ft in fault_types
            ):
                ok = False
                break
        if ok:
            survivors.append(guess)

    truth = spec.last_round_subkey(key, target_sbox)
    return DfaResult(
        target_sbox=target_sbox,
        survivors=survivors,
        true_subkey=truth,
        n_pairs=int(informative.sum()),
    )
