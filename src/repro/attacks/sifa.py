"""SIFA — Statistical Ineffective Fault Analysis (CHES 2018, paper ref [6]).

The attack keeps only the runs whose released output was *correct* (the
ineffective set — with a detect-and-suppress countermeasure these are
exactly the runs that produce output at all) and exploits that, for a
biased fault, membership in this set is correlated with the *logical value*
of the targeted wire.

Two tools are provided:

:func:`ineffective_distribution`
    The paper's Fig. 4 statistic: the empirical distribution of the faulted
    S-box's input over the ineffective set, computed under the true key.
    Against naïve duplication a stuck-at-0 on an input line confines it to
    the 8 values with that bit clear; against the three-in-one scheme the
    λ encoding makes it uniform.

:func:`sifa_attack`
    Actual last-round-key recovery.  Note a subtlety: if the fault sits in
    the *last* round, back-computing the S-box input under a wrong subkey
    guess is a bijection of the nibble, so any distribution statistic is
    guess-invariant and recovery is impossible from that round alone.  The
    classic remedy (used here) is to fault the *penultimate* round: each
    output bit of the faulted S-box crosses the permutation into a distinct
    last-round S-box, and the conditional single-bit bias only survives
    back-computation through that S-box under the correct 4-bit subkey —
    wrong guesses scramble the nibble and dilute the one-bit marginal.
    Ranking guesses by the recovered bit's SEI recovers 4 bits of the last
    round key per landing S-box (up to 16 bits per fault location).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.metrics import rank_of, sei
from repro.ciphers.spn import SpnSpec
from repro.faults.campaign import CampaignResult
from repro.faults.classification import Outcome

__all__ = [
    "SifaBitRecovery",
    "SifaResult",
    "ineffective_distribution",
    "predicted_conditional_bias",
    "sifa_attack",
]


def recover_sbox_inputs(
    spec: SpnSpec,
    ciphertext_bits: np.ndarray,
    target_sbox: int,
    subkey_guess: int,
) -> np.ndarray:
    """Back-compute the last-round input of ``target_sbox`` per run.

    Every cipher here ends as ``C = P(S(x)) ⊕ mask`` (PRESENT's pLayer +
    whitening, GIFT's PermBits + partial key, AES's ShiftRows + K10), so
    ``x = S⁻¹(gather(C) ⊕ g)`` with the gather positions supplied by the
    spec (:meth:`CipherSpec.gather_positions`).
    """
    n = spec.sbox.n
    positions = spec.gather_positions(target_sbox)
    cols = ciphertext_bits[:, positions].astype(np.int64)
    weights = 1 << np.arange(n, dtype=np.int64)
    y = (cols @ weights) ^ subkey_guess
    inv = np.array([spec.sbox.inverse(v) for v in range(1 << n)], dtype=np.int64)
    return inv[y]


def true_subkey(spec: SpnSpec, key: int, target_sbox: int) -> int:
    """Ground-truth last-round subkey for rank reporting."""
    return spec.last_round_subkey(key, target_sbox)


def ineffective_distribution(
    result: CampaignResult,
    spec: SpnSpec,
    target_sbox: int,
    *,
    outcome: Outcome = Outcome.INEFFECTIVE,
) -> np.ndarray:
    """The Fig. 4 series: S-box-input histogram over the ineffective set.

    Computed under the true key (this is the paper's *visualisation* of the
    bias, not the key-recovery step).
    """
    indices = result.select(outcome)
    cts = result.released_bits[indices]
    x = recover_sbox_inputs(
        spec, cts, target_sbox, true_subkey(spec, result.key, target_sbox)
    )
    return np.bincount(x, minlength=1 << spec.sbox.n)


def predicted_conditional_bias(
    spec: SpnSpec, faulted_bit: int, polarity: int
) -> list[float]:
    """Per-output-bit bias of S(x) given ``x[faulted_bit] == polarity``.

    This is the attacker's template: it tells which landing S-boxes are
    worth attacking (bias 0 carries no signal).
    """
    n = spec.sbox.n
    admissible = [
        x for x in range(1 << n) if ((x >> faulted_bit) & 1) == polarity
    ]
    biases = []
    for i in range(n):
        ones = sum((spec.sbox(x) >> i) & 1 for x in admissible)
        biases.append(abs(ones / len(admissible) - 0.5))
    return biases


@dataclass(frozen=True)
class SifaBitRecovery:
    """Recovery of one last-round subkey nibble via one biased bit."""

    landing_sbox: int
    landing_bit: int
    predicted_bias: float
    scores: dict[int, float]
    best_guess: int
    true_subkey: int
    rank: int

    @property
    def success(self) -> bool:
        return self.rank == 1


@dataclass(frozen=True)
class SifaResult:
    """Full SIFA attempt: one faulted S-box, several landing nibbles."""

    faulted_sbox: int
    faulted_bit: int
    n_samples: int
    recoveries: list[SifaBitRecovery]

    @property
    def attacked(self) -> list[SifaBitRecovery]:
        """Recoveries with usable predicted bias."""
        return [r for r in self.recoveries if r.predicted_bias > 0.05]

    @property
    def recovered_bits(self) -> int:
        """Number of last-round key bits recovered (rank-1 nibbles × 4)."""
        return 4 * sum(1 for r in self.attacked if r.success)

    @property
    def success(self) -> bool:
        """True when every attackable nibble was recovered at rank 1."""
        attacked = self.attacked
        return bool(attacked) and all(r.success for r in attacked)


def sifa_attack(
    result: CampaignResult,
    spec: SpnSpec,
    faulted_sbox: int,
    faulted_bit: int,
    *,
    polarity: int = 0,
    outcome: Outcome = Outcome.INEFFECTIVE,
) -> SifaResult:
    """Recover last-round key nibbles from a penultimate-round biased fault.

    ``faulted_sbox`` / ``faulted_bit`` / ``polarity`` describe the injected
    fault (stuck-at-``polarity`` on that input line, one round before the
    last).  Only released ciphertexts are used for the recovery itself;
    the true key in ``result.key`` is used for rank reporting.  The
    landing-position logic needs a bit-permutation linear layer, i.e. an
    :class:`SpnSpec` (PRESENT/GIFT).
    """
    if not hasattr(spec, "perm"):
        raise ValueError("sifa_attack needs a bit-permutation cipher (SpnSpec)")
    n = spec.sbox.n
    indices = result.select(outcome)
    cts = result.released_bits[indices]
    biases = predicted_conditional_bias(spec, faulted_bit, polarity)

    recoveries = []
    for i in range(n):
        pos = spec.perm[n * faulted_sbox + i]
        landing_sbox, landing_bit = divmod(pos, n)
        scores: dict[int, float] = {}
        for guess in range(1 << n):
            x = recover_sbox_inputs(spec, cts, landing_sbox, guess)
            bit = (x >> landing_bit) & 1
            scores[guess] = sei(bit, 2)
        truth = true_subkey(spec, result.key, landing_sbox)
        best = max(scores, key=scores.__getitem__)
        recoveries.append(
            SifaBitRecovery(
                landing_sbox=landing_sbox,
                landing_bit=landing_bit,
                predicted_bias=biases[i],
                scores=scores,
                best_guess=best,
                true_subkey=truth,
                rank=rank_of(scores, truth),
            )
        )
    return SifaResult(
        faulted_sbox=faulted_sbox,
        faulted_bit=faulted_bit,
        n_samples=len(indices),
        recoveries=recoveries,
    )
