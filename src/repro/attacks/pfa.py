"""PFA — Persistent Fault Analysis (Zhang et al., TCHES 2018; paper §IV-B.5).

The model: one S-box ROM entry is corrupted *once* and stays corrupted for
every subsequent encryption (a rowhammer-style fault).  With the original
entry ``S[a] = t`` remapped to some other value, ``t`` can no longer appear
at the S-box output — so, looking at many ciphertexts, the last-round
output value ``t`` never occurs, and for each ciphertext nibble the subkey
guess ``g`` is wrong whenever ``gather(C) ⊕ g`` *does* take the value
``t``.  Enough ciphertexts leave exactly the true subkey standing, nibble
by nibble — and crucially the attack uses only *correct-looking* outputs,
which is why shared-ROM duplication is defenceless (both computations read
the same corrupted table and agree).

The paper argues its countermeasure is out of PFA's scope because the
S-box is synthesised logic, not a lookup table.  The software module lets
us also test the stronger statement: even a *table-based* implementation
of the countermeasure resists, because the two computations read disjoint
halves of the merged table (domains λ and λ̄), so a corrupted entry poisons
at most one computation per run and every use is detected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ciphers.spn import SpnSpec

__all__ = ["PfaNibbleResult", "PfaResult", "pfa_attack"]


@dataclass(frozen=True)
class PfaNibbleResult:
    """Survivors of the missing-value filter for one ciphertext nibble."""

    target_sbox: int
    survivors: list[int]
    true_subkey: int

    @property
    def success(self) -> bool:
        return self.survivors == [self.true_subkey]


@dataclass(frozen=True)
class PfaResult:
    """Full last-round-key recovery attempt from persistent-fault outputs."""

    missing_value: int
    n_samples: int
    nibbles: list[PfaNibbleResult]

    @property
    def recovered_bits(self) -> int:
        return 4 * sum(1 for nib in self.nibbles if nib.success)

    @property
    def success(self) -> bool:
        """All sixteen last-round nibbles pinned to the true value."""
        return all(nib.success for nib in self.nibbles)


def pfa_attack(
    spec: SpnSpec,
    ciphertexts: list[int],
    missing_value: int,
    *,
    key: int,
) -> PfaResult:
    """Recover the last-round key from outputs of a persistently-faulted
    implementation.

    ``missing_value`` is ``S[a]`` for the corrupted entry ``a`` (the value
    that can no longer be produced); PFA assumes the attacker knows or has
    profiled it.  ``key`` is used only to report ground truth.
    """
    n = spec.sbox.n

    cts = np.array(ciphertexts, dtype=object)
    nibbles: list[PfaNibbleResult] = []
    for sbox in range(spec.n_sboxes):
        positions = spec.gather_positions(sbox)
        values = np.array(
            [
                sum(((int(c) >> pos) & 1) << i for i, pos in enumerate(positions))
                for c in cts
            ],
            dtype=np.int64,
        )
        seen = np.bincount(values, minlength=1 << n) > 0
        survivors = [
            g for g in range(1 << n) if not seen[missing_value ^ g]
        ]
        truth = spec.last_round_subkey(key, sbox)
        nibbles.append(
            PfaNibbleResult(target_sbox=sbox, survivors=survivors, true_subkey=truth)
        )
    return PfaResult(
        missing_value=missing_value,
        n_samples=len(ciphertexts),
        nibbles=nibbles,
    )
