"""Statistical machinery shared by the attack implementations."""

from __future__ import annotations

import numpy as np

__all__ = [
    "chi_squared_uniform",
    "distribution",
    "rank_of",
    "sei",
]


def distribution(values, size: int) -> np.ndarray:
    """Empirical probability distribution of integer ``values`` over ``size`` bins."""
    values = np.asarray(values, dtype=np.int64)
    if len(values) == 0:
        return np.full(size, 1.0 / size)
    counts = np.bincount(values, minlength=size).astype(np.float64)
    if len(counts) > size:
        raise ValueError(f"value {values.max()} out of range for {size} bins")
    return counts / counts.sum()


def sei(values, size: int) -> float:
    """Squared Euclidean Imbalance versus uniform — SIFA's ranking statistic.

    ``SEI(p) = Σᵢ (pᵢ − 1/n)²``; zero for a perfectly uniform empirical
    distribution, maximal (≈ 1 − 1/n) for a point mass.
    """
    p = distribution(values, size)
    return float(((p - 1.0 / size) ** 2).sum())


def chi_squared_uniform(values, size: int) -> tuple[float, int]:
    """Pearson χ² statistic against the uniform distribution.

    Returns ``(statistic, dof)``; under uniformity the statistic is
    approximately χ²(size−1), so values far above ``size − 1 +
    3·sqrt(2(size−1))`` indicate bias.
    """
    values = np.asarray(values, dtype=np.int64)
    n = len(values)
    if n == 0:
        return 0.0, size - 1
    counts = np.bincount(values, minlength=size).astype(np.float64)
    expected = n / size
    stat = float(((counts - expected) ** 2 / expected).sum())
    return stat, size - 1


def rank_of(scores: dict[int, float], true_key: int, *, higher_is_better: bool = True) -> int:
    """1-based rank of the true key among scored guesses (1 = recovered)."""
    ordering = sorted(
        scores.items(), key=lambda kv: kv[1], reverse=higher_is_better
    )
    for rank, (guess, _score) in enumerate(ordering, start=1):
        if guess == true_key:
            return rank
    raise KeyError(f"true key {true_key} not among scored guesses")
