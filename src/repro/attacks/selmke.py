"""The identical-fault-mask DFA of Selmke, Heyszl and Sigl (FDTC 2016).

Against duplicate-and-compare, inject the *same* fault into the
corresponding location of both computations: both cores derail
identically, the comparator sees agreement, and the faulty output is
released — turning the protected device back into an unprotected DFA
target.  The paper's Fig. 5 scenario.

This module glues the pieces together: run the double-fault campaign,
harvest the EFFECTIVE runs (faulty released words, with the fault-free
twin as the correct pair member), and hand them to the classic DFA solver.
Against the three-in-one scheme the complementary encodings guarantee the
two cores disagree whenever the fault bites, so the harvest is empty and
the attack reports failure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.dfa import DfaResult, dfa_attack_last_round
from repro.countermeasures.base import ProtectedDesign
from repro.faults.campaign import CampaignResult, run_campaign
from repro.faults.classification import Outcome
from repro.faults.models import FaultSpec, FaultType, last_round, sbox_input_net

__all__ = ["SelmkeResult", "selmke_attack"]


@dataclass(frozen=True)
class SelmkeResult:
    """Outcome of one identical-fault DFA attempt against a design."""

    scheme: str
    campaign: CampaignResult
    n_faulty_released: int
    dfa: DfaResult | None

    @property
    def success(self) -> bool:
        return self.dfa is not None and self.dfa.success


def selmke_attack(
    design: ProtectedDesign,
    *,
    target_sbox: int,
    faulted_bit: int,
    fault_type: FaultType = FaultType.STUCK_AT_0,
    key: int,
    n_runs: int = 20_000,
    seed: int = 1,
    max_pairs: int = 64,
    jobs: int | None = None,
    checkpoint_dir=None,
    resume: bool = False,
) -> SelmkeResult:
    """Run the full identical-fault DFA against ``design``.

    Injects ``fault_type`` at input line ``faulted_bit`` of S-box
    ``target_sbox`` in the last round of *every* core of the design (the
    simultaneous double laser of the FDTC'16 setup), then attempts
    last-round DFA on whatever faulty outputs escaped.  The executor knobs
    (``jobs``/``checkpoint_dir``/``resume``) are forwarded to the
    underlying campaign.
    """
    specs = [
        FaultSpec.at(
            sbox_input_net(core, target_sbox, faulted_bit),
            fault_type,
            last_round(core),
            label=f"selmke/{core.tag}",
        )
        for core in design.cores
    ]
    campaign = run_campaign(
        design,
        specs,
        n_runs=n_runs,
        key=key,
        seed=seed,
        jobs=jobs,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    effective = campaign.select(Outcome.EFFECTIVE)[:max_pairs]
    if len(effective) == 0:
        return SelmkeResult(
            scheme=design.scheme,
            campaign=campaign,
            n_faulty_released=0,
            dfa=None,
        )
    # Against a randomised-encoding victim the physical polarity of a
    # stuck-at maps to either logical polarity depending on the hidden λ,
    # so the attacker solves with both models admitted per pair.
    models: list[FaultType] | FaultType = fault_type
    if design.lambda_width and fault_type in (
        FaultType.STUCK_AT_0,
        FaultType.STUCK_AT_1,
        FaultType.RESET_FLIP,
        FaultType.SET_FLIP,
    ):
        models = [FaultType.STUCK_AT_0, FaultType.STUCK_AT_1]
    dfa = dfa_attack_last_round(
        design.spec,
        campaign.expected_bits[effective],
        campaign.released_bits[effective],
        target_sbox,
        faulted_bit,
        models,
        key=key,
    )
    return SelmkeResult(
        scheme=design.scheme,
        campaign=campaign,
        n_faulty_released=int(
            (campaign.outcomes == Outcome.EFFECTIVE).sum()
        ),
        dfa=dfa,
    )
