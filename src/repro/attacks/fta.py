"""FTA — Fault Template Attacks (Eurocrypt 2020, paper ref [7]).

The adversary model: fix the plaintext, aim a precise transient bit-flip at
one wire inside an S-box instance during one chosen round, and observe only
whether the device's output changed (with a detect-and-suppress
countermeasure, "changed" manifests as suppression).  Flipping one input of
an AND gate changes its output iff the *other* input is 1 — so each wire is
a little oracle on an internal value, and enough wires pin down the S-box
input exactly.  Because the attack can target *any* round (including the
first, where S-box input = plaintext ⊕ K₁ for PRESENT-style ciphers), it
recovers key material where DFA cannot reach.

Implementation: templates are built *exactly* by simulating the standalone
S-box circuit with each candidate wire flipped over all input patterns —
subsuming the AND-gate rule and handling propagation/masking inside the
S-box cone with no approximation.  The per-instance wire inside the full
design is found through the structural correspondence that
``CircuitBuilder.append_circuit`` guarantees (instances copy the template
circuit gate-for-gate, in order).

Against the unprotected or naïvely duplicated design, observations are
deterministic and match exactly one template column → the S-box input (and
hence a key nibble) is recovered.  Against the three-in-one scheme every
run re-randomises λ, the physical pattern seen by the merged S-box is
``(x ⊕ λ…, λ)``, and the observation becomes a coin whose bias is (near)
independent of ``x`` — the template match collapses, which is the paper's
FTA claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.countermeasures.base import ProtectedDesign
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSpec, FaultType
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.netlist.simulator import Simulator

__all__ = [
    "FtaKeyRecovery",
    "FtaResult",
    "build_templates",
    "fta_attack",
    "fta_key_recovery",
    "fta_targets",
]

_ORACLE_GATES = {
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.MUX,
}


def fta_targets(sbox_circuit: Circuit) -> list[int]:
    """Wires worth lasering: nets feeding non-linear gate inputs.

    The Eurocrypt'20 description uses AND gates ("output flips iff the
    other input is 1"); the same data-dependence holds for OR/NAND/NOR and
    for every pin of a mux (flipping the select matters iff the two data
    legs differ, flipping a data leg matters iff it is the selected one).
    Since our templates are exact simulations, every such wire is a usable
    oracle; XOR/XNOR wires are skipped because flipping them always flips
    the output — no data dependence, no information.
    """
    targets: list[int] = []
    seen: set[int] = set()
    for gate in sbox_circuit.gates:
        if gate.gtype in _ORACLE_GATES:
            for net in gate.ins:
                if net not in seen:
                    seen.add(net)
                    targets.append(net)
    return targets


def build_templates(sbox_circuit: Circuit, targets: list[int]) -> np.ndarray:
    """Exact fault templates: ``T[t, p] = 1`` iff flipping wire ``targets[t]``
    changes the S-box output on input pattern ``p``.

    One bit-parallel simulation per wire, all ``2**n`` patterns at once.
    """
    n_in = len(sbox_circuit.inputs["x"])
    patterns = list(range(1 << n_in))
    clean_sim = Simulator(sbox_circuit, batch=len(patterns))
    clean_sim.set_input_ints("x", patterns)
    clean_sim.eval_comb()
    clean = clean_sim.get_output_bits("y")

    rows = []
    for net in targets:
        injector = FaultInjector(
            [FaultSpec.at(net, FaultType.BIT_FLIP, None)], len(patterns)
        )
        sim = Simulator(sbox_circuit, batch=len(patterns), faults=injector)
        sim.set_input_ints("x", patterns)
        sim.eval_comb()
        faulted = sim.get_output_bits("y")
        rows.append((faulted != clean).any(axis=1).astype(np.float64))
    return np.array(rows)


def instance_net_map(
    design: ProtectedDesign, core_index: int, sbox: int
) -> dict[int, int]:
    """Map template-circuit nets to the instance nets of one stamped S-box.

    Relies on ``append_circuit`` copying the template's non-source gates in
    order, and on the input-port binding recorded on the core (state lines
    plus λ for merged boxes).
    """
    sub = design.sbox_circuit
    if sub is None:
        raise ValueError("design carries no sbox_circuit to map against")
    core = design.cores[core_index]
    mapping: dict[int, int] = {}
    x_nets = sub.inputs["x"]
    bound = list(core.sbox_inputs[sbox])
    if core.lam is not None:
        bound.append(core.lam[sbox])
    if len(bound) != len(x_nets):
        raise AssertionError("port binding width drifted from construction")
    for inner, outer in zip(x_nets, bound):
        mapping[inner] = outer

    template_gates = [
        g
        for g in sub.gates
        if g.gtype not in (GateType.INPUT, GateType.CONST0, GateType.CONST1)
    ]
    instance_gates = design.circuit.find_gates(f"{core.tag}/sbox{sbox}/")
    if len(template_gates) != len(instance_gates):
        raise AssertionError(
            f"instance gate count {len(instance_gates)} != template "
            f"{len(template_gates)}; tags are not instance-unique"
        )
    for tg, ig in zip(template_gates, instance_gates):
        if tg.gtype is not ig.gtype:
            raise AssertionError("instance gate order drifted from template")
        mapping[tg.out] = ig.out
    return mapping


@dataclass(frozen=True)
class FtaResult:
    """Outcome of one FTA S-box-input recovery."""

    sbox: int
    round_: int
    observations: np.ndarray  # (targets,) effectiveness fraction per wire
    scores: np.ndarray  # (candidates,) template-match distance per x
    candidates: list[int]  # minimal-distance x values
    true_x: int
    recovered_key_nibble: int | None  # via x ⊕ p_nib when round_ == 1
    true_key_nibble: int | None

    @property
    def success(self) -> bool:
        """Unique best candidate and it is the true S-box input."""
        return self.candidates == [self.true_x]

    @property
    def ambiguity(self) -> int:
        """Size of the best-scoring candidate set (1 = pinned down)."""
        return len(self.candidates)


def fta_attack(
    design: ProtectedDesign,
    *,
    sbox: int,
    round_: int = 1,
    plaintext: int,
    key: int,
    core_index: int = 0,
    n_rep: int = 64,
    seed: int = 1,
    max_targets: int | None = None,
) -> FtaResult:
    """Run the full template attack against one S-box instance.

    ``round_`` is 1-based (the paper's FTA works at any round; round 1
    turns a recovered S-box input directly into a key nibble for
    key-first ciphers).  ``n_rep`` repetitions are spent per wire; for
    deterministic designs 1 would do, the surplus is what exposes the
    λ-randomisation of the protected design.
    """
    spec = design.spec
    sub = design.sbox_circuit
    if sub is None:
        raise ValueError("design carries no sbox_circuit")
    if not 1 <= round_ <= spec.rounds:
        raise ValueError(f"round_ must be in 1..{spec.rounds}")

    targets = fta_targets(sub)
    if max_targets is not None:
        targets = targets[:max_targets]
    templates = build_templates(sub, targets)
    mapping = instance_net_map(design, core_index, sbox)
    cycle = round_ - 1
    core = design.cores[core_index]

    # Ground truth for reporting.
    reference = spec.reference(key)
    n = spec.sbox.n
    if spec.add_key_first:
        states = reference.round_states(plaintext)
        state = states[round_ - 1] ^ reference.round_keys[round_ - 1]
    else:
        states = reference.round_states(plaintext)
        state = states[round_ - 1]
    true_x = (state >> (n * sbox)) & ((1 << n) - 1)

    # Clean run (per-λ randomised; ineffectiveness compares against the
    # correct ciphertext, which is λ-independent).
    pts = [plaintext] * n_rep
    clean_sim = design.simulator(n_rep)
    clean = design.run(clean_sim, pts, key, rng=seed)
    expected = clean["ciphertext"]
    flag_observable = design.scheme != "triplication"

    observations = np.zeros(len(targets))
    for t, net in enumerate(targets):
        spec_t = FaultSpec.at(mapping[net], FaultType.BIT_FLIP, cycle)
        injector = FaultInjector([spec_t], n_rep, rng=seed + 1)
        sim = design.simulator(n_rep, faults=injector)
        res = design.run(sim, pts, key, rng=seed + 2 + t)
        changed = (res["ciphertext"] != expected).any(axis=1)
        if flag_observable:
            changed |= res["fault"].astype(bool)
        observations[t] = changed.mean()

    # Template match: candidate x → predicted observation vector.
    n_candidates = 1 << n
    preds = np.zeros((n_candidates, len(targets)))
    if core.lam is None:
        for x in range(n_candidates):
            preds[x] = templates[:, x]
    else:
        # Physical pattern is (x ⊕ λ·1…1, λ); the attacker averages the two
        # λ hypotheses since λ is drawn fresh per run.
        mask = n_candidates - 1
        for x in range(n_candidates):
            p0 = x
            p1 = (x ^ mask) | (1 << n)
            preds[x] = 0.5 * (templates[:, p0] + templates[:, p1])

    scores = np.abs(preds - observations[None, :]).sum(axis=1)
    best = scores.min()
    candidates = [int(x) for x in np.flatnonzero(np.isclose(scores, best))]

    recovered = true_nib = None
    if round_ == 1 and spec.add_key_first and len(candidates) == 1:
        p_nib = (plaintext >> (n * sbox)) & ((1 << n) - 1)
        recovered = candidates[0] ^ p_nib
        true_nib = ((reference.round_keys[0] >> (n * sbox)) & ((1 << n) - 1))

    return FtaResult(
        sbox=sbox,
        round_=round_,
        observations=observations,
        scores=scores,
        candidates=candidates,
        true_x=true_x,
        recovered_key_nibble=recovered,
        true_key_nibble=true_nib,
    )


@dataclass(frozen=True)
class FtaKeyRecovery:
    """Key-nibble recovery by intersecting FTA runs over chosen plaintexts.

    One FTA pass per plaintext narrows the round-1 S-box input to a
    candidate class; since ``x = p_nib ⊕ k_nib``, each pass yields a key
    candidate set, and the intersection over a few plaintexts pins the key
    nibble down — *provided every per-plaintext class contains the truth*,
    which holds exactly when the device behaves deterministically.  The
    λ-randomised designs produce unreliable classes, the intersection dies
    or lands on the wrong value, and ``success`` is False.
    """

    sbox: int
    per_plaintext: list[FtaResult]
    candidates: set[int]
    true_key_nibble: int

    @property
    def success(self) -> bool:
        return self.candidates == {self.true_key_nibble}

    @property
    def recovered_bits(self) -> float:
        import math

        if not self.candidates or self.true_key_nibble not in self.candidates:
            return 0.0
        return 4 - math.log2(len(self.candidates))


def fta_key_recovery(
    design: ProtectedDesign,
    *,
    sbox: int,
    plaintexts: list[int],
    key: int,
    core_index: int = 0,
    n_rep: int = 64,
    seed: int = 1,
) -> FtaKeyRecovery:
    """Full FTA key-nibble recovery against round 1 of a key-first cipher."""
    spec = design.spec
    if not spec.add_key_first:
        raise ValueError("round-1 key recovery needs a key-first cipher")
    n = spec.sbox.n
    mask = (1 << n) - 1
    reference = spec.reference(key)
    truth = (reference.round_keys[0] >> (n * sbox)) & mask

    per_pt: list[FtaResult] = []
    candidates: set[int] | None = None
    for i, pt in enumerate(plaintexts):
        res = fta_attack(
            design,
            sbox=sbox,
            round_=1,
            plaintext=pt,
            key=key,
            core_index=core_index,
            n_rep=n_rep,
            seed=seed + 31 * i,
        )
        per_pt.append(res)
        p_nib = (pt >> (n * sbox)) & mask
        key_set = {c ^ p_nib for c in res.candidates}
        candidates = key_set if candidates is None else (candidates & key_set)
        if not candidates:
            break
    return FtaKeyRecovery(
        sbox=sbox,
        per_plaintext=per_pt,
        candidates=candidates or set(),
        true_key_nibble=truth,
    )
