"""Working attack implementations used to validate the countermeasures.

The paper argues its scheme defeats three attack families; this package
implements each family for real, so "protected" is demonstrated as *the
key-recovery attack stops working*, not just as a distribution plot:

- :mod:`repro.attacks.dfa` — classic last-round differential fault
  analysis on PRESENT (nibble-key elimination via the S-box DDT);
- :mod:`repro.attacks.selmke` — the FDTC'16 identical-fault-mask DFA that
  defeats plain duplication [Selmke, Heyszl, Sigl];
- :mod:`repro.attacks.sifa` — statistical ineffective fault analysis
  (CHES'18): SEI-ranked subkey guesses over the ineffective set;
- :mod:`repro.attacks.fta` — fault template attacks (Eurocrypt'20):
  AND/OR-gate fault templates inside an S-box instance, matched against
  observed effectiveness to recover S-box inputs;
- :mod:`repro.attacks.metrics` — SEI, χ², and ranking helpers shared by
  the above.
"""

from repro.attacks.metrics import chi_squared_uniform, sei
from repro.attacks.sifa import sifa_attack
from repro.attacks.dfa import dfa_attack_last_round
from repro.attacks.pfa import pfa_attack
from repro.attacks.selmke import selmke_attack
from repro.attacks.fta import fta_attack

__all__ = [
    "chi_squared_uniform",
    "dfa_attack_last_round",
    "fta_attack",
    "pfa_attack",
    "sei",
    "selmke_attack",
    "sifa_attack",
]
