"""repro — gate-level reproduction of the DATE 2021 paper.

*"Feeding Three Birds With One Scone: A Generic Duplication Based
Countermeasure To Fault Attacks"* (Baksi, Bhasin, Breier, Chattopadhyay,
Kumar — DATE 2021).

The package is organised bottom-up:

- :mod:`repro.netlist` — gate-level circuit IR and a bit-parallel,
  cycle-accurate simulator (the VerFI-equivalent substrate);
- :mod:`repro.synth` — combinational synthesis from truth tables (Shannon,
  BDD, two-level minimisation) plus netlist optimisation passes;
- :mod:`repro.tech` — a Nangate-45nm-calibrated gate-equivalent library and
  area reporting;
- :mod:`repro.ciphers` — PRESENT-80, AES-128 and GIFT-64 reference models and
  round-iterative datapath netlists;
- :mod:`repro.countermeasures` — naïve duplication, triplication, the
  ACISP'20 randomised duplication, and the paper's three-in-one scheme;
- :mod:`repro.faults` — fault models, injection, and campaign running;
- :mod:`repro.attacks` — working DFA / SIFA / FTA / identical-fault (Selmke)
  attacks used to validate the countermeasure end-to-end;
- :mod:`repro.evaluation` — regeneration of every table and figure in the
  paper's evaluation section.
"""

from repro.netlist.circuit import Circuit
from repro.netlist.gates import Gate, GateType
from repro.netlist.simulator import Simulator

__version__ = "1.0.0"

__all__ = ["Circuit", "Gate", "GateType", "Simulator", "__version__"]
