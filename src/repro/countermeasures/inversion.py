"""The inverted-domain circuit transform (paper §III, Table I).

In the inverted encoding every wire carries the complement of its logical
value.  A circuit is re-expressed in that encoding by swapping each cell
for its inverted-domain twin:

====== =========== =============================================
 cell   becomes     why
====== =========== =============================================
 XOR    XNOR        ``x̄0 ⊕ x̄1 = x0 ⊕ x1``, output must flip
 XNOR   XOR         dual of the above
 AND    OR          ``(x0 ∧ x1)‾ = x̄0 ∨ x̄1`` (De Morgan)
 OR     AND         dual
 NAND   NOR         ``((x0 ∧ x1)‾)‾ = (x̄0 ∨ x̄1)‾``
 NOR    NAND        dual
 NOT    NOT         complement of complement of complement…
 BUF    BUF         wires are encoding-transparent
 MUX    MUX         select is inverted too, so swap the branches
 0/1    1/0         constants are data
 DFF    DFF         state bits are data; reset value flips
====== =========== =============================================

This is exactly the paper's Table I generalised to the full cell alphabet,
and the property-based tests check the defining identity on random
circuits: ``inverted(C)(x̄) == C(x)‾`` for every input ``x``.
"""

from __future__ import annotations

from repro.netlist.circuit import Circuit
from repro.netlist.gates import Gate, GateType

__all__ = ["invert_circuit", "INVERTED_CELL"]

#: inverted-domain replacement for each cell type
INVERTED_CELL: dict[GateType, GateType] = {
    GateType.INPUT: GateType.INPUT,
    GateType.CONST0: GateType.CONST1,
    GateType.CONST1: GateType.CONST0,
    GateType.BUF: GateType.BUF,
    GateType.NOT: GateType.NOT,
    GateType.AND: GateType.OR,
    GateType.OR: GateType.AND,
    GateType.NAND: GateType.NOR,
    GateType.NOR: GateType.NAND,
    GateType.XOR: GateType.XNOR,
    GateType.XNOR: GateType.XOR,
    GateType.MUX: GateType.MUX,
    GateType.DFF: GateType.DFF,
}


def invert_circuit(circuit: Circuit, *, name: str | None = None) -> Circuit:
    """Return the inverted-domain twin of ``circuit``.

    The twin has the same ports and net numbering; feeding it complemented
    inputs makes every internal net carry the complement of the original's
    value, so its outputs are the complements of the original's outputs.
    Gate-for-gate structural correspondence is preserved on purpose: a
    physical fault location in the original has a well-defined counterpart
    in the twin, which the identical-fault-mask experiments rely on.
    """
    out = Circuit(name or f"{circuit.name}_inv")
    while out.num_nets < circuit.num_nets:
        out.new_net()
    for gate in circuit.gates:
        new_type = INVERTED_CELL[gate.gtype]
        ins = gate.ins
        if gate.gtype is GateType.MUX:
            sel, d0, d1 = ins
            ins = (sel, d1, d0)
        init = gate.init ^ 1 if gate.gtype is GateType.DFF else 0
        out.add_gate(new_type, ins, out=gate.out, init=init, tag=gate.tag)
    out.inputs = {k: list(v) for k, v in circuit.inputs.items()}
    out.outputs = {k: list(v) for k, v in circuit.outputs.items()}
    out.validate()
    return out
