"""Fault-attack countermeasure wrappers.

Every wrapper takes a cipher :class:`~repro.ciphers.spn.CipherSpec`
(PRESENT/GIFT via the SPN template, AES via its own datapath, or any user
cipher) and produces a complete
:class:`~repro.countermeasures.base.ProtectedDesign`
circuit with a uniform port interface, so fault campaigns and attacks treat
all schemes interchangeably:

- :func:`~repro.countermeasures.duplication.build_naive_duplication` —
  duplicate-and-compare (the paper's Fig. 2 baseline, vulnerable to SIFA,
  FTA, and identical-fault DFA);
- :func:`~repro.countermeasures.triplication.build_triplication` —
  triplication + majority voting (the repetition-code SIFA countermeasure
  [Breier et al. 2019] the paper compares against);
- :func:`~repro.countermeasures.acisp20.build_acisp20` — the ACISP'20
  randomised duplication with *independent* λ per computation (protects
  against SIFA but not identical-fault DFA or FTA);
- :func:`~repro.countermeasures.three_in_one.build_three_in_one` — THE
  paper's countermeasure: complementary encodings λ / λ̄ and merged
  S-boxes, in its prime, per-round and per-S-box variants.
"""

from repro.countermeasures.acisp20 import build_acisp20
from repro.countermeasures.base import ProtectedDesign, RecoveryPolicy
from repro.countermeasures.duplication import build_naive_duplication
from repro.countermeasures.three_in_one import LambdaVariant, build_three_in_one
from repro.countermeasures.triplication import build_triplication

__all__ = [
    "LambdaVariant",
    "ProtectedDesign",
    "RecoveryPolicy",
    "build_acisp20",
    "build_naive_duplication",
    "build_three_in_one",
    "build_triplication",
]
