"""The ACISP'20 randomised-duplication SIFA countermeasure (paper ref [12]).

The paper's starting point: each computation draws its *own* encoding bit —
λₐ for the actual core, λᵣ for the redundant core — so the statistical bias
SIFA needs is removed (whether a stuck-at fault is ineffective no longer
correlates with the logical value of the target bit).

Two deliberate weaknesses, both fixed by the three-in-one scheme and both
demonstrated by our attack benches:

- with probability ½ the two cores share an encoding (λₐ = λᵣ), so the
  Selmke identical-fault-mask DFA gets through half the time;
- the S-box and its inverted twin are *separately implemented* and
  mux-selected, so FTA against the plain copy still extracts
  λ-conditioned information.
"""

from __future__ import annotations

from repro.ciphers.spn import CipherSpec
from repro.countermeasures.base import (
    ProtectedDesign,
    RecoveryPolicy,
    attach_comparator,
)
from repro.countermeasures.merged_sbox import build_merged_sbox
from repro.netlist.analysis import lint_countermeasure
from repro.netlist.builder import CircuitBuilder

__all__ = ["build_acisp20"]


def build_acisp20(
    spec: CipherSpec,
    *,
    policy: RecoveryPolicy = RecoveryPolicy.SUPPRESS,
    sbox_strategy: str = "shannon",
    name: str | None = None,
) -> ProtectedDesign:
    """Build the ACISP'20 design: independent λ per core, separate S/S̄.

    The ``lambda`` input port is 2 bits: bit 0 encodes the actual core,
    bit 1 the redundant core, drawn independently at each invocation.
    """
    builder = CircuitBuilder(name or f"{spec.name}_acisp20")
    pt = builder.input("plaintext", spec.block_bits)
    key = builder.input("key", spec.key_bits)
    lam = builder.input("lambda", 2)
    garbage = (
        builder.input("garbage", spec.block_bits)
        if policy is not RecoveryPolicy.SUPPRESS
        else None
    )

    sbox_circuit = build_merged_sbox(
        spec.sbox, construction="separate", strategy=sbox_strategy
    )
    n_sb = spec.n_sboxes
    core_a = spec.build_core(
        builder, pt, key,
        sbox_circuit=sbox_circuit, lam=[lam[0]] * n_sb, tag="a",
    )
    core_r = spec.build_core(
        builder, pt, key,
        sbox_circuit=sbox_circuit, lam=[lam[1]] * n_sb, tag="r",
    )

    out, fault = attach_comparator(
        builder,
        core_a.ciphertext,
        core_r.ciphertext,
        core_a.ciphertext,
        policy,
        garbage=garbage,
    )
    builder.output("ciphertext", out)
    builder.output("fault", [fault])
    design = ProtectedDesign(
        circuit=builder.build(),
        spec=spec,
        scheme="acisp20",
        cores=[core_a, core_r],
        policy=policy,
        lambda_width=2,
        sbox_circuit=sbox_circuit,
    )
    lint_countermeasure(design)
    return design
