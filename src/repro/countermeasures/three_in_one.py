"""The paper's three-in-one countermeasure (§III, Algorithm 1, Fig. 3).

Randomised duplication with *complementary* encodings: the actual core runs
in domain λ, the redundant core in domain λ̄.  The three design changes over
ACISP'20, all implemented here:

1. **λ and λ̄ instead of independent coins** — identical physical fault
   masks land on complementary physical values, so the Selmke FDTC'16
   identical-fault DFA is always sensed (never "no fault");
2. **more entropy when available** — three variants trade TRNG bits for
   protection granularity: ``PRIME`` (one λ bit per invocation; the paper's
   headline design and its Table II area row), ``PER_ROUND`` (a fresh bit
   every round — 31 bits for PRESENT), ``PER_SBOX`` (a fresh bit per S-box
   per round — 16 × 31 bits for PRESENT);
3. **merged (n+1) × m S-boxes** — λ enters the S-box as a real input and
   both domains are computed by one shared logic cone, removing the
   identifiable plain-domain sub-circuit that FTA templates target.

Fault-free behaviour is the identity the test-suite checks for every
variant and every λ draw: the released ciphertext equals the unprotected
cipher's output, and the fault flag stays low.
"""

from __future__ import annotations

import enum

from repro.ciphers.spn import CipherSpec
from repro.countermeasures.base import (
    ProtectedDesign,
    RecoveryPolicy,
    attach_comparator,
)
from repro.countermeasures.merged_sbox import build_merged_sbox
from repro.netlist.analysis import lint_countermeasure
from repro.netlist.builder import CircuitBuilder

__all__ = ["LambdaVariant", "build_three_in_one"]


class LambdaVariant(enum.Enum):
    """How much TRNG entropy the scheme consumes (paper §III, change #2)."""

    #: one λ bit for the whole invocation (the paper's prime variant)
    PRIME = "prime"
    #: a fresh λ bit every round
    PER_ROUND = "per_round"
    #: a fresh λ bit per S-box per round
    PER_SBOX = "per_sbox"


def build_three_in_one(
    spec: CipherSpec,
    *,
    variant: LambdaVariant = LambdaVariant.PRIME,
    construction: str = "monolithic",
    policy: RecoveryPolicy = RecoveryPolicy.SUPPRESS,
    sbox_strategy: str = "shannon",
    name: str | None = None,
) -> ProtectedDesign:
    """Build the three-in-one design for ``spec``.

    The ``lambda`` input port carries the TRNG bits: width 1 for ``PRIME``
    and ``PER_ROUND`` (the latter re-drawn every cycle via an input
    schedule), width ``spec.n_sboxes`` for ``PER_SBOX``.  The redundant
    core receives the complement of every λ bit, per Algorithm 1.

    ``construction`` selects the merged-S-box style (see
    :mod:`repro.countermeasures.merged_sbox`); the paper's design is
    ``monolithic``.
    """
    builder = CircuitBuilder(name or f"{spec.name}_three_in_one_{variant.value}")
    pt = builder.input("plaintext", spec.block_bits)
    key = builder.input("key", spec.key_bits)
    n_sb = spec.n_sboxes
    lambda_width = n_sb if variant is LambdaVariant.PER_SBOX else 1
    lam_in = builder.input("lambda", lambda_width)
    garbage = (
        builder.input("garbage", spec.block_bits)
        if policy is not RecoveryPolicy.SUPPRESS
        else None
    )

    sbox_circuit = build_merged_sbox(
        spec.sbox, construction=construction, strategy=sbox_strategy
    )

    if variant is LambdaVariant.PER_SBOX:
        lam_a = list(lam_in)
    else:
        lam_a = [lam_in[0]] * n_sb
    lam_r = [builder.not_(bit, tag="lambda_bar") for bit in lam_in]
    if variant is not LambdaVariant.PER_SBOX:
        lam_r = [lam_r[0]] * n_sb

    dynamic = variant is not LambdaVariant.PRIME
    core_a = spec.build_core(
        builder, pt, key,
        sbox_circuit=sbox_circuit, lam=lam_a, dynamic_domain=dynamic, tag="a",
    )
    core_r = spec.build_core(
        builder, pt, key,
        sbox_circuit=sbox_circuit, lam=lam_r, dynamic_domain=dynamic, tag="r",
    )

    out, fault = attach_comparator(
        builder,
        core_a.ciphertext,
        core_r.ciphertext,
        core_a.ciphertext,
        policy,
        garbage=garbage,
    )
    builder.output("ciphertext", out)
    builder.output("fault", [fault])
    design = ProtectedDesign(
        circuit=builder.build(),
        spec=spec,
        scheme="three_in_one",
        cores=[core_a, core_r],
        policy=policy,
        lambda_width=lambda_width,
        dynamic_lambda=dynamic,
        variant=variant.value,
        sbox_circuit=sbox_circuit,
        extra={"construction": construction},
    )
    lint_countermeasure(design)
    return design
