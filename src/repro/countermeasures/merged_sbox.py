"""Merged ``(n+1) × m`` S-boxes — the paper's third design change.

All constructions share the same interface (input port ``x`` of width
``n + 1`` whose MSB is the domain bit λ; output port ``y``): with λ = 0 the
box computes ``S(x)``, with λ = 1 it computes ``S(x̄)‾`` — the
inverted-domain box (see :meth:`SBox.merged_truthtable`).

Three constructions with different security/area trade-offs:

``monolithic`` (the paper's choice, §III: "the actual SBox and its
    inversion is implemented at one place")
    The ``(n+1)``-input truth table is synthesised as a single function.
    λ participates in the shared logic like any other input, so no
    identifiable sub-circuit computes plain-domain values — this is what
    degrades the FTA template.
``separate`` (the ACISP'20 predecessor construction)
    ``S`` and its inverted-domain twin (:func:`invert_circuit`) are
    instantiated side by side and a mux row selects per output bit.  The
    plain copy's AND gates carry true logical values whenever λ = 0, which
    is the structural weakness the paper's FTA discussion points at.
``xor_wrap`` (folklore construction, used here as an area ablation)
    ``T(λ, x) = S(x ⊕ λⁿ) ⊕ λᵐ`` — XOR λ into every input and output of a
    single plain box.  Cheapest, but the λ wires are structurally exposed.
"""

from __future__ import annotations

from repro.ciphers.sbox import SBox
from repro.countermeasures.inversion import invert_circuit
from repro.netlist.builder import CircuitBuilder
from repro.netlist.circuit import Circuit
from repro.synth.sbox_synth import synthesize_sbox, verify_sbox_circuit

__all__ = ["MERGED_CONSTRUCTIONS", "build_merged_sbox"]

MERGED_CONSTRUCTIONS = ("monolithic", "separate", "xor_wrap")


def build_merged_sbox(
    sbox: SBox,
    *,
    construction: str = "monolithic",
    strategy: str = "shannon",
    name: str | None = None,
) -> Circuit:
    """Build a merged S-box circuit; verified exhaustively before return."""
    if construction not in MERGED_CONSTRUCTIONS:
        raise ValueError(
            f"unknown construction {construction!r}; pick from {MERGED_CONSTRUCTIONS}"
        )
    name = name or f"{sbox.name}_merged_{construction}"
    merged_table = sbox.merged_truthtable()

    if construction == "monolithic":
        circuit = synthesize_sbox(merged_table, strategy=strategy, name=name)
        return circuit

    n = sbox.n
    builder = CircuitBuilder(name)
    x = builder.input("x", n + 1)
    data, lam = x[:n], x[n]
    plain = synthesize_sbox(sbox.truthtable(), strategy=strategy, name="plain")

    if construction == "separate":
        inverted = invert_circuit(plain, name="inverted")
        y_plain = builder.append_circuit(plain, {"x": data}, tag_prefix="s/")["y"]
        y_inv = builder.append_circuit(inverted, {"x": data}, tag_prefix="sbar/")["y"]
        y = builder.mux_word(lam, y_plain, y_inv, tag="sel")
    else:  # xor_wrap
        enc = [builder.xor(bit, lam, tag="wrap_in") for bit in data]
        y_mid = builder.append_circuit(plain, {"x": enc}, tag_prefix="s/")["y"]
        y = [builder.xor(bit, lam, tag="wrap_out") for bit in y_mid]

    builder.output("y", y)
    builder.circuit.validate()
    verify_sbox_circuit(builder.circuit, merged_table)
    return builder.circuit
