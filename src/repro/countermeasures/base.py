"""Common scaffolding for countermeasure circuits.

Uniform port contract of every protected design (so campaigns, attacks and
benchmarks can swap schemes freely):

inputs
    ``plaintext`` (block), ``key`` (key width), optionally ``lambda``
    (``lambda_width`` bits of per-invocation randomness) and ``garbage``
    (block-wide random word used when the recovery policy releases random
    values instead of suppressing).
outputs
    ``ciphertext`` (block) — the released value after recovery handling;
    ``fault`` (1 bit) — the comparator verdict (1 = mismatch sensed).
    Designs with error *correction* (triplication) still expose the
    detection flag for campaign statistics, but their released ciphertext
    is the corrected value.

Timing: run ``design.cycles`` clock steps, then one combinational
evaluation; then read outputs (see :meth:`ProtectedDesign.run`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.ciphers.spn import CipherSpec, SpnCore
from repro.netlist.builder import CircuitBuilder
from repro.netlist.circuit import Circuit
from repro.netlist.simulator import Simulator
from repro.rng import make_rng, random_bits

__all__ = ["ProtectedDesign", "RecoveryPolicy", "attach_comparator"]

Word = list[int]


class RecoveryPolicy(enum.Enum):
    """What the design releases when the comparator senses a fault."""

    #: release the all-zero word (output suppression)
    SUPPRESS = "suppress"
    #: release the externally supplied random ``garbage`` word
    RANDOM_GARBAGE = "random_garbage"
    #: implicit check (paper §IV-B / ref [4]): always release, but XOR the
    #: random garbage word in whenever the comparator fires — the attacker
    #: receives a uselessly randomised word instead of a recognisable
    #: suppression, and no explicit fault signal exists on the interface
    INFECTIVE = "infective"


@dataclass
class ProtectedDesign:
    """A complete countermeasure circuit plus its metadata."""

    circuit: Circuit
    spec: CipherSpec
    scheme: str
    cores: list[SpnCore]
    policy: RecoveryPolicy
    lambda_width: int = 0
    dynamic_lambda: bool = False
    variant: str | None = None
    #: the standalone S-box circuit stamped into every core (template
    #: attacks rebuild per-instance net maps from it)
    sbox_circuit: Circuit | None = None
    extra: dict = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        """Clock cycles per encryption."""
        return self.spec.rounds

    def simulator(
        self, batch: int, *, faults=None, backend: str | None = None
    ) -> Simulator:
        """A fresh simulator sized for ``batch`` parallel invocations.

        ``backend`` selects the evaluation kernel (``"levelized"`` /
        ``"reference"``); None uses the simulator default.  Results are
        bit-identical either way.
        """
        return Simulator(self.circuit, batch, faults=faults, backend=backend)

    def run(
        self,
        sim: Simulator,
        plaintexts,
        key: int,
        *,
        rng: np.random.Generator | int | None = None,
    ) -> dict[str, np.ndarray]:
        """Drive one batched encryption; returns output bit matrices.

        Randomness (λ and garbage words, as the design requires) is drawn
        from ``rng``; λ in the dynamic variants is streamed fresh every
        cycle via an input schedule, modelling the free-running TRNG.
        Returns ``{"ciphertext": (batch, block) bits, "fault": (batch,) bits}``.
        """
        rng = make_rng(rng)
        batch = sim.batch
        sim.reset()
        sim.set_input_ints("plaintext", list(plaintexts))
        sim.set_input_ints("key", [key] * batch)
        if "garbage" in self.circuit.inputs:
            sim.set_input_bits(
                "garbage", random_bits(rng, batch, self.spec.block_bits)
            )
        if self.lambda_width:
            if self.dynamic_lambda:
                # Pre-draw one λ word per cycle so runs stay reproducible.
                per_cycle = [
                    random_bits(rng, batch, self.lambda_width)
                    for _ in range(self.cycles + 1)
                ]
                sim.set_input_schedule(
                    "lambda", lambda cycle: per_cycle[min(cycle, self.cycles)]
                )
            else:
                sim.set_input_bits(
                    "lambda", random_bits(rng, batch, self.lambda_width)
                )
        sim.run(self.cycles)
        sim.eval_comb()
        return {
            "ciphertext": sim.get_output_bits("ciphertext"),
            "fault": sim.get_output_bits("fault")[:, 0],
        }


def attach_comparator(
    builder: CircuitBuilder,
    out_a: Word,
    out_b: Word,
    released: Word,
    policy: RecoveryPolicy,
    *,
    garbage: Word | None = None,
    tag: str = "cmp",
) -> tuple[Word, int]:
    """Duplicate-and-compare back end shared by the duplication schemes.

    Compares ``out_a`` and ``out_b`` bitwise; on mismatch the released word
    is replaced according to ``policy``.  Returns ``(ciphertext_nets,
    fault_net)``.
    """
    diffs = builder.xor_word(out_a, out_b, tag=f"{tag}/diff")
    fault = builder.or_reduce(diffs, tag=f"{tag}/ortree")
    if policy is RecoveryPolicy.SUPPRESS:
        not_fault = builder.not_(fault, tag=f"{tag}/gate")
        out = [builder.and_(not_fault, bit, tag=f"{tag}/gate") for bit in released]
    elif policy is RecoveryPolicy.RANDOM_GARBAGE:
        if garbage is None:
            raise ValueError("RANDOM_GARBAGE policy needs a garbage word")
        out = builder.mux_word(fault, released, garbage, tag=f"{tag}/sel")
    else:  # INFECTIVE
        if garbage is None:
            raise ValueError("INFECTIVE policy needs a garbage word")
        infect = [
            builder.and_(fault, bit, tag=f"{tag}/infect") for bit in garbage
        ]
        out = [
            builder.xor(bit, mask, tag=f"{tag}/infect")
            for bit, mask in zip(released, infect)
        ]
    return out, fault
