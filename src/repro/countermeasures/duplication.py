"""Naïve duplication — the classic DFA countermeasure (paper Fig. 2).

Two identical plain-domain cores run the cipher on the same inputs; a
comparator releases the output only when both agree.  This blocks any
single-computation DFA (the faulty output never leaves the chip) but is the
design SIFA, FTA and the Selmke identical-fault DFA all bypass — which is
exactly what the paper's Figures 4(a) and 5(a) demonstrate and what our
fault campaigns reproduce against this module.
"""

from __future__ import annotations

from repro.ciphers.spn import CipherSpec
from repro.countermeasures.base import (
    ProtectedDesign,
    RecoveryPolicy,
    attach_comparator,
)
from repro.netlist.analysis import lint_countermeasure
from repro.netlist.builder import CircuitBuilder
from repro.synth.sbox_synth import synthesize_sbox

__all__ = ["build_naive_duplication"]


def build_naive_duplication(
    spec: CipherSpec,
    *,
    policy: RecoveryPolicy = RecoveryPolicy.SUPPRESS,
    sbox_strategy: str = "shannon",
    name: str | None = None,
) -> ProtectedDesign:
    """Build the duplicate-and-compare design for ``spec``.

    The two cores (tags ``a`` = actual, ``r`` = redundant) share only the
    primary inputs; the test suite checks this independence structurally.
    """
    builder = CircuitBuilder(name or f"{spec.name}_naive_dup")
    pt = builder.input("plaintext", spec.block_bits)
    key = builder.input("key", spec.key_bits)
    garbage = (
        builder.input("garbage", spec.block_bits)
        if policy is not RecoveryPolicy.SUPPRESS
        else None
    )

    sbox_circuit = synthesize_sbox(
        spec.sbox.truthtable(), strategy=sbox_strategy, name=f"{spec.name}_sbox"
    )
    core_a = spec.build_core(builder, pt, key, sbox_circuit=sbox_circuit, tag="a")
    core_r = spec.build_core(builder, pt, key, sbox_circuit=sbox_circuit, tag="r")

    out, fault = attach_comparator(
        builder,
        core_a.ciphertext,
        core_r.ciphertext,
        core_a.ciphertext,
        policy,
        garbage=garbage,
    )
    builder.output("ciphertext", out)
    builder.output("fault", [fault])
    design = ProtectedDesign(
        circuit=builder.build(),
        spec=spec,
        scheme="naive_duplication",
        cores=[core_a, core_r],
        policy=policy,
        sbox_circuit=sbox_circuit,
    )
    lint_countermeasure(design)
    return design
