"""Triplication + majority voting — the repetition-code SIFA countermeasure.

The first SIFA countermeasure in the literature [Breier, Khairallah, Hou,
Liu 2019] runs three copies of the cipher and majority-votes every output
bit: a single-computation fault is *corrected*, so the attacker's
ineffective/effective distinction disappears.  The DATE'21 paper's
positioning argument is that this costs ≥ 3× while its own scheme stays
near 2×; the Table II ablation bench quantifies that claim on our substrate.
"""

from __future__ import annotations

from repro.ciphers.spn import CipherSpec
from repro.countermeasures.base import ProtectedDesign, RecoveryPolicy
from repro.netlist.analysis import lint_countermeasure
from repro.netlist.builder import CircuitBuilder
from repro.synth.sbox_synth import synthesize_sbox

__all__ = ["build_triplication"]


def build_triplication(
    spec: CipherSpec,
    *,
    sbox_strategy: str = "shannon",
    name: str | None = None,
) -> ProtectedDesign:
    """Build the triplicate-and-vote design for ``spec``.

    The released ciphertext is the bitwise majority of the three cores, so
    recovery is implicit (error correction); the ``fault`` output flags any
    pairwise disagreement for campaign statistics.
    """
    builder = CircuitBuilder(name or f"{spec.name}_triplication")
    pt = builder.input("plaintext", spec.block_bits)
    key = builder.input("key", spec.key_bits)

    sbox_circuit = synthesize_sbox(
        spec.sbox.truthtable(), strategy=sbox_strategy, name=f"{spec.name}_sbox"
    )
    cores = [
        spec.build_core(builder, pt, key, sbox_circuit=sbox_circuit, tag=t)
        for t in ("a", "r", "s")
    ]

    voted = builder.majority3_word(
        cores[0].ciphertext,
        cores[1].ciphertext,
        cores[2].ciphertext,
        tag="vote",
    )
    disagree_ab = builder.xor_word(cores[0].ciphertext, cores[1].ciphertext, tag="cmp")
    disagree_ac = builder.xor_word(cores[0].ciphertext, cores[2].ciphertext, tag="cmp")
    fault = builder.or_reduce(disagree_ab + disagree_ac, tag="cmp/ortree")

    builder.output("ciphertext", voted)
    builder.output("fault", [fault])
    design = ProtectedDesign(
        circuit=builder.build(),
        spec=spec,
        scheme="triplication",
        cores=cores,
        policy=RecoveryPolicy.SUPPRESS,
        sbox_circuit=sbox_circuit,
    )
    lint_countermeasure(design)
    return design
