"""Deterministic stand-in for the on-chip TRNG.

The paper presumes an on-chip true random number generator as the entropy
source for the encoding bit(s) λ.  For simulation we substitute a seeded
``numpy`` PCG64 generator: the countermeasure's security argument only needs
λ to be uniform and unknown to the attacker, and a seeded generator makes
every experiment in this repository exactly reproducible (see DESIGN.md,
substitution table).

All randomness in the code base flows through :func:`make_rng` so that a
single seed pins down an entire fault campaign.

Campaign-scale experiments additionally need randomness that is *stable
under re-batching*: the same run must see the same draws whether the
campaign executes in one process, in shards across a worker pool, or is
resumed after a crash.  :func:`derive_rng` keys an independent substream
off ``(seed, index)`` via ``numpy.random.SeedSequence`` spawn keys, and
:class:`BlockedRng` stitches several substreams into one generator-shaped
object whose batched draws split along the first axis — so a batch
covering blocks ``[3, 4, 5]`` draws exactly what three separate
single-block batches would.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

__all__ = [
    "DEFAULT_SEED",
    "BlockedRng",
    "derive_rng",
    "make_rng",
    "random_bits",
    "random_ints",
]

DEFAULT_SEED = 0x5C04E  # "SCONE", hex-safe spelling


def make_rng(seed: int | np.random.Generator | None = DEFAULT_SEED) -> np.random.Generator:
    """Create (or pass through) a numpy Generator.

    Accepts an existing generator (or :class:`BlockedRng`) so helpers can
    be composed without re-seeding mid-experiment.
    """
    if isinstance(seed, (np.random.Generator, BlockedRng)):
        return seed
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive_rng(seed: int, index: int) -> np.random.Generator:
    """Independent substream ``index`` of master seed ``seed``.

    Uses ``SeedSequence`` spawn-key derivation, so distinct indices yield
    statistically independent streams and the mapping is stable across
    numpy versions, processes and machines.
    """
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(index,)))


class BlockedRng:
    """A generator over consecutive *blocks*, each with its own substream.

    Constructed from ``(n_lanes, Generator)`` pairs.  Every batched draw
    must have the total lane count as its leading dimension; the draw is
    split along that axis, each slice coming from its block's generator.
    The per-lane values therefore depend only on the block's substream and
    the order of draw calls — not on which blocks happen to share a batch.
    """

    def __init__(self, parts: Iterable[tuple[int, np.random.Generator]]) -> None:
        self._parts = [(int(n), gen) for n, gen in parts]
        if not self._parts or any(n <= 0 for n, _ in self._parts):
            raise ValueError("BlockedRng needs at least one positive-sized block")
        self.total = sum(n for n, _ in self._parts)

    def _sizes(self, size) -> list[int | tuple[int, ...]]:
        """Per-block ``size`` arguments for a draw of shape ``size``."""
        if isinstance(size, tuple):
            lead, rest = size[0], size[1:]
        else:
            lead, rest = size, ()
        if lead != self.total:
            raise ValueError(
                f"draw of leading dimension {lead} on a BlockedRng of "
                f"{self.total} lanes — batched draws must cover every lane"
            )
        return [(n, *rest) if rest else n for n, _ in self._parts]

    def integers(self, low, high=None, size=None, **kwargs) -> np.ndarray:
        parts = [
            gen.integers(low, high, size=s, **kwargs)
            for s, (_, gen) in zip(self._sizes(size), self._parts)
        ]
        return parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)

    def random(self, size=None, **kwargs) -> np.ndarray:
        parts = [
            gen.random(size=s, **kwargs)
            for s, (_, gen) in zip(self._sizes(size), self._parts)
        ]
        return parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)


def random_bits(rng: np.random.Generator, batch: int, width: int) -> np.ndarray:
    """A ``(batch, width)`` uniform 0/1 matrix (one row per run)."""
    return rng.integers(0, 2, size=(batch, width), dtype=np.uint8)


def random_ints(rng: np.random.Generator, batch: int, width: int) -> list[int]:
    """``batch`` uniform ``width``-bit integers (arbitrary precision)."""
    from repro.utils.bits import bits_to_ints

    return bits_to_ints(random_bits(rng, batch, width))
