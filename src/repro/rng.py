"""Deterministic stand-in for the on-chip TRNG.

The paper presumes an on-chip true random number generator as the entropy
source for the encoding bit(s) λ.  For simulation we substitute a seeded
``numpy`` PCG64 generator: the countermeasure's security argument only needs
λ to be uniform and unknown to the attacker, and a seeded generator makes
every experiment in this repository exactly reproducible (see DESIGN.md,
substitution table).

All randomness in the code base flows through :func:`make_rng` so that a
single seed pins down an entire fault campaign.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DEFAULT_SEED", "make_rng", "random_bits", "random_ints"]

DEFAULT_SEED = 0x5C04E  # "SCONE", hex-safe spelling


def make_rng(seed: int | np.random.Generator | None = DEFAULT_SEED) -> np.random.Generator:
    """Create (or pass through) a numpy Generator.

    Accepts an existing generator so helpers can be composed without
    re-seeding mid-experiment.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def random_bits(rng: np.random.Generator, batch: int, width: int) -> np.ndarray:
    """A ``(batch, width)`` uniform 0/1 matrix (one row per run)."""
    return rng.integers(0, 2, size=(batch, width), dtype=np.uint8)


def random_ints(rng: np.random.Generator, batch: int, width: int) -> list[int]:
    """``batch`` uniform ``width``-bit integers (arbitrary precision)."""
    bits = random_bits(rng, batch, width)
    out = []
    for row in range(batch):
        value = 0
        for i in range(width):
            value |= int(bits[row, i]) << i
        out.append(value)
    return out
