"""Instrumented software PRESENT-80 and its protected forms.

Three implementations share one skeleton:

- :class:`SoftwarePresent` — the baseline lookup-table implementation;
- ``SoftwarePresent.encrypt_duplicated`` — naïve duplication in software
  (run twice, compare, suppress);
- :class:`ProtectedSoftwarePresent` — the paper's scheme: the actual run
  in domain λ and the redundant run in λ̄, using a *merged* 32-entry S-box
  table indexed by ``(λ << 4) | nibble`` (the software analogue of the
  merged ``(n+1)×m`` S-box), with domain-transparent key addition and
  permutation, decode-then-compare at the end.

Every abstract operation (table lookup, XOR word, permutation, compare)
ticks a :class:`CostCounter`, making the paper's "essentially the same
cost as duplication" claim a measurable statement rather than a remark.
Software fault injection (bit flips / stuck-ats on the state between
steps) mirrors the hardware fault model closely enough to reproduce the
SIFA ineffective-set bias and the identical-fault bypass in pure software.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ciphers.present import PLAYER, ROUNDS, Present80
from repro.ciphers.sbox import PRESENT_SBOX
from repro.faults.models import FaultType
from repro.rng import make_rng

__all__ = [
    "CostCounter",
    "ProtectedSoftwarePresent",
    "SoftwareFault",
    "SoftwarePresent",
]

_MASK64 = (1 << 64) - 1


@dataclass
class CostCounter:
    """Abstract operation counts for one (or more) encryptions."""

    table_lookups: int = 0
    xors: int = 0
    permutations: int = 0
    compares: int = 0
    table_bytes: int = 0

    @property
    def total_ops(self) -> int:
        return self.table_lookups + self.xors + self.permutations + self.compares

    def merge_tables(self, *sizes: int) -> None:
        self.table_bytes = sum(sizes)


@dataclass(frozen=True)
class SoftwareFault:
    """A software-level fault: applied to the state of one computation.

    ``round_`` is 1-based; the fault hits the state *entering* that
    round's S-box layer (matching the hardware campaigns' targeting of
    S-box input lines).  ``computation`` selects the run: 0 = actual,
    1 = redundant (ignored by the unprotected implementation).
    """

    bit: int
    fault_type: FaultType
    round_: int
    computation: int = 0

    def apply(self, state: int) -> int:
        mask = 1 << self.bit
        if self.fault_type in (FaultType.STUCK_AT_0, FaultType.RESET_FLIP):
            return state & ~mask
        if self.fault_type in (FaultType.STUCK_AT_1, FaultType.SET_FLIP):
            return state | mask
        return state ^ mask


class SoftwarePresent:
    """Baseline table-based PRESENT-80 with instrumentation.

    ``table_fault=(index, value)`` corrupts one S-box ROM entry
    *persistently* — the Persistent Fault Attack model (paper §IV-B.5,
    ref [21]): the same corrupted table then serves **both** computations
    of :meth:`encrypt_duplicated` (the shared-ROM implementation PFA
    exploits), so duplication never notices.
    """

    def __init__(
        self, key: int, *, table_fault: tuple[int, int] | None = None
    ) -> None:
        self.reference = Present80(key)
        self.round_keys = self.reference.round_keys
        self.sbox_table = list(PRESENT_SBOX.table)
        if table_fault is not None:
            index, value = table_fault
            self.sbox_table[index] = value
        self.counter = CostCounter()
        self.counter.merge_tables(len(self.sbox_table))

    # -- primitive steps (each ticks the counter) -------------------------

    def _add_key(self, state: int, rk: int) -> int:
        self.counter.xors += 1
        return state ^ rk

    def _sbox_layer(self, state: int, table) -> int:
        out = 0
        for nib in range(16):
            self.counter.table_lookups += 1
            out |= table[(state >> (4 * nib)) & 0xF] << (4 * nib)
        return out

    def _perm(self, state: int) -> int:
        self.counter.permutations += 1
        out = 0
        for i in range(64):
            if (state >> i) & 1:
                out |= 1 << PLAYER[i]
        return out

    # -- encryptions -------------------------------------------------------

    def encrypt(
        self, plaintext: int, *, fault: SoftwareFault | None = None
    ) -> int:
        """One unprotected encryption (optionally faulted)."""
        state = plaintext & _MASK64
        for rnd in range(ROUNDS):
            state = self._add_key(state, self.round_keys[rnd])
            if fault is not None and fault.round_ == rnd + 1:
                state = fault.apply(state)
            state = self._sbox_layer(state, self.sbox_table)
            state = self._perm(state)
        return self._add_key(state, self.round_keys[ROUNDS])

    def encrypt_duplicated(
        self, plaintext: int, *, faults: tuple[SoftwareFault, ...] = ()
    ) -> tuple[int | None, bool]:
        """Naïve duplication: run twice, compare, suppress on mismatch.

        Returns ``(released, detected)`` — released is None when suppressed.
        """
        by_comp = {0: None, 1: None}
        for fault in faults:
            by_comp[fault.computation] = fault
        actual = self.encrypt(plaintext, fault=by_comp[0])
        redundant = self.encrypt(plaintext, fault=by_comp[1])
        self.counter.compares += 1
        if actual != redundant:
            return None, True
        return actual, False


class ProtectedSoftwarePresent(SoftwarePresent):
    """The three-in-one countermeasure as a software routine.

    The merged table has 32 entries: index ``(λ << 4) | x`` returns
    ``S(x)`` for λ = 0 and ``S(x̄)‾`` for λ = 1, so the inner loop is the
    *same code* as the baseline with a different table base offset — which
    is exactly why the paper can claim near-zero software overhead.
    """

    def __init__(
        self, key: int, *, merged_table_fault: tuple[int, int] | None = None
    ) -> None:
        super().__init__(key)
        merged = PRESENT_SBOX.merged_truthtable()
        self.merged_table = list(merged.table)
        if merged_table_fault is not None:
            # A persistent fault in the merged ROM (index 0..31).  The two
            # computations read *different halves* of the table (domains λ
            # and λ̄), so a corrupted entry can only ever poison one of them
            # per invocation — the comparator catches every use.
            index, value = merged_table_fault
            self.merged_table[index] = value
        self.counter.merge_tables(len(self.sbox_table), len(self.merged_table))

    def _encode(self, value: int, lam: int) -> int:
        self.counter.xors += 1
        return value ^ (_MASK64 if lam else 0)

    def _protected_run(
        self, plaintext: int, lam: int, fault: SoftwareFault | None
    ) -> int:
        """One computation in domain ``lam``; returns the *decoded* output."""
        offset = 16 if lam else 0
        table = self.merged_table[offset : offset + 16]
        state = self._encode(plaintext, lam)
        for rnd in range(ROUNDS):
            state = self._add_key(state, self.round_keys[rnd])
            if fault is not None and fault.round_ == rnd + 1:
                state = fault.apply(state)
            state = self._sbox_layer(state, table)
            state = self._perm(state)
        state = self._add_key(state, self.round_keys[ROUNDS])
        return self._encode(state, lam)

    def encrypt_protected(
        self,
        plaintext: int,
        *,
        lam: int | None = None,
        rng=None,
        faults: tuple[SoftwareFault, ...] = (),
    ) -> tuple[int | None, bool]:
        """Algorithm 1 in software: λ for the actual run, λ̄ for the
        redundant run, compare decoded outputs, suppress on mismatch."""
        if lam is None:
            lam = int(make_rng(rng).integers(2))
        by_comp = {0: None, 1: None}
        for fault in faults:
            by_comp[fault.computation] = fault
        actual = self._protected_run(plaintext, lam, by_comp[0])
        redundant = self._protected_run(plaintext, lam ^ 1, by_comp[1])
        self.counter.compares += 1
        if actual != redundant:
            return None, True
        return actual, False
