"""Software (table-based) realisation of the countermeasure.

The paper's §IV-A remark: *"the software performance will be similar to the
underlying cipher in terms of code size (possibly marginally increased) and
the required number of clock periods would be essentially the same"* —
i.e. versus plain duplication, the randomised-duplication scheme is almost
free in software too.

This package provides an instrumented software PRESENT-80 (the kind of
lookup-table implementation an embedded device would run), its naïve
duplicated form, and the three-in-one form with merged 32-entry tables, so
the claim becomes measurable: operation counts (table lookups, XORs,
shifts) and table bytes are tracked per encryption, and software-level
fault injection reproduces the SIFA/identical-fault behaviour of the
hardware campaigns.
"""

from repro.software.present_sw import (
    CostCounter,
    ProtectedSoftwarePresent,
    SoftwareFault,
    SoftwarePresent,
)

__all__ = [
    "CostCounter",
    "ProtectedSoftwarePresent",
    "SoftwareFault",
    "SoftwarePresent",
]
