"""Fault models, injection and campaign running (the VerFI substitute).

The model matches the paper's §IV-A setup: a single fault is injected
anywhere in the design (any net) during any clock cycle/round, the same
fault location and type is used across all simulation runs, the key is
fixed, and the plaintext and λ change every invocation.  Each run is
classified from the attacker's viewpoint as *ineffective* (correct output
released), *detected* (comparator fired / output suppressed) or *effective*
(a faulty output escaped — a countermeasure bypass).
"""

from repro.faults.models import FaultSpec, FaultType, last_round
from repro.faults.injector import FaultInjector
from repro.faults.campaign import RNG_BLOCK, CampaignResult, run_campaign
from repro.faults.checkpoint import CheckpointError, CheckpointStore
from repro.faults.classification import Outcome
from repro.faults.executor import ExecutorConfig, ShardTimeout, run_campaign_sharded

__all__ = [
    "RNG_BLOCK",
    "CampaignResult",
    "CheckpointError",
    "CheckpointStore",
    "ExecutorConfig",
    "FaultInjector",
    "FaultSpec",
    "FaultType",
    "Outcome",
    "ShardTimeout",
    "last_round",
    "run_campaign",
    "run_campaign_sharded",
]
