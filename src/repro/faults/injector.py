"""Turning :class:`FaultSpec` lists into simulator-level transforms.

The simulator calls :meth:`FaultInjector.for_cycle` once per clock cycle
and applies the returned ``{net: transform}`` map while evaluating; each
transform works on the packed ``uint64`` batch vector, so a fault costs one
vector op per targeted net per cycle regardless of batch size.

Per-run probabilistic faults draw a lane mask once at construction: the
same subset of runs is hit at every active cycle, which models a fault
set-up that either locks onto an invocation or misses it entirely.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.faults.models import FaultSpec, FaultType
from repro.rng import make_rng
from repro.utils.bits import pack_bits, words_for

__all__ = ["FaultInjector"]

Transform = Callable[[np.ndarray], np.ndarray]

_ALL_ONES = np.uint64(0xFFFF_FFFF_FFFF_FFFF)


def _make_transform(spec: FaultSpec, mask: np.ndarray | None) -> Transform:
    kind = spec.fault_type
    if mask is None:
        if kind is FaultType.STUCK_AT_0 or kind is FaultType.RESET_FLIP:
            return lambda v: np.zeros_like(v)
        if kind is FaultType.STUCK_AT_1 or kind is FaultType.SET_FLIP:
            return lambda v: np.full_like(v, _ALL_ONES)
        return lambda v: ~v  # BIT_FLIP
    if kind is FaultType.STUCK_AT_0 or kind is FaultType.RESET_FLIP:
        return lambda v: v & ~mask
    if kind is FaultType.STUCK_AT_1 or kind is FaultType.SET_FLIP:
        return lambda v: v | mask
    return lambda v: v ^ mask  # BIT_FLIP


class FaultInjector:
    """A :class:`~repro.netlist.simulator.FaultProvider` over FaultSpecs.

    Note on RESET/SET flips: on a combinational *net* a reset glitch and a
    stuck-at-0 coincide (both force the wire low while active); the two
    spellings exist because the SIFA literature describes the bias as a
    directional flip.  Both classify as biased faults.
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        batch: int,
        *,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.specs = list(specs)
        self.batch = batch
        n_words = words_for(batch)
        rng = make_rng(rng)

        self._always: dict[int, Transform] = {}
        self._windowed: dict[int, dict[int, Transform]] = {}
        # Specs sharing a coupling group model ONE physical event touching
        # several nets, so they must hit the same runs: the lane mask is
        # drawn once per group (at the group's first occurrence in spec
        # order, keeping the stream deterministic) and reused.
        group_masks: dict[str, np.ndarray] = {}
        for spec in self.specs:
            if spec.probability < 1.0:
                if spec.group and spec.group in group_masks:
                    mask = group_masks[spec.group]
                else:
                    lanes = (rng.random(batch) < spec.probability).astype(np.uint8)
                    mask = pack_bits(lanes[:, None]).reshape(n_words)
                    if spec.group:
                        group_masks[spec.group] = mask
            else:
                mask = None
            transform = _make_transform(spec, mask)
            if spec.cycles is None:
                self._merge(self._always, spec.net, transform)
            else:
                for cycle in spec.cycles:
                    self._merge(
                        self._windowed.setdefault(cycle, {}), spec.net, transform
                    )

    @staticmethod
    def _merge(table: dict[int, Transform], net: int, transform: Transform) -> None:
        existing = table.get(net)
        if existing is None:
            table[net] = transform
        else:
            # Two faults on one net compose in spec order.
            table[net] = lambda v, _a=existing, _b=transform: _b(_a(v))

    def for_cycle(self, cycle: int) -> dict[int, Transform]:
        """Transforms active during ``cycle`` (simulator hook)."""
        windowed = self._windowed.get(cycle)
        if windowed is None:
            return self._always
        if not self._always:
            return windowed
        merged = dict(self._always)
        for net, transform in windowed.items():
            self._merge(merged, net, transform)
        return merged
