"""Outcome classification and campaign statistics.

The attacker-view outcome of one faulted run, judged from what leaves the
chip (the released word and whether anything was released at all):

- ``INEFFECTIVE`` — the correct ciphertext was released: the fault did not
  change the computation (or was corrected).  These runs are SIFA's raw
  material.
- ``DETECTED`` — the comparator fired: the output was suppressed/replaced.
  These runs leak at most "a fault happened" (FTA's raw material).
- ``EFFECTIVE`` — a *wrong* ciphertext was released without the comparator
  firing: the countermeasure was bypassed.  These runs are DFA's raw
  material and should never occur for a sound scheme under its fault model.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["Outcome", "classify"]


class Outcome(enum.IntEnum):
    """Attacker-view classification of one faulted run."""

    INEFFECTIVE = 0
    DETECTED = 1
    EFFECTIVE = 2
    #: infective recovery fired: a wrong word was released, but it is the
    #: correct word XOR a fresh random mask — carries no DFA information
    INFECTED = 3


def classify(
    released: np.ndarray,
    fault_flags: np.ndarray,
    expected: np.ndarray,
    *,
    flag_observable: bool = True,
    infective: bool = False,
) -> np.ndarray:
    """Vector-classify a batch.

    Parameters are ``(batch, block)`` bit matrices for ``released`` and
    ``expected`` and a ``(batch,)`` 0/1 vector for the comparator flag.
    Returns a ``(batch,)`` array of :class:`Outcome` values.

    ``flag_observable`` says whether the flag manifests externally.  For
    detect-and-suppress schemes it does (the attacker sees the output get
    replaced), so a flagged run is DETECTED even if the replacement happens
    to equal the expected word.  For error-*correcting* schemes
    (triplication) the flag is internal: the attacker only sees the
    corrected output, so a corrected run classifies as INEFFECTIVE — which
    is precisely why correction defeats SIFA's effect filter.
    """
    if released.shape != expected.shape:
        raise ValueError(
            f"released {released.shape} vs expected {expected.shape} mismatch"
        )
    correct = (released == expected).all(axis=1)
    out = np.full(len(released), Outcome.EFFECTIVE, dtype=np.int8)
    out[correct] = Outcome.INEFFECTIVE
    if infective:
        out[fault_flags.astype(bool) & ~correct] = Outcome.INFECTED
    elif flag_observable:
        out[fault_flags.astype(bool)] = Outcome.DETECTED
    return out
