"""Fault campaign runner — the experiment loop of the paper's §IV-A.

One campaign = one design × one fault scenario × N randomised invocations:
the key is fixed, the plaintext (and λ, for randomised schemes) is fresh
per run, the fault location/type is fixed across runs.  Per run the
campaign records the released word and the outcome classification; the
ground truth comes from a fault-free twin simulation on the same
plaintexts.

Everything is vectorised: 80,000 runs of a ~5,000-gate protected design
finish in a few seconds.

Determinism contract
--------------------

Randomness is keyed per fixed-size *RNG block* of :data:`RNG_BLOCK`
consecutive runs: block ``b`` (runs ``[b * RNG_BLOCK, (b+1) * RNG_BLOCK)``)
draws everything — plaintexts, garbage words, λ schedules, probabilistic
injector masks — from the substream ``derive_rng(seed, b)``.  A campaign's
arrays therefore depend only on ``(design, specs, key, seed, n_runs)``;
they are bit-identical regardless of ``chunk`` size, worker count, shard
size, or crash/resume history.  The sharded executor
(:mod:`repro.faults.executor`) relies on this to merge checkpointed shards
into exactly the single-shot result.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.countermeasures.base import ProtectedDesign
from repro.faults.classification import Outcome, classify
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSpec
from repro.rng import BlockedRng, derive_rng, random_bits
from repro.telemetry import trace
from repro.utils.bits import bits_to_ints

__all__ = ["RNG_BLOCK", "CampaignResult", "run_campaign"]

#: Runs per RNG substream — the granularity of the determinism contract.
#: Chunk and shard boundaries are aligned to multiples of this.
RNG_BLOCK = 1024


def range_rng(seed: int, lo: int, hi: int) -> BlockedRng:
    """The composite generator covering runs ``[lo, hi)``.

    ``lo`` must sit on an RNG-block boundary; the final block may be
    partial (when ``hi`` is the campaign's ``n_runs``).
    """
    if lo % RNG_BLOCK:
        raise ValueError(f"range start {lo} is not a multiple of {RNG_BLOCK}")
    if not lo < hi:
        raise ValueError(f"empty run range [{lo}, {hi})")
    parts = []
    start = lo
    while start < hi:
        size = min(RNG_BLOCK, hi - start)
        parts.append((size, derive_rng(seed, start // RNG_BLOCK)))
        start += size
    return BlockedRng(parts)


def run_range(
    design: ProtectedDesign,
    specs: Sequence[FaultSpec],
    *,
    key: int,
    seed: int,
    lo: int,
    hi: int,
    chunk: int = 1 << 15,
    backend: str | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Simulate runs ``[lo, hi)`` of the campaign keyed by ``seed``.

    Returns ``(plaintext_bits, released_bits, expected_bits, fault_flags)``
    for exactly those runs.  This is the shared kernel of the single-shot
    path and every executor shard; per-block RNG keying makes the output
    independent of how the range is batched (``chunk`` is rounded down to a
    whole number of RNG blocks and only bounds simulator memory).
    ``backend`` selects the simulation kernel; like ``chunk`` it never
    affects the bits (the backends are bit-exact by contract), only speed.
    """
    block = design.spec.block_bits
    chunk = max(RNG_BLOCK, chunk - chunk % RNG_BLOCK)

    span = trace.span(
        "campaign.run_range", scheme=design.scheme, lo=lo, hi=hi
    )
    pt_parts: list[np.ndarray] = []
    rel_parts: list[np.ndarray] = []
    exp_parts: list[np.ndarray] = []
    flag_parts: list[np.ndarray] = []

    with span:
        start = lo
        while start < hi:
            stop = min(start + chunk, hi)
            batch = stop - start
            rng = range_rng(seed, start, stop)
            pts_bits = random_bits(rng, batch, block)
            pts = bits_to_ints(pts_bits)

            clean_sim = design.simulator(batch, backend=backend)
            clean = design.run(clean_sim, pts, key, rng=rng)

            injector = FaultInjector(specs, batch, rng=rng)
            fault_sim = design.simulator(batch, faults=injector, backend=backend)
            faulted = design.run(fault_sim, pts, key, rng=rng)

            pt_parts.append(pts_bits)
            rel_parts.append(faulted["ciphertext"])
            exp_parts.append(clean["ciphertext"])
            flag_parts.append(faulted["fault"])
            start = stop

    return (
        np.concatenate(pt_parts),
        np.concatenate(rel_parts),
        np.concatenate(exp_parts),
        np.concatenate(flag_parts),
    )


@dataclass
class CampaignResult:
    """Everything observed during one campaign, in attacker-usable form."""

    scheme: str
    key: int
    specs: list[FaultSpec]
    plaintext_bits: np.ndarray  # (runs, block) 0/1
    released_bits: np.ndarray  # (runs, block) 0/1 — what left the chip
    expected_bits: np.ndarray  # (runs, block) 0/1 — fault-free ciphertexts
    fault_flags: np.ndarray  # (runs,) 0/1
    outcomes: np.ndarray  # (runs,) Outcome values
    extra: dict = field(default_factory=dict)

    @property
    def n_runs(self) -> int:
        return len(self.outcomes)

    @property
    def partial(self) -> bool:
        """True when some executor shards failed and were dropped."""
        return bool(self.extra.get("partial"))

    def count(self, outcome: Outcome) -> int:
        """Number of runs with the given classification."""
        return int((self.outcomes == outcome).sum())

    def counts(self) -> dict[str, int]:
        """Histogram over all outcome classes."""
        return {o.name.lower(): self.count(o) for o in Outcome}

    def rate(self, outcome: Outcome) -> float:
        """Fraction of runs with the given classification."""
        return self.count(outcome) / self.n_runs if self.n_runs else 0.0

    def select(self, outcome: Outcome) -> np.ndarray:
        """Run indices with the given classification."""
        return np.flatnonzero(self.outcomes == outcome)

    def released_ints(self, indices: np.ndarray | None = None) -> list[int]:
        """Released words as integers (for spec-level attack code)."""
        bits = self.released_bits
        if indices is not None:
            bits = bits[indices]
        return bits_to_ints(bits)

    def plaintext_ints(self, indices: np.ndarray | None = None) -> list[int]:
        """Plaintexts as integers."""
        bits = self.plaintext_bits
        if indices is not None:
            bits = bits[indices]
        return bits_to_ints(bits)

    def nibble(self, bits: np.ndarray, index: int, width: int = 4) -> np.ndarray:
        """Extract a ``width``-bit slice value from a bit matrix, per run."""
        cols = bits[:, width * index : width * (index + 1)].astype(np.int64)
        weights = 1 << np.arange(width, dtype=np.int64)
        return cols @ weights

    # ---------------------------------------------------------- persistence

    def save(self, path) -> None:
        """Persist the campaign to a compressed ``.npz`` archive.

        Large campaigns take a while to run; saving lets attack analyses be
        re-run offline.  Fault specs are stored as JSON documents
        (:meth:`FaultSpec.to_dict`) and reconstructed on load.
        """
        np.savez_compressed(
            path,
            scheme=np.array(self.scheme),
            key=np.array(str(self.key)),
            specs=np.array(
                [json.dumps(s.to_dict(), sort_keys=True) for s in self.specs]
            ),
            plaintext_bits=self.plaintext_bits,
            released_bits=self.released_bits,
            expected_bits=self.expected_bits,
            fault_flags=self.fault_flags,
            outcomes=self.outcomes,
        )

    @classmethod
    def load(cls, path) -> "CampaignResult":
        """Load a campaign persisted by :meth:`save`.

        Specs round-trip into real :class:`FaultSpec` objects.  Archives
        written by older versions stored ``repr`` strings instead; those
        are kept verbatim under ``extra["loaded_specs"]``.
        """
        data = np.load(path, allow_pickle=False)
        specs: list[FaultSpec] = []
        legacy: list[str] = []
        for text in data["specs"].tolist():
            try:
                specs.append(FaultSpec.from_dict(json.loads(str(text))))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                legacy.append(str(text))
        extra: dict = {"loaded_specs": legacy} if legacy else {}
        return cls(
            scheme=str(data["scheme"]),
            key=int(str(data["key"])),
            specs=specs,
            plaintext_bits=data["plaintext_bits"],
            released_bits=data["released_bits"],
            expected_bits=data["expected_bits"],
            fault_flags=data["fault_flags"],
            outcomes=data["outcomes"],
            extra=extra,
        )


def run_campaign(
    design: ProtectedDesign,
    specs: Sequence[FaultSpec],
    *,
    n_runs: int = 80_000,
    key: int,
    seed: int = 1,
    chunk: int = 1 << 15,
    flag_observable: bool | None = None,
    jobs: int | None = None,
    shard_runs: int | None = None,
    checkpoint_dir=None,
    resume: bool = False,
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.5,
    backend: str | None = None,
) -> CampaignResult:
    """Execute a fault campaign against ``design``.

    The paper's Fig. 4 / Fig. 5 data points are campaigns with
    ``n_runs=80_000`` over PRESENT-80 designs; smaller ``n_runs`` give the
    same shapes faster.  ``flag_observable`` defaults by scheme: internal
    (non-observable) for error-correcting triplication, observable for the
    detect-and-suppress schemes.

    **Determinism contract:** the result arrays depend only on
    ``(design, specs, key, seed, n_runs)``.  All randomness is drawn from
    per-block substreams keyed by ``(seed, run_index // RNG_BLOCK)``, so
    ``chunk``, ``jobs``, ``shard_runs``, ``backend`` and crash/resume
    history affect only memory and wall-clock, never the bits (simulator
    backends are bit-exact against each other; checkpoints are therefore
    backend-agnostic).

    When any of ``jobs > 1``, ``shard_runs``, ``checkpoint_dir`` or
    ``resume`` is given the campaign is delegated to the resilient sharded
    executor (:func:`repro.faults.executor.run_campaign_sharded`): the run
    is split into checkpointable shards executed by a supervised worker
    pool with per-shard ``timeout``/``retries``/``backoff``, and a
    checkpointed campaign can be resumed mid-flight with ``resume=True``.
    Shards that exhaust their retries are dropped and the result is marked
    ``partial`` (see ``CampaignResult.partial``).
    """
    from repro.countermeasures.base import RecoveryPolicy

    if flag_observable is None:
        flag_observable = design.scheme != "triplication"
    infective = design.policy is RecoveryPolicy.INFECTIVE

    if jobs not in (None, 0, 1) or shard_runs or checkpoint_dir or resume:
        from repro.faults.executor import ExecutorConfig, run_campaign_sharded

        config = ExecutorConfig(
            jobs=jobs or 1,
            shard_runs=shard_runs or ExecutorConfig.shard_runs,
            chunk=chunk,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
        )
        return run_campaign_sharded(
            design,
            specs,
            n_runs=n_runs,
            key=key,
            seed=seed,
            flag_observable=flag_observable,
            config=config,
            backend=backend,
        )

    block = design.spec.block_bits
    with trace.span(
        "campaign.run", scheme=design.scheme, n_runs=n_runs, seed=seed
    ):
        if n_runs <= 0:
            empty_word = np.zeros((0, block), dtype=np.uint8)
            empty_flag = np.zeros(0, dtype=np.uint8)
            pt, rel, exp, flags = empty_word, empty_word, empty_word, empty_flag
        else:
            pt, rel, exp, flags = run_range(
                design,
                specs,
                key=key,
                seed=seed,
                lo=0,
                hi=n_runs,
                chunk=chunk,
                backend=backend,
            )
        outcomes = classify(
            rel, flags, exp, flag_observable=flag_observable, infective=infective
        )
    return CampaignResult(
        scheme=design.scheme,
        key=key,
        specs=list(specs),
        plaintext_bits=pt,
        released_bits=rel,
        expected_bits=exp,
        fault_flags=flags,
        outcomes=outcomes,
        extra={"variant": design.variant, "n_runs": n_runs},
    )
