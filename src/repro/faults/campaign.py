"""Fault campaign runner — the experiment loop of the paper's §IV-A.

One campaign = one design × one fault scenario × N randomised invocations:
the key is fixed, the plaintext (and λ, for randomised schemes) is fresh
per run, the fault location/type is fixed across runs.  Per run the
campaign records the released word and the outcome classification; the
ground truth comes from a fault-free twin simulation on the same
plaintexts.

Everything is vectorised: 80,000 runs of a ~5,000-gate protected design
finish in a few seconds.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.countermeasures.base import ProtectedDesign
from repro.faults.classification import Outcome, classify
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSpec
from repro.rng import make_rng, random_bits

__all__ = ["CampaignResult", "run_campaign"]


@dataclass
class CampaignResult:
    """Everything observed during one campaign, in attacker-usable form."""

    scheme: str
    key: int
    specs: list[FaultSpec]
    plaintext_bits: np.ndarray  # (runs, block) 0/1
    released_bits: np.ndarray  # (runs, block) 0/1 — what left the chip
    expected_bits: np.ndarray  # (runs, block) 0/1 — fault-free ciphertexts
    fault_flags: np.ndarray  # (runs,) 0/1
    outcomes: np.ndarray  # (runs,) Outcome values
    extra: dict = field(default_factory=dict)

    @property
    def n_runs(self) -> int:
        return len(self.outcomes)

    def count(self, outcome: Outcome) -> int:
        """Number of runs with the given classification."""
        return int((self.outcomes == outcome).sum())

    def counts(self) -> dict[str, int]:
        """Histogram over all outcome classes."""
        return {o.name.lower(): self.count(o) for o in Outcome}

    def rate(self, outcome: Outcome) -> float:
        """Fraction of runs with the given classification."""
        return self.count(outcome) / self.n_runs if self.n_runs else 0.0

    def select(self, outcome: Outcome) -> np.ndarray:
        """Run indices with the given classification."""
        return np.flatnonzero(self.outcomes == outcome)

    def released_ints(self, indices: np.ndarray | None = None) -> list[int]:
        """Released words as integers (for spec-level attack code)."""
        bits = self.released_bits
        if indices is not None:
            bits = bits[indices]
        weights = 1 << np.arange(bits.shape[1], dtype=object)
        return [int(sum(int(b) * int(w) for b, w in zip(row, weights))) for row in bits]

    def plaintext_ints(self, indices: np.ndarray | None = None) -> list[int]:
        """Plaintexts as integers."""
        bits = self.plaintext_bits
        if indices is not None:
            bits = bits[indices]
        return [
            int(sum(int(b) << i for i, b in enumerate(row))) for row in bits
        ]

    def nibble(self, bits: np.ndarray, index: int, width: int = 4) -> np.ndarray:
        """Extract a ``width``-bit slice value from a bit matrix, per run."""
        cols = bits[:, width * index : width * (index + 1)].astype(np.int64)
        weights = 1 << np.arange(width, dtype=np.int64)
        return cols @ weights

    # ---------------------------------------------------------- persistence

    def save(self, path) -> None:
        """Persist the campaign to a compressed ``.npz`` archive.

        Large campaigns take a while to run; saving lets attack analyses be
        re-run offline (fault specs are stored as text metadata and are not
        reconstructed on load).
        """
        np.savez_compressed(
            path,
            scheme=np.array(self.scheme),
            key=np.array(str(self.key)),
            specs=np.array([repr(s) for s in self.specs]),
            plaintext_bits=self.plaintext_bits,
            released_bits=self.released_bits,
            expected_bits=self.expected_bits,
            fault_flags=self.fault_flags,
            outcomes=self.outcomes,
        )

    @classmethod
    def load(cls, path) -> "CampaignResult":
        """Load a campaign persisted by :meth:`save`."""
        data = np.load(path, allow_pickle=False)
        return cls(
            scheme=str(data["scheme"]),
            key=int(str(data["key"])),
            specs=[],
            plaintext_bits=data["plaintext_bits"],
            released_bits=data["released_bits"],
            expected_bits=data["expected_bits"],
            fault_flags=data["fault_flags"],
            outcomes=data["outcomes"],
            extra={"loaded_specs": [str(s) for s in data["specs"]]},
        )


def run_campaign(
    design: ProtectedDesign,
    specs: Sequence[FaultSpec],
    *,
    n_runs: int = 80_000,
    key: int,
    seed: int = 1,
    chunk: int = 1 << 15,
    flag_observable: bool | None = None,
) -> CampaignResult:
    """Execute a fault campaign against ``design``.

    The paper's Fig. 4 / Fig. 5 data points are campaigns with
    ``n_runs=80_000`` over PRESENT-80 designs; smaller ``n_runs`` give the
    same shapes faster.  ``flag_observable`` defaults by scheme: internal
    (non-observable) for error-correcting triplication, observable for the
    detect-and-suppress schemes.
    """
    from repro.countermeasures.base import RecoveryPolicy

    if flag_observable is None:
        flag_observable = design.scheme != "triplication"
    infective = design.policy is RecoveryPolicy.INFECTIVE
    rng = make_rng(seed)
    block = design.spec.block_bits

    pt_parts: list[np.ndarray] = []
    rel_parts: list[np.ndarray] = []
    exp_parts: list[np.ndarray] = []
    flag_parts: list[np.ndarray] = []

    remaining = n_runs
    while remaining > 0:
        batch = min(remaining, chunk)
        remaining -= batch
        pts_bits = random_bits(rng, batch, block)
        pts = [int(sum(int(b) << i for i, b in enumerate(row))) for row in pts_bits]

        clean_sim = design.simulator(batch)
        clean = design.run(clean_sim, pts, key, rng=rng)

        injector = FaultInjector(specs, batch, rng=rng)
        fault_sim = design.simulator(batch, faults=injector)
        faulted = design.run(fault_sim, pts, key, rng=rng)

        pt_parts.append(pts_bits)
        rel_parts.append(faulted["ciphertext"])
        exp_parts.append(clean["ciphertext"])
        flag_parts.append(faulted["fault"])

    plaintext_bits = np.concatenate(pt_parts)
    released_bits = np.concatenate(rel_parts)
    expected_bits = np.concatenate(exp_parts)
    fault_flags = np.concatenate(flag_parts)
    outcomes = classify(
        released_bits,
        fault_flags,
        expected_bits,
        flag_observable=flag_observable,
        infective=infective,
    )
    return CampaignResult(
        scheme=design.scheme,
        key=key,
        specs=list(specs),
        plaintext_bits=plaintext_bits,
        released_bits=released_bits,
        expected_bits=expected_bits,
        fault_flags=fault_flags,
        outcomes=outcomes,
        extra={"variant": design.variant, "n_runs": n_runs},
    )
