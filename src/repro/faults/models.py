"""Fault types and fault specifications.

A :class:`FaultSpec` is a *location* (one net), a *type* (how the value is
corrupted), a *time window* (which clock cycles), and optionally a
*probability* (for imperfect injections — drawn once per run, i.e. the same
runs are affected at every targeted cycle, modelling a per-invocation
hit-or-miss of the injection equipment).

The paper's experiments use single stuck-at faults in the last round; the
campaign API accepts any list of specs, so multi-fault scenarios (the
identical-mask DFA needs one fault per core) are just two entries.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.ciphers.spn import SpnCore

__all__ = ["FaultType", "FaultSpec", "last_round", "sbox_input_net", "sbox_output_net"]


class FaultType(enum.Enum):
    """How the targeted net's value is corrupted while the fault is active."""

    STUCK_AT_0 = "stuck_at_0"
    STUCK_AT_1 = "stuck_at_1"
    BIT_FLIP = "bit_flip"
    #: biased flip: 1→0 only (a reset glitch); equals STUCK_AT_0 on wires
    #: but is the canonical SIFA "biased fault" phrasing
    RESET_FLIP = "reset_flip"
    #: biased flip: 0→1 only (a set glitch)
    SET_FLIP = "set_flip"

    @property
    def is_biased(self) -> bool:
        """True when ineffectiveness depends on the data (SIFA-exploitable)."""
        return self is not FaultType.BIT_FLIP

    def to_dict(self) -> str:
        """JSON-safe form (the enum's stable string value)."""
        return self.value

    @classmethod
    def from_dict(cls, data: str) -> "FaultType":
        """Inverse of :meth:`to_dict`; accepts the value or the member name."""
        try:
            return cls(data)
        except ValueError:
            return cls[str(data).upper()]


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: location × type × time × reliability."""

    net: int
    fault_type: FaultType
    #: clock cycles during which the fault is active; None = every cycle
    #: (a permanent/stuck fault for the whole run)
    cycles: frozenset[int] | None = None
    #: per-run probability that this injection lands (1.0 = always)
    probability: float = 1.0
    #: free-form label carried into reports
    label: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0,1]: {self.probability}")

    def to_dict(self) -> dict:
        """JSON-safe dict; round-trips exactly through :meth:`from_dict`.

        Used by campaign persistence and the executor's checkpoint
        manifests, so loaded campaigns carry *real* specs, not reprs.
        """
        return {
            "net": self.net,
            "fault_type": self.fault_type.to_dict(),
            "cycles": sorted(self.cycles) if self.cycles is not None else None,
            "probability": self.probability,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Reconstruct a spec serialised by :meth:`to_dict`."""
        cycles = data.get("cycles")
        return cls(
            net=int(data["net"]),
            fault_type=FaultType.from_dict(data["fault_type"]),
            cycles=None if cycles is None else frozenset(int(c) for c in cycles),
            probability=float(data.get("probability", 1.0)),
            label=str(data.get("label", "")),
        )

    @staticmethod
    def at(
        net: int,
        fault_type: FaultType,
        cycles: Iterable[int] | int | None,
        *,
        probability: float = 1.0,
        label: str = "",
    ) -> "FaultSpec":
        """Convenience constructor accepting a single cycle or an iterable."""
        if cycles is None:
            window = None
        elif isinstance(cycles, int):
            window = frozenset((cycles,))
        else:
            window = frozenset(cycles)
        return FaultSpec(net, fault_type, window, probability=probability, label=label)


def last_round(core: SpnCore) -> int:
    """The clock cycle index of the final round (paper: 'last round attack')."""
    return core.spec.rounds - 1


def sbox_input_net(core: SpnCore, sbox: int, bit: int) -> int:
    """The net feeding input line ``bit`` (LSB = 0) of S-box ``sbox``.

    ``sbox_input_net(core, 13, 2)`` is "the second MSB input of S-box 13"
    for a 4-bit S-box — the Fig. 4 target.
    """
    return core.sbox_inputs[sbox][bit]


def sbox_output_net(core: SpnCore, sbox: int, bit: int) -> int:
    """The net driven by output line ``bit`` of S-box ``sbox``."""
    return core.sbox_outputs[sbox][bit]
