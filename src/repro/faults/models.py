"""Fault types and fault specifications.

A :class:`FaultSpec` is a *location* (one net), a *type* (how the value is
corrupted), a *time window* (which clock cycles), and optionally a
*probability* (for imperfect injections — drawn once per run, i.e. the same
runs are affected at every targeted cycle, modelling a per-invocation
hit-or-miss of the injection equipment).

The paper's experiments use single stuck-at faults in the last round; the
campaign API accepts any list of specs, so multi-fault scenarios (the
identical-mask DFA needs one fault per core) are just two entries.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.ciphers.spn import SpnCore

__all__ = [
    "FaultType",
    "FaultSpec",
    "FaultScenario",
    "coupled_fault",
    "identical_mask_fault",
    "last_round",
    "layer_glitch_fault",
    "sbox_input_net",
    "sbox_output_net",
    "single_fault",
]


class FaultType(enum.Enum):
    """How the targeted net's value is corrupted while the fault is active."""

    STUCK_AT_0 = "stuck_at_0"
    STUCK_AT_1 = "stuck_at_1"
    BIT_FLIP = "bit_flip"
    #: biased flip: 1→0 only (a reset glitch); equals STUCK_AT_0 on wires
    #: but is the canonical SIFA "biased fault" phrasing
    RESET_FLIP = "reset_flip"
    #: biased flip: 0→1 only (a set glitch)
    SET_FLIP = "set_flip"

    @property
    def is_biased(self) -> bool:
        """True when ineffectiveness depends on the data (SIFA-exploitable)."""
        return self is not FaultType.BIT_FLIP

    def to_dict(self) -> str:
        """JSON-safe form (the enum's stable string value)."""
        return self.value

    @classmethod
    def from_dict(cls, data: str) -> "FaultType":
        """Inverse of :meth:`to_dict`; accepts the value or the member name."""
        try:
            return cls(data)
        except ValueError:
            return cls[str(data).upper()]


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: location × type × time × reliability."""

    net: int
    fault_type: FaultType
    #: clock cycles during which the fault is active; None = every cycle
    #: (a permanent/stuck fault for the whole run)
    cycles: frozenset[int] | None = None
    #: per-run probability that this injection lands (1.0 = always)
    probability: float = 1.0
    #: free-form label carried into reports
    label: str = ""
    #: coupling group: probabilistic specs sharing a non-empty group hit the
    #: *same* subset of runs (one physical event touching several nets — the
    #: identical-mask and coupled models need this)
    group: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0,1]: {self.probability}")

    def to_dict(self) -> dict:
        """JSON-safe dict; round-trips exactly through :meth:`from_dict`.

        Used by campaign persistence and the executor's checkpoint
        manifests, so loaded campaigns carry *real* specs, not reprs.
        """
        data = {
            "net": self.net,
            "fault_type": self.fault_type.to_dict(),
            "cycles": sorted(self.cycles) if self.cycles is not None else None,
            "probability": self.probability,
            "label": self.label,
        }
        if self.group:  # omitted when empty so pre-existing manifests match
            data["group"] = self.group
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Reconstruct a spec serialised by :meth:`to_dict`."""
        cycles = data.get("cycles")
        return cls(
            net=int(data["net"]),
            fault_type=FaultType.from_dict(data["fault_type"]),
            cycles=None if cycles is None else frozenset(int(c) for c in cycles),
            probability=float(data.get("probability", 1.0)),
            label=str(data.get("label", "")),
            group=str(data.get("group", "")),
        )

    @staticmethod
    def at(
        net: int,
        fault_type: FaultType,
        cycles: Iterable[int] | int | None,
        *,
        probability: float = 1.0,
        label: str = "",
        group: str = "",
    ) -> "FaultSpec":
        """Convenience constructor accepting a single cycle or an iterable."""
        if cycles is None:
            window = None
        elif isinstance(cycles, int):
            window = frozenset((cycles,))
        else:
            window = frozenset(cycles)
        return FaultSpec(
            net,
            fault_type,
            window,
            probability=probability,
            label=label,
            group=group,
        )


@dataclass(frozen=True)
class FaultScenario:
    """One *attack instance*: a named, replayable bundle of FaultSpecs.

    The coverage certifier enumerates scenarios, not bare specs, because the
    adversarial models beyond the paper's baseline hit several nets at once:
    an identical-mask fault lands on corresponding nets of every core, a
    clock glitch wipes a whole layer, a coupled fault bleeds into physical
    neighbours.  ``model`` names which sweep family produced the scenario so
    certificates can histogram per model.
    """

    #: sweep family: "single" | "identical_mask" | "layer_glitch" | "coupled"
    model: str
    specs: tuple[FaultSpec, ...]
    label: str = ""

    def __post_init__(self) -> None:
        if not self.specs:
            raise ValueError("a FaultScenario needs at least one FaultSpec")

    def to_dict(self) -> dict:
        """JSON-safe dict embedding full spec dicts (certificate witnesses)."""
        return {
            "model": self.model,
            "label": self.label,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultScenario":
        return cls(
            model=str(data["model"]),
            specs=tuple(FaultSpec.from_dict(s) for s in data["specs"]),
            label=str(data.get("label", "")),
        )


def single_fault(
    net: int,
    fault_type: FaultType,
    cycles: Iterable[int] | int | None,
    *,
    probability: float = 1.0,
    label: str = "",
) -> FaultScenario:
    """The paper's baseline model: one net, one corruption."""
    return FaultScenario(
        "single",
        (FaultSpec.at(net, fault_type, cycles, probability=probability, label=label),),
        label=label or f"single:{fault_type.value}@{net}",
    )


def identical_mask_fault(
    nets: Sequence[int],
    fault_type: FaultType,
    cycles: Iterable[int] | int | None,
    *,
    probability: float = 1.0,
    label: str = "",
) -> FaultScenario:
    """Selmke FDTC'16 generalised: one event hits corresponding nets of
    *every* core with the identical corruption.

    ``nets`` lists the same logical wire in each redundant core (e.g. bit 2
    of S-box 13's input, in core 0 and core 1).  All specs share one
    coupling group, so under ``probability < 1`` the event hits the same
    runs in every core — a miss misses everywhere, exactly like a single
    laser spot covering both placements.  This is the model that breaks
    naive duplication (both cores wrong in the same way → comparator
    blind) and that the complementary λ-encoding is designed to survive.
    """
    if len(nets) < 2:
        raise ValueError("identical-mask fault needs one net per core (>= 2)")
    label = label or f"idmask:{fault_type.value}@{'/'.join(map(str, nets))}"
    return FaultScenario(
        "identical_mask",
        tuple(
            FaultSpec.at(
                net,
                fault_type,
                cycles,
                probability=probability,
                label=label,
                group=label,
            )
            for net in nets
        ),
        label=label,
    )


def layer_glitch_fault(
    nets: Sequence[int],
    cycle: int,
    *,
    fault_type: FaultType = FaultType.BIT_FLIP,
    label: str = "",
) -> FaultScenario:
    """Whole-layer clock glitch: every net of one layer corrupted in one cycle.

    Models a shortened clock period — an entire combinational stage (all
    S-box inputs of one core, say) latches garbage simultaneously.  The
    default BIT_FLIP is the harshest deterministic choice; biased variants
    model a glitch that only prevents rising transitions.
    """
    if not nets:
        raise ValueError("layer glitch needs a non-empty layer")
    label = label or f"glitch:{fault_type.value}@layer[{min(nets)}..{max(nets)}]"
    return FaultScenario(
        "layer_glitch",
        tuple(
            FaultSpec.at(net, fault_type, cycle, label=label) for net in nets
        ),
        label=label,
    )


def coupled_fault(
    nets: Sequence[int],
    fault_type: FaultType,
    cycles: Iterable[int] | int | None,
    *,
    probability: float = 1.0,
    label: str = "",
) -> FaultScenario:
    """Multi-net coupled fault: one event bleeds into physical neighbours.

    Unlike the identical-mask model the nets live in the *same* core
    (adjacent wires under one laser spot / EM probe).  Sharing a coupling
    group keeps the per-run hit pattern common to all nets.
    """
    if len(nets) < 2:
        raise ValueError("coupled fault needs >= 2 nets (use single_fault)")
    label = label or f"coupled:{fault_type.value}@{'/'.join(map(str, nets))}"
    return FaultScenario(
        "coupled",
        tuple(
            FaultSpec.at(
                net,
                fault_type,
                cycles,
                probability=probability,
                label=label,
                group=label,
            )
            for net in nets
        ),
        label=label,
    )


def last_round(core: SpnCore) -> int:
    """The clock cycle index of the final round (paper: 'last round attack')."""
    return core.spec.rounds - 1


def sbox_input_net(core: SpnCore, sbox: int, bit: int) -> int:
    """The net feeding input line ``bit`` (LSB = 0) of S-box ``sbox``.

    ``sbox_input_net(core, 13, 2)`` is "the second MSB input of S-box 13"
    for a 4-bit S-box — the Fig. 4 target.
    """
    return core.sbox_inputs[sbox][bit]


def sbox_output_net(core: SpnCore, sbox: int, bit: int) -> int:
    """The net driven by output line ``bit`` of S-box ``sbox``."""
    return core.sbox_outputs[sbox][bit]
