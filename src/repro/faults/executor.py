"""Resilient sharded execution of fault campaigns (and other sweeps).

:func:`repro.faults.campaign.run_campaign` is a fine single-shot loop, but
the paper-scale campaigns (80,000 runs × several designs × several specs)
are exactly the workloads that die to an OOM kill, a ^C, or a flaky node —
losing everything.  This module decomposes a workload into deterministic
*shards* (contiguous index ranges) and executes them through a supervised
worker pool:

- **Determinism** — every shard draws its randomness from per-block
  substreams keyed by ``(campaign_seed, block_index)`` (see
  :func:`repro.faults.campaign.run_range`), so the merged result is
  bit-identical to a single-shot run regardless of shard size, worker
  count, or how many times the campaign was interrupted and resumed.
- **Checkpointing** — with a ``checkpoint_dir``, each finished shard is
  persisted atomically as an ``.npz`` plus a JSON manifest entry
  (:mod:`repro.faults.checkpoint`); ``resume=True`` skips shards whose
  checkpoint verifies against its digest and recomputes the rest.  A
  manifest that fails its own checksum is *recovered from* (fresh ledger,
  full recompute), never a crash.
- **Supervision** — shards get a wall-clock ``timeout`` (enforced with
  ``SIGALRM`` inside the worker where available; degrading to untimed
  execution with a one-time warning elsewhere), a supervisor-side
  heartbeat declares hung workers dead past ``hang_deadline`` and
  restarts the pool, transient failures are retried with jittered
  exponential backoff, and a broken process pool is rebuilt and the lost
  shards resubmitted.
- **Quarantine, not abort** — a shard that exhausts its retries is
  *quarantined*: recorded in the manifest with its typed
  :class:`~repro.resilience.errors.ErrorKind`, attempt count and last
  error, and dropped from the merge.  The campaign completes with the
  surviving shards and ``result.partial`` set, instead of dying at 99%.
- **Graceful degradation** — an optional global ``wall_budget`` stops
  scheduling new shards once spent; what ran is merged, what did not
  stays ``pending`` in the manifest, and the run is flagged
  ``budget_exhausted`` so callers (the certifier) can emit explicitly
  degraded artefacts.
- **Chaos-tested** — the execution sites are instrumented with
  :data:`repro.resilience.chaos.chaos` hooks (worker crash/raise/hang,
  checkpoint corruption, duplicated results); ``tests/test_chaos.py``
  holds this module to the paper's own standard.

Two entry points share all of that machinery: :func:`run_campaign_sharded`
runs one fault campaign (the original API), while the generic
:func:`run_sharded` executes any picklable ``task(lo, hi) -> arrays``
over arbitrary index ranges — the coverage certifier shards its sweep of
the fault space through it.

The process pool uses ``concurrent.futures.ProcessPoolExecutor``; tasks
that cannot be pickled (or ``jobs=1``) fall back to in-process serial
execution with the same checkpoint/retry semantics.
"""

from __future__ import annotations

import contextlib
import functools
import logging
import pickle
import signal
import threading
import time
import traceback as traceback_module
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace

import numpy as np

from repro.countermeasures.base import ProtectedDesign
from repro.faults.campaign import RNG_BLOCK, CampaignResult, run_range
from repro.faults.checkpoint import SHARD_KEYS, CheckpointCorrupt, CheckpointStore
from repro.faults.classification import classify
from repro.faults.models import FaultSpec
from repro.resilience.chaos import chaos
from repro.resilience.errors import ShardHang, classify_error
from repro.telemetry import (
    ProgressTracker,
    enable_kernel_timings,
    kernel_timings_enabled,
    metrics,
    trace,
)

log = logging.getLogger(__name__)

__all__ = [
    "ExecutorConfig",
    "ShardTimeout",
    "ShardedRun",
    "campaign_identity",
    "prewarm_backend",
    "run_campaign_sharded",
    "run_sharded",
]

#: Test/instrumentation hook: called as ``hook(shard_index, attempt)``
#: inside the shard's timeout guard, before the shard's work starts.
ShardHook = Callable[[int, int], None]

#: A shard's work: ``task(lo, hi) -> {name: array}`` where every array's
#: leading dimension is ``hi - lo``.  Must be picklable for ``jobs > 1``
#: (build it with :func:`functools.partial` over a module-level function).
ShardTask = Callable[[int, int], dict[str, np.ndarray]]


class ShardTimeout(RuntimeError):
    """A shard exceeded its wall-clock budget."""


@dataclass(frozen=True)
class ExecutorConfig:
    """Knobs of the sharded executor (see module docstring)."""

    #: worker processes; 1 = in-process serial execution
    jobs: int = 1
    #: runs per shard (rounded down to a multiple of ``RNG_BLOCK``)
    shard_runs: int = 8192
    #: simulator batch bound inside a shard (memory knob, never affects bits)
    chunk: int = 1 << 15
    #: directory for the manifest + shard archives; None disables checkpoints
    checkpoint_dir: object = None
    #: reuse verified shards from an existing checkpoint
    resume: bool = False
    #: per-shard wall-clock budget in seconds; None = unbounded
    timeout: float | None = None
    #: how many times a failing shard is re-attempted
    retries: int = 2
    #: base of the exponential backoff between attempts (seconds)
    backoff: float = 0.5
    #: fraction of jitter on the backoff (thundering-herd damping)
    jitter: float = 0.25
    #: supervisor poll interval for the pool heartbeat (seconds)
    heartbeat: float = 0.5
    #: supervisor-side per-shard deadline after which a worker is declared
    #: hung and the pool restarted; None derives ``2 * timeout + 5`` when a
    #: timeout is set (hangs that defeat SIGALRM), else disabled
    hang_deadline: float | None = None
    #: global wall-clock budget for the whole sweep; once spent, no new
    #: shards are scheduled and the run degrades gracefully
    wall_budget: float | None = None
    #: zero-argument picklable callable run once per worker (in the pool
    #: initializer, and once before the serial loop) to pay one-time setup
    #: cost — e.g. compiled-backend codegen — *outside* any shard's timeout
    #: window; re-runs automatically in every fresh worker after a pool
    #: restart.  None = no pre-warm.
    prewarm: object = None

    @property
    def effective_hang_deadline(self) -> float | None:
        if self.hang_deadline is not None:
            return self.hang_deadline
        if self.timeout is not None and self.timeout > 0:
            return 2.0 * self.timeout + 5.0
        return None


#: once-per-process latch for the "timeout unavailable" degradation warning
_timeout_warned = False


@contextlib.contextmanager
def _deadline(seconds: float | None):
    """Raise :class:`ShardTimeout` if the body runs longer than ``seconds``.

    Uses ``SIGALRM``/``setitimer``, which works in the main thread of both
    the supervisor process (serial path) and pool worker processes (tasks
    run in the worker's main thread).  Where that is unavailable — off the
    main thread, or on a platform without ``SIGALRM`` (Windows) — a
    requested timeout degrades to untimed execution with a one-time
    warning rather than crashing or being silently dropped.  (The
    supervisor's heartbeat ``hang_deadline`` is the second, independent
    guard for pool runs.)
    """
    global _timeout_warned
    if seconds is None or seconds <= 0:
        yield
        return
    usable = (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        if not _timeout_warned:
            _timeout_warned = True
            log.warning(
                "shard timeout of %ss requested but SIGALRM is not usable "
                "here (platform without it, or not the main thread); shards "
                "will run without a wall-clock guard",
                seconds,
            )
            trace.event(
                "executor.timeout_degraded", timeout_s=seconds, reason="no SIGALRM"
            )
        yield
        return

    def _fire(signum, frame):
        raise ShardTimeout(f"shard exceeded its {seconds}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def campaign_identity(
    design: ProtectedDesign,
    specs: Sequence[FaultSpec],
    *,
    key: int,
    seed: int,
    n_runs: int,
    shard_runs: int,
) -> dict:
    """The manifest fields that pin a checkpoint to one exact campaign."""
    return {
        "scheme": design.scheme,
        "variant": design.variant,
        "block_bits": design.spec.block_bits,
        "key": str(key),
        "seed": seed,
        "n_runs": n_runs,
        "shard_runs": shard_runs,
        "specs": [s.to_dict() for s in specs],
    }


def _campaign_task(
    design: ProtectedDesign,
    specs: list[FaultSpec],
    key: int,
    seed: int,
    chunk: int,
    backend: str | None,
    lo: int,
    hi: int,
) -> dict[str, np.ndarray]:
    """Shard task of a fault campaign: simulate runs ``[lo, hi)``."""
    pt, rel, exp, flags = run_range(
        design, specs, key=key, seed=seed, lo=lo, hi=hi, chunk=chunk,
        backend=backend,
    )
    return {
        "plaintext_bits": pt,
        "released_bits": rel,
        "expected_bits": exp,
        "fault_flags": flags,
    }


# ----------------------------------------------------------- pool workers

_WORKER_CTX: dict = {}


def _worker_init(payload: bytes) -> None:
    ctx = pickle.loads(payload)
    _WORKER_CTX["ctx"] = ctx
    # apply the parent's telemetry/chaos switches in this worker process
    # (fork inherits them, but spawn-based pools start from clean state)
    enable_kernel_timings(ctx[3].get("kernel_metrics", False))
    chaos.configure(ctx[4])
    _run_prewarm(ctx[5])


def _run_prewarm(prewarm) -> None:
    """Pay one-time setup (e.g. codegen) outside any shard's timeout window."""
    if prewarm is None:
        return
    started = time.perf_counter()
    try:
        prewarm()
    except Exception as exc:
        # A failed pre-warm never kills the worker: the shard simply pays
        # the setup cost (or surfaces the real error) inside its own guard.
        log.warning("executor pre-warm failed (%s: %s)", type(exc).__name__, exc)
        trace.event("executor.prewarm_failed", error=f"{type(exc).__name__}: {exc}")
    else:
        metrics.observe("executor.prewarm_s", time.perf_counter() - started)


def prewarm_backend(design: ProtectedDesign, backend: str | None) -> None:
    """Compile ``design``'s kernel schedule/program for ``backend`` now.

    Module-level (hence picklable via :func:`functools.partial`) so it can
    ride in the pool-worker init payload: the compiled backend's AOT
    codegen — the expensive case — happens once per worker process before
    the first shard starts its timeout clock, instead of inside it.
    """
    from repro.netlist.simulator import resolve_backend

    resolved = resolve_backend(backend)
    if resolved == "compiled":
        from repro.netlist.compiled import compile_program

        compile_program(design.circuit)
    elif resolved == "levelized":
        from repro.netlist.levelized import compile_schedule

        compile_schedule(design.circuit)


def _worker_shard(index: int, lo: int, hi: int, attempt: int):
    task, timeout, hook, tele, _, _ = _WORKER_CTX["ctx"]
    if not tele.get("capture"):
        with _deadline(timeout):
            chaos.at("worker", index=index, attempt=attempt, in_worker=True)
            if hook is not None:
                hook(index, attempt)
            return index, task(lo, hi), None
    # Tracing is on in the supervisor: record this shard's spans and
    # metrics into buffers and ship them home with the arrays — workers
    # never touch the sink file.
    metrics.reset()
    with trace.bind(**(tele.get("ctx") or {})), trace.capture() as records:
        with trace.span("executor.shard", shard=index, lo=lo, hi=hi, attempt=attempt):
            with _deadline(timeout):
                chaos.at("worker", index=index, attempt=attempt, in_worker=True)
                if hook is not None:
                    hook(index, attempt)
                arrays = task(lo, hi)
    return index, arrays, {"records": records, "metrics": metrics.snapshot()}


# ------------------------------------------------------------- supervisor


class _Supervisor:
    """Drives shard execution: retries, backoff, quarantine, checkpoints."""

    def __init__(
        self,
        task: ShardTask,
        *,
        ranges: list[tuple[int, int]],
        config: ExecutorConfig,
        store: CheckpointStore | None,
        shard_hook: ShardHook | None,
        on_shard_done: Callable[[int, dict[str, np.ndarray]], object] | None,
        progress: ProgressTracker | None = None,
    ) -> None:
        self.task = task
        self.ranges = ranges
        self.config = config
        self.store = store
        self.shard_hook = shard_hook
        self.on_shard_done = on_shard_done
        self.progress = progress
        self.results: dict[int, dict[str, np.ndarray]] = {}
        self.failures: dict[int, dict] = {}
        #: attempt counts; seeded from the checkpoint ledger on resume so
        #: the retry budget survives interruption instead of resetting
        self.attempts: dict[int, int] = {}
        #: set once ``on_shard_done`` asks to stop (fail-fast); remaining
        #: shards are left pending, never marked failed
        self.stopped = False
        #: set once the global wall budget runs out (graceful degradation)
        self.budget_exhausted = False
        self._started = time.monotonic()

    # -- shared bookkeeping

    def _budget_spent(self) -> bool:
        """True once the global wall budget is exhausted (latches + logs)."""
        budget = self.config.wall_budget
        if budget is None:
            return False
        if self.budget_exhausted:
            return True
        if time.monotonic() - self._started >= budget:
            self.budget_exhausted = True
            pending = len(self.ranges) - len(self.results) - len(self.failures)
            log.warning(
                "global wall budget of %ss exhausted; %d shard(s) left "
                "pending — degrading gracefully to a partial result",
                budget, pending,
            )
            trace.event(
                "executor.budget_exhausted", budget_s=budget, pending=pending
            )
            metrics.inc("executor.budget_exhausted")
            return True
        return False

    def _advance(self, index: int, status: str) -> None:
        """Count a shard (succeeded or quarantined) as processed."""
        lo, hi = self.ranges[index]
        if self.progress is not None:
            snap = self.progress.advance(hi - lo, shard=index, status=status)
        else:
            snap = {}
        trace.event(
            "shard.done",
            shard=index,
            lo=lo,
            hi=hi,
            status=status,
            attempts=self.attempts.get(index, 0),
            eta_s=snap.get("eta_s"),
        )

    def _succeed(
        self, index: int, arrays: dict[str, np.ndarray], _replayed: bool = False
    ) -> None:
        chaos.should("supervisor.result", "delay", index=index)
        if index in self.results:
            # A delayed/duplicated delivery (pool races, chaos): the first
            # result is canonical — the shard is deterministic, so the
            # duplicate is identical; drop it with a structured event.
            metrics.inc("executor.duplicate_results_ignored")
            trace.event("shard.duplicate_result", shard=index)
            return
        self.results[index] = arrays
        metrics.inc("executor.shards_completed")
        if self.store is not None:
            self.store.shards[index].attempts = self.attempts[index]
            self.store.write_shard(index, arrays)
        self._advance(index, "done")
        if self.on_shard_done is not None and self.on_shard_done(index, arrays):
            self.stopped = True
        if not _replayed and chaos.should(
            "supervisor.result", "duplicate", index=index
        ):
            self._succeed(index, arrays, _replayed=True)

    def _quarantine(self, index: int, exc: BaseException) -> None:
        """Retries exhausted: record a structured, typed failure and move on."""
        lo, hi = self.ranges[index]
        kind = classify_error(exc)
        message = f"{type(exc).__name__}: {exc}"
        tb = "".join(traceback_module.format_exception(exc))
        self.failures[index] = {
            "index": index,
            "lo": lo,
            "hi": hi,
            "attempts": self.attempts[index],
            "error": message,
            "error_kind": str(kind),
            "traceback": tb,
        }
        metrics.inc("executor.shards_failed")
        metrics.inc("executor.shards_quarantined")
        log.error(
            "shard %d (runs [%d, %d)) quarantined after %d attempt(s) "
            "[%s]: %s\n%s",
            index, lo, hi, self.attempts[index], kind, message, tb,
        )
        trace.event(
            "shard.quarantined",
            shard=index,
            lo=lo,
            hi=hi,
            attempts=self.attempts[index],
            error=message,
            error_kind=str(kind),
            traceback=tb,
        )
        if self.store is not None:
            self.store.mark_quarantined(
                index, message, self.attempts[index], str(kind)
            )
        self._advance(index, "quarantined")

    def _should_retry(self, index: int, exc: BaseException) -> bool:
        """Record the attempt; True → back off and try again."""
        if self.attempts[index] > self.config.retries:
            self._quarantine(index, exc)
            return False
        metrics.inc("executor.shards_retried")
        log.warning(
            "shard %d attempt %d failed (%s: %s); retrying",
            index, self.attempts[index], type(exc).__name__, exc,
        )
        trace.event(
            "shard.retry",
            shard=index,
            attempt=self.attempts[index],
            error=f"{type(exc).__name__}: {exc}",
            error_kind=str(classify_error(exc)),
            traceback="".join(traceback_module.format_exception(exc)),
        )
        time.sleep(self._backoff_delay(index))
        return True

    def _backoff_delay(self, index: int) -> float:
        """Exponential backoff with deterministic jitter.

        The jitter fraction is a pure hash of (shard, attempt) so delays
        de-synchronise across shards without nondeterministic state.
        """
        cfg = self.config
        base = cfg.backoff * (2 ** (self.attempts[index] - 1))
        if cfg.jitter <= 0 or base <= 0:
            return base
        frac = ((index * 2654435761 + self.attempts[index] * 40503) % 1000) / 1000
        return base * (1.0 + cfg.jitter * frac)

    def _ingest(self, payload: dict | None) -> None:
        """Fold a worker shard's captured telemetry into this process."""
        if payload:
            trace.ingest(payload.get("records"))
            metrics.merge(payload.get("metrics") or {})

    # -- serial path

    def run_serial(self, pending: list[int]) -> None:
        if pending:
            _run_prewarm(self.config.prewarm)
        for index in pending:
            if self.stopped or self._budget_spent():
                return
            lo, hi = self.ranges[index]
            self.attempts.setdefault(index, 0)
            while True:
                self.attempts[index] += 1
                try:
                    with trace.span(
                        "executor.shard",
                        shard=index, lo=lo, hi=hi, attempt=self.attempts[index],
                    ), _deadline(self.config.timeout):
                        chaos.at(
                            "worker", index=index,
                            attempt=self.attempts[index], in_worker=False,
                        )
                        if self.shard_hook is not None:
                            self.shard_hook(index, self.attempts[index])
                        arrays = self.task(lo, hi)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    if self._should_retry(index, exc):
                        continue
                    break
                else:
                    self._succeed(index, arrays)
                    break

    # -- pool path

    def _kill_pool(self, pool: ProcessPoolExecutor) -> None:
        """Forcibly terminate a pool whose workers are hung.

        ``shutdown(cancel_futures=True)`` cannot interrupt a worker stuck
        in C code or an unkillable sleep, so the supervisor terminates the
        worker processes directly (stdlib keeps them in ``_processes``).
        """
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except (OSError, AttributeError):
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def run_pool(self, pending: list[int]) -> None:
        cfg = self.config
        tele = {
            "capture": trace.enabled,
            "kernel_metrics": kernel_timings_enabled(),
            # the supervisor thread's correlation fields (request_id, ...)
            # travel to workers so captured shard spans stay attributable
            "ctx": dict(trace.context()),
        }
        try:
            payload = pickle.dumps(
                (
                    self.task, cfg.timeout, self.shard_hook, tele, chaos.spec,
                    cfg.prewarm,
                )
            )
        except Exception as exc:
            log.warning(
                "sharded executor: task not picklable (%s); falling back to "
                "serial execution", exc,
            )
            trace.event("executor.serial_fallback", error=str(exc))
            self.run_serial(pending)
            return

        hang_deadline = cfg.effective_hang_deadline
        queue = list(pending)
        for index in queue:
            self.attempts.setdefault(index, 0)
        in_flight: dict = {}
        started_at: dict = {}
        pool: ProcessPoolExecutor | None = None
        try:
            while (queue and not self.stopped and not self._budget_spent()) \
                    or in_flight:
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=cfg.jobs,
                        initializer=_worker_init,
                        initargs=(payload,),
                    )
                # Bounded submission: at most one in-flight shard per
                # worker, so a submitted future is a *running* future and
                # the heartbeat's hang clock measures actual run time.
                while (
                    queue
                    and not self.stopped
                    and len(in_flight) < cfg.jobs
                    and not self._budget_spent()
                ):
                    index = queue.pop(0)
                    self.attempts[index] += 1
                    lo, hi = self.ranges[index]
                    fut = pool.submit(
                        _worker_shard, index, lo, hi, self.attempts[index]
                    )
                    in_flight[fut] = index
                    started_at[fut] = time.monotonic()
                if not in_flight:
                    continue
                poll = (
                    cfg.heartbeat
                    if hang_deadline or cfg.wall_budget is not None
                    else None
                )
                done, _ = wait(
                    in_flight, timeout=poll, return_when=FIRST_COMPLETED
                )
                pool_broken = False
                for fut in done:
                    index = in_flight.pop(fut)
                    started_at.pop(fut, None)
                    try:
                        _, arrays, shard_telemetry = fut.result()
                    except BrokenProcessPool as exc:
                        pool_broken = True
                        if self._should_retry(index, exc):
                            queue.append(index)
                    except Exception as exc:
                        if self._should_retry(index, exc):
                            queue.append(index)
                    else:
                        self._ingest(shard_telemetry)
                        self._succeed(index, arrays)
                if not pool_broken and hang_deadline:
                    now = time.monotonic()
                    hung = [
                        fut for fut, t0 in started_at.items()
                        if fut in in_flight and now - t0 >= hang_deadline
                    ]
                    if hung:
                        # Heartbeat verdict: these workers blew well past
                        # every deadline — declare the pool dead, requeue.
                        pool_broken = True
                        indices = sorted(in_flight[f] for f in hung)
                        log.warning(
                            "heartbeat: shard(s) %s hung past the %.1fs "
                            "deadline; restarting the worker pool",
                            indices, hang_deadline,
                        )
                        trace.event(
                            "executor.pool_hung",
                            shards=indices,
                            hang_deadline_s=hang_deadline,
                        )
                        metrics.inc("executor.pools_restarted")
                        self._kill_pool(pool)
                        for fut in hung:
                            index = in_flight.pop(fut)
                            started_at.pop(fut, None)
                            exc = ShardHang(
                                f"worker hung past the {hang_deadline:.1f}s "
                                f"heartbeat deadline"
                            )
                            if self._should_retry(index, exc):
                                queue.append(index)
                if pool_broken:
                    # The pool is unusable: every in-flight shard was lost
                    # with it.  Re-queue (or quarantine) them and start a
                    # new pool.
                    for fut, index in list(in_flight.items()):
                        exc = BrokenProcessPool("worker pool died mid-shard")
                        if self._should_retry(index, exc):
                            queue.append(index)
                    in_flight.clear()
                    started_at.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
        finally:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)


# ---------------------------------------------------------- generic entry


@dataclass
class ShardedRun:
    """What :func:`run_sharded` hands back to its caller."""

    #: shard index → the arrays its task returned (checkpoint-verified on
    #: resume); absent indices were quarantined or skipped after a stop
    results: dict[int, dict[str, np.ndarray]]
    #: one record per quarantined shard:
    #: index/lo/hi/attempts/error/error_kind/traceback
    failures: list[dict] = field(default_factory=list)
    #: the (lo, hi) range of every shard, by index
    ranges: list[tuple[int, int]] = field(default_factory=list)
    #: True when ``on_shard_done`` stopped the sweep before all shards ran
    stopped_early: bool = False
    #: True when the global wall budget ran out before all shards ran
    budget_exhausted: bool = False

    @property
    def complete(self) -> bool:
        return (
            not self.stopped_early
            and not self.budget_exhausted
            and len(self.results) == len(self.ranges)
        )

    @property
    def degraded(self) -> bool:
        """Shards were lost to quarantine or the wall budget."""
        return bool(self.failures) or self.budget_exhausted

    def merged(self, keys: Sequence[str]) -> dict[str, np.ndarray] | None:
        """Concatenate surviving shards in index order (None if nothing ran)."""
        survivors = sorted(self.results)
        if not survivors:
            return None
        return {
            k: np.concatenate([self.results[i][k] for i in survivors])
            for k in keys
        }


def run_sharded(
    task: ShardTask,
    ranges: Sequence[tuple[int, int]],
    *,
    config: ExecutorConfig | None = None,
    identity: dict | None = None,
    keys: tuple[str, ...] = SHARD_KEYS,
    shard_hook: ShardHook | None = None,
    on_shard_done: Callable[[int, dict[str, np.ndarray]], object] | None = None,
    label: str = "sharded",
) -> ShardedRun:
    """Execute ``task`` over ``ranges`` with supervision and checkpoints.

    The workload-agnostic core of the executor: campaigns and the coverage
    certifier both shard through here.  ``identity`` pins checkpoints to
    one exact workload (resume refuses a mismatch with
    :class:`~repro.faults.checkpoint.CheckpointError`; a manifest that is
    torn or fails its checksum is recovered from with a fresh ledger);
    ``keys`` names the arrays each shard produces.
    ``on_shard_done(index, arrays)`` runs in the supervisor process after
    each shard completes (and is persisted) — returning a truthy value
    stops the sweep early, leaving the remaining shards ``pending`` in the
    manifest (the certifier's fail-fast).

    ``label`` names the workload in progress lines and trace records.
    Observability: the whole sweep runs inside an ``executor.run_sharded``
    span; every shard yields an ``executor.shard`` span (captured in the
    worker for pool runs) plus ``shard.done``/``shard.retry``/
    ``shard.quarantined`` events with attempt counts and tracebacks, and a
    live progress line with ETA is rendered on TTYs (``REPRO_PROGRESS=0``
    disables it).  Chaos injection (``REPRO_CHAOS``) is adopted here so
    every instrumented site below sees the schedule.
    """
    config = config or ExecutorConfig()
    chaos.configure_from_env()
    ranges = list(ranges)
    total_units = sum(hi - lo for lo, hi in ranges)
    progress = ProgressTracker(
        total_units, label=label, total_items=len(ranges), unit="units"
    )
    supervisor = _Supervisor(
        task,
        ranges=ranges,
        config=config,
        store=None,
        shard_hook=shard_hook,
        on_shard_done=on_shard_done,
        progress=progress,
    )
    started = time.perf_counter()
    with trace.span(
        "executor.run_sharded",
        label=label,
        shards=len(ranges),
        units=total_units,
        jobs=config.jobs,
    ):
        if config.checkpoint_dir is not None and ranges:
            store = CheckpointStore(config.checkpoint_dir, keys=keys)
            if config.resume and store.exists:
                try:
                    store.load(identity)
                except CheckpointCorrupt as exc:
                    # A torn/bit-rotted ledger holds no trustworthy state:
                    # recover by starting fresh (every shard recomputes
                    # deterministically) instead of refusing the resume.
                    log.warning(
                        "checkpoint manifest unusable (%s); starting a "
                        "fresh ledger and recomputing", exc,
                    )
                    trace.event("checkpoint.recovered", error=str(exc))
                    metrics.inc("checkpoint.manifests_recovered")
                    store.create(identity or {}, ranges)
                else:
                    for index, record in store.shards.items():
                        # the retry ledger survives the interruption: a
                        # resumed shard continues its attempt budget
                        supervisor.attempts[index] = record.attempts
                        arrays = store.read_shard(index)
                        if arrays is not None:
                            supervisor.results[index] = arrays
                            lo, hi = ranges[index]
                            progress.advance(
                                hi - lo, shard=index, status="resumed"
                            )
                        else:
                            # missing/corrupt archive or a previously
                            # quarantined shard: recompute it
                            # (deterministically) this time
                            if record.status == "done":
                                trace.event(
                                    "checkpoint.shard_corrupt", shard=index
                                )
                                metrics.inc("checkpoint.shards_recomputed")
                            record.status = "pending"
                            record.error = ""
                            record.error_kind = ""
                    store.flush()
            else:
                store.create(identity or {}, ranges)
            supervisor.store = store

        pending = [i for i in range(len(ranges)) if i not in supervisor.results]
        if config.jobs > 1 and len(pending) > 1:
            supervisor.run_pool(pending)
        else:
            supervisor.run_serial(pending)
        progress.finish()

    elapsed = time.perf_counter() - started
    done_units = sum(
        ranges[i][1] - ranges[i][0] for i in supervisor.results
    )
    if elapsed > 0:
        metrics.set("executor.runs_per_second", done_units / elapsed)
    return ShardedRun(
        results=supervisor.results,
        failures=[supervisor.failures[i] for i in sorted(supervisor.failures)],
        ranges=ranges,
        stopped_early=supervisor.stopped,
        budget_exhausted=supervisor.budget_exhausted,
    )


def run_campaign_sharded(
    design: ProtectedDesign,
    specs: Sequence[FaultSpec],
    *,
    n_runs: int,
    key: int,
    seed: int = 1,
    flag_observable: bool | None = None,
    config: ExecutorConfig | None = None,
    shard_hook: ShardHook | None = None,
    backend: str | None = None,
) -> CampaignResult:
    """Run a campaign through the resilient sharded executor.

    Equivalent to :func:`repro.faults.campaign.run_campaign` (bit-identical
    arrays for the same ``(design, specs, key, seed, n_runs)``) but
    checkpointed, resumable and parallel; see the module docstring.
    ``shard_hook`` is an instrumentation point used by the tests to inject
    shard failures/delays; it must be picklable when ``jobs > 1``.
    ``backend`` selects the simulation kernel inside each shard; it is
    deliberately excluded from the checkpoint identity because backends
    are bit-exact — a campaign checkpointed under one backend may be
    resumed under the other.
    """
    from repro.countermeasures.base import RecoveryPolicy

    config = config or ExecutorConfig()
    if config.prewarm is None:
        config = replace(
            config, prewarm=functools.partial(prewarm_backend, design, backend)
        )
    if flag_observable is None:
        flag_observable = design.scheme != "triplication"
    infective = design.policy is RecoveryPolicy.INFECTIVE
    block = design.spec.block_bits

    shard_runs = max(
        RNG_BLOCK, config.shard_runs - config.shard_runs % RNG_BLOCK
    )
    ranges = [
        (lo, min(lo + shard_runs, n_runs)) for lo in range(0, n_runs, shard_runs)
    ]
    task = functools.partial(
        _campaign_task, design, list(specs), key, seed, config.chunk, backend
    )
    identity = campaign_identity(
        design, specs, key=key, seed=seed, n_runs=n_runs, shard_runs=shard_runs
    )
    run = run_sharded(
        task, ranges, config=config, identity=identity, shard_hook=shard_hook,
        label=f"campaign[{design.scheme}]",
    )

    failures = run.failures
    if failures:
        lost = sum(f["hi"] - f["lo"] for f in failures)
        log.warning(
            "campaign completed partially: %d of %d shards quarantined "
            "(%d of %d runs lost); see result.extra['failed_shards']",
            len(failures), len(ranges), lost, n_runs,
        )
        trace.event(
            "campaign.partial",
            scheme=design.scheme,
            failed_shards=len(failures),
            total_shards=len(ranges),
            runs_lost=lost,
            n_runs=n_runs,
        )
    merged = run.merged(SHARD_KEYS)
    if merged is None:
        merged = {
            "plaintext_bits": np.zeros((0, block), dtype=np.uint8),
            "released_bits": np.zeros((0, block), dtype=np.uint8),
            "expected_bits": np.zeros((0, block), dtype=np.uint8),
            "fault_flags": np.zeros(0, dtype=np.uint8),
        }
    outcomes = classify(
        merged["released_bits"],
        merged["fault_flags"],
        merged["expected_bits"],
        flag_observable=flag_observable,
        infective=infective,
    )
    return CampaignResult(
        scheme=design.scheme,
        key=key,
        specs=list(specs),
        plaintext_bits=merged["plaintext_bits"],
        released_bits=merged["released_bits"],
        expected_bits=merged["expected_bits"],
        fault_flags=merged["fault_flags"],
        outcomes=outcomes,
        extra={
            "variant": design.variant,
            "n_runs": n_runs,
            "jobs": config.jobs,
            "shard_runs": shard_runs,
            "n_shards": len(ranges),
            "partial": bool(failures) or run.budget_exhausted,
            "failed_shards": failures,
            "budget_exhausted": run.budget_exhausted,
            "checkpoint_dir": (
                str(config.checkpoint_dir)
                if config.checkpoint_dir is not None
                else None
            ),
        },
    )
