"""On-disk checkpointing for sharded fault campaigns.

Layout of a checkpoint directory::

    manifest.json       campaign identity + per-shard status ledger
    shard_00000.npz     raw arrays of shard 0 (plaintext/released/expected/flags)
    shard_00001.npz     ...

The manifest is the source of truth for resume: it pins the campaign
identity (scheme, key, seed, n_runs, shard size, serialised fault specs)
and records, per shard, its run range, status (``pending`` / ``done`` /
``quarantined``), attempt count, SHA-256 digest of the shard arrays, the
last error message and its :class:`~repro.resilience.errors.ErrorKind`.

Crash safety: every write — the manifest *and* each shard ``.npz`` — is
atomic (tempfile + fsync + ``os.replace`` via
:mod:`repro.resilience.persist`), so a ``kill -9`` mid-write never leaves
a torn artefact under the final name.  Every artefact also carries a
content digest checked on load: a shard that fails its digest is simply
recomputed; a manifest that fails its checksum (or cannot be parsed)
raises :class:`CheckpointCorrupt`, which the executor treats as "no
usable checkpoint" and recovers from by starting a fresh ledger —
corruption costs recomputation, never a crash and never silent trust.

A manifest that parses and verifies but describes a *different* campaign
than the one being resumed raises plain :class:`CheckpointError` — that
is an operator error (wrong directory), and silently mixing shards from
two campaigns would corrupt results.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.resilience.chaos import chaos
from repro.resilience.persist import atomic_write_text, sha256_bytes
from repro.telemetry import run_manifest

__all__ = [
    "CheckpointCorrupt",
    "CheckpointError",
    "CheckpointStore",
    "ShardRecord",
]

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

#: Array keys persisted per shard, in digest order.
SHARD_KEYS = ("plaintext_bits", "released_bits", "expected_bits", "fault_flags")


class CheckpointError(RuntimeError):
    """A checkpoint directory is unusable or belongs to another campaign."""


class CheckpointCorrupt(CheckpointError):
    """The manifest is torn, unparseable or fails its checksum.

    Recoverable: the ledger carries no results of its own (shards are
    digest-verified independently), so the executor may start a fresh
    ledger and recompute — as opposed to the identity mismatches plain
    :class:`CheckpointError` signals, which need an operator decision.
    """


@dataclass
class ShardRecord:
    """One shard's entry in the manifest ledger."""

    index: int
    lo: int
    hi: int
    status: str = "pending"  # pending | done | quarantined (legacy: failed)
    attempts: int = 0
    digest: str = ""
    error: str = ""
    #: :class:`repro.resilience.errors.ErrorKind` of the last failure
    error_kind: str = ""

    @property
    def n_runs(self) -> int:
        return self.hi - self.lo


def shard_digest(
    arrays: dict[str, np.ndarray], keys: tuple[str, ...] = SHARD_KEYS
) -> str:
    """SHA-256 over the shard's arrays in canonical key order."""
    h = hashlib.sha256()
    for key in keys:
        a = np.ascontiguousarray(arrays[key])
        h.update(key.encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


class CheckpointStore:
    """Reads and writes one campaign's checkpoint directory.

    ``keys`` names the arrays each shard persists (first key's leading
    dimension must equal the shard's item count).  Campaigns use the
    default :data:`SHARD_KEYS`; the coverage certifier stores per-location
    outcome counts instead.  The key set is pinned in the manifest, so
    resuming with a different key set raises :class:`CheckpointError`
    rather than mixing incompatible shards.
    """

    def __init__(self, directory, *, keys: tuple[str, ...] = SHARD_KEYS) -> None:
        self.directory = Path(directory)
        self.manifest_path = self.directory / MANIFEST_NAME
        self.keys = tuple(keys)
        self.config: dict = {}
        self.shards: dict[int, ShardRecord] = {}
        #: environment snapshot (git rev, versions, ...) of the run that
        #: created the ledger — informational only, never part of the
        #: campaign identity compared on resume.
        self.environment: dict = {}

    # ------------------------------------------------------------- lifecycle

    @property
    def exists(self) -> bool:
        return self.manifest_path.exists()

    def create(self, config: dict, ranges: list[tuple[int, int]]) -> None:
        """Start a fresh ledger for ``config`` with one record per range."""
        self.directory.mkdir(parents=True, exist_ok=True)
        self.config = dict(config)
        self.environment = run_manifest(kind="checkpoint")
        self.shards = {
            i: ShardRecord(index=i, lo=lo, hi=hi)
            for i, (lo, hi) in enumerate(ranges)
        }
        self.flush()

    def load(self, expected_config: dict | None = None) -> None:
        """Load an existing ledger, validating identity against a campaign.

        Raises :class:`CheckpointCorrupt` on torn/unparseable/checksum-
        failing manifests (recoverable by recreating the ledger) and plain
        :class:`CheckpointError` when ``expected_config`` does not match
        the stored campaign identity.
        """
        try:
            raw = json.loads(self.manifest_path.read_text())
            stored_sum = raw.pop("checksum", None)
            if stored_sum is not None:
                payload = json.dumps(raw, sort_keys=True).encode()
                if sha256_bytes(payload) != stored_sum:
                    raise CheckpointCorrupt(
                        f"checkpoint manifest {self.manifest_path} fails its "
                        f"content checksum (torn write or bit-rot)"
                    )
            if raw.get("version") != MANIFEST_VERSION:
                raise CheckpointError(
                    f"unsupported manifest version {raw.get('version')!r} "
                    f"in {self.manifest_path}"
                )
            self.config = raw["campaign"]
            self.environment = dict(raw.get("environment") or {})
            self.shards = {
                int(k): ShardRecord(**v) for k, v in raw["shards"].items()
            }
        except CheckpointError:
            raise
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise CheckpointCorrupt(
                f"corrupt checkpoint manifest {self.manifest_path}: {exc}"
            ) from exc
        stored_keys = tuple(raw.get("keys", SHARD_KEYS))
        if stored_keys != self.keys:
            raise CheckpointError(
                f"checkpoint at {self.directory} stores arrays "
                f"{list(stored_keys)}, this run expects {list(self.keys)}"
            )
        if expected_config is not None and self.config != expected_config:
            diff = {
                k: (self.config.get(k), expected_config.get(k))
                for k in set(self.config) | set(expected_config)
                if self.config.get(k) != expected_config.get(k)
            }
            raise CheckpointError(
                f"checkpoint at {self.directory} belongs to a different "
                f"campaign (mismatched fields: {diff})"
            )

    def flush(self) -> None:
        """Atomically persist the ledger (with a whole-manifest checksum)."""
        payload = {
            "version": MANIFEST_VERSION,
            "campaign": self.config,
            "environment": self.environment,
            "keys": list(self.keys),
            "shards": {str(i): asdict(r) for i, r in sorted(self.shards.items())},
        }
        payload["checksum"] = sha256_bytes(
            json.dumps(payload, sort_keys=True).encode()
        )
        atomic_write_text(
            self.manifest_path,
            json.dumps(payload, indent=1, sort_keys=True),
        )
        chaos.corrupt_file("checkpoint.manifest", self.manifest_path)

    # ----------------------------------------------------------- shard data

    def shard_path(self, index: int) -> Path:
        return self.directory / f"shard_{index:05d}.npz"

    def write_shard(self, index: int, arrays: dict[str, np.ndarray]) -> None:
        """Atomically persist a completed shard and mark it ``done``."""
        record = self.shards[index]
        path = self.shard_path(index)
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez_compressed(fh, **{k: arrays[k] for k in self.keys})
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        chaos.corrupt_file("checkpoint.shard", path, index=index)
        record.status = "done"
        record.digest = shard_digest(arrays, self.keys)
        record.error = ""
        record.error_kind = ""
        self.flush()

    def read_shard(self, index: int) -> dict[str, np.ndarray] | None:
        """Load a ``done`` shard's arrays, or None when they need recomputing.

        Missing files, unreadable archives and digest mismatches all return
        None (the executor recomputes the shard deterministically) rather
        than failing the resume.
        """
        record = self.shards[index]
        if record.status != "done":
            return None
        try:
            with np.load(self.shard_path(index), allow_pickle=False) as data:
                arrays = {k: data[k] for k in self.keys}
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            return None
        if record.digest and shard_digest(arrays, self.keys) != record.digest:
            return None
        if len(arrays[self.keys[0]]) != record.n_runs:
            return None
        return arrays

    def mark_quarantined(
        self, index: int, error: str, attempts: int, kind: str = ""
    ) -> None:
        """Record a shard whose retries are exhausted (typed, structured)."""
        record = self.shards[index]
        record.status = "quarantined"
        record.error = error
        record.error_kind = kind
        record.attempts = attempts
        self.flush()

    def mark_failed(self, index: int, error: str, attempts: int) -> None:
        """Back-compat alias for :meth:`mark_quarantined`."""
        self.mark_quarantined(index, error, attempts)
