"""The :class:`Circuit` IR — a flat, single-clock, technology-mapped netlist.

A circuit owns a pool of nets (integer ids), a list of gates, and named
input/output ports (each port is an ordered, LSB-first list of nets).  It is
the common currency between the cipher generators, the countermeasure
builders, the synthesiser, the area mapper, and the simulator.

Invariants enforced by :meth:`Circuit.validate`:

- every net has exactly one driver (gate output, primary input or constant);
- every gate input references an existing, driven net;
- the combinational part is acyclic (cycles through DFFs are fine);
- output ports only reference driven nets.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.netlist.gates import Gate, GateType

__all__ = ["Circuit", "CircuitError", "CircuitStats"]


class CircuitError(ValueError):
    """A structural invariant of a :class:`Circuit` is broken.

    Subclasses ``ValueError`` so existing ``except ValueError`` call sites
    keep working; carries the offending ``net`` and/or ``gate`` so lint
    tooling and error messages can name the exact culprit.
    """

    def __init__(
        self, message: str, *, net: int | None = None, gate: "Gate | None" = None
    ) -> None:
        super().__init__(message)
        self.net = net
        self.gate = gate


@dataclass(frozen=True, slots=True)
class CircuitStats:
    """Structural summary used by reports and sanity tests."""

    num_nets: int
    num_gates: int
    num_dffs: int
    num_inputs: int
    num_outputs: int
    gate_counts: dict[str, int]
    depth: int

    def __str__(self) -> str:
        cells = ", ".join(f"{k}={v}" for k, v in sorted(self.gate_counts.items()))
        return (
            f"nets={self.num_nets} gates={self.num_gates} dffs={self.num_dffs} "
            f"inputs={self.num_inputs} outputs={self.num_outputs} "
            f"depth={self.depth} [{cells}]"
        )


class Circuit:
    """A flat gate-level netlist with named multi-bit ports.

    Typical construction goes through
    :class:`~repro.netlist.builder.CircuitBuilder`, which wraps the raw
    ``new_net`` / ``add_gate`` API with word-level operators.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.gates: list[Gate] = []
        self.inputs: dict[str, list[int]] = {}
        self.outputs: dict[str, list[int]] = {}
        self._num_nets = 0
        self._driver: dict[int, Gate] = {}
        self._const_net: dict[GateType, int] = {}
        self._topo_cache: list[Gate] | None = None
        self._levels_cache: list[list[Gate]] | None = None

    # ------------------------------------------------------------------ nets

    @property
    def num_nets(self) -> int:
        """Total number of allocated net ids (ids run from 0 to this - 1)."""
        return self._num_nets

    def new_net(self) -> int:
        """Allocate a fresh, as-yet-undriven net id."""
        net = self._num_nets
        self._num_nets += 1
        return net

    def driver_of(self, net: int) -> Gate | None:
        """The gate driving ``net``, or None if the net is undriven."""
        return self._driver.get(net)

    # ----------------------------------------------------------------- gates

    def add_gate(
        self,
        gtype: GateType,
        ins: tuple[int, ...] = (),
        *,
        out: int | None = None,
        init: int = 0,
        tag: str = "",
    ) -> int:
        """Append a gate; returns its output net (allocating one if needed)."""
        if out is None:
            out = self.new_net()
        for net in ins:
            if not 0 <= net < self._num_nets:
                raise CircuitError(
                    f"gate input references unknown net {net}", net=net
                )
        if out in self._driver:
            raise CircuitError(
                f"net {out} already has a driver "
                f"({self._driver[out].gtype.name}); refusing a second "
                f"{gtype.name} driver",
                net=out,
                gate=self._driver[out],
            )
        if not 0 <= out < self._num_nets:
            raise CircuitError(
                f"gate output references unknown net {out}", net=out
            )
        gate = Gate(gtype, out, tuple(ins), init=init, tag=tag)
        self.gates.append(gate)
        self._driver[out] = gate
        self._topo_cache = None
        self._levels_cache = None
        return out

    def const(self, value: int) -> int:
        """Net tied to constant ``value`` (memoised — one CONST cell each)."""
        if value not in (0, 1):
            raise ValueError(f"constant must be 0 or 1, got {value}")
        gtype = GateType.CONST1 if value else GateType.CONST0
        if gtype not in self._const_net:
            self._const_net[gtype] = self.add_gate(gtype)
        return self._const_net[gtype]

    # ----------------------------------------------------------------- ports

    def add_input(self, name: str, width: int) -> list[int]:
        """Declare a ``width``-bit primary input port; returns its nets."""
        if name in self.inputs or name in self.outputs:
            raise ValueError(f"port name {name!r} already in use")
        if width <= 0:
            raise ValueError(f"port width must be positive, got {width}")
        nets = [self.add_gate(GateType.INPUT, tag=f"{name}[{i}]") for i in range(width)]
        self.inputs[name] = nets
        return nets

    def set_output(self, name: str, nets) -> None:
        """Declare a named output port over existing (driven) nets."""
        nets = list(nets)
        if name in self.outputs or name in self.inputs:
            raise ValueError(f"port name {name!r} already in use")
        if not nets:
            raise ValueError("output port cannot be empty")
        for net in nets:
            if net not in self._driver:
                raise ValueError(f"output {name!r} references undriven net {net}")
        self.outputs[name] = nets

    # ------------------------------------------------------------- structure

    def dffs(self) -> list[Gate]:
        """All flip-flops, in insertion order."""
        return [g for g in self.gates if g.gtype is GateType.DFF]

    def topo_order(self) -> list[Gate]:
        """Combinational gates in dependency order (sources/DFFs excluded).

        DFF outputs and primary inputs count as already-available sources;
        a cycle among combinational gates raises ``ValueError``.  The result
        is cached until the circuit is mutated.
        """
        if self._topo_cache is None:
            from repro.netlist.topo import combinational_order

            self._topo_cache = combinational_order(self)
        return self._topo_cache

    def topo_levels(self) -> list[list[Gate]]:
        """Combinational gates grouped into dependency levels (ASAP).

        Gates within one level have no data dependencies on each other;
        flattening the levels reproduces a valid topological order.  This
        is the schedule skeleton of the levelized simulation kernel (see
        :mod:`repro.netlist.levelized`).  Cached until the circuit is
        mutated, like :meth:`topo_order`.
        """
        if self._levels_cache is None:
            from repro.netlist.topo import combinational_levels

            self._levels_cache = combinational_levels(self)
        return self._levels_cache

    def depth(self) -> int:
        """Longest combinational path, in gates."""
        return len(self.topo_levels())

    def stats(self) -> CircuitStats:
        """Structural summary (cell histogram, depth, port counts)."""
        counts = Counter(g.gtype.value for g in self.gates)
        return CircuitStats(
            num_nets=self._num_nets,
            num_gates=len(self.gates),
            num_dffs=counts.get(GateType.DFF.value, 0),
            num_inputs=sum(len(v) for v in self.inputs.values()),
            num_outputs=sum(len(v) for v in self.outputs.values()),
            gate_counts=dict(counts),
            depth=self.depth(),
        )

    def find_gates(self, tag_prefix: str) -> list[Gate]:
        """Gates whose tag starts with ``tag_prefix`` (campaign targeting)."""
        return [g for g in self.gates if g.tag.startswith(tag_prefix)]

    def validate(self) -> None:
        """Check all structural invariants; raises :class:`CircuitError`.

        Checked here (beyond what :meth:`add_gate` enforces incrementally):
        multiply-driven nets (possible when ``gates`` is mutated directly),
        gate inputs and output ports reading undriven nets, and
        combinational cycles — each reported with the offending gate/net.
        """
        driver_counts = Counter(g.out for g in self.gates)
        for net, count in driver_counts.items():
            if count > 1:
                culprits = [g for g in self.gates if g.out == net]
                kinds = "+".join(g.gtype.name for g in culprits)
                raise CircuitError(
                    f"net {net} is driven by {count} gates ({kinds})",
                    net=net,
                    gate=culprits[-1],
                )
        for gate in self.gates:
            for net in gate.ins:
                if net not in self._driver:
                    raise CircuitError(
                        f"gate {gate.gtype.name}->{gate.out} reads undriven "
                        f"net {net}",
                        net=net,
                        gate=gate,
                    )
        for name, nets in self.outputs.items():
            for net in nets:
                if net not in self._driver:
                    raise CircuitError(
                        f"output {name!r} reads undriven net {net}", net=net
                    )
        # Raises CircuitError on combinational cycles.
        self.topo_order()

    def __repr__(self) -> str:
        return f"Circuit({self.name!r}, {len(self.gates)} gates, {self._num_nets} nets)"
