"""Gate-level circuit IR, analysis, Verilog I/O, and bit-parallel simulation.

This subpackage is the hardware substrate of the reproduction.  A
:class:`~repro.netlist.circuit.Circuit` is a technology-mapped netlist of
two-input cells plus D flip-flops, and
:class:`~repro.netlist.simulator.Simulator` evaluates it cycle-accurately for
thousands of independent runs at once (one run per bit lane of a ``uint64``
word), which is what makes the paper's 80k-run fault campaigns feasible in
pure Python.
"""

from repro.netlist.analysis import LintError, LintReport, lint_countermeasure
from repro.netlist.builder import CircuitBuilder
from repro.netlist.circuit import Circuit, CircuitError
from repro.netlist.gates import Gate, GateType
from repro.netlist.levelized import LevelizedKernel, LevelSchedule, compile_schedule
from repro.netlist.simulator import BACKENDS, DEFAULT_BACKEND, Simulator

__all__ = [
    "BACKENDS",
    "Circuit",
    "CircuitBuilder",
    "CircuitError",
    "DEFAULT_BACKEND",
    "Gate",
    "GateType",
    "LevelSchedule",
    "LevelizedKernel",
    "LintError",
    "LintReport",
    "Simulator",
    "compile_schedule",
    "lint_countermeasure",
]
