"""Topological ordering of the combinational portion of a circuit.

The clocked elements (DFF outputs) and primary inputs/constants are sources;
combinational gates are ordered so every gate appears after its drivers.
The simulator replays this order once per clock cycle.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.netlist.gates import SOURCE_TYPES, Gate, GateType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netlist.circuit import Circuit

__all__ = ["combinational_levels", "combinational_order"]


def combinational_order(circuit: "Circuit") -> list[Gate]:
    """Kahn's algorithm over the combinational gates of ``circuit``.

    Raises :class:`~repro.netlist.circuit.CircuitError` naming one gate on
    a combinational cycle if the circuit has one (a latch loop that the
    single-clock model cannot evaluate).
    """
    comb: list[Gate] = []
    available: set[int] = set()
    for gate in circuit.gates:
        if gate.gtype in SOURCE_TYPES or gate.gtype is GateType.DFF:
            available.add(gate.out)
        else:
            comb.append(gate)

    # fanout map restricted to combinational gates
    waiting: dict[int, list[Gate]] = {}
    missing: dict[int, int] = {}
    ready: deque[Gate] = deque()
    for gate in comb:
        need = 0
        for net in gate.ins:
            if net not in available:
                waiting.setdefault(net, []).append(gate)
                need += 1
        # A gate reading the same not-yet-available net twice must be
        # released only once both references are satisfied; counting
        # references (not distinct nets) keeps the bookkeeping exact.
        missing[id(gate)] = need
        if need == 0:
            ready.append(gate)

    order: list[Gate] = []
    while ready:
        gate = ready.popleft()
        order.append(gate)
        for follower in waiting.get(gate.out, ()):
            missing[id(follower)] -= 1
            if missing[id(follower)] == 0:
                ready.append(follower)

    if len(order) != len(comb):
        from repro.netlist.circuit import CircuitError

        ordered_ids = {id(g) for g in order}
        stuck_gates = [g for g in comb if id(g) not in ordered_ids]
        stuck = stuck_gates[0]
        cycle_nets = sorted(g.out for g in stuck_gates)
        shown = ", ".join(map(str, cycle_nets[:8]))
        if len(cycle_nets) > 8:
            shown += ", ..."
        raise CircuitError(
            f"combinational cycle detected: {len(stuck_gates)} gates cannot "
            f"be ordered (first: {stuck.gtype.name} driving net {stuck.out}"
            f"{f', tag {stuck.tag!r}' if stuck.tag else ''}; "
            f"nets involved: {shown})",
            net=stuck.out,
            gate=stuck,
        )
    return order


def combinational_levels(circuit: "Circuit") -> list[list[Gate]]:
    """ASAP levelization of the combinational gates of ``circuit``.

    Level ``k`` holds every gate whose longest path from a source
    (primary input, constant, or DFF output) is exactly ``k + 1`` gates.
    Gates within one level therefore never depend on each other, which is
    what lets the levelized simulation kernel evaluate a whole level as a
    handful of batched numpy ops.  Within a level, gates keep their
    :func:`combinational_order` relative order, so flattening the levels
    yields a valid topological order.  ``len(levels)`` equals the
    circuit's combinational depth.
    """
    level_of: dict[int, int] = {}
    levels: list[list[Gate]] = []
    for gate in combinational_order(circuit):
        lvl = max((level_of.get(n, -1) for n in gate.ins), default=-1) + 1
        level_of[gate.out] = lvl
        if lvl == len(levels):
            levels.append([])
        levels[lvl].append(gate)
    return levels
