"""Word-level construction helpers over the flat :class:`Circuit` API.

Cipher datapaths and countermeasure wrappers are most naturally expressed on
*words* (lists of nets, LSB-first).  ``CircuitBuilder`` provides the bitwise
operators, reduction trees, muxes and registers those generators need while
emitting only cells from the technology alphabet.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType

__all__ = ["CircuitBuilder"]

Word = list[int]


class CircuitBuilder:
    """Fluent netlist construction; owns (or wraps) a :class:`Circuit`."""

    def __init__(self, name: str = "circuit", *, circuit: Circuit | None = None) -> None:
        self.circuit = circuit if circuit is not None else Circuit(name)

    # -------------------------------------------------------------- plumbing

    def input(self, name: str, width: int) -> Word:
        """Declare a primary input port and return its nets (LSB-first)."""
        return self.circuit.add_input(name, width)

    def output(self, name: str, nets: Sequence[int]) -> None:
        """Declare a named output port."""
        self.circuit.set_output(name, list(nets))

    def build(self) -> Circuit:
        """Finalise and return the circuit.

        Runs :meth:`Circuit.validate` — multiply-driven nets, undriven
        reads, combinational loops — so a wiring bug surfaces at build
        time with a structured :class:`~repro.netlist.circuit.CircuitError`
        naming the culprit, not later as a wrong simulation.  Every
        generator in the repository finalises through here.
        """
        self.circuit.validate()
        return self.circuit

    def const_word(self, value: int, width: int) -> Word:
        """A ``width``-bit constant word (shares the two CONST cells)."""
        return [self.circuit.const((value >> i) & 1) for i in range(width)]

    # ---------------------------------------------------------- 1-bit gates

    def gate(self, gtype: GateType, *ins: int, tag: str = "") -> int:
        """Emit one raw cell and return its output net."""
        return self.circuit.add_gate(gtype, tuple(ins), tag=tag)

    def not_(self, a: int, *, tag: str = "") -> int:
        return self.gate(GateType.NOT, a, tag=tag)

    def buf(self, a: int, *, tag: str = "") -> int:
        return self.gate(GateType.BUF, a, tag=tag)

    def and_(self, a: int, b: int, *, tag: str = "") -> int:
        return self.gate(GateType.AND, a, b, tag=tag)

    def or_(self, a: int, b: int, *, tag: str = "") -> int:
        return self.gate(GateType.OR, a, b, tag=tag)

    def nand(self, a: int, b: int, *, tag: str = "") -> int:
        return self.gate(GateType.NAND, a, b, tag=tag)

    def nor(self, a: int, b: int, *, tag: str = "") -> int:
        return self.gate(GateType.NOR, a, b, tag=tag)

    def xor(self, a: int, b: int, *, tag: str = "") -> int:
        return self.gate(GateType.XOR, a, b, tag=tag)

    def xnor(self, a: int, b: int, *, tag: str = "") -> int:
        return self.gate(GateType.XNOR, a, b, tag=tag)

    def mux(self, sel: int, d0: int, d1: int, *, tag: str = "") -> int:
        """``d1 if sel else d0``."""
        return self.gate(GateType.MUX, sel, d0, d1, tag=tag)

    def dff(self, d: int, *, init: int = 0, tag: str = "") -> int:
        """A flip-flop fed by ``d``; returns the Q net."""
        return self.circuit.add_gate(GateType.DFF, (d,), init=init, tag=tag)

    # ----------------------------------------------------------- word logic

    @staticmethod
    def _check_same_width(a: Sequence[int], b: Sequence[int]) -> None:
        if len(a) != len(b):
            raise ValueError(f"word width mismatch: {len(a)} vs {len(b)}")

    def xor_word(self, a: Sequence[int], b: Sequence[int], *, tag: str = "") -> Word:
        self._check_same_width(a, b)
        return [self.xor(x, y, tag=tag) for x, y in zip(a, b)]

    def xnor_word(self, a: Sequence[int], b: Sequence[int], *, tag: str = "") -> Word:
        self._check_same_width(a, b)
        return [self.xnor(x, y, tag=tag) for x, y in zip(a, b)]

    def and_word(self, a: Sequence[int], b: Sequence[int], *, tag: str = "") -> Word:
        self._check_same_width(a, b)
        return [self.and_(x, y, tag=tag) for x, y in zip(a, b)]

    def or_word(self, a: Sequence[int], b: Sequence[int], *, tag: str = "") -> Word:
        self._check_same_width(a, b)
        return [self.or_(x, y, tag=tag) for x, y in zip(a, b)]

    def not_word(self, a: Sequence[int], *, tag: str = "") -> Word:
        return [self.not_(x, tag=tag) for x in a]

    def xor_bit_into_word(self, a: Sequence[int], bit: int, *, tag: str = "") -> Word:
        """XOR one net into every bit of a word (domain re-encoding)."""
        return [self.xor(x, bit, tag=tag) for x in a]

    def mux_word(
        self, sel: int, d0: Sequence[int], d1: Sequence[int], *, tag: str = ""
    ) -> Word:
        """Per-bit 2:1 mux, ``d1`` selected when ``sel`` is 1."""
        self._check_same_width(d0, d1)
        return [self.mux(sel, x, y, tag=tag) for x, y in zip(d0, d1)]

    def dff_word(self, d: Sequence[int], *, init: int = 0, tag: str = "") -> Word:
        """A register over a word; ``init`` is the power-on integer value."""
        return [
            self.dff(bit, init=(init >> i) & 1, tag=f"{tag}[{i}]" if tag else "")
            for i, bit in enumerate(d)
        ]

    def register(
        self, width: int, *, init: int = 0, tag: str = ""
    ) -> tuple[Word, "Callable[[Sequence[int]], None]"]:
        """A feedback-capable register: returns ``(q_nets, connect)``.

        The Q nets are usable immediately (e.g. inside the logic that will
        eventually compute D); call ``connect(d_nets)`` exactly once after
        building that logic to emit the flip-flops.
        """
        q_nets = [self.circuit.new_net() for _ in range(width)]
        connected = False

        def connect(d_nets: Sequence[int]) -> None:
            nonlocal connected
            if connected:
                raise RuntimeError("register already connected")
            if len(d_nets) != width:
                raise ValueError(f"expected {width} D nets, got {len(d_nets)}")
            connected = True
            for i, (d, q) in enumerate(zip(d_nets, q_nets)):
                self.circuit.add_gate(
                    GateType.DFF,
                    (d,),
                    out=q,
                    init=(init >> i) & 1,
                    tag=f"{tag}[{i}]" if tag else "",
                )

        return q_nets, connect

    # -------------------------------------------------------------- reducers

    def reduce_tree(self, gtype: GateType, nets: Sequence[int], *, tag: str = "") -> int:
        """Balanced binary reduction of ``nets`` with a 2-input gate type."""
        nets = list(nets)
        if not nets:
            raise ValueError("cannot reduce an empty net list")
        while len(nets) > 1:
            nxt: Word = []
            for i in range(0, len(nets) - 1, 2):
                nxt.append(self.gate(gtype, nets[i], nets[i + 1], tag=tag))
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    def or_reduce(self, nets: Sequence[int], *, tag: str = "") -> int:
        return self.reduce_tree(GateType.OR, nets, tag=tag)

    def and_reduce(self, nets: Sequence[int], *, tag: str = "") -> int:
        return self.reduce_tree(GateType.AND, nets, tag=tag)

    def xor_reduce(self, nets: Sequence[int], *, tag: str = "") -> int:
        return self.reduce_tree(GateType.XOR, nets, tag=tag)

    # ------------------------------------------------------------ arithmetic

    def equals(self, a: Sequence[int], b: Sequence[int], *, tag: str = "") -> int:
        """One net that is 1 iff words ``a`` and ``b`` are bitwise equal."""
        diffs = self.xor_word(a, b, tag=tag)
        return self.nor_reduce(diffs, tag=tag)

    def nor_reduce(self, nets: Sequence[int], *, tag: str = "") -> int:
        """NOT(OR(nets)) — 1 iff all nets are 0."""
        return self.not_(self.or_reduce(nets, tag=tag), tag=tag)

    def incrementer(self, a: Sequence[int], *, tag: str = "") -> Word:
        """``a + 1`` modulo ``2**len(a)`` as a ripple half-adder chain."""
        out: Word = []
        carry: int | None = None
        for i, bit in enumerate(a):
            if i == 0:
                out.append(self.not_(bit, tag=tag))
                carry = bit
            else:
                assert carry is not None
                out.append(self.xor(bit, carry, tag=tag))
                if i != len(a) - 1:
                    carry = self.and_(bit, carry, tag=tag)
        return out

    def majority3(self, a: int, b: int, c: int, *, tag: str = "") -> int:
        """Majority of three bits: ``ab | bc | ca`` (triplication voter)."""
        ab = self.and_(a, b, tag=tag)
        bc = self.and_(b, c, tag=tag)
        ca = self.and_(c, a, tag=tag)
        return self.or_(self.or_(ab, bc, tag=tag), ca, tag=tag)

    # ------------------------------------------------------------- inlining

    def append_circuit(
        self,
        sub: "Circuit",
        inputs: dict[str, Sequence[int]],
        *,
        tag_prefix: str = "",
    ) -> dict[str, Word]:
        """Instantiate another circuit inside this one (flattening).

        ``inputs`` binds each of ``sub``'s input ports to existing nets of
        this circuit; the return value maps each of ``sub``'s output ports
        to the corresponding new nets.  Gate tags are prefixed with
        ``tag_prefix`` so instances stay addressable by fault campaigns.
        This is how optimised S-box netlists are stamped into cipher
        datapaths.
        """
        if set(inputs) != set(sub.inputs):
            raise ValueError(
                f"input bindings {sorted(inputs)} do not match "
                f"sub-circuit ports {sorted(sub.inputs)}"
            )
        net_map: dict[int, int] = {}
        for name, nets in sub.inputs.items():
            bound = list(inputs[name])
            if len(bound) != len(nets):
                raise ValueError(
                    f"port {name!r} is {len(nets)} bits, bound {len(bound)}"
                )
            for inner, outer in zip(nets, bound):
                net_map[inner] = outer
        # Two passes so feedback through DFFs (whose D net is defined later
        # in the gate list) resolves correctly.
        for gate in sub.gates:
            if gate.gtype is GateType.INPUT:
                continue
            if gate.gtype is GateType.CONST0:
                net_map[gate.out] = self.circuit.const(0)
            elif gate.gtype is GateType.CONST1:
                net_map[gate.out] = self.circuit.const(1)
            else:
                net_map[gate.out] = self.circuit.new_net()
        for gate in sub.gates:
            if gate.gtype in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
                continue
            ins = tuple(net_map[n] for n in gate.ins)
            tag = f"{tag_prefix}{gate.tag}" if gate.tag else tag_prefix
            self.circuit.add_gate(
                gate.gtype, ins, out=net_map[gate.out], init=gate.init, tag=tag
            )
        return {
            name: [net_map[n] for n in nets] for name, nets in sub.outputs.items()
        }

    def majority3_word(
        self, a: Sequence[int], b: Sequence[int], c: Sequence[int], *, tag: str = ""
    ) -> Word:
        self._check_same_width(a, b)
        self._check_same_width(b, c)
        return [self.majority3(x, y, z, tag=tag) for x, y, z in zip(a, b, c)]
