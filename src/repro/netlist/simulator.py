"""Bit-parallel, cycle-accurate gate-level simulation.

Every net holds a packed vector of ``batch`` independent one-bit lanes
(64 lanes per ``uint64`` word), so one numpy bitwise op evaluates a gate for
the whole batch at once.  This is what makes the paper's fault campaigns —
80,000 randomised encryptions of a ~2,500-gate protected PRESENT-80 netlist —
run in seconds of pure Python.

Fault injection is a first-class citizen of the evaluation loop: a *fault
provider* maps a clock cycle to ``{net: transform}`` entries, and the
simulator applies each transform to the net's packed value at the moment the
net is produced (source nets at the start of the cycle, gate outputs right
after evaluation).  This mirrors VerFI's semantics: the corrupted value is
seen by the entire fanout, including flip-flop D pins, within that cycle.

Three interchangeable evaluation kernels implement those semantics: the
per-gate *reference* interpreter in this module (the executable spec),
the levelized opcode-batched kernel of :mod:`repro.netlist.levelized`
(the fast default), and the ahead-of-time generated-code kernel of
:mod:`repro.netlist.compiled` (the fastest), selectable via
``Simulator(..., backend=...)`` or the ``REPRO_SIM_BACKEND`` environment
variable.  They are bit-exact against each other — enforced by the
three-way differential property suite in
``tests/test_simulator_equivalence.py``.

The compiled kernel stores net values in a program-order *permutation* of
the net ids (so group outputs are contiguous and scatters vanish); the
simulator therefore routes every net-indexed access — ports, faults,
readout — through the active kernel's row map, keeping net ids the only
externally visible addressing scheme for all backends.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Mapping, Sequence
from typing import Protocol

import numpy as np

from repro.netlist.circuit import Circuit
from repro.telemetry.metrics import kernel_timings_enabled
from repro.telemetry.metrics import metrics as _metrics
from repro.netlist.gates import GateType
from repro.utils.bits import pack_bits, unpack_bits, words_for

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "FaultProvider",
    "Simulator",
    "resolve_backend",
]

Transform = Callable[[np.ndarray], np.ndarray]

#: selectable evaluation kernels: the per-gate reference interpreter (the
#: semantic oracle), the levelized opcode-batched kernel (the fast path),
#: and the AOT-generated straight-line kernel (the fastest path)
BACKENDS = ("levelized", "compiled", "reference")

#: default backend; overridable process-wide via ``REPRO_SIM_BACKEND``
DEFAULT_BACKEND = "levelized"


#: shared empty fault map for fault-free cycles — keeps the steady-state
#: loop literally allocation-free (asserted in tests/test_compiled_kernel.py)
_NO_FAULTS: Mapping[int, "Transform"] = {}


def resolve_backend(backend: str | None) -> str:
    """Normalise a backend selection (None → env override → default).

    An unknown name raises immediately — including one coming from the
    ``REPRO_SIM_BACKEND`` environment variable, which the error names so a
    typo'd override fails fast instead of silently falling back (or blowing
    up later inside a pool worker).
    """
    from_env = False
    if backend is None:
        env = os.environ.get("REPRO_SIM_BACKEND", "").strip()
        backend, from_env = (env, True) if env else (DEFAULT_BACKEND, False)
    if backend not in BACKENDS:
        source = " (from REPRO_SIM_BACKEND)" if from_env else ""
        raise ValueError(
            f"unknown simulator backend {backend!r}{source}; "
            f"choose from {BACKENDS}"
        )
    return backend


class FaultProvider(Protocol):
    """Minimal interface the simulator needs from a fault injector."""

    def for_cycle(self, cycle: int) -> Mapping[int, Transform]:
        """Transforms to apply to net values during clock cycle ``cycle``."""
        ...  # pragma: no cover - protocol


# opcode table: compact ints so the hot loop dispatches on an if-chain
_OP_BUF = 0
_OP_NOT = 1
_OP_AND = 2
_OP_OR = 3
_OP_NAND = 4
_OP_NOR = 5
_OP_XOR = 6
_OP_XNOR = 7
_OP_MUX = 8

_OPCODE: dict[GateType, int] = {
    GateType.BUF: _OP_BUF,
    GateType.NOT: _OP_NOT,
    GateType.AND: _OP_AND,
    GateType.OR: _OP_OR,
    GateType.NAND: _OP_NAND,
    GateType.NOR: _OP_NOR,
    GateType.XOR: _OP_XOR,
    GateType.XNOR: _OP_XNOR,
    GateType.MUX: _OP_MUX,
}


class Simulator:
    """Evaluate a :class:`Circuit` for a batch of independent runs.

    Parameters
    ----------
    circuit:
        The netlist to simulate.  It is compiled (topologically ordered and
        lowered to an opcode program) once, at construction.
    batch:
        Number of independent runs evaluated in parallel.
    faults:
        Optional :class:`FaultProvider`; may also be swapped later via
        :attr:`faults` (e.g. between campaign phases).
    backend:
        ``"levelized"`` (default) evaluates the circuit with the
        opcode-batched level kernel (:mod:`repro.netlist.levelized`);
        ``"compiled"`` runs the ahead-of-time generated straight-line
        kernel (:mod:`repro.netlist.compiled`), the fastest path at
        campaign batch sizes; ``"reference"`` uses the per-gate
        interpreter below, which is the executable definition of the
        simulation semantics and the oracle the fast kernels are
        differentially tested against.  ``None`` honours the
        ``REPRO_SIM_BACKEND`` environment variable.  All backends are
        bit-exact for every net, batch size and fault map.

    Fault-ordering contract (shared by all backends)
    ------------------------------------------------
    Within one :meth:`eval_comb` call, effects apply in exactly this
    order:

    1. input schedules (:meth:`set_input_schedule`) drive their ports;
    2. fault transforms on *source* nets (primary inputs, constants, DFF
       outputs) are applied to the scheduled/latched values;
    3. gates evaluate in program order, and a faulted gate output's
       transform is applied the moment that gate's value is produced —
       before any consumer reads it — so multiple faults along one path
       compose in program order.

    A transform on a DFF's D-pin net is a fault on whatever gate drives
    that net, and is therefore seen both by that net's combinational
    fanout and by the flip-flop latching at the next :meth:`step`.

    Usage::

        sim = Simulator(circ, batch=1000)
        sim.set_input_ints("plaintext", ptexts)
        sim.set_input_ints("key", [key] * 1000)
        sim.run(31)
        cts = sim.get_output_ints("ciphertext")
    """

    def __init__(
        self,
        circuit: Circuit,
        batch: int,
        *,
        faults: FaultProvider | None = None,
        backend: str | None = None,
    ) -> None:
        circuit.validate()
        self.circuit = circuit
        self.batch = batch
        self.n_words = words_for(batch)
        self.faults = faults
        self.backend = resolve_backend(backend)
        self.cycle = 0

        # opcode program: (op, out, in0, in1, in2) — the reference
        # interpreter's representation; the fast kernels compile their own
        self._program: list[tuple[int, int, int, int, int]] = []
        if self.backend == "reference":
            for gate in circuit.topo_order():
                op = _OPCODE[gate.gtype]
                a = gate.ins[0]
                b = gate.ins[1] if len(gate.ins) > 1 else 0
                c = gate.ins[2] if len(gate.ins) > 2 else 0
                self._program.append((op, gate.out, a, b, c))

        self._dff_d = np.array([g.ins[0] for g in circuit.dffs()], dtype=np.intp)
        self._dff_q = np.array([g.out for g in circuit.dffs()], dtype=np.intp)
        self._dff_init = np.array([g.init for g in circuit.dffs()], dtype=np.uint64)
        self._const0_nets = [
            g.out for g in circuit.gates if g.gtype is GateType.CONST0
        ]
        self._const1_nets = [
            g.out for g in circuit.gates if g.gtype is GateType.CONST1
        ]
        self._source_nets = sorted(
            set(self._const0_nets)
            | set(self._const1_nets)
            | {g.out for g in circuit.gates if g.gtype is GateType.INPUT}
            | set(int(q) for q in self._dff_q)
        )

        # The active kernel, and the net-id -> matrix-row map when the
        # kernel permutes storage (None = identity, rows are net ids).
        self._kernel = None
        self._compiled = None
        self._row_of: np.ndarray | None = None
        self._port_rows: dict[str, np.ndarray] = {}
        if self.backend == "levelized":
            from repro.netlist.levelized import LevelizedKernel, compile_schedule

            self._kernel = LevelizedKernel(compile_schedule(circuit), self.n_words)
            self._vals = np.zeros((circuit.num_nets, self.n_words), dtype=np.uint64)
        elif self.backend == "compiled":
            from repro.netlist.compiled import CompiledKernel, compile_program

            self._compiled = CompiledKernel(compile_program(circuit), self.n_words)
            self._kernel = self._compiled
            self._row_of = self._compiled.row_of
            # adopt the kernel's program-order matrix as the value store
            self._vals = self._compiled.vals
        else:
            self._vals = np.zeros((circuit.num_nets, self.n_words), dtype=np.uint64)

        if self._row_of is None:
            self._dff_q_rows = self._dff_q
            self._const1_rows = np.array(self._const1_nets, dtype=np.intp)
        else:
            self._dff_q_rows = self._row_of[self._dff_q]
            self._const1_rows = self._row_of[
                np.array(self._const1_nets, dtype=np.intp)
            ]

        self._schedules: dict[str, object] = {}
        self.reset()

    # ------------------------------------------------------------ lifecycle

    def reset(self) -> None:
        """Return to power-on state: cycle 0, DFFs at init, inputs cleared."""
        self.cycle = 0
        self._vals.fill(0)
        ones = np.uint64(0xFFFF_FFFF_FFFF_FFFF)
        for row in self._const1_rows:
            self._vals[row].fill(ones)
        if len(self._dff_q):
            init_rows = np.where(self._dff_init[:, None].astype(bool), ones, 0)
            self._vals[self._dff_q_rows] = init_rows.astype(np.uint64)

    # --------------------------------------------------------------- inputs

    def set_input_bits(self, name: str, bits: np.ndarray) -> None:
        """Drive an input port from a ``(batch, width)`` 0/1 matrix."""
        rows = self._port_rows.get(name)
        if rows is None:
            rows = self._net_rows(self._input_nets(name))
            self._port_rows[name] = rows
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.batch, len(rows)):
            raise ValueError(
                f"input {name!r} expects shape {(self.batch, len(rows))}, "
                f"got {bits.shape}"
            )
        self._vals[rows] = pack_bits(bits)

    def set_input_ints(self, name: str, values: Sequence[int]) -> None:
        """Drive an input port with one integer per run (LSB-first bits)."""
        nets = self._input_nets(name)
        if len(values) != self.batch:
            raise ValueError(f"expected {self.batch} values, got {len(values)}")
        from repro.utils.bits import ints_to_bits

        self.set_input_bits(name, ints_to_bits(values, len(nets)))

    def set_input_schedule(self, name: str, provider) -> None:
        """Drive an input port with fresh values every clock cycle.

        ``provider(cycle)`` must return a ``(batch, width)`` 0/1 matrix; it
        is consulted at the start of each combinational evaluation.  This
        models inputs fed by a free-running source — in this repository,
        the TRNG streaming fresh λ bits to the per-round / per-S-box
        countermeasure variants.
        """
        self._input_nets(name)  # validate the port exists
        self._schedules[name] = provider

    def clear_input_schedule(self, name: str) -> None:
        """Remove a per-cycle driver installed by :meth:`set_input_schedule`."""
        self._schedules.pop(name, None)

    def broadcast_input(self, name: str, value: int) -> None:
        """Drive an input port with the same integer in every lane."""
        nets = self._input_nets(name)
        ones = np.uint64(0xFFFF_FFFF_FFFF_FFFF)
        row_of = self._row_of
        for i, net in enumerate(nets):
            row = net if row_of is None else row_of[net]
            self._vals[row].fill(ones if (value >> i) & 1 else 0)

    def _input_nets(self, name: str) -> list[int]:
        try:
            return self.circuit.inputs[name]
        except KeyError:
            raise KeyError(
                f"no input port {name!r}; ports: {sorted(self.circuit.inputs)}"
            ) from None

    def _net_rows(self, nets: Sequence[int]) -> np.ndarray:
        """Matrix rows for the given net ids under the active kernel."""
        idx = np.array(list(nets), dtype=np.intp)
        return idx if self._row_of is None else self._row_of[idx]

    # ------------------------------------------------------------ evaluation

    def eval_comb(self) -> None:
        """Evaluate the combinational program for the current cycle.

        Follows the fault-ordering contract in the class docstring: input
        schedules first, then source-net transforms, then the program
        with gate-output transforms applied in program order, so the
        corrupted value propagates exactly as a physical glitch would.
        """
        for name, provider in self._schedules.items():
            self.set_input_bits(name, provider(self.cycle))
        vals = self._vals
        fault_map: Mapping[int, Transform] = (
            self.faults.for_cycle(self.cycle)
            if self.faults is not None
            else _NO_FAULTS
        )
        if fault_map:
            row_of = self._row_of
            for net in self._source_nets:
                transform = fault_map.get(net)
                if transform is not None:
                    row = net if row_of is None else row_of[net]
                    vals[row] = transform(vals[row])
        if self._kernel is not None:
            self._kernel.run(vals, fault_map if fault_map else None)
        elif kernel_timings_enabled():
            t0 = time.perf_counter()
            if fault_map:
                self._run_program_faulty(fault_map)
            else:
                self._run_program_clean()
            _metrics.observe(
                "kernel.reference.cycle", time.perf_counter() - t0
            )
        elif fault_map:
            self._run_program_faulty(fault_map)
        else:
            self._run_program_clean()

    def _run_program_clean(self) -> None:
        vals = self._vals
        for op, out, a, b, c in self._program:
            if op == _OP_XOR:
                np.bitwise_xor(vals[a], vals[b], out=vals[out])
            elif op == _OP_AND:
                np.bitwise_and(vals[a], vals[b], out=vals[out])
            elif op == _OP_OR:
                np.bitwise_or(vals[a], vals[b], out=vals[out])
            elif op == _OP_NOT:
                np.bitwise_not(vals[a], out=vals[out])
            elif op == _OP_XNOR:
                np.bitwise_not(vals[a] ^ vals[b], out=vals[out])
            elif op == _OP_NAND:
                np.bitwise_not(vals[a] & vals[b], out=vals[out])
            elif op == _OP_NOR:
                np.bitwise_not(vals[a] | vals[b], out=vals[out])
            elif op == _OP_MUX:
                sel = vals[a]
                vals[out] = (sel & vals[c]) | (~sel & vals[b])
            else:  # _OP_BUF
                vals[out] = vals[a]

    def _run_program_faulty(self, fault_map: Mapping[int, Transform]) -> None:
        vals = self._vals
        for op, out, a, b, c in self._program:
            if op == _OP_XOR:
                np.bitwise_xor(vals[a], vals[b], out=vals[out])
            elif op == _OP_AND:
                np.bitwise_and(vals[a], vals[b], out=vals[out])
            elif op == _OP_OR:
                np.bitwise_or(vals[a], vals[b], out=vals[out])
            elif op == _OP_NOT:
                np.bitwise_not(vals[a], out=vals[out])
            elif op == _OP_XNOR:
                np.bitwise_not(vals[a] ^ vals[b], out=vals[out])
            elif op == _OP_NAND:
                np.bitwise_not(vals[a] & vals[b], out=vals[out])
            elif op == _OP_NOR:
                np.bitwise_not(vals[a] | vals[b], out=vals[out])
            elif op == _OP_MUX:
                sel = vals[a]
                vals[out] = (sel & vals[c]) | (~sel & vals[b])
            else:  # _OP_BUF
                vals[out] = vals[a]
            transform = fault_map.get(out)
            if transform is not None:
                vals[out] = transform(vals[out])

    def step(self) -> None:
        """One full clock cycle: evaluate logic, then latch every DFF."""
        self.eval_comb()
        if self._compiled is not None:
            self._compiled.latch()
        elif len(self._dff_q):
            self._vals[self._dff_q] = self._vals[self._dff_d]
        self.cycle += 1

    def run(self, cycles: int) -> None:
        """Advance ``cycles`` clock cycles."""
        for _ in range(cycles):
            self.step()

    # -------------------------------------------------------------- readout

    def get_nets_packed(self, nets: Sequence[int]) -> np.ndarray:
        """Raw packed rows for arbitrary nets — ``(len(nets), n_words)``.

        Values reflect the last :meth:`eval_comb`; call it (or :meth:`step`)
        first if inputs changed.
        """
        return self._vals[self._net_rows(nets)].copy()

    def get_nets_bits(self, nets: Sequence[int]) -> np.ndarray:
        """Net values as a ``(batch, len(nets))`` 0/1 matrix."""
        return unpack_bits(self._vals[self._net_rows(nets)], self.batch)

    def get_output_bits(self, name: str) -> np.ndarray:
        """Output port as a ``(batch, width)`` 0/1 matrix (LSB-first)."""
        try:
            nets = self.circuit.outputs[name]
        except KeyError:
            raise KeyError(
                f"no output port {name!r}; ports: {sorted(self.circuit.outputs)}"
            ) from None
        return self.get_nets_bits(nets)

    def get_output_ints(self, name: str) -> list[int]:
        """Output port as one integer per run."""
        from repro.utils.bits import bits_to_ints

        return bits_to_ints(self.get_output_bits(name))
