"""Structural analysis over circuits: cones, fanout, and reachability.

Used by the fault campaign to answer questions like "which nets feed the
comparator but not the datapath" and by tests to check that countermeasure
wrappers wired the cores up independently (no sneaky sharing between the
actual and redundant computations).
"""

from __future__ import annotations

from collections import deque

from repro.netlist.circuit import Circuit
from repro.netlist.gates import Gate, GateType

__all__ = [
    "fanin_cone",
    "fanout_cone",
    "fanout_map",
    "gate_by_output",
    "shared_logic",
]


def gate_by_output(circuit: Circuit) -> dict[int, Gate]:
    """Map each driven net to its driver gate."""
    return {g.out: g for g in circuit.gates}


def fanout_map(circuit: Circuit) -> dict[int, list[Gate]]:
    """Map each net to the gates that read it."""
    fan: dict[int, list[Gate]] = {}
    for gate in circuit.gates:
        for net in gate.ins:
            fan.setdefault(net, []).append(gate)
    return fan


def fanin_cone(
    circuit: Circuit, nets, *, through_dffs: bool = True
) -> set[int]:
    """All nets that can influence any of ``nets``.

    With ``through_dffs`` (default) the cone crosses register boundaries,
    giving sequential reachability; without it the cone stops at DFF outputs,
    giving the single-cycle combinational cone.
    """
    drivers = gate_by_output(circuit)
    seen: set[int] = set()
    work = deque(nets)
    while work:
        net = work.popleft()
        if net in seen:
            continue
        seen.add(net)
        gate = drivers.get(net)
        if gate is None:
            continue
        if gate.gtype is GateType.DFF and not through_dffs:
            continue
        work.extend(gate.ins)
    return seen


def fanout_cone(
    circuit: Circuit, nets, *, through_dffs: bool = True
) -> set[int]:
    """All nets that any of ``nets`` can influence (transitively)."""
    fan = fanout_map(circuit)
    seen: set[int] = set()
    work = deque(nets)
    while work:
        net = work.popleft()
        if net in seen:
            continue
        seen.add(net)
        for gate in fan.get(net, ()):
            if gate.gtype is GateType.DFF and not through_dffs:
                continue
            work.append(gate.out)
    return seen


def shared_logic(circuit: Circuit, outputs_a, outputs_b) -> set[int]:
    """Nets inside both fan-in cones, excluding primary inputs and constants.

    A correct duplication countermeasure shares *only* primary inputs (and
    the randomness) between its two cores; any other overlap means a single
    fault could corrupt both computations identically.  Tests use this to
    verify core independence.
    """
    drivers = gate_by_output(circuit)
    cone_a = fanin_cone(circuit, outputs_a)
    cone_b = fanin_cone(circuit, outputs_b)
    common = cone_a & cone_b
    return {
        net
        for net in common
        if (gate := drivers.get(net)) is not None
        and gate.gtype not in (GateType.INPUT, GateType.CONST0, GateType.CONST1)
    }
