"""Structural analysis over circuits: cones, fanout, and reachability.

Used by the fault campaign to answer questions like "which nets feed the
comparator but not the datapath" and by tests to check that countermeasure
wrappers wired the cores up independently (no sneaky sharing between the
actual and redundant computations).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.netlist.circuit import Circuit, CircuitError
from repro.netlist.gates import Gate, GateType

__all__ = [
    "LintError",
    "LintReport",
    "datapath_nets",
    "fanin_cone",
    "fanout_cone",
    "fanout_map",
    "gate_by_output",
    "lint_countermeasure",
    "shared_logic",
]


def gate_by_output(circuit: Circuit) -> dict[int, Gate]:
    """Map each driven net to its driver gate."""
    return {g.out: g for g in circuit.gates}


def fanout_map(circuit: Circuit) -> dict[int, list[Gate]]:
    """Map each net to the gates that read it."""
    fan: dict[int, list[Gate]] = {}
    for gate in circuit.gates:
        for net in gate.ins:
            fan.setdefault(net, []).append(gate)
    return fan


def fanin_cone(
    circuit: Circuit, nets, *, through_dffs: bool = True
) -> set[int]:
    """All nets that can influence any of ``nets``.

    With ``through_dffs`` (default) the cone crosses register boundaries,
    giving sequential reachability; without it the cone stops at DFF outputs,
    giving the single-cycle combinational cone.
    """
    drivers = gate_by_output(circuit)
    seen: set[int] = set()
    work = deque(nets)
    while work:
        net = work.popleft()
        if net in seen:
            continue
        seen.add(net)
        gate = drivers.get(net)
        if gate is None:
            continue
        if gate.gtype is GateType.DFF and not through_dffs:
            continue
        work.extend(gate.ins)
    return seen


def fanout_cone(
    circuit: Circuit, nets, *, through_dffs: bool = True
) -> set[int]:
    """All nets that any of ``nets`` can influence (transitively)."""
    fan = fanout_map(circuit)
    seen: set[int] = set()
    work = deque(nets)
    while work:
        net = work.popleft()
        if net in seen:
            continue
        seen.add(net)
        for gate in fan.get(net, ()):
            if gate.gtype is GateType.DFF and not through_dffs:
                continue
            work.append(gate.out)
    return seen


def shared_logic(circuit: Circuit, outputs_a, outputs_b) -> set[int]:
    """Nets inside both fan-in cones, excluding primary inputs and constants.

    A correct duplication countermeasure shares *only* primary inputs (and
    the randomness) between its two cores; any other overlap means a single
    fault could corrupt both computations identically.  Tests use this to
    verify core independence.
    """
    drivers = gate_by_output(circuit)
    cone_a = fanin_cone(circuit, outputs_a)
    cone_b = fanin_cone(circuit, outputs_b)
    common = cone_a & cone_b
    return {
        net
        for net in common
        if (gate := drivers.get(net)) is not None
        and gate.gtype not in (GateType.INPUT, GateType.CONST0, GateType.CONST1)
    }


# --------------------------------------------------------------------- lint


def datapath_nets(circuit: Circuit, cores) -> set[int]:
    """All logic nets inside any core's ciphertext fan-in cone.

    This is the region the paper's "single fault anywhere" claim covers:
    everything that participates in either redundant computation, excluding
    primary inputs and constants (faulting those is equivalent to querying
    different inputs, not attacking the computation) — and excluding the
    comparator/release backend, which sits *behind* the redundancy
    boundary.  The coverage certifier sweeps exactly this set.
    """
    drivers = gate_by_output(circuit)
    union: set[int] = set()
    for core in cores:
        union |= fanin_cone(circuit, core.ciphertext)
    return {
        net
        for net in union
        if (gate := drivers.get(net)) is not None
        and gate.gtype not in (GateType.INPUT, GateType.CONST0, GateType.CONST1)
    }


class LintError(CircuitError):
    """A countermeasure circuit violates a structural security invariant."""


@dataclass
class LintReport:
    """Outcome of :func:`lint_countermeasure` — empty lists mean a pass."""

    scheme: str
    #: logic nets inside ≥ 2 cores' fan-in cones (excluding inputs,
    #: constants, and the λ-distribution inverters)
    shared_nets: list[int] = field(default_factory=list)
    #: datapath nets whose corruption the comparator can never sense
    unobservable_nets: list[int] = field(default_factory=list)
    #: allocated net ids with no driver at all
    undriven_nets: list[int] = field(default_factory=list)
    #: driven nets read by nothing and exposed by no output port
    dangling_nets: list[int] = field(default_factory=list)
    #: total datapath nets examined (certificate bookkeeping)
    n_datapath: int = 0

    @property
    def passed(self) -> bool:
        return not (
            self.shared_nets
            or self.unobservable_nets
            or self.undriven_nets
            or self.dangling_nets
        )

    def to_dict(self) -> dict:
        """JSON-safe summary (embedded in coverage certificates)."""
        return {
            "passed": self.passed,
            "scheme": self.scheme,
            "n_datapath": self.n_datapath,
            "shared_nets": sorted(self.shared_nets),
            "unobservable_nets": sorted(self.unobservable_nets),
            "undriven_nets": sorted(self.undriven_nets),
            "dangling_nets": sorted(self.dangling_nets),
        }

    def raise_if_failed(self) -> None:
        if self.passed:
            return
        problems = []
        for label, nets in (
            ("cores share logic nets", self.shared_nets),
            ("comparator cannot observe nets", self.unobservable_nets),
            ("undriven nets", self.undriven_nets),
            ("dangling nets", self.dangling_nets),
        ):
            if nets:
                shown = ", ".join(map(str, sorted(nets)[:8]))
                if len(nets) > 8:
                    shown += ", ..."
                problems.append(f"{label}: {shown} ({len(nets)} total)")
        raise LintError(
            f"countermeasure lint failed for {self.scheme!r} — "
            + "; ".join(problems),
            net=next(
                iter(
                    sorted(
                        self.shared_nets
                        or self.unobservable_nets
                        or self.undriven_nets
                        or self.dangling_nets
                    )
                )
            ),
        )


def lint_countermeasure(design, *, strict: bool = True) -> LintReport:
    """Certify the structural soundness of a protected design's wiring.

    Three security invariants, any of which a buggy countermeasure builder
    could silently break while still producing correct fault-free
    ciphertexts:

    1. **Core independence** — no combinational logic shared between the
       actual and redundant computations (beyond primary inputs, constants
       and the λ-distribution inverters tagged ``lambda*``): a shared gate
       would let one physical fault corrupt every core identically,
       voiding the redundancy argument.
    2. **Comparator reachability** — every datapath net lies inside the
       fault flag's fan-in cone, i.e. the comparator can in principle
       sense a corruption of it.  A datapath net outside that cone is
       logic whose faults bypass detection by construction.
    3. **No dangling / undriven nets** — every allocated net id has a
       driver, and every driven net is either read by some gate or exposed
       through an output port.  Dangling logic is the classic signature of
       a half-wired comparator or a forgotten register connect.

    With ``strict`` (default) a violation raises :class:`LintError`
    naming the offending nets; otherwise the :class:`LintReport` is
    returned for the caller to inspect (the coverage certifier embeds it).
    Called from every countermeasure builder at construction time and from
    the certifier preamble.
    """
    circuit = design.circuit
    drivers = gate_by_output(circuit)
    report = LintReport(scheme=design.scheme)

    # 1 — core independence
    cones = [fanin_cone(circuit, core.ciphertext) for core in design.cores]
    shared: set[int] = set()
    for i in range(len(cones)):
        for j in range(i + 1, len(cones)):
            shared |= cones[i] & cones[j]
    for net in shared:
        gate = drivers.get(net)
        if gate is None:
            continue  # undriven nets are reported by check 3
        if gate.gtype in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
            continue
        if gate.tag.startswith("lambda"):
            # λ̄ inverters legitimately feed every redundant core; a fault
            # there flips one core's whole domain, which the comparator
            # senses (the campaign suite exercises exactly this).
            continue
        report.shared_nets.append(net)

    # 2 — comparator reachability
    datapath = datapath_nets(circuit, design.cores)
    report.n_datapath = len(datapath)
    if "fault" in circuit.outputs:
        observable = fanin_cone(circuit, circuit.outputs["fault"])
        report.unobservable_nets = sorted(datapath - observable)
    else:  # no comparator output at all: nothing is observable
        report.unobservable_nets = sorted(datapath)

    # 3 — dangling / undriven nets
    report.undriven_nets = [
        net for net in range(circuit.num_nets) if net not in drivers
    ]
    read: set[int] = set()
    for gate in circuit.gates:
        read.update(gate.ins)
    exposed: set[int] = set()
    for nets in circuit.outputs.values():
        exposed.update(nets)
    report.dangling_nets = [
        net
        for net in range(circuit.num_nets)
        if net not in read and net not in exposed and net in drivers
    ]

    if strict:
        report.raise_if_failed()
    return report
