"""Gate types and the :class:`Gate` record.

The cell alphabet deliberately matches what a technology mapper would emit
for a standard-cell flow (two-input combinational cells, an inverter/buffer,
a 2:1 mux and a D flip-flop).  Wider operations are built as trees by
:class:`~repro.netlist.builder.CircuitBuilder`.

Conventions
-----------
- A *net* is an integer id allocated by the owning circuit.  Every net has
  exactly one driver (a gate output, a primary input, or a constant).
- ``MUX`` input order is ``(sel, d0, d1)`` and selects ``d1`` when ``sel`` is
  1 (``out = d0 if sel == 0 else d1``).
- ``DFF`` input order is ``(d,)``; the output net is the ``Q`` pin.  Clocking
  is implicit: every flip-flop in a circuit latches simultaneously on
  :meth:`Simulator.step`.  The reset value lives in :attr:`Gate.init`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["GateType", "Gate", "COMBINATIONAL_TYPES", "SOURCE_TYPES"]


class GateType(enum.Enum):
    """Every cell kind understood by the simulator and the area mapper."""

    INPUT = "input"  # primary input bit (no fan-in)
    CONST0 = "const0"  # tied-low net
    CONST1 = "const1"  # tied-high net
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX = "mux"  # (sel, d0, d1) -> d1 if sel else d0
    DFF = "dff"  # (d,) -> q, latched on clock step

    @property
    def arity(self) -> int:
        """Number of input nets this gate type consumes."""
        return _ARITY[self]

    @property
    def is_combinational(self) -> bool:
        """True for cells evaluated inside a clock cycle (excludes DFF/sources)."""
        return self in COMBINATIONAL_TYPES

    def eval(self, *ins: int) -> int:
        """Evaluate the cell on scalar 0/1 inputs (reference semantics).

        The bit-parallel simulator re-implements these with vector ops; this
        scalar form is the single source of truth the tests check against.
        """
        if len(ins) != self.arity:
            raise ValueError(f"{self.name} expects {self.arity} inputs, got {len(ins)}")
        if self is GateType.CONST0:
            return 0
        if self is GateType.CONST1:
            return 1
        if self in (GateType.BUF, GateType.DFF):
            return ins[0]
        if self is GateType.NOT:
            return ins[0] ^ 1
        if self is GateType.AND:
            return ins[0] & ins[1]
        if self is GateType.OR:
            return ins[0] | ins[1]
        if self is GateType.NAND:
            return (ins[0] & ins[1]) ^ 1
        if self is GateType.NOR:
            return (ins[0] | ins[1]) ^ 1
        if self is GateType.XOR:
            return ins[0] ^ ins[1]
        if self is GateType.XNOR:
            return ins[0] ^ ins[1] ^ 1
        if self is GateType.MUX:
            sel, d0, d1 = ins
            return d1 if sel else d0
        raise ValueError(f"{self.name} has no evaluation semantics")


_ARITY: dict[GateType, int] = {
    GateType.INPUT: 0,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.BUF: 1,
    GateType.NOT: 1,
    GateType.AND: 2,
    GateType.OR: 2,
    GateType.NAND: 2,
    GateType.NOR: 2,
    GateType.XOR: 2,
    GateType.XNOR: 2,
    GateType.MUX: 3,
    GateType.DFF: 1,
}

COMBINATIONAL_TYPES = frozenset(
    {
        GateType.BUF,
        GateType.NOT,
        GateType.AND,
        GateType.OR,
        GateType.NAND,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
        GateType.MUX,
    }
)

SOURCE_TYPES = frozenset({GateType.INPUT, GateType.CONST0, GateType.CONST1})


@dataclass(frozen=True, slots=True)
class Gate:
    """One cell instance: ``out`` is driven by ``gtype`` applied to ``ins``.

    ``init`` is the power-on value for ``DFF`` cells and must stay 0 for all
    other types.  ``tag`` is a free-form label used by countermeasure
    builders to mark structural roles (e.g. ``"sbox13/round"``) so fault
    campaigns can target locations the way the paper describes them.
    """

    gtype: GateType
    out: int
    ins: tuple[int, ...] = ()
    init: int = 0
    tag: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if len(self.ins) != self.gtype.arity:
            raise ValueError(
                f"{self.gtype.name} gate needs {self.gtype.arity} inputs, "
                f"got {len(self.ins)}"
            )
        if self.init not in (0, 1):
            raise ValueError(f"DFF init must be 0 or 1, got {self.init}")
        if self.init and self.gtype is not GateType.DFF:
            raise ValueError(f"init=1 is only meaningful on DFF, not {self.gtype.name}")
