"""Levelized, opcode-batched evaluation kernel for the simulator.

The reference interpreter in :mod:`repro.netlist.simulator` dispatches one
tiny numpy op per gate per cycle, so a ~2,500-gate protected design costs
~2,500 Python iterations *per clock cycle* — interpreter overhead, not the
hardware, bounds campaign throughput.  This module compiles the circuit
once into a *level schedule*: the topologically-sorted gate program is
partitioned into dependency levels (gates within a level never read each
other's outputs), each level's gates are grouped by opcode, and the net
ids of every group are frozen into ``intp`` index arrays.  Evaluating a
(level, opcode) group is then one gather → one vectorized bitwise op →
one scatter over the packed value matrix, collapsing the per-cycle Python
work from ``O(gates)`` to ``O(levels × live_opcodes)`` — typically a few
hundred iterations down to a few dozen.

Fault semantics are preserved exactly (see the contract in
:class:`~repro.netlist.simulator.Simulator`): because no gate reads an
output produced in its own level, applying a faulted gate output's
transform after its level evaluates — but before any later level runs —
is observationally identical to the reference interpreter's
apply-right-after-the-gate behaviour.  Transforms are applied in program
order within the level, matching the reference ordering bit for bit.

The compiled :class:`LevelSchedule` depends only on the circuit structure
(never on batch size or fault maps) and is cached per :class:`Circuit`
identity, so the sharded campaign executor's workers — which build a
fresh :class:`~repro.netlist.simulator.Simulator` pair per chunk on the
same circuit object — levelize once per process, not once per shard.
"""

from __future__ import annotations

import time
import weakref
from collections.abc import Callable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.telemetry.metrics import kernel_timings_enabled
from repro.telemetry.metrics import metrics as _metrics

__all__ = [
    "LevelGroup",
    "LevelSchedule",
    "LevelizedKernel",
    "compile_schedule",
    "faults_by_level",
]

Transform = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class LevelGroup:
    """All gates of one type within one level, as gather/scatter indices.

    ``a``/``b``/``c`` follow the gate input conventions of
    :class:`~repro.netlist.gates.Gate` (``b``/``c`` are None for
    one-input cells; for MUX, ``a`` is the select, ``b``/``c`` are
    ``d0``/``d1``).
    """

    gtype: GateType
    out: np.ndarray  # (n,) intp — output net per gate
    a: np.ndarray  # (n,) intp — first input net per gate
    b: np.ndarray | None
    c: np.ndarray | None

    def __len__(self) -> int:  # pragma: no cover - trivial
        return len(self.out)


@dataclass(frozen=True)
class LevelSchedule:
    """A circuit compiled for batched evaluation.

    ``out_level``/``out_pos`` map every combinational gate's output net to
    the level that produces it and to its position in the reference
    program — what the faulty path needs to replay gate-output transforms
    at the right moment and in program order.
    """

    groups: tuple[tuple[LevelGroup, ...], ...]  # groups[level] -> opcode groups
    out_level: dict[int, int]
    out_pos: dict[int, int]
    max_group: int
    n_gates: int


#: circuit -> (topo_order identity, schedule); the topo cache object is
#: invalidated whenever the circuit mutates, so comparing its identity is
#: a precise staleness check for the compiled schedule.
_SCHEDULE_CACHE: "weakref.WeakKeyDictionary[Circuit, tuple[object, LevelSchedule]]"
_SCHEDULE_CACHE = weakref.WeakKeyDictionary()


def compile_schedule(circuit: Circuit) -> LevelSchedule:
    """Compile (or fetch the cached) level schedule for ``circuit``."""
    order = circuit.topo_order()
    cached = _SCHEDULE_CACHE.get(circuit)
    if cached is not None and cached[0] is order:
        return cached[1]

    out_pos = {gate.out: pos for pos, gate in enumerate(order)}
    out_level: dict[int, int] = {}
    level_groups: list[tuple[LevelGroup, ...]] = []
    max_group = 0
    for level, gates in enumerate(circuit.topo_levels()):
        by_type: dict[GateType, list] = {}
        for gate in gates:
            out_level[gate.out] = level
            by_type.setdefault(gate.gtype, []).append(gate)
        groups = []
        # deterministic group order within the level (value is the enum's
        # stable string name)
        for gtype in sorted(by_type, key=lambda t: t.value):
            members = by_type[gtype]
            max_group = max(max_group, len(members))
            arity = gtype.arity
            groups.append(
                LevelGroup(
                    gtype=gtype,
                    out=np.array([g.out for g in members], dtype=np.intp),
                    a=np.array([g.ins[0] for g in members], dtype=np.intp),
                    b=(
                        np.array([g.ins[1] for g in members], dtype=np.intp)
                        if arity > 1
                        else None
                    ),
                    c=(
                        np.array([g.ins[2] for g in members], dtype=np.intp)
                        if arity > 2
                        else None
                    ),
                )
            )
        level_groups.append(tuple(groups))

    schedule = LevelSchedule(
        groups=tuple(level_groups),
        out_level=out_level,
        out_pos=out_pos,
        max_group=max_group,
        n_gates=len(order),
    )
    _SCHEDULE_CACHE[circuit] = (order, schedule)
    return schedule


def faults_by_level(
    schedule: LevelSchedule, fault_map: Mapping[int, Transform]
) -> dict[int, list[tuple[int, int, Transform]]]:
    """Group gate-output transforms by producing level, program-ordered.

    Nets in ``fault_map`` that no combinational gate drives (source nets,
    unknown nets) are ignored here — exactly like the reference
    interpreter's per-gate ``fault_map.get(out)`` probe.  Shared by the
    levelized and compiled kernels, which both replay transforms at level
    boundaries in reference program order.
    """
    out_level = schedule.out_level
    out_pos = schedule.out_pos
    per_level: dict[int, list[tuple[int, int, Transform]]] = {}
    for net, transform in fault_map.items():
        level = out_level.get(net)
        if level is not None:
            per_level.setdefault(level, []).append((out_pos[net], net, transform))
    for entries in per_level.values():
        entries.sort()
    return per_level


class LevelizedKernel:
    """Executes a :class:`LevelSchedule` over a packed value matrix.

    One instance per simulator: it owns a scratch buffer sized
    ``(max_group, n_words)`` so MUX intermediates never allocate inside
    the cycle loop (the other cells compute in place on their gathered
    operands).
    """

    def __init__(self, schedule: LevelSchedule, n_words: int) -> None:
        self.schedule = schedule
        self._gt = np.empty((max(schedule.max_group, 1), n_words), dtype=np.uint64)

    def run(
        self, vals: np.ndarray, fault_map: Mapping[int, Transform] | None = None
    ) -> None:
        """Evaluate every level in order, applying ``fault_map`` transforms.

        Source-net transforms are the caller's job (the simulator applies
        them before the program runs, same as the reference path); this
        method handles the gate-output transforms.

        Telemetry: when per-(level, opcode) kernel timings are on
        (:func:`repro.telemetry.metrics.enable_kernel_timings` or
        ``REPRO_KERNEL_METRICS=1``) the instrumented twin below runs
        instead; the disabled default pays exactly this one flag check per
        call, keeping the hot path bit-for-bit the uninstrumented loop.
        """
        if kernel_timings_enabled():
            return self._run_timed(vals, fault_map)
        faulted = None
        if fault_map:
            faulted = self._faults_by_level(fault_map)
            if not faulted:
                faulted = None
        for level, groups in enumerate(self.schedule.groups):
            for group in groups:
                self._eval_group(group, vals)
            if faulted is not None:
                for _, net, transform in faulted.get(level, ()):
                    vals[net] = transform(vals[net])

    def _run_timed(
        self, vals: np.ndarray, fault_map: Mapping[int, Transform] | None = None
    ) -> None:
        """:meth:`run` with per-(level, opcode) timing histograms."""
        registry = _metrics
        registry.inc("kernel.levelized.cycles")
        faulted = None
        if fault_map:
            faulted = self._faults_by_level(fault_map)
            if not faulted:
                faulted = None
        for level, groups in enumerate(self.schedule.groups):
            for group in groups:
                t0 = time.perf_counter()
                self._eval_group(group, vals)
                registry.observe(
                    f"kernel.l{level:02d}.{group.gtype.value}",
                    time.perf_counter() - t0,
                )
            if faulted is not None:
                for _, net, transform in faulted.get(level, ()):
                    vals[net] = transform(vals[net])

    def _faults_by_level(
        self, fault_map: Mapping[int, Transform]
    ) -> dict[int, list[tuple[int, int, Transform]]]:
        return faults_by_level(self.schedule, fault_map)

    def _eval_group(self, group: LevelGroup, vals: np.ndarray) -> None:
        # Plain fancy-index gathers measure faster than np.take(..., out=)
        # here (small row counts, contiguous 512-byte rows); the ufuncs
        # then write into the preallocated scratch rows in place.
        n = len(group.out)
        a = vals[group.a]
        gtype = group.gtype
        if gtype is GateType.BUF:
            vals[group.out] = a
            return
        if gtype is GateType.NOT:
            vals[group.out] = np.bitwise_not(a, out=a)
            return
        if gtype is GateType.MUX:
            # out = d0 ^ (sel & (d0 ^ d1)) — three ufuncs instead of the
            # four of (sel & d1) | (~sel & d0)
            d0 = vals[group.b]
            t = np.bitwise_xor(d0, vals[group.c], out=self._gt[:n])
            np.bitwise_and(t, a, out=t)
            np.bitwise_xor(t, d0, out=t)
            vals[group.out] = t
            return
        b = vals[group.b]
        if gtype is GateType.XOR:
            t = np.bitwise_xor(a, b, out=a)
        elif gtype is GateType.AND:
            t = np.bitwise_and(a, b, out=a)
        elif gtype is GateType.OR:
            t = np.bitwise_or(a, b, out=a)
        elif gtype is GateType.XNOR:
            t = np.bitwise_xor(a, b, out=a)
            np.bitwise_not(t, out=t)
        elif gtype is GateType.NAND:
            t = np.bitwise_and(a, b, out=a)
            np.bitwise_not(t, out=t)
        elif gtype is GateType.NOR:
            t = np.bitwise_or(a, b, out=a)
            np.bitwise_not(t, out=t)
        else:  # pragma: no cover - schedule only contains known cells
            raise ValueError(f"levelized kernel cannot evaluate {gtype.name}")
        vals[group.out] = t
