"""VCD (Value Change Dump) waveform export.

Records selected nets of **one simulation lane** across clock cycles and
writes the standard VCD format every waveform viewer (GTKWave, Surfer)
reads.  Intended for debugging fault campaigns: re-run the one interesting
lane with a recorder attached and look at the wave.

Usage::

    recorder = VcdRecorder(sim, signals={"state": core.state_in,
                                         "fault": [fault_net]}, lane=0)
    for _ in range(31):
        sim.step()
        recorder.sample()
    recorder.write("debug.vcd")

Timescale: one VCD time unit per clock cycle (sampled after the edge).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.netlist.simulator import Simulator

__all__ = ["VcdRecorder"]

# printable VCD identifier characters
_ID_ALPHABET = [chr(c) for c in range(33, 127)]


def _identifier(index: int) -> str:
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_ALPHABET))
        chars.append(_ID_ALPHABET[rem])
    return "".join(chars)


class VcdRecorder:
    """Capture one lane's named multi-bit signals, cycle by cycle."""

    def __init__(
        self,
        sim: Simulator,
        signals: Mapping[str, Sequence[int]],
        *,
        lane: int = 0,
        module: str = "dut",
    ) -> None:
        if not signals:
            raise ValueError("need at least one signal to record")
        if not 0 <= lane < sim.batch:
            raise ValueError(f"lane {lane} out of range for batch {sim.batch}")
        self.sim = sim
        self.lane = lane
        self.module = module
        self.signals = {name: list(nets) for name, nets in signals.items()}
        self._ids = {
            name: _identifier(i) for i, name in enumerate(self.signals)
        }
        self._samples: list[tuple[int, dict[str, int]]] = []
        self.sample()  # initial values at the current cycle

    def _read(self) -> dict[str, int]:
        out = {}
        for name, nets in self.signals.items():
            bits = self.sim.get_nets_bits(nets)[self.lane]
            out[name] = int(sum(int(b) << i for i, b in enumerate(bits)))
        return out

    def sample(self) -> None:
        """Record the current values (call after each :meth:`Simulator.step`)."""
        self.sim.eval_comb()
        self._samples.append((self.sim.cycle, self._read()))

    def render(self) -> str:
        """The VCD text."""
        lines = [
            "$date repro gate-level simulation $end",
            "$version repro VcdRecorder $end",
            "$timescale 1 ns $end",
            f"$scope module {self.module} $end",
        ]
        for name, nets in self.signals.items():
            lines.append(
                f"$var wire {len(nets)} {self._ids[name]} {name} "
                f"[{len(nets) - 1}:0] $end"
            )
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")

        previous: dict[str, int] = {}
        for time, values in self._samples:
            changes = [
                (name, value)
                for name, value in values.items()
                if previous.get(name) != value
            ]
            if changes:
                lines.append(f"#{time}")
                for name, value in changes:
                    width = len(self.signals[name])
                    if width == 1:
                        lines.append(f"{value}{self._ids[name]}")
                    else:
                        lines.append(f"b{value:0{width}b} {self._ids[name]}")
            previous = dict(values)
        return "\n".join(lines) + "\n"

    def write(self, path) -> None:
        """Write the VCD to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.render())
