"""Structural Verilog export / import for :class:`Circuit`.

The authors' flow synthesised Verilog RTL and fed the mapped netlist to
VerFI.  We provide the reverse bridge: our circuits can be written out as
flat structural Verilog (one primitive instance per gate, `always @(posedge
clk)` blocks for the registers), suitable for cross-checking in any external
simulator or synthesis tool, and read back in (the same subset only), which
the tests use as a round-trip invariant.
"""

from __future__ import annotations

import re

from repro.netlist.circuit import Circuit
from repro.netlist.gates import Gate, GateType

__all__ = ["to_verilog", "from_verilog"]

_PRIMITIVES = {
    GateType.BUF: "buf",
    GateType.NOT: "not",
    GateType.AND: "and",
    GateType.OR: "or",
    GateType.NAND: "nand",
    GateType.NOR: "nor",
    GateType.XOR: "xor",
    GateType.XNOR: "xnor",
}


def _net_name(net: int) -> str:
    return f"n{net}"


def to_verilog(circuit: Circuit, *, module_name: str | None = None) -> str:
    """Render the circuit as flat structural Verilog.

    Ports become ``input``/``output`` vectors; every internal net is a wire
    named ``n<id>``; DFFs become a single clocked always block with an
    asynchronous reset to their init values.  MUX cells are emitted as
    ternary assigns (there is no Verilog mux primitive).
    """
    module_name = module_name or re.sub(r"\W+", "_", circuit.name) or "top"
    lines: list[str] = []
    ports = ["clk", "rst"]
    decls: list[str] = ["  input clk;", "  input rst;"]

    for name, nets in circuit.inputs.items():
        ports.append(name)
        decls.append(f"  input [{len(nets) - 1}:0] {name};")
    for name, nets in circuit.outputs.items():
        ports.append(name)
        decls.append(f"  output [{len(nets) - 1}:0] {name};")

    lines.append(f"module {module_name}({', '.join(ports)});")
    lines.extend(decls)
    lines.append(f"  wire [{max(circuit.num_nets - 1, 0)}:0] n;")

    for name, nets in circuit.inputs.items():
        for i, net in enumerate(nets):
            lines.append(f"  assign n[{net}] = {name}[{i}];")
    for name, nets in circuit.outputs.items():
        for i, net in enumerate(nets):
            lines.append(f"  assign {name}[{i}] = n[{net}];")

    regs: list[Gate] = []
    for idx, gate in enumerate(circuit.gates):
        if gate.gtype is GateType.INPUT:
            continue
        if gate.gtype is GateType.CONST0:
            lines.append(f"  assign n[{gate.out}] = 1'b0;")
        elif gate.gtype is GateType.CONST1:
            lines.append(f"  assign n[{gate.out}] = 1'b1;")
        elif gate.gtype is GateType.DFF:
            regs.append(gate)
        elif gate.gtype is GateType.MUX:
            sel, d0, d1 = gate.ins
            lines.append(
                f"  assign n[{gate.out}] = n[{sel}] ? n[{d1}] : n[{d0}];"
            )
        else:
            prim = _PRIMITIVES[gate.gtype]
            args = ", ".join(f"n[{x}]" for x in (gate.out, *gate.ins))
            lines.append(f"  {prim} g{idx}({args});")

    if regs:
        lines.append("  always @(posedge clk or posedge rst) begin")
        lines.append("    if (rst) begin")
        for gate in regs:
            lines.append(f"      n[{gate.out}] <= 1'b{gate.init};")
        lines.append("    end else begin")
        for gate in regs:
            lines.append(f"      n[{gate.out}] <= n[{gate.ins[0]}];")
        lines.append("    end")
        lines.append("  end")

    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_RE_PORT = re.compile(r"^\s*(input|output)\s*(?:\[(\d+):0\])?\s*(\w+);\s*$")
_RE_ASSIGN_IN = re.compile(r"^\s*assign n\[(\d+)\] = (\w+)\[(\d+)\];\s*$")
_RE_ASSIGN_OUT = re.compile(r"^\s*assign (\w+)\[(\d+)\] = n\[(\d+)\];\s*$")
_RE_ASSIGN_CONST = re.compile(r"^\s*assign n\[(\d+)\] = 1'b([01]);\s*$")
_RE_ASSIGN_MUX = re.compile(
    r"^\s*assign n\[(\d+)\] = n\[(\d+)\] \? n\[(\d+)\] : n\[(\d+)\];\s*$"
)
_RE_PRIM = re.compile(r"^\s*(buf|not|and|or|nand|nor|xor|xnor)\s+g\d+\(([^)]*)\);\s*$")
_RE_DFF_RST = re.compile(r"^\s*n\[(\d+)\] <= 1'b([01]);\s*$")
_RE_DFF_CLK = re.compile(r"^\s*n\[(\d+)\] <= n\[(\d+)\];\s*$")
_RE_WIRES = re.compile(r"^\s*wire \[(\d+):0\] n;\s*$")


def from_verilog(text: str) -> Circuit:
    """Parse Verilog produced by :func:`to_verilog` back into a circuit.

    Only the exact subset emitted by :func:`to_verilog` is supported; this
    exists to make export round-trippable and testable, not to be a general
    Verilog front-end.
    """
    module = re.search(r"module\s+(\w+)\s*\(", text)
    circuit = Circuit(module.group(1) if module else "imported")

    in_ports: dict[str, int] = {}
    out_ports: dict[str, int] = {}
    num_nets = 0
    gates: list[tuple] = []  # deferred (kind, payload)
    dff_init: dict[int, int] = {}
    dff_d: dict[int, int] = {}
    input_bindings: dict[int, tuple[str, int]] = {}
    output_bindings: dict[str, dict[int, int]] = {}

    for line in text.splitlines():
        if m := _RE_WIRES.match(line):
            num_nets = int(m.group(1)) + 1
        elif m := _RE_PORT.match(line):
            direction, msb, name = m.groups()
            if name in ("clk", "rst"):
                continue
            width = int(msb) + 1 if msb else 1
            (in_ports if direction == "input" else out_ports)[name] = width
        elif m := _RE_ASSIGN_IN.match(line):
            net, name, bit = int(m.group(1)), m.group(2), int(m.group(3))
            input_bindings[net] = (name, bit)
        elif m := _RE_ASSIGN_OUT.match(line):
            name, bit, net = m.group(1), int(m.group(2)), int(m.group(3))
            output_bindings.setdefault(name, {})[bit] = net
        elif m := _RE_ASSIGN_CONST.match(line):
            gates.append(("const", int(m.group(1)), int(m.group(2))))
        elif m := _RE_ASSIGN_MUX.match(line):
            out, sel, d1, d0 = (int(x) for x in m.groups())
            gates.append(("mux", out, (sel, d0, d1)))
        elif m := _RE_PRIM.match(line):
            prim = m.group(1)
            nets = [int(x) for x in re.findall(r"n\[(\d+)\]", m.group(2))]
            gates.append(("prim", prim, nets[0], tuple(nets[1:])))
        elif m := _RE_DFF_RST.match(line):
            dff_init[int(m.group(1))] = int(m.group(2))
        elif m := _RE_DFF_CLK.match(line):
            dff_d[int(m.group(1))] = int(m.group(2))

    while circuit.num_nets < num_nets:
        circuit.new_net()

    # Primary input nets must be registered as INPUT gates in port order.
    for name, width in in_ports.items():
        nets = [0] * width
        for net, (pname, bit) in input_bindings.items():
            if pname == name:
                nets[bit] = net
        for i, net in enumerate(nets):
            circuit.add_gate(GateType.INPUT, out=net, tag=f"{name}[{i}]")
        circuit.inputs[name] = nets

    type_by_name = {v: k for k, v in _PRIMITIVES.items()}
    for entry in gates:
        if entry[0] == "const":
            _, out, value = entry
            circuit.add_gate(GateType.CONST1 if value else GateType.CONST0, out=out)
        elif entry[0] == "mux":
            _, out, ins = entry
            circuit.add_gate(GateType.MUX, ins, out=out)
        else:
            _, prim, out, ins = entry
            circuit.add_gate(type_by_name[prim], ins, out=out)

    for q, d in dff_d.items():
        circuit.add_gate(GateType.DFF, (d,), out=q, init=dff_init.get(q, 0))

    for name, width in out_ports.items():
        bits = output_bindings.get(name, {})
        circuit.set_output(name, [bits[i] for i in range(width)])

    circuit.validate()
    return circuit
