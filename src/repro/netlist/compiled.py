"""Ahead-of-time compiled evaluation kernel: generated straight-line code
over a zero-copy buffer plan.

The levelized kernel (:mod:`repro.netlist.levelized`) already collapses the
per-cycle Python work to one gather → op → scatter per (level, opcode)
group, but at campaign batch sizes the remaining cost is dominated by
Python-side dispatch and by row-at-a-time index machinery: every group
pays a fancy-index gather (which also heap-allocates its result), a
fancy-index scatter back into the net matrix, and an interpreted trip
through the group loop.  This module removes all three:

**Program-order value matrix.**  The kernel evaluates into a value matrix
whose rows are a *permutation* of the net ids: source nets first (primary
inputs, constants, then every DFF output as one contiguous block), then
each combinational gate's output in schedule order.  Every (level, opcode)
group's outputs thereby become one contiguous row block, so group results
are written *directly* by the ufunc (``out=`` a basic slice view) — the
per-group scatter disappears entirely.  The permutation is internal to the
kernel; :class:`~repro.netlist.simulator.Simulator` routes all net-indexed
access through the kernel's ``row_of`` map, so the external semantics
(ports, faults, readout) are unchanged and bit-exact.

**Constant-folded index plan.**  At compile time every operand index array
is classified: single rows and arithmetic-stride sequences (including the
broadcast case of one net feeding a whole group, e.g. a shared MUX select)
become numpy *views* bound once per kernel instance — zero copies, zero
calls in the cycle loop.  The rest are concatenated into one per-level
gather (content-deduplicated, so operand arrays shared between groups are
fetched once) executed as a single allocation-free
``vals.take(idx, 0, pool_slice, "clip")``.

**Generated straight-line code.**  Each level is lowered to one generated
Python function whose statements are exactly the level's ufunc calls on
the prebound views (inverting cells — NAND/NOR/XNOR — are laid out
adjacently so their final complement fuses into a single level-wide
``invert``).  The functions are ``compile()``d once per circuit and cached
in a per-:class:`Circuit` weakref cache next to the level schedule, so the
campaign executor's shard workers pay codegen once per process; binding
the views to a concrete batch size is a cheap per-``Simulator`` step.

The steady-state fault-free cycle therefore performs **zero heap
allocations** (asserted by ``tests/test_compiled_kernel.py``): every
array touched — the value matrix, the gather pool, the MUX scratch, the
DFF latch buffer — is preallocated and prebound.

Fault semantics follow the shared contract (see
:class:`~repro.netlist.simulator.Simulator`): the faulty path splits the
generated program at level boundaries and replays gate-output transforms
in reference program order via :func:`repro.netlist.levelized.faults_by_level`,
exactly like the levelized kernel.
"""

from __future__ import annotations

import time
import weakref
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.netlist.levelized import (
    LevelGroup,
    LevelSchedule,
    Transform,
    compile_schedule,
    faults_by_level,
)
from repro.telemetry.metrics import kernel_timings_enabled
from repro.telemetry.metrics import metrics as _metrics

__all__ = ["CompiledProgram", "CompiledKernel", "compile_program"]

#: cells whose result is a complement of a cheaper cell; they are laid out
#: adjacently within each level so one fused ``invert`` finishes them all
_INVERTING = frozenset((GateType.NAND, GateType.NOR, GateType.XNOR))

#: base ufunc computing each cell (inverting cells complete via the fused
#: level-wide invert; MUX lowers to xor/and/xor)
_BASE_UFUNC = {
    GateType.XOR: "XOR",
    GateType.XNOR: "XOR",
    GateType.AND: "AND",
    GateType.NAND: "AND",
    GateType.OR: "OR",
    GateType.NOR: "OR",
}


@dataclass(frozen=True)
class CompiledProgram:
    """A circuit lowered to generated per-level code plus its buffer plan.

    Cached per :class:`Circuit` (weakref, invalidated with the topo cache
    like the level schedule), shared by every kernel instance on the same
    circuit regardless of batch size.  ``views``/``index_arrays`` are
    layout *descriptors*; :class:`CompiledKernel` materialises them
    against concrete buffers.
    """

    schedule: LevelSchedule
    row_of: np.ndarray  # (num_nets,) intp — net id -> matrix row
    net_of: np.ndarray  # (num_nets,) intp — matrix row -> net id
    source: str  # generated factory source (kept for introspection/tests)
    code: object  # compiled code object defining ``_factory``
    views: tuple[tuple, ...]  # view descriptors, see _materialize_view
    index_arrays: tuple[np.ndarray, ...]  # per-level gather index arrays
    pool_rows: int  # gather pool height
    scr_rows: int  # MUX scratch height
    dff_d_rows: np.ndarray  # (n_dffs,) intp — D-pin rows, dffs() order
    q_lo: int  # DFF output rows occupy [q_lo, q_hi) — one
    q_hi: int  # contiguous block, so the latch writes a slice
    n_levels: int


#: circuit -> (topo_order identity, program); same staleness discipline as
#: the level-schedule cache: the topo cache object is invalidated whenever
#: the circuit mutates, so identity comparison detects a stale program.
_PROGRAM_CACHE: "weakref.WeakKeyDictionary[Circuit, tuple[object, CompiledProgram]]"
_PROGRAM_CACHE = weakref.WeakKeyDictionary()


def _operand(
    w: np.ndarray,
    gidx: list[int],
    pool_map: dict[bytes, tuple[int, int]],
) -> tuple:
    """Classify one operand index array into a view descriptor.

    Arithmetic sequences (any stride, including 0 = one net broadcast to
    the whole group) become direct views of the value matrix; everything
    else lands in the level's gather pool, content-deduplicated so a
    second group reading the same rows reuses the first fetch.
    """
    n = len(w)
    if n == 1:
        return ("row", int(w[0]))
    d = np.diff(w)
    step = int(d[0])
    if bool(np.all(d == step)):
        if step == 0:
            return ("bcast", int(w[0]), n)
        start = int(w[0])
        stop: int | None = start + step * n
        if step < 0 and stop < 0:
            stop = None
        return ("slice", start, stop, step)
    key = w.tobytes()
    span = pool_map.get(key)
    if span is None:
        lo = len(gidx)
        gidx.extend(int(r) for r in w)
        span = (lo, len(gidx))
        pool_map[key] = span
    return ("pool", span[0], span[1])


def compile_program(circuit: Circuit) -> CompiledProgram:
    """Compile (or fetch the cached) generated program for ``circuit``."""
    order = circuit.topo_order()
    cached = _PROGRAM_CACHE.get(circuit)
    if cached is not None and cached[0] is order:
        return cached[1]

    schedule = compile_schedule(circuit)
    num_nets = circuit.num_nets

    # ---- row layout: sources (DFF outputs last, contiguous), then gate
    # outputs level by level with inverting groups clustered at the end of
    # their level (their complements fuse into one invert per level).
    #
    # Block *order* is fixed by the above, but the order of members
    # *within* each block (the plain-source block, the DFF-Q block, each
    # (level, opcode) group's output block) is free: outputs land
    # contiguously either way, and faults/readout go through ``row_of``.
    # That freedom is the key to killing gathers: a backward pass over the
    # consumers picks, for every block, the member order of its largest
    # single-block operand, which turns that operand into a plain
    # ascending slice of the value matrix — a zero-copy view instead of a
    # pooled gather row per gate.  Wiring permutations (e.g. a cipher's
    # bit-permutation layer) are thereby absorbed into the layout once, at
    # compile time.
    comb_outs = set(schedule.out_level)
    dff_q = [g.out for g in circuit.dffs()]
    dff_q_set = set(dff_q)
    plain_sources = [
        n for n in range(num_nets) if n not in comb_outs and n not in dff_q_set
    ]

    # block membership: net -> (block key, member index within block)
    block_of: dict[int, tuple[object, int]] = {}
    for j, n in enumerate(plain_sources):
        block_of[n] = ("src", j)
    for j, n in enumerate(dff_q):
        block_of[n] = ("q", j)
    group_layout: list[list] = []  # per level: LevelGroup in placement order
    for level, groups in enumerate(schedule.groups):
        ordered = sorted(
            groups, key=lambda g: (g.gtype in _INVERTING, g.gtype.value)
        )
        for gi, g in enumerate(ordered):
            for j, o in enumerate(g.out):
                block_of[int(o)] = ((level, gi), j)
        group_layout.append(ordered)

    # backward constraint pass: walk levels last-to-first (a block's own
    # order is final before its operand slots are inspected, since
    # consumers always sit in later levels), biggest slot first within a
    # level, and give each still-free producer block the member order of
    # the winning slot.
    perm: dict[object, list[int]] = {}

    def constrain(nets) -> None:
        entries = [block_of[int(n)] for n in nets]
        key = entries[0][0]
        if key in perm or any(e[0] != key for e in entries):
            return
        members = [e[1] for e in entries]
        if len(set(members)) != len(members):
            return
        perm[key] = members

    def member_order(key, size: int) -> list[int]:
        prefix = perm.get(key)
        if prefix is None:
            return list(range(size))
        seen = set(prefix)
        return prefix + [j for j in range(size) if j not in seen]

    for level in range(len(group_layout) - 1, -1, -1):
        slots = []
        for gi, g in enumerate(group_layout[level]):
            if len(g.out) < 2:
                continue
            order_in = member_order((level, gi), len(g.out))
            for w in (g.a, g.b, g.c):
                if w is not None:
                    slots.append(w[order_in])
        for w in sorted(slots, key=len, reverse=True):
            constrain(w)
    # opportunistic: linearize the DFF latch gather too, if the D pins all
    # come from one still-free block
    q_order = member_order("q", len(dff_q))
    d_nets = [circuit.dffs()[j].ins[0] for j in q_order]
    if len(d_nets) >= 2:
        constrain(d_nets)

    # ---- assign rows block by block under the chosen member orders
    row_of = np.empty(num_nets, dtype=np.intp)
    row = 0
    for j in member_order("src", len(plain_sources)):
        row_of[plain_sources[j]] = row
        row += 1
    q_lo = row
    dff_q = [dff_q[j] for j in q_order]
    for n in dff_q:
        row_of[n] = row
        row += 1
    q_hi = row

    ordered_levels = []
    for level, ordered in enumerate(group_layout):
        placed = []
        for gi, g in enumerate(ordered):
            order_in = member_order((level, gi), len(g.out))
            if order_in != list(range(len(g.out))):
                g = LevelGroup(
                    gtype=g.gtype,
                    out=g.out[order_in],
                    a=g.a[order_in],
                    b=None if g.b is None else g.b[order_in],
                    c=None if g.c is None else g.c[order_in],
                )
            lo = row
            for o in g.out:
                row_of[o] = row
                row += 1
            placed.append((g, lo, row))
        ordered_levels.append(placed)
    assert row == num_nets

    # ---- buffer plan + per-level statement lists
    views: dict[tuple, int] = {}

    def view(desc: tuple) -> str:
        idx = views.get(desc)
        if idx is None:
            idx = len(views)
            views[desc] = idx
        return f"v{idx}"

    index_arrays: list[np.ndarray] = []
    pool_rows = 0
    scr_rows = 0
    body: list[str] = []
    all_stmts: list[str] = []
    for level, placed in enumerate(ordered_levels):
        gidx: list[int] = []
        pool_map: dict[bytes, tuple[int, int]] = {}
        stmts: list[str] = []
        inv_lo = inv_hi = None
        for g, lo, hi in placed:
            dest = view(("slice", lo, hi, 1)) if hi - lo > 1 else view(("row", lo))
            if g.gtype in _INVERTING:
                inv_lo = lo if inv_lo is None else inv_lo
                inv_hi = hi
            a = view(_operand(row_of[g.a], gidx, pool_map))
            if g.gtype is GateType.BUF:
                stmts.append(f"CPY({dest}, {a})")
                continue
            if g.gtype is GateType.NOT:
                stmts.append(f"INV({a}, {dest})")
                continue
            if g.gtype is GateType.MUX:
                b = view(_operand(row_of[g.b], gidx, pool_map))
                c = view(_operand(row_of[g.c], gidx, pool_map))
                # out = d0 ^ (sel & (d0 ^ d1)), computed through the dest
                # rows themselves: dest can never alias an operand (it is
                # this level's output block; operands are earlier rows),
                # so no scratch buffer is needed at all
                stmts.append(f"XOR({b}, {c}, {dest})")
                stmts.append(f"AND({dest}, {a}, {dest})")
                stmts.append(f"XOR({dest}, {b}, {dest})")
                continue
            b = view(_operand(row_of[g.b], gidx, pool_map))
            stmts.append(f"{_BASE_UFUNC[g.gtype]}({a}, {b}, {dest})")
        if inv_lo is not None:
            iv = (
                view(("slice", inv_lo, inv_hi, 1))
                if inv_hi - inv_lo > 1
                else view(("row", inv_lo))
            )
            stmts.append(f"INV({iv}, {iv})")
        if gidx:
            arr = np.array(gidx, dtype=np.intp)
            pool = view(("pool", 0, len(arr)))
            stmts.insert(0, f"take(i{len(index_arrays)}, 0, {pool}, 'clip')")
            index_arrays.append(arr)
            pool_rows = max(pool_rows, len(arr))
        body.append(f"def _L{level}():")
        body.extend(f"    {s}" for s in stmts)
        all_stmts.extend(stmts)

    # ---- generated factory: binds the prebound views into the fused
    # whole-cycle clean function (one call per fault-free cycle) plus the
    # per-level functions the faulty path interleaves with transform
    # replay.  Compiled once per circuit; executed (a few microseconds)
    # once per kernel instance.
    body.append("def _clean():")
    body.extend(f"    {s}" for s in (all_stmts or ["pass"]))
    names = [f"v{i}" for i in range(len(views))]
    inames = [f"i{i}" for i in range(len(index_arrays))]
    lines = ["def _factory(take, XOR, AND, OR, INV, CPY, views, idx):"]
    if names:
        lines.append(f"    ({', '.join(names)},) = views")
    if inames:
        lines.append(f"    ({', '.join(inames)},) = idx")
    lines.extend(f"    {b}" for b in body)
    lines.append(
        "    return _clean, ("
        + ", ".join(f"_L{i}" for i in range(len(ordered_levels)))
        + ("," if len(ordered_levels) == 1 else "")
        + ")"
    )
    source = "\n".join(lines) + "\n"
    code = compile(source, f"<compiled:{circuit.name}>", "exec")

    net_of = np.empty(num_nets, dtype=np.intp)
    net_of[row_of] = np.arange(num_nets, dtype=np.intp)
    # D-pin rows in Q-block row order, so latch row i feeds Q row q_lo + i
    dff_d_rows = np.array(
        [row_of[circuit.dffs()[j].ins[0]] for j in q_order], dtype=np.intp
    )
    program = CompiledProgram(
        schedule=schedule,
        row_of=row_of,
        net_of=net_of,
        source=source,
        code=code,
        views=tuple(views),
        index_arrays=tuple(index_arrays),
        pool_rows=pool_rows,
        scr_rows=scr_rows,
        dff_d_rows=dff_d_rows,
        q_lo=q_lo,
        q_hi=q_hi,
        n_levels=len(ordered_levels),
    )
    _PROGRAM_CACHE[circuit] = (order, program)
    return program


def _materialize_view(
    desc: tuple, vals: np.ndarray, pool: np.ndarray, scr: np.ndarray
) -> np.ndarray:
    kind = desc[0]
    if kind == "slice":
        return vals[desc[1] : desc[2] : desc[3]]
    if kind == "row":
        return vals[desc[1]]
    if kind == "pool":
        return pool[desc[1] : desc[2]]
    if kind == "bcast":
        return np.broadcast_to(vals[desc[1]], (desc[2], vals.shape[1]))
    if kind == "scr":
        return scr[: desc[1]]
    if kind == "scr_row":
        return scr[0]
    raise ValueError(f"unknown view descriptor {desc!r}")  # pragma: no cover


class CompiledKernel:
    """Executes a :class:`CompiledProgram` over its own value matrix.

    The kernel owns the program-order matrix (:attr:`vals`) and the gather
    pool; the :class:`~repro.netlist.simulator.Simulator` adopts
    :attr:`vals` as its value store and remaps net-indexed access through
    :attr:`row_of`.
    """

    def __init__(self, program: CompiledProgram, n_words: int) -> None:
        self.program = program
        self.row_of = program.row_of
        num_nets = len(program.row_of)
        self.vals = np.zeros((num_nets, n_words), dtype=np.uint64)
        self._pool = np.empty((max(program.pool_rows, 1), n_words), dtype=np.uint64)
        self._scr = np.empty((max(program.scr_rows, 1), n_words), dtype=np.uint64)
        bound = tuple(
            _materialize_view(d, self.vals, self._pool, self._scr)
            for d in program.views
        )
        ns: dict = {}
        exec(program.code, {}, ns)
        self._clean, self._levels = ns["_factory"](
            self.vals.take,
            np.bitwise_xor,
            np.bitwise_and,
            np.bitwise_or,
            np.bitwise_not,
            np.copyto,
            bound,
            program.index_arrays,
        )
        # prebound allocation-free DFF latch.  When no D pin reads a row
        # inside the Q block (no FF chained straight to another FF's Q, as
        # in shift registers) the take can write the Q block directly; the
        # overlapping case double-buffers so every D is read before any Q
        # is overwritten, matching the fancy-assignment semantics of the
        # other backends.  The Q block is one contiguous slice by
        # construction.
        d_rows = program.dff_d_rows
        self._latch_direct = bool(
            len(d_rows)
            and not ((d_rows >= program.q_lo) & (d_rows < program.q_hi)).any()
        )
        self._dff_buf = np.empty(
            (0 if self._latch_direct else len(d_rows), n_words), dtype=np.uint64
        )
        self._q_view = self.vals[program.q_lo : program.q_hi]

    def latch(self) -> None:
        """Clock every DFF: Q <- D, allocation-free."""
        if self._latch_direct:
            self.vals.take(self.program.dff_d_rows, 0, self._q_view, "clip")
        elif len(self._dff_buf):
            self.vals.take(self.program.dff_d_rows, 0, self._dff_buf, "clip")
            np.copyto(self._q_view, self._dff_buf)

    def run(
        self, vals: np.ndarray, fault_map: Mapping[int, Transform] | None = None
    ) -> None:
        """Evaluate every level, applying ``fault_map`` gate-output transforms.

        ``vals`` is accepted for kernel-interface symmetry and must be this
        kernel's own matrix.  The fault-free path is the fused generated
        program; with faults the same per-level functions run split, each
        level's transforms replayed in reference program order — the exact
        discipline of the levelized kernel, on permuted rows.
        """
        if kernel_timings_enabled():
            return self._run_timed(fault_map)
        if fault_map:
            faulted = faults_by_level(self.program.schedule, fault_map)
            if faulted:
                return self._run_faulty(faulted)
        self._clean()

    def _run_faulty(
        self, faulted: dict[int, list[tuple[int, int, Transform]]]
    ) -> None:
        vals = self.vals
        row_of = self.row_of
        for level, fn in enumerate(self._levels):
            fn()
            for _, net, transform in faulted.get(level, ()):
                row = row_of[net]
                vals[row] = transform(vals[row])

    def _run_timed(self, fault_map: Mapping[int, Transform] | None) -> None:
        """:meth:`run` with per-level timing histograms."""
        registry = _metrics
        registry.inc("kernel.compiled.cycles")
        faulted = None
        if fault_map:
            faulted = faults_by_level(self.program.schedule, fault_map)
            if not faulted:
                faulted = None
        vals = self.vals
        row_of = self.row_of
        for level, fn in enumerate(self._levels):
            t0 = time.perf_counter()
            fn()
            registry.observe(
                f"kernel.compiled.l{level:02d}", time.perf_counter() - t0
            )
            if faulted is not None:
                for _, net, transform in faulted.get(level, ()):
                    row = row_of[net]
                    vals[row] = transform(vals[row])
