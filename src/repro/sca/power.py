"""Register-level power traces from gate-level simulation.

One sample per clock cycle per run: the summed Hamming weight of (or
Hamming distance across) the monitored nets — by default every flip-flop
output, since register clocking dominates the dynamic power of a
round-iterative design.  This is the standard zeroth-order power model used
in simulation-based leakage assessment.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence

import numpy as np

from repro.countermeasures.base import ProtectedDesign
from repro.netlist.gates import GateType
from repro.rng import make_rng, random_bits

__all__ = ["LeakageModel", "power_trace"]


class LeakageModel(enum.Enum):
    """What each trace sample measures."""

    #: summed register values per cycle (static/value leakage)
    HAMMING_WEIGHT = "hw"
    #: summed register toggles between consecutive cycles (dynamic power)
    HAMMING_DISTANCE = "hd"


def power_trace(
    design: ProtectedDesign,
    plaintexts: Sequence[int],
    key: int,
    *,
    model: LeakageModel = LeakageModel.HAMMING_DISTANCE,
    nets: Sequence[int] | None = None,
    rng: np.random.Generator | int | None = None,
    lambdas: Sequence[int] | None = None,
) -> np.ndarray:
    """Capture a ``(batch, cycles)`` power trace matrix for one batch.

    ``lambdas`` optionally pins the λ input per run (for λ-leakage
    assessments); otherwise λ is drawn from ``rng`` like a normal
    invocation.  Only static-λ designs support pinning.
    """
    rng = make_rng(rng)
    batch = len(plaintexts)
    sim = design.simulator(batch)
    if nets is None:
        nets = [g.out for g in design.circuit.dffs()]
    nets = list(nets)

    sim.set_input_ints("plaintext", list(plaintexts))
    sim.set_input_ints("key", [key] * batch)
    if "garbage" in design.circuit.inputs:
        sim.set_input_bits("garbage", random_bits(rng, batch, design.spec.block_bits))
    if design.lambda_width:
        if lambdas is not None:
            if design.dynamic_lambda:
                raise ValueError("λ pinning needs a static-λ design (prime/acisp)")
            sim.set_input_ints("lambda", list(lambdas))
        elif design.dynamic_lambda:
            per_cycle = [
                random_bits(rng, batch, design.lambda_width)
                for _ in range(design.cycles + 1)
            ]
            sim.set_input_schedule(
                "lambda", lambda cycle: per_cycle[min(cycle, design.cycles)]
            )
        else:
            sim.set_input_bits("lambda", random_bits(rng, batch, design.lambda_width))

    samples = np.zeros((batch, design.cycles), dtype=np.float64)
    previous = sim.get_nets_bits(nets).astype(np.int16)
    for cycle in range(design.cycles):
        sim.step()
        current = sim.get_nets_bits(nets).astype(np.int16)
        if model is LeakageModel.HAMMING_DISTANCE:
            samples[:, cycle] = np.abs(current - previous).sum(axis=1)
        else:
            samples[:, cycle] = current.sum(axis=1)
        previous = current
    return samples
