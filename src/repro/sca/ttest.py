"""Welch's t-test leakage assessment (the TVLA methodology).

Two trace populations (e.g. fixed-vs-random plaintext, or λ=0 vs λ=1) are
compared point-by-point; |t| above the conventional 4.5 threshold at any
sample flags first-order leakage with overwhelming confidence.
"""

from __future__ import annotations

import numpy as np

__all__ = ["welch_t_test", "max_abs_t", "TVLA_THRESHOLD"]

#: the conventional TVLA pass/fail threshold
TVLA_THRESHOLD = 4.5


def welch_t_test(group_a: np.ndarray, group_b: np.ndarray) -> np.ndarray:
    """Per-sample Welch t statistic between two ``(runs, samples)`` groups.

    Samples with zero variance in both groups (a constant power value —
    common for e.g. the always-toggling round counter) yield t = 0 when the
    means agree and ±inf when they differ, which is the informative answer.
    """
    group_a = np.asarray(group_a, dtype=np.float64)
    group_b = np.asarray(group_b, dtype=np.float64)
    if group_a.ndim != 2 or group_b.ndim != 2:
        raise ValueError("trace groups must be 2-D (runs, samples)")
    if group_a.shape[1] != group_b.shape[1]:
        raise ValueError("trace groups must have equal sample counts")
    if len(group_a) < 2 or len(group_b) < 2:
        raise ValueError("need at least two traces per group")
    mean_a, mean_b = group_a.mean(axis=0), group_b.mean(axis=0)
    var_a = group_a.var(axis=0, ddof=1) / len(group_a)
    var_b = group_b.var(axis=0, ddof=1) / len(group_b)
    denom = np.sqrt(var_a + var_b)
    diff = mean_a - mean_b
    with np.errstate(divide="ignore", invalid="ignore"):
        t = diff / denom
    t[np.isnan(t)] = 0.0  # 0/0: equal constant samples — no evidence
    return t


def max_abs_t(group_a: np.ndarray, group_b: np.ndarray) -> float:
    """The TVLA verdict number: max |t| over all samples."""
    return float(np.abs(welch_t_test(group_a, group_b)).max())
