"""Side-channel evaluation (paper §IV-B.2).

The paper claims the countermeasure "does not inherently leak side-channel
information" and "does not open up any additional side channel
vulnerability".  This package makes that checkable on the simulated
netlists: a register-level power model captures per-cycle traces
(Hamming-weight and Hamming-distance variants), and Welch's t-test performs
the standard TVLA-style leakage assessment.

The headline result (asserted by tests and the SCA bench): under the
Hamming-*distance* model — the dominant dynamic-power component of CMOS —
the encoding bit λ is *perfectly* invisible, because complementing a whole
register complements both endpoints of every transition and
``HD(x̄, ȳ) = HD(x, y)``.  Under a pure Hamming-*weight* model λ flips the
weight (``HW(x̄) = n − HW(x)``) and is trivially visible, which is exactly
why the ACISP'20 predecessor devotes a section to protecting λ's
generation; see EXPERIMENTS.md.
"""

from repro.sca.power import LeakageModel, power_trace
from repro.sca.ttest import max_abs_t, welch_t_test

__all__ = ["LeakageModel", "max_abs_t", "power_trace", "welch_t_test"]
