"""Bit-vector packing helpers for the bit-parallel simulator.

The simulator carries *batches* of independent simulation runs.  Every net in
the circuit holds one logical bit per run, and a batch of ``B`` runs is stored
as ``ceil(B / 64)`` little-endian ``uint64`` words: bit ``j`` of word ``w``
holds the net value for run ``64 * w + j``.

Two layouts appear throughout the code base:

- **bit matrix** — ``numpy`` array of shape ``(batch, width)`` and dtype
  ``uint8`` with values in ``{0, 1}``; column ``i`` is bit ``i`` (LSB-first)
  of a ``width``-bit port across the batch;
- **packed rows** — ``numpy`` array of shape ``(width, n_words)`` and dtype
  ``uint64``; row ``i`` is the packed batch vector for bit ``i``.

These helpers convert between Python integers, bit matrices and packed rows.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bits_to_int",
    "bits_to_ints",
    "int_to_bits",
    "ints_to_bits",
    "pack_bits",
    "unpack_bits",
    "words_for",
]


def words_for(batch: int) -> int:
    """Number of ``uint64`` words needed to hold ``batch`` one-bit lanes."""
    if batch <= 0:
        raise ValueError(f"batch size must be positive, got {batch}")
    return (batch + 63) // 64


def int_to_bits(value: int, width: int) -> list[int]:
    """LSB-first list of the low ``width`` bits of ``value``.

    >>> int_to_bits(0b1011, 4)
    [1, 1, 0, 1]
    """
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if value >> width:
        raise ValueError(f"value {value:#x} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def bits_to_int(bits) -> int:
    """Inverse of :func:`int_to_bits` — LSB-first bits to an integer."""
    value = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bit {i} is {bit!r}, expected 0 or 1")
        value |= int(bit) << i
    return value


def ints_to_bits(values, width: int) -> np.ndarray:
    """Convert an iterable of integers to a ``(batch, width)`` bit matrix.

    Values wider than ``width`` raise; the conversion is LSB-first so
    ``out[r, i]`` is bit ``i`` of ``values[r]``.  Vectorised: each value is
    serialised to little-endian bytes once and the bit expansion happens in
    a single ``np.unpackbits`` call.
    """
    values = list(values)
    n_bytes = (width + 7) // 8
    chunks = []
    for value in values:
        if value < 0 or value >> width:
            raise ValueError(f"value {value:#x} does not fit in {width} bits")
        chunks.append(value.to_bytes(n_bytes, "little"))
    if not values:
        return np.zeros((0, width), dtype=np.uint8)
    buf = np.frombuffer(b"".join(chunks), dtype=np.uint8).reshape(len(values), n_bytes)
    return np.unpackbits(buf, axis=1, bitorder="little")[:, :width].copy()


def bits_to_ints(bits: np.ndarray) -> list[int]:
    """Convert a ``(batch, width)`` bit matrix back to Python integers."""
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError(f"expected a 2-D bit matrix, got shape {bits.shape}")
    if bits.shape[0] == 0:
        return []
    # One packbits call collapses the (batch, width) matrix to little-endian
    # bytes; each row then converts in a single C-level int.from_bytes.
    packed = np.packbits(
        bits.astype(np.uint8, copy=False), axis=1, bitorder="little"
    )
    return [int.from_bytes(row.tobytes(), "little") for row in packed]


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(batch, width)`` bit matrix into ``(width, n_words)`` uint64.

    Run ``r`` lands in bit ``r % 64`` of word ``r // 64`` of each row, i.e.
    little-endian lane order.  Lanes beyond the batch are zero.
    """
    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    if bits.ndim != 2:
        raise ValueError(f"expected a 2-D bit matrix, got shape {bits.shape}")
    batch, width = bits.shape
    n_words = words_for(batch)
    # packbits works on uint8 with 8 lanes per byte; pad the batch axis up to
    # a whole number of 64-bit words, then reinterpret the bytes.
    padded = np.zeros((width, n_words * 64), dtype=np.uint8)
    padded[:, :batch] = bits.T
    packed_bytes = np.packbits(padded, axis=1, bitorder="little")
    return packed_bytes.view(np.uint64).reshape(width, n_words)


def unpack_bits(words: np.ndarray, batch: int) -> np.ndarray:
    """Unpack ``(width, n_words)`` uint64 rows into a ``(batch, width)`` matrix.

    Inverse of :func:`pack_bits`; lanes at or beyond ``batch`` are dropped.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError(f"expected 2-D packed rows, got shape {words.shape}")
    width, n_words = words.shape
    if batch > n_words * 64:
        raise ValueError(f"batch {batch} exceeds capacity {n_words * 64}")
    as_bytes = words.view(np.uint8).reshape(width, n_words * 8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return bits[:, :batch].T.copy()
