"""Shared low-level helpers (bit packing, integer/bit-vector conversion)."""

from repro.utils.bits import (
    bits_to_int,
    bits_to_ints,
    int_to_bits,
    ints_to_bits,
    pack_bits,
    unpack_bits,
    words_for,
)

__all__ = [
    "bits_to_int",
    "bits_to_ints",
    "int_to_bits",
    "ints_to_bits",
    "pack_bits",
    "unpack_bits",
    "words_for",
]
