"""Topological ordering of combinational logic."""

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.netlist.topo import combinational_order


def position_map(order):
    return {gate.out: i for i, gate in enumerate(order)}


class TestOrdering:
    def test_every_gate_after_its_drivers(self):
        c = Circuit()
        a = c.add_input("a", 4)
        g1 = c.add_gate(GateType.AND, (a[0], a[1]))
        g2 = c.add_gate(GateType.OR, (a[2], a[3]))
        g3 = c.add_gate(GateType.XOR, (g1, g2))
        g4 = c.add_gate(GateType.NOT, (g3,))
        order = combinational_order(c)
        pos = position_map(order)
        assert pos[g3] > pos[g1] and pos[g3] > pos[g2]
        assert pos[g4] > pos[g3]

    def test_insertion_order_is_not_trusted(self):
        # construct gates out of dependency order via pre-allocated nets
        c = Circuit()
        a = c.add_input("a", 2)
        late = c.new_net()
        g_top = c.add_gate(GateType.NOT, (late,))
        c.add_gate(GateType.AND, (a[0], a[1]), out=late)
        order = combinational_order(c)
        pos = position_map(order)
        assert pos[late] < pos[g_top]

    def test_dff_outputs_are_sources(self):
        c = Circuit()
        q = c.new_net()
        inv = c.add_gate(GateType.NOT, (q,))
        c.add_gate(GateType.DFF, (inv,), out=q)
        order = combinational_order(c)
        assert [g.out for g in order] == [inv]

    def test_duplicate_input_references_handled(self):
        c = Circuit()
        mid = c.new_net()
        sq = c.add_gate(GateType.AND, (mid, mid))
        a = c.add_input("a", 1)
        c.add_gate(GateType.NOT, (a[0],), out=mid)
        pos = position_map(combinational_order(c))
        assert pos[mid] < pos[sq]

    def test_cycle_reported_with_gate_info(self):
        c = Circuit()
        n1, n2 = c.new_net(), c.new_net()
        c.add_gate(GateType.NOT, (n2,), out=n1)
        c.add_gate(GateType.NOT, (n1,), out=n2)
        with pytest.raises(ValueError, match="cycle"):
            combinational_order(c)

    def test_self_loop_detected(self):
        c = Circuit()
        n = c.new_net()
        c.add_gate(GateType.BUF, (n,), out=n)
        with pytest.raises(ValueError, match="cycle"):
            combinational_order(c)

    def test_empty_circuit(self):
        assert combinational_order(Circuit()) == []
