"""SBox objects: lookup tables, DDT, merged truth tables."""

import pytest

from repro.ciphers.sbox import GIFT_SBOX, PRESENT_SBOX, SBox


class TestConstruction:
    def test_rejects_non_bijection(self):
        with pytest.raises(ValueError):
            SBox([0, 0, 1, 2])

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            SBox([0, 1, 2])

    def test_size_and_call(self):
        assert PRESENT_SBOX.n == 4
        assert len(PRESENT_SBOX) == 16
        assert PRESENT_SBOX(0) == 0xC
        assert GIFT_SBOX(0xF) == 0xE

    def test_inverse_roundtrip(self):
        for x in range(16):
            assert PRESENT_SBOX.inverse(PRESENT_SBOX(x)) == x

    def test_inverse_sbox_object(self):
        inv = PRESENT_SBOX.inverse_sbox()
        assert inv.name == "present_inv"
        for x in range(16):
            assert inv(PRESENT_SBOX(x)) == x


class TestDDT:
    def test_zero_difference_row(self):
        ddt = PRESENT_SBOX.ddt()
        assert ddt[0][0] == 16
        assert all(v == 0 for v in ddt[0][1:])

    def test_rows_sum_to_size(self):
        ddt = PRESENT_SBOX.ddt()
        for row in ddt:
            assert sum(row) == 16

    def test_present_is_differentially_4_uniform(self):
        ddt = PRESENT_SBOX.ddt()
        worst = max(max(row) for row in ddt[1:])
        assert worst == 4  # the PRESENT design criterion

    def test_diff_candidates_match_ddt(self):
        ddt = PRESENT_SBOX.ddt()
        for dx in (1, 5, 0xF):
            for dy in range(16):
                assert len(PRESENT_SBOX.diff_candidates(dx, dy)) == ddt[dx][dy]


class TestMergedTable:
    def test_merged_semantics(self):
        merged = PRESENT_SBOX.merged_truthtable()
        assert merged.n_inputs == 5
        for x in range(16):
            assert merged(x) == PRESENT_SBOX(x)
            assert merged(16 + x) == PRESENT_SBOX(x ^ 0xF) ^ 0xF

    def test_truthtable_matches_table(self):
        tt = GIFT_SBOX.truthtable()
        assert tt.table == GIFT_SBOX.table
        assert tt.is_permutation()

    def test_repr(self):
        assert "4x4" in repr(PRESENT_SBOX)
