"""Evaluation artefacts: table/figure shapes must match the paper's claims
(small run counts here; the benchmarks regenerate at full scale)."""

import numpy as np
import pytest

from repro.evaluation import (
    figure4,
    figure5,
    render_histogram,
    render_table,
    table2,
    table3,
)


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return table2()

    def test_two_rows(self, rows):
        assert [r.design for r in rows] == ["naive_duplication", "three_in_one"]

    def test_non_combinational_identical(self, rows):
        # the countermeasure adds no flip-flops over naïve duplication
        assert rows[0].non_combinational == pytest.approx(rows[1].non_combinational)

    def test_overhead_ratio_matches_paper_shape(self, rows):
        # paper: 1.32×; accept the same ballpark from our synthesiser
        assert 1.15 <= rows[1].ratio <= 1.60

    def test_paper_reference_values_attached(self, rows):
        assert rows[0].paper_total == 3096.0
        assert rows[1].paper_ratio == pytest.approx(4097 / 3096)


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return table3(include_aes=False)

    def test_merged_layer_costs_about_double(self, rows):
        ours = next(r for r in rows if r.countermeasure == "ours")
        assert 1.5 <= ours.ratio <= 3.0  # paper: 2.3× for PRESENT

    def test_baseline_ratio_is_one(self, rows):
        naive = next(r for r in rows if r.countermeasure == "naive")
        assert naive.ratio == pytest.approx(1.0)


class TestFigures:
    @pytest.fixture(scope="class")
    def fig4(self):
        return figure4(n_runs=6000)

    @pytest.fixture(scope="class")
    def fig5(self):
        return figure5(n_runs=6000)

    def test_fig4_naive_has_half_support(self, fig4):
        support = (fig4.naive.distribution > 0).sum()
        assert support == 8
        # exactly the values with bit 2 clear
        for v in range(16):
            if (v >> 2) & 1:
                assert fig4.naive.distribution[v] == 0

    def test_fig4_ours_uniform(self, fig4):
        assert (fig4.ours.distribution > 0).sum() == 16
        assert fig4.ours.sei < fig4.naive.sei / 20

    def test_fig4_no_bypass_either_way(self, fig4):
        assert fig4.naive.faulty_released == 0
        assert fig4.ours.faulty_released == 0

    def test_fig5_naive_releases_faulty_outputs(self, fig5):
        assert fig5.naive.faulty_released > 2000  # ~half the runs

    def test_fig5_ours_detects_everything(self, fig5):
        assert fig5.ours.faulty_released == 0
        assert fig5.ours.counts["detected"] == 6000


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(
            ["name", "GE"], [["naive", 3096.0], ["ours", 4097.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "3096.00" in text and "ours" in text

    def test_render_histogram_scales_bars(self):
        text = render_histogram(np.array([0, 5, 10]), width=10)
        lines = text.splitlines()
        assert lines[0].endswith(" 0")
        assert "#" * 10 in lines[2]
        assert "#" * 5 in lines[1]

    def test_render_histogram_empty(self):
        text = render_histogram(np.zeros(4, dtype=int), title="empty")
        assert "empty" in text
