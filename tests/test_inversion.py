"""The inverted-domain transform: property-tested defining identity."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.countermeasures.inversion import INVERTED_CELL, invert_circuit
from repro.netlist.circuit import Circuit
from repro.netlist.gates import COMBINATIONAL_TYPES, GateType
from repro.netlist.simulator import Simulator


def random_comb_circuit(seed, n_inputs=4, n_gates=25):
    rng = np.random.default_rng(seed)
    c = Circuit("rand")
    nets = list(c.add_input("x", n_inputs))
    nets.append(c.const(0))
    nets.append(c.const(1))
    types = sorted(COMBINATIONAL_TYPES, key=lambda g: g.value)
    for _ in range(n_gates):
        gtype = types[rng.integers(len(types))]
        ins = tuple(int(nets[rng.integers(len(nets))]) for _ in range(gtype.arity))
        nets.append(c.add_gate(gtype, ins))
    c.set_output("y", nets[-4:])
    return c


def eval_all(circ, n_inputs=4, invert_inputs=False, cycles=0):
    batch = 1 << n_inputs
    sim = Simulator(circ, batch=batch)
    mask = batch - 1
    vals = [v ^ mask if invert_inputs else v for v in range(batch)]
    sim.set_input_ints("x", vals)
    sim.run(cycles)
    sim.eval_comb()
    return sim.get_output_ints("y")


class TestTableI:
    def test_cell_mapping_is_an_involution(self):
        for gtype, twin in INVERTED_CELL.items():
            assert INVERTED_CELL[twin] is gtype

    def test_paper_table_entries(self):
        assert INVERTED_CELL[GateType.XOR] is GateType.XNOR
        assert INVERTED_CELL[GateType.AND] is GateType.OR
        assert INVERTED_CELL[GateType.CONST0] is GateType.CONST1


class TestDefiningIdentity:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_inverted_circuit_computes_complement(self, seed):
        circ = random_comb_circuit(seed)
        twin = invert_circuit(circ)
        plain = eval_all(circ)
        inverted = eval_all(twin, invert_inputs=True)
        width = len(circ.outputs["y"])
        mask = (1 << width) - 1
        # twin(x̄) == circ(x)‾, pattern by pattern
        assert inverted == [v ^ mask for v in plain]

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_double_inversion_restores_behaviour(self, seed):
        circ = random_comb_circuit(seed)
        twice = invert_circuit(invert_circuit(circ))
        assert eval_all(circ) == eval_all(twice)

    def test_sequential_circuit_with_init(self):
        # a 1-bit toggle: in the inverted domain the init flips too
        c = Circuit("tog")
        c.add_input("x", 1)
        q = c.new_net()
        inv = c.add_gate(GateType.NOT, (q,))
        c.add_gate(GateType.DFF, (inv,), out=q, init=0)
        c.set_output("y", [q])
        twin = invert_circuit(c)
        for cycles in range(4):
            s1 = Simulator(c, batch=1)
            s2 = Simulator(twin, batch=1)
            s1.run(cycles)
            s2.run(cycles)
            s1.eval_comb()
            s2.eval_comb()
            a = s1.get_output_ints("y")[0]
            b = s2.get_output_ints("y")[0]
            assert b == a ^ 1

    def test_mux_branch_swap(self):
        c = Circuit("m")
        x = c.add_input("x", 3)
        y = c.add_gate(GateType.MUX, (x[2], x[0], x[1]))
        c.set_output("y", [y])
        twin = invert_circuit(c)
        for pattern in range(8):
            sim = Simulator(twin, batch=1)
            sim.set_input_ints("x", [pattern ^ 7])
            sim.eval_comb()
            s, d0, d1 = (pattern >> 2) & 1, pattern & 1, (pattern >> 1) & 1
            expect = (d1 if s else d0) ^ 1
            assert sim.get_output_ints("y")[0] == expect

    def test_name_and_ports_preserved(self):
        circ = random_comb_circuit(3)
        twin = invert_circuit(circ, name="custom")
        assert twin.name == "custom"
        assert twin.inputs.keys() == circ.inputs.keys()
        assert twin.outputs.keys() == circ.outputs.keys()
