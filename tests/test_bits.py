"""Unit and property tests for the bit-packing helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bits import (
    bits_to_int,
    bits_to_ints,
    int_to_bits,
    ints_to_bits,
    pack_bits,
    unpack_bits,
    words_for,
)


class TestWordsFor:
    def test_exact_boundaries(self):
        assert words_for(1) == 1
        assert words_for(64) == 1
        assert words_for(65) == 2
        assert words_for(128) == 2
        assert words_for(129) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            words_for(0)
        with pytest.raises(ValueError):
            words_for(-3)


class TestIntBits:
    def test_lsb_first(self):
        assert int_to_bits(0b1011, 4) == [1, 1, 0, 1]
        assert int_to_bits(0, 3) == [0, 0, 0]

    def test_roundtrip_known(self):
        assert bits_to_int(int_to_bits(0xDEADBEEF, 32)) == 0xDEADBEEF

    def test_rejects_oversized(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    def test_bits_to_int_rejects_non_bits(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])

    @given(st.integers(min_value=0, max_value=(1 << 80) - 1))
    def test_roundtrip_property(self, value):
        assert bits_to_int(int_to_bits(value, 80)) == value


class TestMatrixConversions:
    def test_ints_to_bits_shape_and_content(self):
        m = ints_to_bits([5, 2], 3)
        assert m.shape == (2, 3)
        assert m.tolist() == [[1, 0, 1], [0, 1, 0]]

    def test_bits_to_ints_inverse(self):
        values = [0, 1, 9, 15]
        assert bits_to_ints(ints_to_bits(values, 4)) == values

    def test_rejects_oversized_value(self):
        with pytest.raises(ValueError):
            ints_to_bits([16], 4)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            bits_to_ints(np.zeros(4, dtype=np.uint8))


class TestPacking:
    def test_pack_single_lane(self):
        bits = np.array([[1], [0], [1], [1]], dtype=np.uint8)  # batch=4, width=1
        packed = pack_bits(bits)
        assert packed.shape == (1, 1)
        assert packed[0, 0] == 0b1101

    def test_pack_multi_word(self):
        batch = 130
        bits = np.zeros((batch, 2), dtype=np.uint8)
        bits[0, 0] = 1
        bits[64, 0] = 1
        bits[129, 1] = 1
        packed = pack_bits(bits)
        assert packed.shape == (2, 3)
        assert packed[0, 0] == 1
        assert packed[0, 1] == 1
        assert packed[1, 2] == 1 << 1

    def test_unpack_drops_padding(self):
        bits = np.ones((70, 3), dtype=np.uint8)
        out = unpack_bits(pack_bits(bits), 70)
        assert out.shape == (70, 3)
        assert out.all()

    def test_unpack_rejects_oversized_batch(self):
        packed = np.zeros((1, 1), dtype=np.uint64)
        with pytest.raises(ValueError):
            unpack_bits(packed, 65)

    def test_pack_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            pack_bits(np.zeros(8, dtype=np.uint8))

    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40)
    def test_pack_unpack_roundtrip(self, batch, width, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(batch, width), dtype=np.uint8)
        out = unpack_bits(pack_bits(bits), batch)
        assert (out == bits).all()
