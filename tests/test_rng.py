"""Deterministic RNG plumbing (the TRNG stand-in)."""

import numpy as np

from repro.rng import DEFAULT_SEED, make_rng, random_bits, random_ints


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).integers(0, 1 << 30, size=8)
        b = make_rng(42).integers(0, 1 << 30, size=8)
        assert (a == b).all()

    def test_none_uses_default_seed(self):
        a = make_rng(None).integers(0, 1 << 30, size=4)
        b = make_rng(DEFAULT_SEED).integers(0, 1 << 30, size=4)
        assert (a == b).all()

    def test_generator_passes_through(self):
        gen = make_rng(7)
        assert make_rng(gen) is gen


class TestRandomBits:
    def test_shape_and_alphabet(self):
        bits = random_bits(make_rng(1), 50, 7)
        assert bits.shape == (50, 7)
        assert set(np.unique(bits)) <= {0, 1}

    def test_roughly_balanced(self):
        bits = random_bits(make_rng(2), 4000, 4)
        assert 0.45 < bits.mean() < 0.55


class TestRandomInts:
    def test_width_respected(self):
        values = random_ints(make_rng(3), 100, 80)
        assert len(values) == 100
        assert all(0 <= v < (1 << 80) for v in values)
        assert any(v >> 64 for v in values)  # actually uses the top bits

    def test_deterministic(self):
        assert random_ints(make_rng(9), 5, 16) == random_ints(make_rng(9), 5, 16)
