"""Genericity of the attacks and countermeasures: GIFT-64 end-to-end.

The paper's evaluation is PRESENT-only; these tests show the entire
pipeline — campaigns, SIFA, identical-fault DFA — carries to a second
cipher unchanged, and the countermeasure's properties carry with it.
"""

import pytest

from repro.attacks import selmke_attack, sifa_attack
from repro.countermeasures import build_naive_duplication, build_three_in_one
from repro.faults import FaultSpec, FaultType, Outcome, run_campaign
from repro.faults.models import last_round, sbox_input_net
from tests.conftest import TEST_KEY128


@pytest.fixture(scope="module")
def gift_naive(gift_spec):
    return build_naive_duplication(gift_spec)


@pytest.fixture(scope="module")
def gift_ours(gift_spec):
    return build_three_in_one(gift_spec)


class TestGiftSifa:
    @pytest.fixture(scope="class")
    def campaigns(self, gift_naive, gift_ours, gift_spec):
        out = {}
        for design, label in ((gift_naive, "naive"), (gift_ours, "ours")):
            net = sbox_input_net(design.cores[0], 4, 0)
            fault = FaultSpec.at(net, FaultType.STUCK_AT_0, gift_spec.rounds - 2)
            out[label] = run_campaign(
                design, [fault], n_runs=16_000, key=TEST_KEY128, seed=31
            )
        return out

    def test_breaks_naive_duplication(self, campaigns, gift_spec):
        atk = sifa_attack(campaigns["naive"], gift_spec, 4, 0)
        assert atk.recovered_bits >= 4  # GIFT's S-box gives 2 usable landing bits
        assert atk.success

    def test_fails_against_three_in_one(self, campaigns, gift_spec):
        atk = sifa_attack(campaigns["ours"], gift_spec, 4, 0)
        assert not atk.success

    def test_ineffective_rates(self, campaigns):
        # biased fault: naive conditions on the data, ours on λ — both near
        # one half for a uniform wire, but only naive's set is data-biased
        # (checked by the recovery tests above)
        for label in ("naive", "ours"):
            rate = campaigns[label].rate(Outcome.INEFFECTIVE)
            assert 0.35 < rate < 0.65


class TestGiftIdenticalFault:
    def test_naive_bypassed(self, gift_naive):
        specs = [
            FaultSpec.at(
                sbox_input_net(core, 7, 1), FaultType.STUCK_AT_0, last_round(core)
            )
            for core in gift_naive.cores
        ]
        res = run_campaign(gift_naive, specs, n_runs=2000, key=TEST_KEY128, seed=3)
        assert res.count(Outcome.EFFECTIVE) > 600
        assert res.count(Outcome.DETECTED) == 0

    def test_ours_detects_everything(self, gift_ours):
        specs = [
            FaultSpec.at(
                sbox_input_net(core, 7, 1), FaultType.STUCK_AT_0, last_round(core)
            )
            for core in gift_ours.cores
        ]
        res = run_campaign(gift_ours, specs, n_runs=2000, key=TEST_KEY128, seed=3)
        assert res.count(Outcome.DETECTED) == 2000
