"""CLI plumbing (fast subcommands only; campaigns run in the benches)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for cmd in ("table2", "table3", "fig4", "fig5", "matrix", "sweep", "sca", "encrypt"):
            assert cmd in text

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_runs_flag_parsed(self):
        args = build_parser().parse_args(["fig4", "--runs", "123", "--seed", "9"])
        assert args.runs == 123 and args.seed == 9

    def test_serve_and_submit_registered(self):
        text = build_parser().format_help()
        assert "serve" in text and "submit" in text
        args = build_parser().parse_args(
            ["serve", "--port", "9000", "--concurrency", "4"]
        )
        assert args.port == 9000 and args.concurrency == 4
        args = build_parser().parse_args(
            ["submit", "--scheme", "naive", "--deadline", "1.5"]
        )
        assert args.scheme == "naive" and args.deadline == 1.5


class TestCipherArgument:
    """``--cipher`` resolves through the registry at argument-parse time:
    aliases normalise to canonical names, unknown ciphers exit 2 naming
    the argument and listing what IS registered."""

    @pytest.mark.parametrize("cmd", ["certify", "submit", "encrypt", "matrix"])
    def test_unknown_cipher_rejected_at_parse_time(self, cmd, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args([cmd, "--cipher", "bogus"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--cipher" in err and "unknown cipher 'bogus'" in err
        assert "present80" in err and "aes128" in err  # lists the registry

    @pytest.mark.parametrize(
        ("alias", "canonical"),
        [("aes", "aes128"), ("AES128", "aes128"), ("present", "present80"),
         ("gift", "gift64"), ("gift128", "gift128")],
    )
    def test_aliases_normalise_to_canonical_names(self, alias, canonical):
        args = build_parser().parse_args(["certify", "--cipher", alias])
        assert args.cipher == canonical

    def test_cipher_defaults_to_present80(self):
        for cmd in ("certify", "submit", "encrypt", "matrix"):
            assert build_parser().parse_args([cmd]).cipher == "present80"


class TestEagerEnvValidation:
    """Typos in REPRO_CHAOS / REPRO_SIM_BACKEND fail at argument-parse
    time with the variable named, for every subcommand (exit 2) — not
    hours into a campaign."""

    def test_bad_chaos_env_rejected_before_dispatch(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CHAOS", "worker:explode")
        assert main(["table2"]) == 2
        err = capsys.readouterr().err
        assert "invalid environment" in err and "REPRO_CHAOS" in err

    def test_bad_backend_env_rejected_before_dispatch(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SIM_BACKEND", "turbo")
        assert main(["table2"]) == 2
        err = capsys.readouterr().err
        assert "invalid environment" in err and "REPRO_SIM_BACKEND" in err


class TestFastCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out and "three_in_one" in out

    def test_table3_without_aes(self, capsys):
        assert main(["table3", "--no-aes"]) == 0
        out = capsys.readouterr().out
        assert "present" in out and "aes" not in out

    def test_encrypt_roundtrip(self, capsys):
        code = main(["encrypt", "--key", "0x1", "--pt", "0x2", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault flag: 0" in out

    def test_fig4_small(self, capsys):
        assert main(["fig4", "--runs", "600"]) == 0
        out = capsys.readouterr().out
        assert "(a) naive duplication" in out and "SEI" in out

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--runs", "600"]) == 0
        out = capsys.readouterr().out
        assert "faulty released=0" in out

    def test_sweep_small(self, capsys):
        from repro.evaluation.matrix import run_round_sweep

        rows = run_round_sweep(400, rounds=(1, 31))
        assert len(rows) == 2
        for row in rows:
            assert row[2] == 0 and row[4] == 0  # no bypasses

    def test_sca_small(self, capsys):
        assert main(["sca", "--traces", "60"]) == 0
        out = capsys.readouterr().out
        assert "whole chip, HD: max|t| = 0.0" in out


class TestCertifyCommand:
    def test_parsing(self):
        args = build_parser().parse_args(
            ["certify", "--scheme", "naive", "--budget", "100",
             "--models", "identical_mask", "--rounds", "2", "--fail-fast"]
        )
        assert args.scheme == "naive" and args.budget == 100
        assert args.models == "identical_mask" and args.fail_fast

    def test_certify_registered_in_help(self):
        assert "certify" in build_parser().format_help()

    def test_small_pass_run_writes_certificate(self, capsys, tmp_path):
        out = tmp_path / "cert.json"
        code = main(
            ["certify", "--scheme", "three-in-one", "--rounds", "2",
             "--budget", "128", "--runs-per-location", "16",
             "--seed", "5", "--out", str(out)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "verdict dfa_detection: pass" in stdout
        assert out.exists()

    def test_witness_run_exits_nonzero(self, capsys):
        code = main(
            ["certify", "--scheme", "naive", "--rounds", "2",
             "--budget", "64", "--runs-per-location", "16",
             "--models", "identical_mask", "--seed", "5"]
        )
        assert code == 1
        assert "witnesses:" in capsys.readouterr().out

    def test_checkpoint_mismatch_exits_3(self, capsys, tmp_path):
        ck = tmp_path / "ck"
        base = ["certify", "--scheme", "three-in-one", "--rounds", "2",
                "--runs-per-location", "16", "--models", "coupled",
                "--seed", "5", "--checkpoint-dir", str(ck)]
        assert main(base + ["--budget", "64"]) == 0
        capsys.readouterr()
        code = main(base + ["--budget", "128", "--resume"])
        assert code == 3
        err = capsys.readouterr().err
        assert "checkpoint mismatch" in err and "budget" in err
