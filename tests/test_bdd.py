"""ROBDD package: reduction invariants, algebra, counting."""

import pytest

from repro.synth.bdd import ONE, ZERO, BDD
from repro.synth.truthtable import TruthTable


class TestReduction:
    def test_mk_collapses_equal_children(self):
        bdd = BDD(2)
        assert bdd.mk(0, ZERO, ZERO) == ZERO
        assert bdd.mk(1, ONE, ONE) == ONE

    def test_mk_hash_conses(self):
        bdd = BDD(2)
        u1 = bdd.mk(0, ZERO, ONE)
        u2 = bdd.mk(0, ZERO, ONE)
        assert u1 == u2

    def test_var_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            BDD(2).mk(2, ZERO, ONE)

    def test_terminal_node_lookup_rejected(self):
        with pytest.raises(ValueError):
            BDD(2).node(ONE)


class TestAlgebra:
    def test_ite_base_cases(self):
        bdd = BDD(2)
        x = bdd.var(0)
        assert bdd.ite(ONE, x, ZERO) == x
        assert bdd.ite(ZERO, x, ONE) == ONE
        assert bdd.ite(x, ONE, ZERO) == x

    def test_boolean_ops_by_exhaustion(self):
        bdd = BDD(3)
        x0, x1, x2 = bdd.var(0), bdd.var(1), bdd.var(2)
        f = bdd.apply_or(bdd.apply_and(x0, x1), bdd.apply_xor(x1, x2))
        for pattern in range(8):
            a = [(pattern >> i) & 1 for i in range(3)]
            expect = (a[0] & a[1]) | (a[1] ^ a[2])
            assert bdd.evaluate(f, a) == expect

    def test_not_is_involution(self):
        bdd = BDD(2)
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        assert bdd.apply_not(bdd.apply_not(f)) == f

    def test_equivalence_checking_by_root_identity(self):
        bdd = BDD(2)
        x0, x1 = bdd.var(0), bdd.var(1)
        demorgan_lhs = bdd.apply_not(bdd.apply_and(x0, x1))
        demorgan_rhs = bdd.apply_or(bdd.apply_not(x0), bdd.apply_not(x1))
        assert demorgan_lhs == demorgan_rhs


class TestCounting:
    def test_count_sat(self):
        bdd = BDD(3)
        x0, x1 = bdd.var(0), bdd.var(1)
        f = bdd.apply_and(x0, x1)  # 2 of 8 assignments
        assert bdd.count_sat(f) == 2
        assert bdd.count_sat(ONE) == 8
        assert bdd.count_sat(ZERO) == 0

    def test_count_sat_skipped_levels(self):
        bdd = BDD(4)
        f = bdd.var(3)  # only the deepest var constrained
        assert bdd.count_sat(f) == 8

    def test_reachable(self):
        bdd = BDD(2)
        f = bdd.apply_xor(bdd.var(0), bdd.var(1))
        nodes = bdd.reachable([f])
        assert ZERO in nodes and ONE in nodes and f in nodes


class TestFromTruthTable:
    def test_forest_shares_nodes(self):
        tt = TruthTable(3, 2, [0, 1, 2, 3, 3, 2, 1, 0])
        order = [2, 1, 0]  # the default: highest original input at the root
        bdd, roots = BDD.from_truthtable(tt, var_order=order)
        assert len(roots) == 2
        for j, root in enumerate(roots):
            for x in range(8):
                # BDD levels are positions in var_order, so translate the
                # original-variable assignment into level order.
                by_level = [(x >> order[level]) & 1 for level in range(3)]
                assert bdd.evaluate(root, by_level) == (tt(x) >> j) & 1

    def test_bad_var_order_rejected(self):
        tt = TruthTable(2, 1, [0, 1, 1, 0])
        with pytest.raises(ValueError):
            BDD.from_truthtable(tt, var_order=[0, 0])

    def test_xor_bdd_is_linear_size(self):
        n = 8
        tt = TruthTable.from_function(n, 1, lambda x: bin(x).count("1") & 1)
        bdd, roots = BDD.from_truthtable(tt)
        # parity has exactly 2 nodes per level plus terminals
        assert len(bdd.reachable(roots)) <= 2 * n + 2
