"""Fault models, injector semantics, classification, campaign mechanics."""

import numpy as np
import pytest

from repro.faults.classification import Outcome, classify
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSpec, FaultType, last_round
from repro.netlist.builder import CircuitBuilder
from repro.netlist.simulator import Simulator
from repro.utils.bits import unpack_bits, words_for

_ALL_ONES_WORD = np.uint64(0xFFFF_FFFF_FFFF_FFFF)


class TestFaultSpec:
    def test_at_single_cycle(self):
        spec = FaultSpec.at(3, FaultType.BIT_FLIP, 7)
        assert spec.cycles == frozenset({7})

    def test_at_iterable_and_permanent(self):
        assert FaultSpec.at(3, FaultType.STUCK_AT_0, [1, 2]).cycles == frozenset({1, 2})
        assert FaultSpec.at(3, FaultType.STUCK_AT_0, None).cycles is None

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(0, FaultType.BIT_FLIP, probability=1.5)

    def test_bias_classification(self):
        assert FaultType.STUCK_AT_0.is_biased
        assert FaultType.RESET_FLIP.is_biased
        assert not FaultType.BIT_FLIP.is_biased

    def test_last_round_helper(self, ours_prime):
        assert last_round(ours_prime.cores[0]) == 30


class TestInjectorSemantics:
    def wire_circuit(self):
        b = CircuitBuilder()
        x = b.input("x", 1)
        y = b.buf(x[0])
        b.output("y", [y])
        return b.circuit, y

    def run_with(self, fault_type, inputs, cycles=None, probability=1.0, seed=1):
        circ, y = self.wire_circuit()
        spec = FaultSpec.at(y, fault_type, cycles, probability=probability)
        injector = FaultInjector([spec], len(inputs), rng=seed)
        sim = Simulator(circ, batch=len(inputs), faults=injector)
        sim.set_input_ints("x", inputs)
        sim.eval_comb()
        return sim.get_output_ints("y")

    def test_stuck_at_0(self):
        assert self.run_with(FaultType.STUCK_AT_0, [0, 1, 1, 0]) == [0, 0, 0, 0]

    def test_stuck_at_1(self):
        assert self.run_with(FaultType.STUCK_AT_1, [0, 1, 0, 1]) == [1, 1, 1, 1]

    def test_bit_flip(self):
        assert self.run_with(FaultType.BIT_FLIP, [0, 1, 0, 1]) == [1, 0, 1, 0]

    def test_reset_and_set_flip_polarity(self):
        assert self.run_with(FaultType.RESET_FLIP, [1, 0]) == [0, 0]
        assert self.run_with(FaultType.SET_FLIP, [1, 0]) == [1, 1]

    def test_window_restricts_cycles(self):
        circ, y = self.wire_circuit()
        spec = FaultSpec.at(y, FaultType.BIT_FLIP, 5)
        injector = FaultInjector([spec], 1)
        sim = Simulator(circ, batch=1, faults=injector)
        sim.set_input_ints("x", [1])
        sim.eval_comb()  # cycle 0: no fault
        assert sim.get_output_ints("y") == [1]
        sim.run(5)  # advance to cycle 5
        sim.eval_comb()
        assert sim.get_output_ints("y") == [0]

    def test_probability_hits_a_fraction_of_lanes(self):
        batch = 4000
        got = self.run_with(
            FaultType.BIT_FLIP, [1] * batch, cycles=None, probability=0.25, seed=8
        )
        hit = sum(1 for v in got if v == 0)
        assert 800 < hit < 1200  # ~25% ± slack

    def test_two_faults_on_one_net_compose(self):
        circ, y = self.wire_circuit()
        specs = [
            FaultSpec.at(y, FaultType.STUCK_AT_1, None),
            FaultSpec.at(y, FaultType.BIT_FLIP, None),
        ]
        injector = FaultInjector(specs, 2)
        sim = Simulator(circ, batch=2, faults=injector)
        sim.set_input_ints("x", [0, 1])
        sim.eval_comb()
        # stuck-at-1 then flip -> always 0
        assert sim.get_output_ints("y") == [0, 0]

    def test_permanent_plus_windowed_merge(self):
        circ, y = self.wire_circuit()
        b2 = CircuitBuilder()
        x = b2.input("x", 2)
        y0 = b2.buf(x[0])
        y1 = b2.buf(x[1])
        b2.output("y", [y0, y1])
        specs = [
            FaultSpec.at(y0, FaultType.STUCK_AT_1, None),
            FaultSpec.at(y1, FaultType.STUCK_AT_1, 0),
        ]
        injector = FaultInjector(specs, 1)
        assert set(injector.for_cycle(0)) == {y0, y1}
        assert set(injector.for_cycle(1)) == {y0}


class TestClassification:
    def test_three_way_split(self):
        released = np.array([[1, 0], [1, 1], [0, 0]], dtype=np.uint8)
        expected = np.array([[1, 0], [0, 0], [0, 0]], dtype=np.uint8)
        flags = np.array([0, 0, 1], dtype=np.uint8)
        out = classify(released, flags, expected)
        assert out.tolist() == [
            Outcome.INEFFECTIVE,
            Outcome.EFFECTIVE,
            Outcome.DETECTED,
        ]

    def test_internal_flag_mode(self):
        released = np.array([[1, 0]], dtype=np.uint8)
        expected = np.array([[1, 0]], dtype=np.uint8)
        flags = np.array([1], dtype=np.uint8)
        assert classify(released, flags, expected)[0] == Outcome.DETECTED
        assert (
            classify(released, flags, expected, flag_observable=False)[0]
            == Outcome.INEFFECTIVE
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            classify(
                np.zeros((2, 4), dtype=np.uint8),
                np.zeros(2),
                np.zeros((2, 5), dtype=np.uint8),
            )


class TestCampaign:
    def test_counts_and_selectors(self, naive_design):
        from repro.faults.campaign import run_campaign
        from repro.faults.models import sbox_input_net

        core = naive_design.cores[0]
        spec = FaultSpec.at(
            sbox_input_net(core, 13, 2), FaultType.STUCK_AT_0, last_round(core)
        )
        res = run_campaign(naive_design, [spec], n_runs=512, key=7, seed=13, chunk=200)
        counts = res.counts()
        assert counts["ineffective"] + counts["detected"] + counts["effective"] == 512
        assert counts["effective"] == 0
        # stuck-at-0 on a uniform bit: roughly half ineffective
        assert 180 < counts["ineffective"] < 330
        assert len(res.select(Outcome.DETECTED)) == counts["detected"]
        assert res.n_runs == 512
        assert res.rate(Outcome.EFFECTIVE) == 0.0

    def test_released_and_plaintext_ints(self, naive_design):
        from repro.faults.campaign import run_campaign

        res = run_campaign(naive_design, [], n_runs=8, key=7, seed=3)
        # no fault: everything ineffective and released == expected
        assert res.count(Outcome.INEFFECTIVE) == 8
        rel = res.released_ints()
        pts = res.plaintext_ints()
        from repro.ciphers.present import Present80

        cipher = Present80(7)
        assert rel == [cipher.encrypt(p) for p in pts]

    def test_nibble_extraction(self, naive_design):
        from repro.faults.campaign import run_campaign

        res = run_campaign(naive_design, [], n_runs=4, key=7, seed=3)
        vals = res.nibble(res.released_bits, 3)
        rel = res.released_ints()
        assert vals.tolist() == [(v >> 12) & 0xF for v in rel]


class TestInfectedEdgeCases:
    """INFECTED classification corners (infective recovery mode)."""

    def test_wrong_flagged_word_is_infected(self):
        released = np.array([[1, 1]], dtype=np.uint8)
        expected = np.array([[1, 0]], dtype=np.uint8)
        flags = np.array([1], dtype=np.uint8)
        out = classify(released, flags, expected, infective=True)
        assert out[0] == Outcome.INFECTED

    def test_all_zero_released_word_is_not_special(self):
        # An all-zero release is a wrong word like any other — flagged it
        # is INFECTED, unflagged it is a genuine EFFECTIVE bypass.
        released = np.zeros((2, 4), dtype=np.uint8)
        expected = np.array([[1, 0, 1, 0], [1, 0, 1, 0]], dtype=np.uint8)
        flags = np.array([1, 0], dtype=np.uint8)
        out = classify(released, flags, expected, infective=True)
        assert out.tolist() == [Outcome.INFECTED, Outcome.EFFECTIVE]

    def test_flag_with_correct_word_stays_ineffective_when_infective(self):
        # The infection mask happened to be zero (or the fault vanished):
        # the attacker sees the correct word, so it is INEFFECTIVE — the
        # flag alone must not promote it to INFECTED.
        released = np.array([[1, 0]], dtype=np.uint8)
        expected = np.array([[1, 0]], dtype=np.uint8)
        flags = np.array([1], dtype=np.uint8)
        out = classify(released, flags, expected, infective=True)
        assert out[0] == Outcome.INEFFECTIVE

    def test_all_zero_expected_and_released_is_ineffective(self):
        released = np.zeros((1, 4), dtype=np.uint8)
        expected = np.zeros((1, 4), dtype=np.uint8)
        flags = np.array([0], dtype=np.uint8)
        out = classify(released, flags, expected, infective=True)
        assert out[0] == Outcome.INEFFECTIVE


class TestProbabilisticLaneMasks:
    """Per-run lane masks: deterministic per seed, shared per group."""

    def _mask_bits(self, injector, net, batch, dtype):
        ones = np.full(words_for(batch), _ALL_ONES_WORD, dtype=np.uint64)
        transform = injector.for_cycle(0)[net]
        hit = unpack_bits((~transform(ones)).reshape(1, -1), batch)[:, 0]
        return hit.astype(dtype)

    @pytest.mark.parametrize("batch", [1, 63, 64, 65, 200])
    @pytest.mark.parametrize("dtype", [np.uint8, np.int64, bool])
    def test_mask_deterministic_across_rebuilds(self, batch, dtype):
        spec = FaultSpec.at(0, FaultType.STUCK_AT_0, 0, probability=0.5)
        b = CircuitBuilder()
        x = b.input("x", 1)
        b.output("y", [b.buf(x[0])])
        masks = [
            self._mask_bits(FaultInjector([spec], batch, rng=7), 0, batch, dtype)
            for _ in range(2)
        ]
        assert (masks[0] == masks[1]).all()
        different = self._mask_bits(
            FaultInjector([spec], batch, rng=8), 0, batch, dtype
        )
        if batch >= 64:  # tiny batches can collide by chance
            assert not (masks[0] == different).all()

    def test_grouped_specs_share_one_lane_mask(self):
        batch = 256
        grouped = [
            FaultSpec.at(0, FaultType.STUCK_AT_0, 0, probability=0.5, group="evt"),
            FaultSpec.at(1, FaultType.STUCK_AT_0, 0, probability=0.5, group="evt"),
        ]
        injector = FaultInjector(grouped, batch, rng=3)
        m0 = self._mask_bits(injector, 0, batch, np.uint8)
        m1 = self._mask_bits(injector, 1, batch, np.uint8)
        assert (m0 == m1).all()

    def test_ungrouped_specs_draw_independent_masks(self):
        batch = 256
        loose = [
            FaultSpec.at(0, FaultType.STUCK_AT_0, 0, probability=0.5),
            FaultSpec.at(1, FaultType.STUCK_AT_0, 0, probability=0.5),
        ]
        injector = FaultInjector(loose, batch, rng=3)
        m0 = self._mask_bits(injector, 0, batch, np.uint8)
        m1 = self._mask_bits(injector, 1, batch, np.uint8)
        assert not (m0 == m1).all()

    def test_group_mask_reused_at_every_active_cycle(self):
        batch = 128
        specs = [
            FaultSpec.at(0, FaultType.BIT_FLIP, (0, 3), probability=0.5, group="g"),
            FaultSpec.at(1, FaultType.BIT_FLIP, (0, 3), probability=0.5, group="g"),
        ]
        injector = FaultInjector(specs, batch, rng=11)
        for cycle in (0, 3):
            table = injector.for_cycle(cycle)
            assert set(table) == {0, 1}
        assert injector.for_cycle(1) == {}
