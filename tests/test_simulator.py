"""Simulator correctness: combinational semantics, sequencing, faults,
scheduled inputs — including a property test against the scalar gate
semantics on randomly generated circuits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.builder import CircuitBuilder
from repro.netlist.circuit import Circuit
from repro.netlist.gates import COMBINATIONAL_TYPES, GateType
from repro.netlist.simulator import Simulator


class TestCombinational:
    def test_all_gate_types_match_scalar_eval(self):
        b = CircuitBuilder()
        x = b.input("x", 3)
        outs = [
            b.and_(x[0], x[1]),
            b.or_(x[0], x[1]),
            b.nand(x[0], x[1]),
            b.nor(x[0], x[1]),
            b.xor(x[0], x[1]),
            b.xnor(x[0], x[1]),
            b.not_(x[0]),
            b.buf(x[1]),
            b.mux(x[2], x[0], x[1]),
            b.circuit.const(0),
            b.circuit.const(1),
        ]
        b.output("y", outs)
        sim = Simulator(b.circuit, batch=8)
        sim.set_input_ints("x", list(range(8)))
        sim.eval_comb()
        got = sim.get_output_bits("y")
        for run in range(8):
            a, c, s = run & 1, (run >> 1) & 1, (run >> 2) & 1
            expect = [
                a & c, a | c, 1 - (a & c), 1 - (a | c), a ^ c, 1 - (a ^ c),
                1 - a, c, (c if s else a), 0, 1,
            ]
            assert got[run].tolist() == expect

    def test_lanes_are_independent(self):
        b = CircuitBuilder()
        x = b.input("x", 8)
        b.output("y", b.not_word(x))
        sim = Simulator(b.circuit, batch=300)
        vals = [(i * 37) & 0xFF for i in range(300)]
        sim.set_input_ints("x", vals)
        sim.eval_comb()
        assert sim.get_output_ints("y") == [v ^ 0xFF for v in vals]

    def test_broadcast_input(self):
        b = CircuitBuilder()
        x = b.input("x", 4)
        b.output("y", list(x))
        sim = Simulator(b.circuit, batch=130)
        sim.broadcast_input("x", 0xB)
        sim.eval_comb()
        assert set(sim.get_output_ints("y")) == {0xB}

    def test_unknown_ports_raise(self):
        b = CircuitBuilder()
        b.input("x", 1)
        b.output("y", [b.circuit.const(0)])
        sim = Simulator(b.circuit, batch=1)
        with pytest.raises(KeyError):
            sim.set_input_ints("nope", [0])
        with pytest.raises(KeyError):
            sim.get_output_bits("nope")

    def test_wrong_batch_size_raises(self):
        b = CircuitBuilder()
        b.input("x", 1)
        b.output("y", [b.circuit.const(0)])
        sim = Simulator(b.circuit, batch=4)
        with pytest.raises(ValueError):
            sim.set_input_ints("x", [0, 1])


class TestSequential:
    def make_counter(self, width=4):
        b = CircuitBuilder()
        q, connect = b.register(width)
        connect(b.incrementer(q))
        b.output("q", q)
        return b.circuit

    def test_counter_counts_and_resets(self):
        sim = Simulator(self.make_counter(), batch=2)
        sim.run(10)
        assert sim.get_output_ints("q") == [10, 10]
        sim.reset()
        assert sim.cycle == 0
        sim.run(3)
        assert sim.get_output_ints("q") == [3, 3]

    def test_dff_init_values(self):
        b = CircuitBuilder()
        q, connect = b.register(4, init=0xC)
        connect(q)  # hold
        b.output("q", q)
        sim = Simulator(b.circuit, batch=5)
        sim.run(7)
        assert sim.get_output_ints("q") == [0xC] * 5

    def test_input_schedule_applied_per_cycle(self):
        # accumulate XOR of a scheduled input over 4 cycles
        b = CircuitBuilder()
        x = b.input("x", 4)
        q, connect = b.register(4)
        connect(b.xor_word(q, x))
        b.output("q", q)
        sim = Simulator(b.circuit, batch=1)
        feed = [0x1, 0x2, 0x4, 0x8]
        sim.set_input_schedule("x", lambda cycle: np.array(
            [[(feed[cycle] >> i) & 1 for i in range(4)]], dtype=np.uint8))
        sim.run(4)
        sim.clear_input_schedule("x")
        assert sim.get_output_ints("q") == [0xF]

    def test_schedule_validates_port(self):
        sim = Simulator(self.make_counter(), batch=1)
        with pytest.raises(KeyError):
            sim.set_input_schedule("nope", lambda c: None)


class TestFaultHook:
    def make_passthrough(self):
        b = CircuitBuilder()
        x = b.input("x", 2)
        y = [b.buf(x[0]), b.xor(x[0], x[1])]
        b.output("y", y)
        return b.circuit, x, y

    def test_fault_on_gate_output(self):
        circ, x, y = self.make_passthrough()

        class Stuck:
            def for_cycle(self, cycle):
                return {y[1]: lambda v: np.zeros_like(v)}

        sim = Simulator(circ, batch=4, faults=Stuck())
        sim.set_input_ints("x", [0, 1, 2, 3])
        sim.eval_comb()
        assert sim.get_output_ints("y") == [0, 1, 0, 1]  # xor bit forced to 0

    def test_fault_on_source_net(self):
        circ, x, y = self.make_passthrough()

        class FlipInput:
            def for_cycle(self, cycle):
                return {x[0]: lambda v: ~v}

        sim = Simulator(circ, batch=4, faults=FlipInput())
        sim.set_input_ints("x", [0, 1, 2, 3])
        sim.eval_comb()
        # x0 flipped: buf sees ~x0, xor sees ~x0 ^ x1
        assert sim.get_output_ints("y") == [
            (v ^ 1) & 1 | ((((v ^ 1) & 1) ^ ((v >> 1) & 1)) << 1) for v in range(4)
        ]

    def test_fault_windows_respect_cycle(self):
        b = CircuitBuilder()
        q, connect = b.register(4)
        connect(b.incrementer(q))
        b.output("q", q)
        inc_net = None  # fault the DFF input net indirectly via q
        target = q[0]

        class FlipBit0AtCycle2:
            def for_cycle(self, cycle):
                if cycle == 2:
                    return {target: lambda v: ~v}
                return {}

        sim = Simulator(b.circuit, batch=1, faults=FlipBit0AtCycle2())
        sim.run(4)
        # cycles: q=0,1,2(->flip to 3, so inc gives 4),4
        assert sim.get_output_ints("q") == [5]


class TestRandomCircuitProperty:
    @staticmethod
    def random_comb_circuit(rng, n_inputs, n_gates):
        c = Circuit("rand")
        nets = list(c.add_input("x", n_inputs))
        types = sorted(COMBINATIONAL_TYPES, key=lambda g: g.value)
        for _ in range(n_gates):
            gtype = types[rng.integers(len(types))]
            ins = tuple(nets[rng.integers(len(nets))] for _ in range(gtype.arity))
            nets.append(c.add_gate(gtype, ins))
        c.set_output("y", nets[-min(4, len(nets)):])
        return c

    @staticmethod
    def scalar_eval(circuit, x_bits):
        values = {}
        for name, nets in circuit.inputs.items():
            for i, net in enumerate(nets):
                values[net] = x_bits[i]
        for gate in circuit.gates:
            if gate.gtype is GateType.CONST0:
                values[gate.out] = 0
            elif gate.gtype is GateType.CONST1:
                values[gate.out] = 1
        for gate in circuit.topo_order():
            values[gate.out] = gate.gtype.eval(*(values[n] for n in gate.ins))
        return [values[n] for n in circuit.outputs["y"]]

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_simulator_matches_scalar_semantics(self, seed):
        rng = np.random.default_rng(seed)
        circ = self.random_comb_circuit(rng, n_inputs=5, n_gates=30)
        batch = 32
        sim = Simulator(circ, batch=batch)
        sim.set_input_ints("x", list(range(batch)))
        sim.eval_comb()
        got = sim.get_output_bits("y")
        for run in range(batch):
            bits = [(run >> i) & 1 for i in range(5)]
            assert got[run].tolist() == self.scalar_eval(circ, bits)
