"""Unit tests for the compiled backend's codegen, caching and buffer plan.

Three properties beyond the differential suite
(``test_simulator_equivalence.py``):

- the per-Circuit program cache behaves like the schedule cache it sits
  next to — hits across simulators/shards in one process, independent
  entries per Circuit object, weakref release after gc, staleness on
  circuit mutation;
- the steady-state fault-free cycle is allocation-free: once warmed up,
  ``Simulator.step`` must not create a single new numpy array (the whole
  point of the preallocated buffer plan);
- the generated source is well-formed and the layout invariants hold
  (row map is a permutation; DFF outputs contiguous).
"""

from __future__ import annotations

import gc
import tracemalloc
import weakref

import numpy as np
import pytest

from repro.netlist.builder import CircuitBuilder
from repro.netlist.compiled import (
    _PROGRAM_CACHE,
    CompiledKernel,
    compile_program,
)
from repro.netlist.gates import GateType
from repro.netlist.simulator import Simulator

from tests.test_simulator_equivalence import random_sequential_circuit


def _toy_circuit():
    b = CircuitBuilder()
    x = b.input("x", 4)
    q, connect = b.register(2)
    n0 = b.xor(x[0], x[1])
    n1 = b.nand(x[2], q[0])
    n2 = b.mux(n1, n0, x[3])
    connect([n2, b.not_(q[1])])
    b.output("y", [n0, n1, n2, q[0], q[1]])
    return b.circuit


class TestProgramCache:
    def test_cache_hit_across_simulators_in_one_process(self):
        """Shard workers rebuild Simulators on one Circuit: codegen once."""
        circ = _toy_circuit()
        program = compile_program(circ)
        assert compile_program(circ) is program
        # two independent simulators (≈ two shards) share the program and
        # code object but own distinct value matrices
        s1 = Simulator(circ, batch=64, backend="compiled")
        s2 = Simulator(circ, batch=128, backend="compiled")
        assert s1._compiled.program is program
        assert s2._compiled.program is program
        assert s1._compiled.vals is not s2._compiled.vals

    def test_cache_independent_across_circuits(self):
        c1, c2 = _toy_circuit(), _toy_circuit()
        p1, p2 = compile_program(c1), compile_program(c2)
        assert p1 is not p2
        assert compile_program(c1) is p1
        assert compile_program(c2) is p2

    def test_cache_invalidated_by_circuit_mutation(self):
        c = _toy_circuit()
        p1 = compile_program(c)
        x_nets = c.inputs["x"]
        c.add_gate(GateType.AND, (x_nets[0], x_nets[1]))
        p2 = compile_program(c)
        assert p2 is not p1
        assert len(p2.row_of) == len(p1.row_of) + 1

    def test_cache_released_after_gc(self):
        c = _toy_circuit()
        compile_program(c)
        ref = weakref.ref(c)
        assert c in _PROGRAM_CACHE
        del c
        gc.collect()
        assert ref() is None  # the cache must not keep the circuit alive


class TestLayoutInvariants:
    @pytest.mark.parametrize("seed", range(10))
    def test_row_map_is_permutation_and_q_block_contiguous(self, seed):
        rng = np.random.default_rng(seed)
        circ = random_sequential_circuit(rng, n_gates=int(rng.integers(10, 60)))
        program = compile_program(circ)
        rows = np.sort(program.row_of)
        np.testing.assert_array_equal(rows, np.arange(circ.num_nets))
        np.testing.assert_array_equal(
            program.net_of[program.row_of], np.arange(circ.num_nets)
        )
        q_rows = sorted(int(program.row_of[g.out]) for g in circ.dffs())
        assert q_rows == list(range(program.q_lo, program.q_hi))

    def test_generated_source_is_compilable_and_bound(self):
        circ = _toy_circuit()
        program = compile_program(circ)
        assert "def _factory(" in program.source
        compile(program.source, "<check>", "exec")  # must round-trip
        kernel = CompiledKernel(program, n_words=1)
        assert len(kernel._levels) == program.n_levels


class TestZeroAllocationSteadyState:
    def _warm_sim(self, batch=200):
        circ = _toy_circuit()
        sim = Simulator(circ, batch=batch, backend="compiled")
        sim.set_input_ints("x", [i % 16 for i in range(batch)])
        sim.run(4)  # warm-up: bind buffers, trigger any lazy numpy setup
        return sim

    def test_fault_free_cycle_allocates_no_arrays(self):
        sim = self._warm_sim()
        gc.collect()
        tracemalloc.start()
        try:
            base = tracemalloc.take_snapshot()
            sim.run(32)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        growth = sum(
            s.size_diff
            for s in after.compare_to(base, "filename")
            if "tracemalloc" not in (s.traceback[0].filename if s.traceback else "")
        )
        # 32 steady-state cycles must not allocate arrays; allow a few
        # hundred bytes of interpreter noise (ints, frames), nothing like
        # the  ≥ 25 kB even one (nets × words) uint64 matrix would cost
        assert growth < 2048, f"steady-state cycles allocated {growth} bytes"

    def test_full_design_steady_state_is_allocation_free(self):
        """Same assertion on the real protected design (the campaign path)."""
        from repro.ciphers.netlist_present import PresentSpec
        from repro.countermeasures import build_three_in_one

        design = build_three_in_one(PresentSpec(rounds=2))
        sim = design.simulator(256, backend="compiled")
        sim.set_input_ints("plaintext", list(range(256)))
        sim.run(design.cycles)
        gc.collect()
        tracemalloc.start()
        try:
            base = tracemalloc.take_snapshot()
            sim.run(design.cycles)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        growth = sum(
            s.size_diff
            for s in after.compare_to(base, "filename")
            if "tracemalloc" not in (s.traceback[0].filename if s.traceback else "")
        )
        assert growth < 2048, f"steady-state cycles allocated {growth} bytes"


class TestFaultyPathStillExact:
    """The fault split must not disturb the buffer plan (spot check; the
    exhaustive coverage lives in the differential suite)."""

    def test_faulty_then_clean_cycles_match_reference(self):
        circ = _toy_circuit()

        class Flip:
            def for_cycle(self, cycle):
                if cycle == 1:
                    # fault a gate output AND a source net
                    return {
                        circ.inputs["x"][0]: lambda v: ~v,
                        circ.outputs["y"][1]: lambda v: np.zeros_like(v),
                    }
                return {}

        sims = [
            Simulator(circ, batch=70, faults=Flip(), backend=be)
            for be in ("reference", "compiled")
        ]
        for sim in sims:
            sim.set_input_ints("x", [i % 16 for i in range(70)])
        for _ in range(4):
            for sim in sims:
                sim.step()
            np.testing.assert_array_equal(
                sims[0].get_nets_packed(range(circ.num_nets)),
                sims[1].get_nets_packed(range(circ.num_nets)),
            )
