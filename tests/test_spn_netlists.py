"""Gate-level datapaths versus the spec-level reference oracles."""

import pytest

from repro.ciphers.gift import Gift64
from repro.ciphers.netlist_gift import build_gift_circuit
from repro.ciphers.netlist_present import build_present_circuit
from repro.ciphers.present import Present80
from repro.ciphers.spn import build_spn_core
from repro.netlist.builder import CircuitBuilder
from repro.netlist.simulator import Simulator
from repro.rng import make_rng, random_ints
from repro.synth.sbox_synth import synthesize_sbox


def encrypt_batch(circ, pts, keys, rounds):
    sim = Simulator(circ, batch=len(pts))
    sim.set_input_ints("plaintext", pts)
    sim.set_input_ints("key", keys)
    sim.run(rounds)
    sim.eval_comb()
    return sim.get_output_ints("ciphertext")


class TestPresentNetlist:
    @pytest.fixture(scope="class")
    def circuit(self):
        circ, core = build_present_circuit()
        return circ

    def test_official_vector(self, circuit):
        assert encrypt_batch(circuit, [0], [0], 31) == [0x5579C1387B228445]

    def test_all_official_vectors(self, circuit):
        keys = [0, 0xFFFFFFFFFFFFFFFFFFFF, 0, 0xFFFFFFFFFFFFFFFFFFFF]
        pts = [0, 0, 0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF]
        expect = [
            0x5579C1387B228445, 0xE72C46C0F5945049,
            0xA112FFC72F68417B, 0x3333DCD3213210D2,
        ]
        assert encrypt_batch(circuit, pts, keys, 31) == expect

    def test_random_cases_match_reference(self, circuit):
        rng = make_rng(101)
        pts = random_ints(rng, 50, 64)
        keys = random_ints(rng, 50, 80)
        got = encrypt_batch(circuit, pts, keys, 31)
        assert got == [Present80(k).encrypt(p) for k, p in zip(keys, pts)]

    def test_output_wrong_before_last_cycle(self, circuit):
        # sanity: the output tap is only valid after all 31 cycles
        sim = Simulator(circuit, batch=1)
        sim.set_input_ints("plaintext", [0])
        sim.set_input_ints("key", [0])
        sim.run(30)
        sim.eval_comb()
        assert sim.get_output_ints("ciphertext") != [0x5579C1387B228445]

    def test_structure(self, circuit):
        stats = circuit.stats()
        # 64 state + 80 key + 5 counter + 1 first-flag
        assert stats.num_dffs == 150
        assert stats.num_inputs == 144


class TestGiftNetlist:
    @pytest.fixture(scope="class")
    def circuit(self):
        circ, core = build_gift_circuit()
        return circ

    def test_random_cases_match_reference(self, circuit):
        rng = make_rng(77)
        pts = random_ints(rng, 40, 64)
        keys = random_ints(rng, 40, 128)
        got = encrypt_batch(circuit, pts, keys, 28)
        assert got == [Gift64(k).encrypt(p) for k, p in zip(keys, pts)]

    def test_structure(self, circuit):
        stats = circuit.stats()
        # 64 state + 128 key + 6 lfsr + 1 first-flag
        assert stats.num_dffs == 199


class TestCoreBuilderValidation:
    def test_wrong_sbox_width_rejected(self, present_spec):
        b = CircuitBuilder()
        pt = b.input("plaintext", 64)
        key = b.input("key", 80)
        merged = synthesize_sbox(
            present_spec.sbox.merged_truthtable(), name="merged"
        )
        with pytest.raises(ValueError, match="plain"):
            build_spn_core(b, present_spec, pt, key, sbox_circuit=merged)

    def test_wrong_port_widths_rejected(self, present_spec):
        b = CircuitBuilder()
        pt = b.input("plaintext", 32)
        key = b.input("key", 80)
        sbox = synthesize_sbox(present_spec.sbox.truthtable())
        with pytest.raises(ValueError, match="plaintext"):
            build_spn_core(b, present_spec, pt, key, sbox_circuit=sbox)

    def test_wrong_lambda_width_rejected(self, present_spec):
        b = CircuitBuilder()
        pt = b.input("plaintext", 64)
        key = b.input("key", 80)
        lam = b.input("lambda", 4)
        merged = synthesize_sbox(
            present_spec.sbox.merged_truthtable(), name="merged"
        )
        with pytest.raises(ValueError, match="lam"):
            build_spn_core(
                b, present_spec, pt, key, sbox_circuit=merged, lam=list(lam)
            )

    def test_sbox_inputs_recorded_per_box(self, present_spec):
        circ, core = build_present_circuit()
        assert len(core.sbox_inputs) == 16
        assert all(len(w) == 4 for w in core.sbox_inputs)
        assert len(core.sbox_outputs) == 16
