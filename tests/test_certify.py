"""Coverage certifier: space enumeration, sampling, certificates, replay.

Certify runs here use reduced-round PRESENT instances and small budgets —
the full-scale sweeps live in ``benchmarks/bench_certify_coverage.py``.
"""

import numpy as np
import pytest

from repro.certify import (
    Certificate,
    CertifyConfig,
    certify_design,
    enumerate_fault_space,
    locations_for_budget,
    replay_witness,
)
from repro.ciphers.netlist_present import PresentSpec
from repro.countermeasures import build_naive_duplication, build_three_in_one
from repro.faults.classification import Outcome
from repro.netlist.gates import GateType

KEY = 0x1A2B3C4D5E6F708192A3


@pytest.fixture(scope="module")
def spec2() -> PresentSpec:
    return PresentSpec(rounds=2)


@pytest.fixture(scope="module")
def ours2(spec2):
    return build_three_in_one(spec2)


@pytest.fixture(scope="module")
def naive2(spec2):
    return build_naive_duplication(spec2)


class TestSpace:
    def test_per_model_counts(self, naive2):
        space = enumerate_fault_space(naive2)
        per = space.per_model()
        # identical_mask: (64 sbox-in + 64 sbox-out + 64 state + 64 raw)
        # per core, zipped across 2 cores -> 256 locations x 2 types x 2 rounds
        assert per["identical_mask"] == 256 * 2 * 2
        # layer_glitch: 2 layers x 2 cores x 2 types x 2 rounds
        assert per["layer_glitch"] == 4 * 2 * 2
        # coupled: 3 adjacent pairs per 4-bit word x 16 words x 2 cores
        assert per["coupled"] == 96 * 3 * 2
        assert space.total == sum(per.values())

    def test_index_scenario_roundtrip(self, naive2):
        space = enumerate_fault_space(naive2)
        for index in (0, space.total // 2, space.total - 1):
            scenario = space.scenario(index)
            model, ftype, cycle = space.stratum(index)
            assert scenario.model == model
            assert all(s.fault_type.value == ftype for s in scenario.specs)
            assert all(s.cycles == frozenset({cycle}) for s in scenario.specs)
        with pytest.raises(IndexError):
            space.scenario(space.total)

    def test_digest_pins_the_enumeration(self, naive2):
        full = enumerate_fault_space(naive2)
        assert full.digest() == enumerate_fault_space(naive2).digest()
        restricted = enumerate_fault_space(naive2, cycles=(1,))
        assert restricted.digest() != full.digest()

    def test_single_model_excludes_backend_and_inputs(self, naive2):
        space = enumerate_fault_space(naive2, models=("single",))
        nets = set(space.sections[0].locs)
        circuit = naive2.circuit
        for port in circuit.inputs.values():
            assert nets.isdisjoint(port)
        # The comparator OR-tree sits behind the redundancy boundary.
        fault_net = circuit.outputs["fault"][0]
        assert fault_net not in nets

    def test_unknown_model_and_bad_cycle_raise(self, naive2):
        with pytest.raises(ValueError, match="unknown fault models"):
            enumerate_fault_space(naive2, models=("single", "laser"))
        with pytest.raises(ValueError, match="cycles out of range"):
            enumerate_fault_space(naive2, cycles=(99,))

    def test_sample_is_deterministic_sorted_stratified(self, naive2):
        space = enumerate_fault_space(naive2)
        sample = space.sample(200, seed=9)
        assert len(sample) == 200
        assert len(np.unique(sample)) == 200
        assert (np.sort(sample) == sample).all()
        assert (space.sample(200, seed=9) == sample).all()
        assert not (space.sample(200, seed=10) == sample).all()
        # every model is represented (no corner silently skipped)
        models = {space.stratum(int(i))[0] for i in sample}
        assert models == set(space.per_model())

    def test_sample_at_or_above_total_is_exhaustive(self, naive2):
        space = enumerate_fault_space(naive2, models=("layer_glitch",))
        assert (
            space.sample(space.total, seed=1) == np.arange(space.total)
        ).all()

    def test_locations_for_budget(self):
        assert locations_for_budget(100, 64) == 2
        assert locations_for_budget(1, 64) == 1
        with pytest.raises(ValueError):
            locations_for_budget(0, 64)


class TestCertify:
    def test_three_in_one_small_budget_passes(self, ours2):
        cert = certify_design(
            ours2,
            key=KEY,
            config=CertifyConfig(budget=512, runs_per_location=16, seed=3),
        )
        assert cert.passed
        assert not cert.witnesses
        cov = cert.coverage
        assert cov["runs_executed"] >= 512
        assert cov["sampled"] and 0 < cov["fraction"] < 1
        assert cov["locations_covered"] == cov["locations_planned"]
        # histograms account for every classified run
        total = sum(sum(h) for h in cert.histograms.values())
        assert total == cov["runs_executed"]
        assert len(cert.locations) == cov["locations_covered"]

    def test_exhaustive_sweep_when_no_budget(self, ours2):
        cert = certify_design(
            ours2,
            key=KEY,
            config=CertifyConfig(
                runs_per_location=8, models=("layer_glitch",), seed=3
            ),
        )
        assert not cert.coverage["sampled"]
        assert cert.coverage["fraction"] == 1.0
        assert cert.coverage["locations_covered"] == cert.space["total"]

    def test_naive_identical_mask_yields_replayable_witness(self, naive2):
        cert = certify_design(
            naive2,
            key=KEY,
            config=CertifyConfig(
                budget=512,
                runs_per_location=16,
                models=("identical_mask",),
                seed=3,
            ),
        )
        assert cert.verdicts["dfa_detection"]["status"] == "fail"
        assert not cert.passed
        assert cert.witnesses
        outcome, _ = replay_witness(naive2, cert.witnesses[0], key=KEY)
        assert outcome is Outcome.EFFECTIVE

    def test_certificate_roundtrips_through_json(self, ours2, tmp_path):
        cert = certify_design(
            ours2,
            key=KEY,
            config=CertifyConfig(
                budget=128, runs_per_location=16, models=("coupled",), seed=3
            ),
        )
        path = tmp_path / "cert.json"
        cert.save(path)
        loaded = Certificate.load(path)
        assert loaded.render() == cert.render()
        assert loaded.passed == cert.passed

    def test_interrupted_resume_is_byte_identical(self, naive2, tmp_path):
        kwargs = dict(
            budget=384,
            runs_per_location=16,
            models=("identical_mask",),
            seed=5,
            shard_locations=4,
        )
        direct = certify_design(
            naive2, key=KEY, config=CertifyConfig(**kwargs)
        )
        ck = tmp_path / "ck"
        certify_design(
            naive2, key=KEY, config=CertifyConfig(**kwargs, checkpoint_dir=ck)
        )
        # Simulate a crash that lost some shards mid-run.
        shards = sorted(ck.glob("shard_*.npz"))
        assert len(shards) > 2
        shards[0].unlink()
        shards[-1].unlink()
        resumed = certify_design(
            naive2,
            key=KEY,
            config=CertifyConfig(**kwargs, checkpoint_dir=ck, resume=True),
        )
        assert resumed.render(include_timing=False) == direct.render(
            include_timing=False
        )

    def test_fail_fast_stops_scheduling(self, naive2):
        cert = certify_design(
            naive2,
            key=KEY,
            config=CertifyConfig(
                budget=1024,
                runs_per_location=16,
                models=("identical_mask",),
                seed=5,
                shard_locations=2,
                fail_fast=True,
            ),
        )
        assert cert.witnesses
        assert cert.coverage["stopped_early"]
        assert (
            cert.coverage["locations_covered"]
            < cert.coverage["locations_planned"]
        )

    def test_miswired_design_fails_lint_and_skips_sweep(self, spec2):
        design = build_naive_duplication(spec2)
        # Sabotage after construction (the builder's own strict lint has
        # already passed): a driven net that nothing reads or exposes.
        circuit = design.circuit
        a, b = circuit.inputs["plaintext"][:2]
        circuit.add_gate(GateType.AND, (a, b), tag="sabotage")
        cert = certify_design(
            design, key=KEY, config=CertifyConfig(budget=64)
        )
        assert not cert.passed
        assert cert.verdicts["structural_lint"]["status"] == "fail"
        assert cert.verdicts["dfa_detection"]["status"] == "skipped"
        assert cert.coverage["runs_executed"] == 0
        assert cert.lint["dangling_nets"]

    def test_sifa_verdict_not_applicable_without_lambda(self, naive2):
        cert = certify_design(
            naive2,
            key=KEY,
            config=CertifyConfig(
                budget=64, runs_per_location=16, models=("coupled",), seed=3
            ),
        )
        assert cert.verdicts["sifa_uniformity"]["status"] == "not_applicable"

    def test_wall_budget_emits_valid_degraded_certificate(self, ours2, tmp_path):
        """An exhausted wall budget degrades gracefully: the certificate is
        still valid (and loadable), but says exactly what it did not cover."""
        cert = certify_design(
            ours2,
            key=KEY,
            config=CertifyConfig(
                budget=512, runs_per_location=16, seed=3, wall_budget=0.0
            ),
        )
        assert cert.degraded
        cov = cert.coverage
        assert cov["degraded"] and cov["budget_exhausted"]
        assert cov["locations_covered"] == 0
        assert cov["locations_uncovered"] == cov["locations_planned"] > 0
        assert sum(cov["uncovered_per_stratum"].values()) == (
            cov["locations_uncovered"]
        )
        for claim in ("dfa_detection", "sifa_uniformity"):
            assert cert.verdicts[claim].get("degraded") is True
            assert "uncovered_per_stratum" in cert.verdicts[claim]["note"]
        assert "DEGRADED" in cert.summary()
        # degraded certificates still save/load with a passing checksum
        path = tmp_path / "degraded.json"
        cert.save(path)
        assert Certificate.load(path).degraded


@pytest.fixture(scope="module")
def saved_cert(ours2, tmp_path_factory):
    cert = certify_design(
        ours2,
        key=KEY,
        config=CertifyConfig(
            budget=128, runs_per_location=16, models=("coupled",), seed=3
        ),
    )
    path = tmp_path_factory.mktemp("cert") / "cert.json"
    cert.save(path)
    return cert, path


class TestCertificateIntegrity:
    """Certificate.load validates schema version + checksum (exit code 3)."""

    def test_save_embeds_integrity_block(self, saved_cert):
        import json

        _, path = saved_cert
        doc = json.loads(path.read_text())
        assert doc["integrity"]["algorithm"] == "sha256"
        assert len(doc["integrity"]["digest"]) == 64
        Certificate.load(path)  # verifies the digest

    def test_tampered_certificate_rejected(self, saved_cert, tmp_path):
        from repro.certify import CertificateError

        cert, path = saved_cert
        # flip the overall verdict — exactly the edit integrity must catch
        text = path.read_text()
        tampered = tmp_path / "tampered.json"
        assert '"status": "pass"' in text
        tampered.write_text(
            text.replace('"status": "pass"', '"status": "fail"', 1)
        )
        with pytest.raises(CertificateError, match="integrity checksum"):
            Certificate.load(tampered)

    def test_unsupported_version_rejected(self, saved_cert, tmp_path):
        import json

        from repro.certify import CertificateError

        cert, path = saved_cert
        doc = json.loads(path.read_text())
        doc.pop("integrity")
        doc["version"] = 99
        bumped = tmp_path / "v99.json"
        bumped.write_text(json.dumps(doc))
        with pytest.raises(CertificateError, match="version"):
            Certificate.load(bumped)

    def test_legacy_certificate_without_integrity_loads(
        self, saved_cert, tmp_path
    ):
        import json

        cert, path = saved_cert
        doc = json.loads(path.read_text())
        doc.pop("integrity")
        legacy = tmp_path / "legacy.json"
        legacy.write_text(json.dumps(doc))
        assert Certificate.load(legacy).render() == cert.render()

    def test_unreadable_documents_rejected(self, tmp_path):
        from repro.certify import CertificateError

        torn = tmp_path / "torn.json"
        torn.write_text('{"version": 1, "sch')  # torn mid-write
        with pytest.raises(CertificateError, match="unreadable"):
            Certificate.load(torn)
        with pytest.raises(CertificateError, match="unreadable"):
            Certificate.load(tmp_path / "missing.json")
        not_obj = tmp_path / "list.json"
        not_obj.write_text("[1, 2]")
        with pytest.raises(CertificateError, match="not a JSON object"):
            Certificate.load(not_obj)
        hollow = tmp_path / "hollow.json"
        hollow.write_text('{"version": 1}')
        with pytest.raises(CertificateError, match="malformed"):
            Certificate.load(hollow)

    def test_cli_verify_maps_integrity_failure_to_exit_3(
        self, saved_cert, tmp_path, capsys
    ):
        from repro.cli import EXIT_CHECKPOINT_MISMATCH, main

        cert, path = saved_cert
        assert main(["verify", str(path)]) == (0 if cert.passed else 1)
        out = capsys.readouterr().out
        assert "certificate:" in out

        tampered = tmp_path / "tampered.json"
        tampered.write_text(path.read_text().replace('"rounds": 2', '"rounds": 3'))
        assert main(["verify", str(tampered)]) == EXIT_CHECKPOINT_MISMATCH
        assert "certificate invalid" in capsys.readouterr().err


@pytest.fixture(scope="module")
def degraded_cert(ours2, tmp_path_factory):
    """A wall-budget-truncated certificate, saved to disk (the same code
    path the service takes for a per-request deadline)."""
    cert = certify_design(
        ours2,
        key=KEY,
        config=CertifyConfig(
            budget=512, runs_per_location=16, seed=3, wall_budget=0.0
        ),
    )
    assert cert.degraded
    path = tmp_path_factory.mktemp("degraded") / "degraded.json"
    cert.save(path)
    return cert, path


class TestDegradedVerify:
    """`repro verify` on *degraded* certificates (ISSUE 8 satellite): the
    integrity block still validates, the DEGRADED state is surfaced, and
    the uncovered-location accounting survives the disk round-trip."""

    def test_cli_verify_accepts_degraded_and_flags_it(
        self, degraded_cert, capsys
    ):
        from repro.cli import main

        cert, path = degraded_cert
        assert main(["verify", str(path)]) == (0 if cert.passed else 1)
        captured = capsys.readouterr()
        assert "DEGRADED" in captured.out  # the summary says so...
        assert "DEGRADED" in captured.err  # ...and verify warns explicitly
        assert "uncovered_per_stratum" in captured.err

    def test_uncovered_accounting_roundtrips(self, degraded_cert):
        cert, path = degraded_cert
        reloaded = Certificate.load(path)
        assert reloaded.degraded
        assert reloaded.coverage == cert.coverage
        cov = reloaded.coverage
        assert cov["locations_uncovered"] == cov["locations_planned"] > 0
        assert sum(cov["uncovered_per_stratum"].values()) == (
            cov["locations_uncovered"]
        )
        # the dict round-trip (what the service ships over HTTP) too
        wired = Certificate.from_dict(cert.to_dict())
        assert wired.degraded and wired.coverage == cert.coverage

    def test_degraded_accounting_is_integrity_protected(
        self, degraded_cert, tmp_path, capsys
    ):
        """Quietly shrinking `locations_uncovered` — claiming more coverage
        than was simulated — must trip the checksum, exit 3."""
        from repro.cli import EXIT_CHECKPOINT_MISMATCH, main

        cert, path = degraded_cert
        text = path.read_text()
        needle = f'"locations_uncovered": {cert.coverage["locations_uncovered"]}'
        assert needle in text
        forged = tmp_path / "forged.json"
        forged.write_text(text.replace(needle, '"locations_uncovered": 0', 1))
        assert main(["verify", str(forged)]) == EXIT_CHECKPOINT_MISMATCH
        assert "certificate invalid" in capsys.readouterr().err
