"""Structural analysis: cones, fanout, core independence of countermeasures."""

import pytest

from repro.netlist.analysis import (
    LintError,
    datapath_nets,
    fanin_cone,
    fanout_cone,
    fanout_map,
    gate_by_output,
    lint_countermeasure,
    shared_logic,
)
from repro.netlist.builder import CircuitBuilder
from repro.netlist.gates import GateType


def diamond():
    """a -> (n1, n2) -> y ; plus an unrelated branch."""
    b = CircuitBuilder()
    a = b.input("a", 1)[0]
    c = b.input("c", 1)[0]
    n1 = b.not_(a)
    n2 = b.buf(a)
    y = b.and_(n1, n2)
    z = b.not_(c)
    b.output("y", [y])
    b.output("z", [z])
    return b.circuit, a, c, n1, n2, y, z


class TestCones:
    def test_fanin_cone_stops_at_inputs(self):
        circ, a, c, n1, n2, y, z = diamond()
        cone = fanin_cone(circ, [y])
        assert cone == {a, n1, n2, y}

    def test_fanout_cone(self):
        circ, a, c, n1, n2, y, z = diamond()
        cone = fanout_cone(circ, [a])
        assert cone == {a, n1, n2, y}
        assert z not in cone

    def test_fanout_map(self):
        circ, a, c, n1, n2, y, z = diamond()
        fan = fanout_map(circ)
        assert {g.out for g in fan[a]} == {n1, n2}

    def test_gate_by_output(self):
        circ, a, c, n1, n2, y, z = diamond()
        assert gate_by_output(circ)[y].ins == (n1, n2)

    def test_cone_through_dff_control(self):
        b = CircuitBuilder()
        x = b.input("x", 1)[0]
        q = b.dff(x)
        y = b.not_(q)
        b.output("y", [y])
        with_dff = fanin_cone(b.circuit, [y], through_dffs=True)
        without = fanin_cone(b.circuit, [y], through_dffs=False)
        assert x in with_dff
        assert x not in without
        assert q in without

    def test_shared_logic_excludes_primary_inputs(self):
        circ, a, c, n1, n2, y, z = diamond()
        assert shared_logic(circ, [y], [z]) == set()
        assert shared_logic(circ, [y], [n1]) == {n1}


class TestCountermeasureIndependence:
    """The two computations must share nothing but primary inputs —
    otherwise one fault could corrupt both identically."""

    def assert_cores_independent(self, design):
        circ = design.circuit
        cones = [fanin_cone(circ, core.ciphertext) for core in design.cores]
        drivers = gate_by_output(circ)
        for i in range(len(cones)):
            for j in range(i + 1, len(cones)):
                common = cones[i] & cones[j]
                for net in common:
                    gate = drivers[net]
                    # inputs, constants, and the λ distribution inverters
                    # are legitimately shared; everything else is a bug.
                    assert gate.gtype.value in ("input", "const0", "const1") or (
                        gate.tag.startswith("lambda")
                    ), f"cores share net {net} ({gate.gtype.name}, tag={gate.tag!r})"

    def test_naive_cores_independent(self, naive_design):
        self.assert_cores_independent(naive_design)

    def test_triplication_cores_independent(self, triplication_design):
        self.assert_cores_independent(triplication_design)

    def test_acisp_cores_independent(self, acisp_design):
        self.assert_cores_independent(acisp_design)

    def test_three_in_one_cores_independent(self, ours_prime):
        self.assert_cores_independent(ours_prime)

    def test_per_sbox_cores_independent(self, ours_per_sbox):
        self.assert_cores_independent(ours_per_sbox)


# ------------------------------------------------------- countermeasure lint


class _Probe:
    """Minimal core stand-in: lint only reads ``ciphertext``."""

    def __init__(self, ciphertext):
        self.ciphertext = ciphertext


class _Fixture:
    """Minimal design stand-in: lint reads circuit, cores, scheme."""

    def __init__(self, circuit, cores):
        self.circuit = circuit
        self.cores = cores
        self.scheme = "fixture"


def miswired_pair():
    """Two 'cores' that illegally share their add-key XOR layer."""
    b = CircuitBuilder("miswired")
    pt = b.input("plaintext", 2)
    key = b.input("key", 2)
    shared = b.xor_word(pt, key, tag="addkey")  # one copy feeds both cores
    c0 = [b.not_(n, tag="c0") for n in shared]
    c1 = [b.not_(n, tag="c1") for n in shared]
    fault = b.or_reduce(b.xor_word(c0, c1, tag="cmp"), tag="cmp/ortree")
    b.output("ciphertext", c0)
    b.output("fault", [fault])
    return b.build(), shared, c0, c1


class TestLintCountermeasure:
    """The builders run this strictly; these tests pin what it enforces."""

    def test_paper_variants_pass(
        self, naive_design, acisp_design, ours_prime, triplication_design
    ):
        for design in (
            naive_design, acisp_design, ours_prime, triplication_design
        ):
            report = lint_countermeasure(design)
            assert report.passed, report.to_dict()
            assert report.n_datapath > 0
            assert report.to_dict()["passed"] is True

    def test_shared_core_logic_detected(self):
        circuit, shared, c0, c1 = miswired_pair()
        design = _Fixture(circuit, [_Probe(c0), _Probe(c1)])
        report = lint_countermeasure(design, strict=False)
        assert set(shared) <= set(report.shared_nets)
        assert not report.passed
        with pytest.raises(LintError, match="share logic nets") as excinfo:
            lint_countermeasure(design)
        assert excinfo.value.net in report.shared_nets

    def test_missing_fault_port_means_nothing_observable(self):
        b = CircuitBuilder("noflag")
        pt = b.input("plaintext", 2)
        c0 = [b.not_(n, tag="c0") for n in pt]
        b.output("ciphertext", c0)
        design = _Fixture(b.build(), [_Probe(c0)])
        report = lint_countermeasure(design, strict=False)
        assert set(report.unobservable_nets) == set(c0)

    def test_undriven_and_dangling_nets_detected(self):
        circuit, shared, c0, c1 = miswired_pair()
        orphan = circuit.new_net()  # allocated, never driven
        a, bnet = circuit.inputs["plaintext"]
        dangling = circuit.add_gate(GateType.AND, (a, bnet), tag="halfwired")
        design = _Fixture(circuit, [_Probe(c0), _Probe(c1)])
        report = lint_countermeasure(design, strict=False)
        assert orphan in report.undriven_nets
        assert dangling in report.dangling_nets

    def test_datapath_excludes_inputs_and_backend(self, naive_design):
        circuit = naive_design.circuit
        nets = datapath_nets(circuit, naive_design.cores)
        for port in circuit.inputs.values():
            assert nets.isdisjoint(port)
        assert circuit.outputs["fault"][0] not in nets
