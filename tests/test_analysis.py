"""Structural analysis: cones, fanout, core independence of countermeasures."""

from repro.netlist.analysis import (
    fanin_cone,
    fanout_cone,
    fanout_map,
    gate_by_output,
    shared_logic,
)
from repro.netlist.builder import CircuitBuilder


def diamond():
    """a -> (n1, n2) -> y ; plus an unrelated branch."""
    b = CircuitBuilder()
    a = b.input("a", 1)[0]
    c = b.input("c", 1)[0]
    n1 = b.not_(a)
    n2 = b.buf(a)
    y = b.and_(n1, n2)
    z = b.not_(c)
    b.output("y", [y])
    b.output("z", [z])
    return b.circuit, a, c, n1, n2, y, z


class TestCones:
    def test_fanin_cone_stops_at_inputs(self):
        circ, a, c, n1, n2, y, z = diamond()
        cone = fanin_cone(circ, [y])
        assert cone == {a, n1, n2, y}

    def test_fanout_cone(self):
        circ, a, c, n1, n2, y, z = diamond()
        cone = fanout_cone(circ, [a])
        assert cone == {a, n1, n2, y}
        assert z not in cone

    def test_fanout_map(self):
        circ, a, c, n1, n2, y, z = diamond()
        fan = fanout_map(circ)
        assert {g.out for g in fan[a]} == {n1, n2}

    def test_gate_by_output(self):
        circ, a, c, n1, n2, y, z = diamond()
        assert gate_by_output(circ)[y].ins == (n1, n2)

    def test_cone_through_dff_control(self):
        b = CircuitBuilder()
        x = b.input("x", 1)[0]
        q = b.dff(x)
        y = b.not_(q)
        b.output("y", [y])
        with_dff = fanin_cone(b.circuit, [y], through_dffs=True)
        without = fanin_cone(b.circuit, [y], through_dffs=False)
        assert x in with_dff
        assert x not in without
        assert q in without

    def test_shared_logic_excludes_primary_inputs(self):
        circ, a, c, n1, n2, y, z = diamond()
        assert shared_logic(circ, [y], [z]) == set()
        assert shared_logic(circ, [y], [n1]) == {n1}


class TestCountermeasureIndependence:
    """The two computations must share nothing but primary inputs —
    otherwise one fault could corrupt both identically."""

    def assert_cores_independent(self, design):
        circ = design.circuit
        cones = [fanin_cone(circ, core.ciphertext) for core in design.cores]
        drivers = gate_by_output(circ)
        for i in range(len(cones)):
            for j in range(i + 1, len(cones)):
                common = cones[i] & cones[j]
                for net in common:
                    gate = drivers[net]
                    # inputs, constants, and the λ distribution inverters
                    # are legitimately shared; everything else is a bug.
                    assert gate.gtype.value in ("input", "const0", "const1") or (
                        gate.tag.startswith("lambda")
                    ), f"cores share net {net} ({gate.gtype.name}, tag={gate.tag!r})"

    def test_naive_cores_independent(self, naive_design):
        self.assert_cores_independent(naive_design)

    def test_triplication_cores_independent(self, triplication_design):
        self.assert_cores_independent(triplication_design)

    def test_acisp_cores_independent(self, acisp_design):
        self.assert_cores_independent(acisp_design)

    def test_three_in_one_cores_independent(self, ours_prime):
        self.assert_cores_independent(ours_prime)

    def test_per_sbox_cores_independent(self, ours_per_sbox):
        self.assert_cores_independent(ours_per_sbox)
