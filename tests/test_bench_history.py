"""The benchmark-history ledger and the perf-regression sentinel.

Exercises the append/load round trip, series keying by config digest,
the median±MAD robust baseline (a synthetic ≥20% throughput regression
must fail, stable noise must pass), direction inference, and the
``repro bench history`` / ``repro bench check`` CLI exit codes.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.telemetry.history import (
    append_entry,
    check,
    config_digest,
    flatten_metrics,
    load_history,
    metric_direction,
    render_check,
    render_history,
    resolve_history_path,
)


def _report(value: float, *, name="simulator", metric="speedup_at_4096",
            config=None, rev="abc123"):
    return {
        "name": name,
        "config": config if config is not None else {"batch": 4096},
        "metrics": {metric: value},
        "manifest": {
            "timestamp": "2026-08-09T00:00:00Z",
            "git_rev": rev,
            "hostname": "host-a",
            "cpu": "TestCPU 3000",
        },
    }


class TestLedger:
    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        entry = append_entry(path, _report(6.5))
        append_entry(path, _report(6.6))
        history = load_history(path)
        assert len(history) == 2
        assert history[0]["name"] == "simulator"
        assert history[0]["metrics"] == {"speedup_at_4096": 6.5}
        assert history[0]["git_rev"] == "abc123"
        assert history[0]["hostname"] == "host-a"
        assert history[0]["cpu"] == "TestCPU 3000"
        assert history[0]["config_digest"] == entry["config_digest"]

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError):
            load_history(path)

    def test_config_digest_is_stable_and_order_insensitive(self):
        a = config_digest({"batch": 4096, "backend": "compiled"})
        b = config_digest({"backend": "compiled", "batch": 4096})
        assert a == b and len(a) == 12
        assert config_digest({"batch": 2048}) != a

    def test_flatten_metrics_nested_scalars_only(self):
        flat = flatten_metrics({
            "speedups_at_4096": {"compiled_over_levelized": 2.58},
            "runs_per_second": 1e5,
            "sweep": [1, 2, 3],       # tables are evidence, not series
            "passed": True,           # bools are not trendable
            "label": "x",             # neither are strings
        })
        assert flat == {
            "speedups_at_4096.compiled_over_levelized": 2.58,
            "runs_per_second": 1e5,
        }

    def test_resolve_history_path_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_HISTORY", str(tmp_path / "h.jsonl"))
        assert resolve_history_path() == tmp_path / "h.jsonl"
        monkeypatch.delenv("REPRO_BENCH_HISTORY")
        assert resolve_history_path(tmp_path).name == "bench_history.jsonl"


class TestDirection:
    def test_inference(self):
        assert metric_direction("speedup_at_4096") == 1
        assert metric_direction("runs_per_second") == 1
        assert metric_direction("throughput") == 1
        assert metric_direction("speedups_at_4096.compiled_over_levelized") == 1
        assert metric_direction("shard_latency_s") == -1
        assert metric_direction("overhead_pct") == -1
        assert metric_direction("total_ge") == 0  # ambiguous: skipped


class TestSentinel:
    def _history(self, values, **kw):
        return [
            {
                "name": "simulator",
                "config_digest": "d" * 12,
                "metrics": {"speedup": v},
                "git_rev": f"rev{i}",
                **kw,
            }
            for i, v in enumerate(values)
        ]

    def test_stable_series_passes(self):
        report = check(self._history([6.5, 6.6, 6.4, 6.55, 6.5]))
        assert report["regressions"] == 0
        (result,) = [r for r in report["results"] if r["status"] != "no-baseline"]
        assert result["status"] == "ok"

    def test_twenty_percent_drop_fails_higher_is_better(self):
        report = check(self._history([6.5, 6.6, 6.4, 6.55, 6.5 * 0.8]))
        assert report["regressions"] == 1
        (bad,) = [r for r in report["results"] if r["status"] == "regression"]
        assert bad["metric"] == "speedup"
        assert bad["delta_pct"] < -15

    def test_twenty_percent_rise_fails_lower_is_better(self):
        history = [
            {
                "name": "bench",
                "config_digest": "e" * 12,
                "metrics": {"shard_latency_s": v},
            }
            for v in [1.0, 1.02, 0.98, 1.0, 1.25]
        ]
        report = check(history)
        assert report["regressions"] == 1

    def test_improvement_is_not_a_regression(self):
        report = check(self._history([6.5, 6.6, 6.4, 6.55, 9.0]))
        assert report["regressions"] == 0

    def test_too_little_history_passes_vacuously(self):
        report = check(self._history([6.5, 6.6]))
        assert report["regressions"] == 0
        assert all(r["status"] == "no-baseline" for r in report["results"])

    def test_min_samples_knob(self):
        report = check(self._history([6.5, 6.5 * 0.7]), min_samples=1)
        assert report["regressions"] == 1

    def test_mad_band_absorbs_a_noisy_series(self):
        # ±15% swings are this series' normal; 6.0 is within 3·MAD
        report = check(self._history([6.0, 7.8, 5.9, 7.6, 6.1, 7.7, 6.0]))
        assert report["regressions"] == 0

    def test_series_are_isolated_by_config_digest(self):
        history = self._history([6.5, 6.5, 6.5, 6.5])
        other = [
            {
                "name": "simulator",
                "config_digest": "f" * 12,
                "metrics": {"speedup": v},
            }
            for v in [2.0, 2.0, 2.0, 1.0]
        ]
        report = check(history + other)
        assert report["series"] == 2
        assert report["regressions"] == 1  # only the second series regressed

    def test_ambiguous_metrics_are_skipped(self):
        history = [
            {"name": "b", "config_digest": "a" * 12, "metrics": {"total_ge": v}}
            for v in [100.0, 100.0, 100.0, 250.0]
        ]
        report = check(history)
        assert report["checked"] == 0 and report["regressions"] == 0

    def test_render_check_names_the_regression(self):
        report = check(self._history([6.5, 6.6, 6.4, 6.55, 4.0]))
        text = render_check(report)
        assert "1 regression" in text
        assert "FAIL simulator:speedup" in text

    def test_render_history_lists_series(self):
        history = self._history([6.5, 6.6], timestamp="2026-08-09T00:00:00Z")
        text = render_history(history)
        assert "2 run(s)" in text and "simulator" in text


class TestCli:
    def _seed(self, path, values):
        for v in values:
            append_entry(path, _report(v))

    def test_bench_history_lists_the_ledger(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        self._seed(path, [6.5, 6.6])
        assert main(["bench", "history", "--history", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 run(s)" in out and "simulator" in out

    def test_bench_history_import_dir_backfills(self, tmp_path, capsys):
        report_dir = tmp_path / "out"
        report_dir.mkdir()
        (report_dir / "BENCH_simulator.json").write_text(
            json.dumps(_report(6.5))
        )
        path = tmp_path / "h.jsonl"
        assert main([
            "bench", "history", "--history", str(path),
            "--import-dir", str(report_dir),
        ]) == 0
        assert len(load_history(path)) == 1

    def test_bench_check_passes_on_stable_history(self, tmp_path):
        path = tmp_path / "h.jsonl"
        self._seed(path, [6.5, 6.6, 6.4, 6.55, 6.5])
        assert main(["bench", "check", "--history", str(path)]) == 0

    def test_bench_check_fails_on_injected_regression(self, tmp_path, capsys):
        """The acceptance criterion: a synthetic ≥20% throughput drop
        must exit nonzero."""
        path = tmp_path / "h.jsonl"
        self._seed(path, [6.5, 6.6, 6.4, 6.55, 6.5 * 0.8])
        assert main(["bench", "check", "--history", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_bench_check_empty_history_passes(self, tmp_path, capsys):
        assert main(["bench", "check", "--history", str(tmp_path / "h.jsonl")]) == 0
        assert "nothing to check" in capsys.readouterr().out

    def test_bench_report_appends_to_the_ledger(self, tmp_path, monkeypatch):
        """benchmarks/conftest.bench_report feeds the sentinel automatically."""
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "bench_conftest",
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks" / "conftest.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        ledger = tmp_path / "h.jsonl"
        monkeypatch.setenv("REPRO_BENCH_HISTORY", str(ledger))
        module.bench_report(
            tmp_path, "unit", config={"batch": 16}, metrics={"speedup": 4.2}
        )
        (entry,) = load_history(ledger)
        assert entry["name"] == "unit"
        assert entry["metrics"] == {"speedup": 4.2}
        assert entry["git_rev"]  # manifest fields propagated
        assert (tmp_path / "BENCH_unit.json").exists()
