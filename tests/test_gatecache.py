"""GateCache folding rules — each must preserve semantics and actually fold."""

from repro.netlist.builder import CircuitBuilder
from repro.netlist.simulator import Simulator
from repro.synth.gatecache import GateCache


def fresh():
    b = CircuitBuilder()
    x = b.input("x", 3)
    return b, GateCache(b), x


def check(b, out_net, fn):
    b.output("y", [out_net])
    sim = Simulator(b.circuit, batch=8)
    sim.set_input_ints("x", list(range(8)))
    sim.eval_comb()
    got = sim.get_output_ints("y")
    for v in range(8):
        bits = [(v >> i) & 1 for i in range(3)]
        assert got[v] == fn(*bits), f"pattern {v}"


class TestConstantFolding:
    def test_and_with_constants(self):
        b, g, x = fresh()
        assert g.g_and(g.zero, x[0]) == g.zero
        assert g.g_and(g.one, x[0]) == x[0]

    def test_or_with_constants(self):
        b, g, x = fresh()
        assert g.g_or(g.one, x[0]) == g.one
        assert g.g_or(g.zero, x[0]) == x[0]

    def test_xor_with_constants(self):
        b, g, x = fresh()
        assert g.g_xor(g.zero, x[0]) == x[0]
        n = g.g_xor(g.one, x[0])
        check(b, n, lambda a, c, d: a ^ 1)

    def test_not_of_consts(self):
        b, g, x = fresh()
        assert g.g_not(g.zero) == g.one
        assert g.g_not(g.one) == g.zero


class TestIdentities:
    def test_idempotence(self):
        b, g, x = fresh()
        assert g.g_and(x[0], x[0]) == x[0]
        assert g.g_or(x[1], x[1]) == x[1]
        assert g.g_xor(x[0], x[0]) == g.zero
        assert g.g_xnor(x[0], x[0]) == g.one

    def test_complement_annihilation(self):
        b, g, x = fresh()
        nx = g.g_not(x[0])
        assert g.g_and(x[0], nx) == g.zero
        assert g.g_or(x[0], nx) == g.one
        assert g.g_xor(x[0], nx) == g.one
        assert g.g_xnor(x[0], nx) == g.zero

    def test_double_not_vanishes(self):
        b, g, x = fresh()
        assert g.g_not(g.g_not(x[0])) == x[0]

    def test_structural_hashing_commutative(self):
        b, g, x = fresh()
        assert g.g_and(x[0], x[1]) == g.g_and(x[1], x[0])
        assert g.g_xor(x[0], x[1]) == g.g_xor(x[1], x[0])
        before = len(b.circuit.gates)
        g.g_and(x[0], x[1])
        assert len(b.circuit.gates) == before

    def test_nand_nor_build_on_and_or(self):
        b, g, x = fresh()
        n1 = g.g_nand(x[0], x[1])
        check(b, n1, lambda a, c, d: 1 - (a & c))

    def test_xor_xnor_complement_noted(self):
        b, g, x = fresh()
        xo = g.g_xor(x[0], x[1])
        xn = g.g_xnor(x[0], x[1])
        assert g.complement_of(xo) == xn
        assert g.g_not(xo) == xn


class TestMuxReduction:
    def test_constant_select(self):
        b, g, x = fresh()
        assert g.g_mux(g.zero, x[0], x[1]) == x[0]
        assert g.g_mux(g.one, x[0], x[1]) == x[1]

    def test_equal_branches(self):
        b, g, x = fresh()
        assert g.g_mux(x[2], x[0], x[0]) == x[0]

    def test_const_branches_strength_reduce(self):
        b, g, x = fresh()
        # sel ? x1 : 0  == AND
        n = g.g_mux(x[2], g.zero, x[1])
        check(b, n, lambda a, c, d: d & c)

    def test_const_one_branch(self):
        b, g, x = fresh()
        # sel ? 1 : x0 == OR(sel, x0)
        n = g.g_mux(x[2], x[0], g.one)
        check(b, n, lambda a, c, d: d | a)

    def test_complement_branches_become_xnor(self):
        b, g, x = fresh()
        nx = g.g_not(x[0])
        n = g.g_mux(x[2], nx, x[0])
        check(b, n, lambda a, c, d: 1 - (d ^ a))

    def test_select_equals_branch(self):
        b, g, x = fresh()
        n = g.g_mux(x[2], x[2], x[0])  # sel?x0:sel == sel&x0
        check(b, n, lambda a, c, d: d & a)
        n2 = g.g_mux(x[2], x[0], x[2])  # sel?sel:x0 == sel|x0
        check_fn = lambda a, c, d: d | a
        b.output("y2", [n2])
        sim = Simulator(b.circuit, batch=8)
        sim.set_input_ints("x", list(range(8)))
        sim.eval_comb()
        got = sim.get_output_ints("y2")
        for v in range(8):
            bits = [(v >> i) & 1 for i in range(3)]
            assert got[v] == check_fn(*bits)

    def test_general_mux_emitted_once(self):
        b, g, x = fresh()
        m1 = g.g_mux(x[2], x[0], x[1])
        m2 = g.g_mux(x[2], x[0], x[1])
        assert m1 == m2
