"""Gate-type semantics and Gate record validation."""

import pytest

from repro.netlist.gates import COMBINATIONAL_TYPES, SOURCE_TYPES, Gate, GateType


class TestEvalSemantics:
    TRUTH = {
        GateType.AND: [0, 0, 0, 1],
        GateType.OR: [0, 1, 1, 1],
        GateType.NAND: [1, 1, 1, 0],
        GateType.NOR: [1, 0, 0, 0],
        GateType.XOR: [0, 1, 1, 0],
        GateType.XNOR: [1, 0, 0, 1],
    }

    @pytest.mark.parametrize("gtype", sorted(TRUTH, key=lambda g: g.value))
    def test_two_input_truth_tables(self, gtype):
        for pattern in range(4):
            a, b = pattern & 1, (pattern >> 1) & 1
            assert gtype.eval(a, b) == self.TRUTH[gtype][a + 2 * b]

    def test_not_buf(self):
        assert GateType.NOT.eval(0) == 1
        assert GateType.NOT.eval(1) == 0
        assert GateType.BUF.eval(0) == 0
        assert GateType.BUF.eval(1) == 1

    def test_mux_selects_d1_when_sel_high(self):
        for d0 in (0, 1):
            for d1 in (0, 1):
                assert GateType.MUX.eval(0, d0, d1) == d0
                assert GateType.MUX.eval(1, d0, d1) == d1

    def test_constants(self):
        assert GateType.CONST0.eval() == 0
        assert GateType.CONST1.eval() == 1

    def test_dff_passes_d(self):
        assert GateType.DFF.eval(1) == 1

    def test_eval_arity_checked(self):
        with pytest.raises(ValueError):
            GateType.AND.eval(1)
        with pytest.raises(ValueError):
            GateType.NOT.eval(1, 0)

    def test_input_has_no_semantics(self):
        with pytest.raises(ValueError):
            GateType.INPUT.eval()


class TestClassification:
    def test_source_and_combinational_partition(self):
        assert GateType.DFF not in COMBINATIONAL_TYPES
        assert GateType.DFF not in SOURCE_TYPES
        assert GateType.INPUT in SOURCE_TYPES
        assert GateType.MUX in COMBINATIONAL_TYPES
        assert not (COMBINATIONAL_TYPES & SOURCE_TYPES)

    def test_arity_table(self):
        assert GateType.INPUT.arity == 0
        assert GateType.NOT.arity == 1
        assert GateType.XOR.arity == 2
        assert GateType.MUX.arity == 3
        assert GateType.DFF.arity == 1


class TestGateRecord:
    def test_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            Gate(GateType.AND, out=2, ins=(0,))

    def test_rejects_init_on_combinational(self):
        with pytest.raises(ValueError):
            Gate(GateType.AND, out=2, ins=(0, 1), init=1)

    def test_rejects_bad_init_value(self):
        with pytest.raises(ValueError):
            Gate(GateType.DFF, out=1, ins=(0,), init=2)

    def test_dff_init_allowed(self):
        gate = Gate(GateType.DFF, out=1, ins=(0,), init=1)
        assert gate.init == 1

    def test_tag_not_part_of_equality(self):
        a = Gate(GateType.AND, out=2, ins=(0, 1), tag="x")
        b = Gate(GateType.AND, out=2, ins=(0, 1), tag="y")
        assert a == b
