"""GIFT-64-128 reference implementation (structure + round-trip; no
official vectors are bundled — the environment is offline, see module
docstring of repro.ciphers.gift)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ciphers.gift import GIFT64_PERM, GIFT64_PERM_INV, Gift64, _round_constants
from repro.ciphers.sbox import GIFT_SBOX


class TestStructure:
    def test_perm_is_a_permutation(self):
        assert sorted(GIFT64_PERM) == list(range(64))
        for i in range(64):
            assert GIFT64_PERM_INV[GIFT64_PERM[i]] == i

    def test_perm_preserves_bit_position_mod4(self):
        # GIFT's permutation maps bit 4i+j of the state into position j mod 4
        # of some nibble-slice class; structurally, each output nibble takes
        # its 4 bits from 4 distinct input nibbles.
        for out_nib in range(16):
            sources = {GIFT64_PERM_INV[4 * out_nib + j] // 4 for j in range(4)}
            assert len(sources) == 4

    def test_round_constants_prefix(self):
        # The GIFT paper's constant sequence starts 01,03,07,0F,1F,3E,3D,3B,37,2F
        assert _round_constants(10) == [
            0x01, 0x03, 0x07, 0x0F, 0x1F, 0x3E, 0x3D, 0x3B, 0x37, 0x2F,
        ]

    def test_constants_never_repeat_within_rounds(self):
        consts = _round_constants(28)
        assert len(set(consts)) == 28

    def test_key_schedule_words(self):
        cipher = Gift64(0x0123456789ABCDEF_FEDCBA9876543210)
        assert len(cipher.round_keys) == 28
        u0, v0 = cipher.round_keys[0]
        # U = k1, V = k0 (the two lowest 16-bit words of the key)
        assert v0 == 0x3210
        assert u0 == 0x7654

    def test_sbox_has_no_fixed_point_at_zero(self):
        assert GIFT_SBOX(0) != 0


class TestBehaviour:
    @given(st.integers(0, (1 << 128) - 1), st.integers(0, (1 << 64) - 1))
    @settings(max_examples=15, deadline=None)
    def test_decrypt_inverts_encrypt(self, key, pt):
        cipher = Gift64(key)
        assert cipher.decrypt(cipher.encrypt(pt)) == pt

    def test_avalanche(self):
        cipher = Gift64(0xA5A5A5A5A5A5A5A5A5A5A5A5A5A5A5A5)
        flips = bin(cipher.encrypt(0) ^ cipher.encrypt(1)).count("1")
        assert 16 <= flips <= 48

    def test_key_sensitivity(self):
        assert Gift64(0).encrypt(0) != Gift64(1).encrypt(0)

    def test_round_states_consistent(self):
        cipher = Gift64(0x1234)
        pt = 0xCAFEBABE12345678
        states = cipher.round_states(pt)
        assert states[0] == pt
        assert states[-1] == cipher.encrypt(pt)
        assert len(states) == 29
