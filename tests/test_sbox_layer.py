"""Standalone S-box layer circuits (the Table III units)."""

import pytest

from repro.ciphers.netlist_sbox_layer import build_sbox_layer
from repro.ciphers.sbox import PRESENT_SBOX
from repro.netlist.simulator import Simulator
from repro.rng import make_rng, random_ints
from repro.tech import area_of


class TestPlainLayer:
    @pytest.fixture(scope="class")
    def layer(self):
        return build_sbox_layer(PRESENT_SBOX, n_boxes=4, copies=2, merged=False)

    def test_ports(self, layer):
        assert len(layer.inputs["x"]) == 16
        assert len(layer.outputs["y0"]) == 16
        assert len(layer.outputs["y1"]) == 16
        assert "lambda" not in layer.inputs

    def test_both_copies_compute_the_layer(self, layer):
        rng = make_rng(1)
        vals = random_ints(rng, 32, 16)
        sim = Simulator(layer, batch=32)
        sim.set_input_ints("x", vals)
        sim.eval_comb()
        expect = [
            sum(PRESENT_SBOX((v >> (4 * j)) & 0xF) << (4 * j) for j in range(4))
            for v in vals
        ]
        assert sim.get_output_ints("y0") == expect
        assert sim.get_output_ints("y1") == expect


class TestMergedLayer:
    @pytest.fixture(scope="class")
    def layer(self):
        return build_sbox_layer(PRESENT_SBOX, n_boxes=4, copies=2, merged=True)

    def test_lambda_port_present(self, layer):
        assert len(layer.inputs["lambda"]) == 1

    def test_copies_use_complementary_domains(self, layer):
        """Copy 0 gets λ, copy 1 gets λ̄ — with shared raw inputs the two
        outputs realise S in the two domains."""
        rng = make_rng(2)
        vals = random_ints(rng, 16, 16)
        for lam in (0, 1):
            sim = Simulator(layer, batch=16)
            sim.set_input_ints("x", vals)
            sim.set_input_ints("lambda", [lam] * 16)
            sim.eval_comb()
            y0 = sim.get_output_ints("y0")
            y1 = sim.get_output_ints("y1")

            def merged_eval(v, domain):
                out = 0
                for j in range(4):
                    x = (v >> (4 * j)) & 0xF
                    y = PRESENT_SBOX(x) if domain == 0 else PRESENT_SBOX(x ^ 0xF) ^ 0xF
                    out |= y << (4 * j)
                return out

            assert y0 == [merged_eval(v, lam) for v in vals]
            assert y1 == [merged_eval(v, lam ^ 1) for v in vals]

    def test_merged_layer_costs_about_double(self, layer):
        plain = build_sbox_layer(PRESENT_SBOX, n_boxes=4, copies=2, merged=False)
        ratio = area_of(layer).total / area_of(plain).total
        assert 1.5 <= ratio <= 3.0  # the Table III shape at layer granularity

    def test_construction_variants(self):
        for construction in ("separate", "xor_wrap"):
            layer = build_sbox_layer(
                PRESENT_SBOX, n_boxes=2, copies=1, merged=True,
                construction=construction,
            )
            sim = Simulator(layer, batch=4)
            sim.set_input_ints("x", [0x00, 0xFF, 0x5A, 0xC3])
            sim.set_input_ints("lambda", [0, 0, 1, 1])
            sim.eval_comb()
            got = sim.get_output_ints("y0")
            assert got[0] == (PRESENT_SBOX(0) | (PRESENT_SBOX(0) << 4))
