"""AES-128 reference implementation against FIPS-197 vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ciphers.aes import AES128, AES_SBOX, gf_mul


class TestGF:
    def test_known_products(self):
        assert gf_mul(0x57, 0x83) == 0xC1  # FIPS-197 example
        assert gf_mul(0x57, 0x13) == 0xFE

    def test_identity_and_zero(self):
        for a in (0, 1, 0x53, 0xFF):
            assert gf_mul(a, 1) == a
            assert gf_mul(a, 0) == 0

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=50)
    def test_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=30)
    def test_distributive_over_xor(self, a, b, c):
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)


class TestSbox:
    def test_known_entries(self):
        assert AES_SBOX(0x00) == 0x63
        assert AES_SBOX(0x01) == 0x7C
        assert AES_SBOX(0x53) == 0xED
        assert AES_SBOX(0xFF) == 0x16

    def test_is_a_permutation_without_fixed_points(self):
        assert sorted(AES_SBOX.table) == list(range(256))
        assert all(AES_SBOX(x) != x for x in range(256))

    def test_inverse(self):
        for x in range(256):
            assert AES_SBOX.inverse(AES_SBOX(x)) == x


class TestBlockCipher:
    def test_fips_appendix_b(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        pt = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        assert AES128(key).encrypt_block(pt).hex() == "3925841d02dc09fbdc118597196a0b32"

    def test_fips_appendix_c(self):
        key = bytes(range(16))
        pt = bytes.fromhex("00112233445566778899aabbccddeeff")
        ct = AES128(key).encrypt_block(pt)
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"
        assert AES128(key).decrypt_block(ct) == pt

    def test_round_key_count(self):
        assert len(AES128(bytes(16)).round_keys) == 11
        assert all(len(rk) == 16 for rk in AES128(bytes(16)).round_keys)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            AES128(bytes(15))
        with pytest.raises(ValueError):
            AES128(bytes(16)).encrypt_block(bytes(8))
        with pytest.raises(ValueError):
            AES128(bytes(16)).decrypt_block(bytes(17))

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=10, deadline=None)
    def test_decrypt_inverts_encrypt(self, key, pt):
        cipher = AES128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(pt)) == pt
