"""Chaos property suite: fault-inject the campaign stack itself.

The golden invariant mirrors the paper's detect-or-survive demand, aimed
at our own infrastructure: **any seeded chaos schedule that leaves at
least one healthy retry path must yield results bit-identical to the
undisturbed run** — across worker crashes (including ``kill -9``-style
process death under a pool), hangs past the shard deadline, torn or
bit-rotted checkpoint artefacts, and delayed/duplicated result delivery.
Schedules with *no* healthy path must degrade to structured quarantine
records or a degraded partial result, never an unhandled exception.
"""

from __future__ import annotations

import logging

import pytest

from repro.ciphers.netlist_present import PresentSpec
from repro.countermeasures import build_naive_duplication
from repro.faults import (
    RNG_BLOCK,
    ExecutorConfig,
    FaultSpec,
    FaultType,
    run_campaign,
    run_campaign_sharded,
)
from repro.faults.checkpoint import CheckpointStore
from repro.faults.models import sbox_input_net
from repro.resilience import (
    CHAOS_ENV,
    ChaosError,
    ChaosFault,
    ChaosSpec,
    ErrorKind,
    ShardHang,
    chaos,
    classify_error,
)
from repro.resilience.chaos import _fires
from tests.conftest import TEST_KEY80

N_RUNS = 2 * RNG_BLOCK + RNG_BLOCK // 2  # 3 shards at shard_runs=RNG_BLOCK
SEED = 33
ROUNDS = 3  # reduced-round PRESENT keeps ~60 campaigns affordable


@pytest.fixture(autouse=True)
def _pristine_chaos(monkeypatch):
    """Every test starts and ends with the injector disabled."""
    monkeypatch.delenv(CHAOS_ENV, raising=False)
    chaos.disable()
    yield
    chaos.disable()


@pytest.fixture(scope="module")
def design3():
    return build_naive_duplication(PresentSpec(rounds=ROUNDS))


@pytest.fixture(scope="module")
def fault3(design3):
    net = sbox_input_net(design3.cores[0], 7, 1)
    return FaultSpec.at(net, FaultType.STUCK_AT_0, ROUNDS - 2)


@pytest.fixture(scope="module")
def baseline(design3, fault3):
    """The chaos-free ground truth every recovered run must reproduce."""
    return run_campaign(
        design3, [fault3], n_runs=N_RUNS, key=TEST_KEY80, seed=SEED
    )


def _assert_identical(a, b):
    assert (a.plaintext_bits == b.plaintext_bits).all()
    assert (a.released_bits == b.released_bits).all()
    assert (a.expected_bits == b.expected_bits).all()
    assert (a.fault_flags == b.fault_flags).all()
    assert (a.outcomes == b.outcomes).all()


def _run(design, fault, *, config, backend=None):
    return run_campaign_sharded(
        design, [fault], n_runs=N_RUNS, key=TEST_KEY80, seed=SEED,
        config=config, backend=backend,
    )


# ------------------------------------------------------------ spec parsing


class TestChaosSpec:
    def test_parse_full_mini_language(self):
        spec = ChaosSpec.parse(
            "seed=7; hang=1.5, delay=0.01; worker:raise:0.5:2;"
            "checkpoint.shard:truncate"
        )
        assert spec.seed == 7
        assert spec.hang_s == 1.5
        assert spec.delay_s == 0.01
        assert spec.faults == (
            ChaosFault("worker", "raise", 0.5, 2),
            ChaosFault("checkpoint.shard", "truncate", 1.0, 1),
        )

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "seed=3;worker:crash")
        spec = ChaosSpec.from_env()
        assert spec is not None and spec.seed == 3
        monkeypatch.delenv(CHAOS_ENV)
        assert ChaosSpec.from_env() is None

    @pytest.mark.parametrize(
        "bad",
        [
            "nonsense=1",
            "worker",  # no kind
            "worker:explode",  # unknown kind
            "mars:raise",  # unknown site
            "worker:raise:1.5",  # rate outside [0, 1]
            "seed=banana",  # option wants a number
            "hang=soon",  # option wants a number
            "worker:raise:often",  # rate must be a float
            "worker:raise:0.5:always",  # max_attempt must be an integer
        ],
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            ChaosSpec.parse(bad)

    def test_parse_errors_name_the_offending_segment(self):
        with pytest.raises(ValueError, match=r"'seed=banana'.*number"):
            ChaosSpec.parse("seed=banana")
        with pytest.raises(ValueError, match=r"'worker:raise:often'"):
            ChaosSpec.parse("worker:raise:often")

    def test_from_env_errors_name_the_variable(self, monkeypatch):
        """REPRO_CHAOS typos must fail *eagerly* with the variable named,
        not deep inside a campaign with a bare parse error."""
        monkeypatch.setenv(CHAOS_ENV, "worker:explode")
        with pytest.raises(ValueError, match="REPRO_CHAOS"):
            ChaosSpec.from_env()

    def test_backend_env_errors_name_the_variable(self, monkeypatch):
        from repro.netlist.simulator import resolve_backend

        monkeypatch.setenv("REPRO_SIM_BACKEND", "turbo")
        with pytest.raises(ValueError, match="REPRO_SIM_BACKEND"):
            resolve_backend(None)
        # an explicit bad argument is still blamed on the caller, not env
        monkeypatch.delenv("REPRO_SIM_BACKEND")
        with pytest.raises(ValueError) as excinfo:
            resolve_backend("turbo")
        assert "REPRO_SIM_BACKEND" not in str(excinfo.value)

    def test_fires_is_a_pure_deterministic_function(self):
        spec = ChaosSpec(seed=11)
        fault = ChaosFault("worker", "raise", 0.5, 1)
        pattern = [_fires(spec, fault, i, 1) for i in range(1000)]
        assert pattern == [_fires(spec, fault, i, 1) for i in range(1000)]
        # the rate is honoured statistically...
        assert 400 < sum(pattern) < 600
        # ...the seed reshuffles the pattern...
        other = ChaosSpec(seed=12)
        assert pattern != [_fires(other, fault, i, 1) for i in range(1000)]
        # ...and the attempt bound gates firing entirely
        assert not any(_fires(spec, fault, i, 2) for i in range(1000))
        always = ChaosFault("worker", "raise", 1.0, 0)  # persistent fault
        assert all(_fires(spec, always, i, a) for i in range(5) for a in (1, 9))

    def test_corrupt_file_truncates_and_bitrots(self, tmp_path):
        data = bytes(range(256))
        trunc = tmp_path / "t.bin"
        trunc.write_bytes(data)
        chaos.configure(
            ChaosSpec(seed=0, faults=(ChaosFault("checkpoint.shard", "truncate"),))
        )
        chaos.corrupt_file("checkpoint.shard", trunc, index=0)
        assert trunc.read_bytes() == data[: len(data) // 2]

        rot = tmp_path / "r.bin"
        rot.write_bytes(data)
        chaos.configure(
            ChaosSpec(seed=0, faults=(ChaosFault("checkpoint.shard", "bitrot"),))
        )
        chaos.corrupt_file("checkpoint.shard", rot, index=0)
        rotten = rot.read_bytes()
        assert len(rotten) == len(data)
        assert sum(a != b for a, b in zip(rotten, data)) == 1

    def test_disabled_injector_is_inert(self, tmp_path):
        path = tmp_path / "x.bin"
        path.write_bytes(b"intact")
        chaos.at("worker", index=0, attempt=1)
        chaos.corrupt_file("checkpoint.shard", path, index=0)
        assert not chaos.should("supervisor.result", "duplicate", index=0)
        assert path.read_bytes() == b"intact"


class TestErrorTaxonomy:
    def test_classification(self):
        from repro.faults.executor import ShardTimeout

        assert classify_error(ChaosError("x")) is ErrorKind.TRANSIENT
        assert classify_error(ShardTimeout("x")) is ErrorKind.TIMEOUT
        assert classify_error(ShardHang("x")) is ErrorKind.CRASH
        assert classify_error(EOFError("x")) is ErrorKind.CORRUPTION
        assert classify_error(OSError("x")) is ErrorKind.TRANSIENT
        assert classify_error(ValueError("x")) is ErrorKind.PERMANENT
        assert classify_error(RuntimeError("x")) is ErrorKind.TRANSIENT
        assert str(ErrorKind.CRASH) == "crash"


# ----------------------------------------------- the bit-identity invariant


def _schedules():
    """≥25 seeded schedules mixing every site and kind (healthy retries)."""
    mixes = [
        (("worker", "raise", 1.0, 1),),
        (("worker", "crash", 1.0, 1),),
        (("worker", "hang", 1.0, 1),),
        (("worker", "delay", 1.0, 1),),
        (("checkpoint.shard", "truncate", 1.0, 1),),
        (("checkpoint.shard", "bitrot", 1.0, 1),),
        (("checkpoint.manifest", "truncate", 1.0, 1),),
        (("checkpoint.manifest", "bitrot", 1.0, 1),),
        (("supervisor.result", "duplicate", 1.0, 1),),
        (("supervisor.result", "delay", 1.0, 1),),
        (
            ("worker", "raise", 0.5, 1),
            ("checkpoint.shard", "truncate", 0.5, 1),
        ),
        (
            ("worker", "crash", 0.4, 1),
            ("checkpoint.manifest", "truncate", 1.0, 1),
            ("supervisor.result", "duplicate", 0.5, 1),
        ),
        (
            ("worker", "raise", 0.7, 2),  # fires on the retry too
            ("checkpoint.shard", "bitrot", 0.6, 1),
            ("supervisor.result", "delay", 0.3, 1),
        ),
    ]
    schedules = []
    for seed in (7, 101):
        for mix in mixes:
            schedules.append(
                ChaosSpec(
                    seed=seed,
                    faults=tuple(ChaosFault(*f) for f in mix),
                    hang_s=2.0,  # must exceed the 0.8 s shard timeout
                    delay_s=0.005,
                )
            )
    return schedules


def _schedule_id(spec):
    return f"s{spec.seed}-" + "+".join(
        f"{f.site.rsplit('.', 1)[-1]}.{f.kind}" for f in spec.faults
    )


class TestBitIdentityUnderChaos:
    @pytest.mark.parametrize("spec", _schedules(), ids=_schedule_id)
    def test_recovered_run_is_bit_identical(
        self, design3, fault3, baseline, tmp_path, spec
    ):
        """Chaos run → bit-identical; clean resume over the debris → same."""
        ck = tmp_path / "ck"
        chaos.configure(spec)
        try:
            result = _run(
                design3, fault3,
                config=ExecutorConfig(
                    shard_runs=RNG_BLOCK, checkpoint_dir=ck,
                    retries=3, backoff=0.0, timeout=0.8,
                ),
            )
        finally:
            chaos.disable()
        assert not result.partial
        _assert_identical(result, baseline)

        # Whatever the schedule left on disk — truncated shards, a
        # bit-rotted manifest — a chaos-free resume must detect it and
        # recompute rather than trust it.
        resumed = _run(
            design3, fault3,
            config=ExecutorConfig(
                shard_runs=RNG_BLOCK, checkpoint_dir=ck,
                retries=1, backoff=0.0, resume=True,
            ),
        )
        assert not resumed.partial
        _assert_identical(resumed, baseline)

    def test_pool_survives_kill9_worker_crashes(
        self, design3, fault3, baseline, tmp_path
    ):
        """os._exit in pool workers (no cleanup, no exception — the pool
        just loses processes) is detected, the pool restarted, and the
        campaign still completes bit-identically."""
        chaos.configure(
            ChaosSpec(seed=5, faults=(ChaosFault("worker", "crash", 1.0, 1),))
        )
        result = _run(
            design3, fault3,
            config=ExecutorConfig(
                shard_runs=RNG_BLOCK, checkpoint_dir=tmp_path / "ck",
                jobs=2, retries=3, backoff=0.0,
            ),
        )
        assert not result.partial
        _assert_identical(result, baseline)

    def test_heartbeat_restarts_pool_on_hung_worker(
        self, design3, fault3, baseline, tmp_path, caplog
    ):
        """A worker stuck far past every deadline is declared dead by the
        supervisor's heartbeat; the pool is restarted and the shard retried."""
        chaos.configure(
            ChaosSpec(
                seed=5,
                faults=(ChaosFault("worker", "hang", 1.0, 1),),
                hang_s=60.0,
            )
        )
        with caplog.at_level(logging.WARNING, logger="repro.faults.executor"):
            result = _run(
                design3, fault3,
                config=ExecutorConfig(
                    shard_runs=RNG_BLOCK, checkpoint_dir=tmp_path / "ck",
                    jobs=2, retries=2, backoff=0.0,
                    heartbeat=0.2, hang_deadline=1.2,
                ),
            )
        assert "heartbeat" in caplog.text
        assert not result.partial
        _assert_identical(result, baseline)

    def test_env_driven_chaos_round_trips(
        self, design3, fault3, baseline, monkeypatch
    ):
        monkeypatch.setenv(CHAOS_ENV, "seed=9;worker:raise")
        result = _run(
            design3, fault3,
            config=ExecutorConfig(shard_runs=RNG_BLOCK, retries=2, backoff=0.0),
        )
        assert chaos.enabled and chaos.spec.seed == 9  # adopted by the run
        assert not result.partial
        _assert_identical(result, baseline)


# ---------------------------------------------------- structured degradation


class TestStructuredDegradation:
    def test_persistent_chaos_quarantines_not_raises(
        self, design3, fault3, tmp_path
    ):
        """max_attempt=0 = the fault survives every retry: all shards end
        up quarantined with typed records; nothing raises."""
        ck = tmp_path / "ck"
        chaos.configure(
            ChaosSpec(seed=1, faults=(ChaosFault("worker", "raise", 1.0, 0),))
        )
        result = _run(
            design3, fault3,
            config=ExecutorConfig(
                shard_runs=RNG_BLOCK, checkpoint_dir=ck,
                retries=1, backoff=0.0,
            ),
        )
        assert result.partial
        assert result.n_runs == 0
        failures = result.extra["failed_shards"]
        assert [f["index"] for f in failures] == [0, 1, 2]
        for failure in failures:
            assert failure["attempts"] == 2
            assert failure["error_kind"] == "transient"
            assert "injected failure" in failure["error"]
        store = CheckpointStore(ck)
        store.load()
        assert all(r.status == "quarantined" for r in store.shards.values())
        assert all(r.error_kind == "transient" for r in store.shards.values())

        # ...and once the infrastructure heals, a resume completes fully
        # (the surviving retry budget grants each shard one fresh attempt)
        chaos.disable()
        healed = _run(
            design3, fault3,
            config=ExecutorConfig(
                shard_runs=RNG_BLOCK, checkpoint_dir=ck,
                retries=1, backoff=0.0, resume=True,
            ),
        )
        assert not healed.partial
        assert healed.n_runs == N_RUNS

    def test_wall_budget_degrades_gracefully(self, design3, fault3):
        result = _run(
            design3, fault3,
            config=ExecutorConfig(shard_runs=RNG_BLOCK, wall_budget=0.0),
        )
        assert result.partial
        assert result.extra["budget_exhausted"]
        assert result.extra["failed_shards"] == []  # pending, not failed
        assert result.n_runs == 0


# ------------------------------------------------- compiled backend parity
# The recovery contract is backend-independent: the AOT-codegen backend
# must survive the same abuse as the levelized default, bit-identically
# (the backends are bit-exact, so the ground truth is one `baseline`).


def _compiled_schedules():
    mixes = [
        (("worker", "raise", 1.0, 1),),
        (("worker", "crash", 1.0, 1),),
        (("checkpoint.shard", "truncate", 1.0, 1),),
        (("checkpoint.manifest", "bitrot", 1.0, 1),),
        (
            ("worker", "raise", 0.7, 2),
            ("checkpoint.shard", "bitrot", 0.6, 1),
            ("supervisor.result", "duplicate", 0.5, 1),
        ),
    ]
    return [
        ChaosSpec(
            seed=seed,
            faults=tuple(ChaosFault(*f) for f in mix),
            hang_s=2.0,
            delay_s=0.005,
        )
        for seed in (7, 101)
        for mix in mixes
    ]


class TestCompiledBackendChaos:
    @pytest.mark.parametrize("spec", _compiled_schedules(), ids=_schedule_id)
    def test_recovered_compiled_run_is_bit_identical(
        self, design3, fault3, baseline, tmp_path, spec
    ):
        ck = tmp_path / "ck"
        chaos.configure(spec)
        try:
            result = _run(
                design3, fault3, backend="compiled",
                config=ExecutorConfig(
                    shard_runs=RNG_BLOCK, checkpoint_dir=ck,
                    retries=3, backoff=0.0, timeout=0.8,
                ),
            )
        finally:
            chaos.disable()
        assert not result.partial
        _assert_identical(result, baseline)

        resumed = _run(
            design3, fault3, backend="compiled",
            config=ExecutorConfig(
                shard_runs=RNG_BLOCK, checkpoint_dir=ck,
                retries=1, backoff=0.0, resume=True,
            ),
        )
        assert not resumed.partial
        _assert_identical(resumed, baseline)

    def test_pool_survives_kill9_with_compiled_backend(
        self, design3, fault3, baseline, tmp_path
    ):
        """Worker kill-9 under the compiled backend: every replacement
        process re-runs the pre-warm codegen in its initializer (outside
        any shard timeout window) and the campaign still completes."""
        chaos.configure(
            ChaosSpec(seed=5, faults=(ChaosFault("worker", "crash", 1.0, 1),))
        )
        result = _run(
            design3, fault3, backend="compiled",
            config=ExecutorConfig(
                shard_runs=RNG_BLOCK, checkpoint_dir=tmp_path / "ck",
                jobs=2, retries=3, backoff=0.0,
            ),
        )
        assert not result.partial
        _assert_identical(result, baseline)
