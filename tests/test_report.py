"""ASCII report rendering edge cases."""

import numpy as np

from repro.evaluation.report import render_histogram, render_table


class TestRenderTable:
    def test_column_widths_fit_content(self):
        text = render_table(
            ["a", "long-header"], [["xxxxxxxxxx", 1.5]], title=""
        )
        header, sep, row = text.splitlines()
        assert len(sep) >= len(header.rstrip())
        assert "xxxxxxxxxx" in row

    def test_numeric_cells_right_aligned(self):
        text = render_table(["name", "value"], [["a", 1000.0], ["bb", 5.0]])
        lines = text.splitlines()
        # the shorter number ends at the same column as the longer one
        assert lines[2].rstrip().endswith("1000.00")
        assert lines[3].rstrip().endswith("5.00")

    def test_empty_rows(self):
        text = render_table(["only", "headers"], [])
        assert "only" in text and "headers" in text

    def test_mixed_types_formatted(self):
        text = render_table(
            ["x"], [[None], [3], ["1.32x"], [2.5]]
        )
        assert "None" in text and "1.32x" in text and "2.50" in text

    def test_title_prepended(self):
        assert render_table(["h"], [["v"]], title="T1").splitlines()[0] == "T1"


class TestRenderHistogram:
    def test_peak_scales_to_width(self):
        text = render_histogram(np.array([1, 2, 4]), width=8)
        lines = text.splitlines()
        assert "#" * 8 in lines[2]
        assert "#" * 4 in lines[1]
        assert "#" * 2 in lines[0]

    def test_counts_printed(self):
        text = render_histogram(np.array([7, 0]))
        assert text.splitlines()[0].endswith(" 7")
        assert text.splitlines()[1].endswith(" 0")

    def test_custom_label_format(self):
        text = render_histogram(np.array([1, 1]), label_fmt="{:>3d}")
        assert "  0 |" in text and "  1 |" in text

    def test_all_zero_histogram_no_division_error(self):
        text = render_histogram(np.zeros(3, dtype=int))
        assert text.count("|") == 3
