"""CircuitBuilder word-level helpers, checked against integer arithmetic."""

import pytest

from repro.netlist.builder import CircuitBuilder
from repro.netlist.gates import GateType
from repro.netlist.simulator import Simulator


def run_comb(builder, inputs, output="y"):
    """Evaluate a combinational builder circuit on a dict of int inputs."""
    batch = max(len(v) for v in inputs.values())
    sim = Simulator(builder.circuit, batch=batch)
    for name, values in inputs.items():
        sim.set_input_ints(name, values)
    sim.eval_comb()
    return sim.get_output_ints(output)


class TestWordOps:
    @pytest.mark.parametrize(
        "op,fn",
        [
            ("xor_word", lambda a, b: a ^ b),
            ("and_word", lambda a, b: a & b),
            ("or_word", lambda a, b: a | b),
            ("xnor_word", lambda a, b: (a ^ b) ^ 0xFF),
        ],
    )
    def test_binary_word_ops(self, op, fn):
        b = CircuitBuilder()
        x = b.input("x", 8)
        y = b.input("y", 8)
        b.output("y_out", getattr(b, op)(x, y))
        xs = list(range(0, 256, 17))
        ys = list(range(0, 256, 13))[: len(xs)]
        got = run_comb(b, {"x": xs, "y": ys}, output="y_out")
        assert got == [fn(a, c) for a, c in zip(xs, ys)]

    def test_not_word(self):
        b = CircuitBuilder()
        x = b.input("x", 6)
        b.output("y", b.not_word(x))
        assert run_comb(b, {"x": [0, 0x3F, 0x15]}) == [0x3F, 0, 0x2A]

    def test_width_mismatch_rejected(self):
        b = CircuitBuilder()
        x = b.input("x", 4)
        y = b.input("y", 5)
        with pytest.raises(ValueError):
            b.xor_word(x, y)

    def test_xor_bit_into_word(self):
        b = CircuitBuilder()
        x = b.input("x", 4)
        s = b.input("s", 1)
        b.output("y", b.xor_bit_into_word(x, s[0]))
        assert run_comb(b, {"x": [0b1010, 0b1010], "s": [0, 1]}) == [0b1010, 0b0101]

    def test_mux_word(self):
        b = CircuitBuilder()
        s = b.input("s", 1)
        d0 = b.input("d0", 4)
        d1 = b.input("d1", 4)
        b.output("y", b.mux_word(s[0], d0, d1))
        got = run_comb(b, {"s": [0, 1], "d0": [3, 3], "d1": [12, 12]})
        assert got == [3, 12]

    def test_const_word(self):
        b = CircuitBuilder()
        b.input("x", 1)  # unused; ports needed for sim
        b.output("y", b.const_word(0xA5, 8))
        assert run_comb(b, {"x": [0, 0]}) == [0xA5, 0xA5]


class TestReducersArithmetic:
    def test_or_and_xor_reduce(self):
        b = CircuitBuilder()
        x = b.input("x", 7)
        b.output("y", [b.or_reduce(x), b.and_reduce(x), b.xor_reduce(x)])
        vals = [0, 0x7F, 0x2A, 1]
        got = run_comb(b, {"x": vals})
        for v, g in zip(vals, got):
            expect = (1 if v else 0) | ((v == 0x7F) << 1) | ((bin(v).count("1") & 1) << 2)
            assert g == expect

    def test_reduce_empty_rejected(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            b.or_reduce([])

    def test_equals_and_nor_reduce(self):
        b = CircuitBuilder()
        x = b.input("x", 5)
        y = b.input("y", 5)
        b.output("y_out", [b.equals(x, y)])
        got = run_comb(b, {"x": [7, 7, 0], "y": [7, 9, 0]}, output="y_out")
        assert got == [1, 0, 1]

    def test_incrementer_wraps(self):
        b = CircuitBuilder()
        x = b.input("x", 4)
        b.output("y", b.incrementer(x))
        vals = list(range(16))
        assert run_comb(b, {"x": vals}) == [(v + 1) % 16 for v in vals]

    def test_majority3(self):
        b = CircuitBuilder()
        x = b.input("x", 3)
        b.output("y", [b.majority3(x[0], x[1], x[2])])
        vals = list(range(8))
        got = run_comb(b, {"x": vals})
        assert got == [1 if bin(v).count("1") >= 2 else 0 for v in vals]

    def test_majority3_word_corrects_single_error(self):
        b = CircuitBuilder()
        a = b.input("a", 4)
        c = b.input("c", 4)
        d = b.input("d", 4)
        b.output("y", b.majority3_word(a, c, d))
        got = run_comb(b, {"a": [9, 9], "c": [9, 1], "d": [1, 9]})
        assert got == [9, 9]


class TestRegister:
    def test_register_counts(self):
        b = CircuitBuilder()
        q, connect = b.register(3, init=5)
        connect(b.incrementer(q))
        b.output("q", q)
        sim = Simulator(b.circuit, batch=1)
        seen = []
        for _ in range(4):
            seen.append(sim.get_output_ints("q")[0])
            sim.step()
        assert seen == [5, 6, 7, 0]

    def test_register_double_connect_rejected(self):
        b = CircuitBuilder()
        q, connect = b.register(2)
        connect([b.circuit.const(0)] * 2)
        with pytest.raises(RuntimeError):
            connect([b.circuit.const(0)] * 2)

    def test_register_wrong_width_rejected(self):
        b = CircuitBuilder()
        _q, connect = b.register(2)
        with pytest.raises(ValueError):
            connect([b.circuit.const(0)])


class TestAppendCircuit:
    def make_adder_bit(self):
        sub = CircuitBuilder("half")
        x = sub.input("x", 2)
        sub.output("s", [sub.xor(x[0], x[1])])
        sub.output("c", [sub.and_(x[0], x[1])])
        return sub.circuit

    def test_flattening_binds_ports(self):
        sub = self.make_adder_bit()
        top = CircuitBuilder("top")
        a = top.input("a", 2)
        ports = top.append_circuit(sub, {"x": a}, tag_prefix="u0/")
        top.output("s", ports["s"])
        top.output("c", ports["c"])
        got_s = run_comb(top, {"a": [0, 1, 2, 3]}, output="s")
        got_c = run_comb(top, {"a": [0, 1, 2, 3]}, output="c")
        assert got_s == [0, 1, 1, 0]
        assert got_c == [0, 0, 0, 1]

    def test_tags_are_prefixed(self):
        sub = self.make_adder_bit()
        top = CircuitBuilder("top")
        a = top.input("a", 2)
        top.append_circuit(sub, {"x": a}, tag_prefix="u7/")
        assert len(top.circuit.find_gates("u7/")) == 2

    def test_missing_binding_rejected(self):
        sub = self.make_adder_bit()
        top = CircuitBuilder("top")
        top.input("a", 2)
        with pytest.raises(ValueError):
            top.append_circuit(sub, {})

    def test_wrong_width_binding_rejected(self):
        sub = self.make_adder_bit()
        top = CircuitBuilder("top")
        a = top.input("a", 3)
        with pytest.raises(ValueError):
            top.append_circuit(sub, {"x": a})

    def test_dff_feedback_inlines(self):
        # sub-circuit: 2-bit counter (DFF written before its D-net exists)
        sub = CircuitBuilder("cnt")
        sub.input("unused", 1)
        q, connect = sub.register(2)
        connect(sub.incrementer(q))
        sub.output("q", q)

        top = CircuitBuilder("top")
        u = top.input("unused", 1)
        ports = top.append_circuit(sub.circuit, {"unused": u})
        top.output("q", ports["q"])
        sim = Simulator(top.circuit, batch=1)
        sim.run(3)
        assert sim.get_output_ints("q")[0] == 3

    def test_consts_are_shared(self):
        sub = CircuitBuilder("c")
        sub.input("x", 1)
        sub.output("y", [sub.circuit.const(1)])
        top = CircuitBuilder("top")
        x = top.input("x", 1)
        top.circuit.const(1)
        top.append_circuit(sub.circuit, {"x": x})
        top.append_circuit(sub.circuit, {"x": x})
        assert sum(g.gtype is GateType.CONST1 for g in top.circuit.gates) == 1
