"""§IV-B extensions: persistent fault analysis and infective recovery."""

import pytest

from repro.attacks.pfa import pfa_attack
from repro.ciphers.present import Present80
from repro.ciphers.sbox import PRESENT_SBOX
from repro.countermeasures import RecoveryPolicy, build_three_in_one
from repro.faults import FaultSpec, FaultType, Outcome, run_campaign
from repro.faults.models import last_round, sbox_input_net
from repro.rng import make_rng, random_ints
from repro.software import ProtectedSoftwarePresent, SoftwarePresent
from tests.conftest import TEST_KEY80

#: corrupted S-box ROM entry: S[0xA] (= 0xF originally) remapped to 0x3
PFA_ENTRY = 0xA
PFA_VALUE = 0x3
MISSING = PRESENT_SBOX(PFA_ENTRY)


class TestPfaAgainstSharedRomDuplication:
    @pytest.fixture(scope="class")
    def harvest(self):
        """Ciphertexts released by a shared-ROM duplicated implementation."""
        sw = SoftwarePresent(TEST_KEY80, table_fault=(PFA_ENTRY, PFA_VALUE))
        rng = make_rng(3)
        cts = []
        for pt in random_ints(rng, 2000, 64):
            released, detected = sw.encrypt_duplicated(pt)
            assert not detected, "shared corrupted ROM must never be detected"
            cts.append(released)
        return cts

    def test_outputs_are_faulty_but_released(self, harvest):
        ref = Present80(TEST_KEY80)
        # persistent fault corrupts essentially every encryption
        sw = SoftwarePresent(TEST_KEY80, table_fault=(PFA_ENTRY, PFA_VALUE))
        rng = make_rng(3)
        wrong = sum(
            1
            for pt, ct in zip(random_ints(rng, 100, 64), harvest[:100])
            if ct != ref.encrypt(pt)
        )
        assert wrong > 95

    def test_full_last_round_key_recovered(self, present_spec, harvest):
        result = pfa_attack(present_spec, harvest, MISSING, key=TEST_KEY80)
        assert result.success
        assert result.recovered_bits == 64

    def test_insufficient_samples_leave_ambiguity(self, present_spec, harvest):
        result = pfa_attack(present_spec, harvest[:8], MISSING, key=TEST_KEY80)
        assert not result.success
        # but the truth always survives the filter
        for nib in result.nibbles:
            assert nib.true_subkey in nib.survivors


class TestPfaAgainstProtectedSoftware:
    def test_corrupted_merged_table_always_detected_when_used(self):
        sw = ProtectedSoftwarePresent(
            TEST_KEY80, merged_table_fault=(PFA_ENTRY, PFA_VALUE)
        )
        ref = Present80(TEST_KEY80)
        rng = make_rng(5)
        released_faulty = 0
        detected = 0
        for i, pt in enumerate(random_ints(rng, 300, 64)):
            out, flag = sw.encrypt_protected(pt, lam=i % 2)
            if flag:
                detected += 1
            elif out != ref.encrypt(pt):
                released_faulty += 1
        assert released_faulty == 0
        # the corrupted entry is hit in virtually every run
        assert detected > 290

    def test_pfa_harvest_starves(self):
        sw = ProtectedSoftwarePresent(
            TEST_KEY80, merged_table_fault=(PFA_ENTRY, PFA_VALUE)
        )
        ref = Present80(TEST_KEY80)
        rng = make_rng(6)
        cts = []
        for i, pt in enumerate(random_ints(rng, 300, 64)):
            out, flag = sw.encrypt_protected(pt, lam=i % 2)
            if out is not None:
                assert out == ref.encrypt(pt)
                cts.append(out)
        # nothing faulty releases; the handful of correct outputs carry no
        # missing-value signal an attacker can use
        assert len(cts) < 10


class TestInfectivePolicy:
    @pytest.fixture(scope="class")
    def design(self, present_spec):
        return build_three_in_one(present_spec, policy=RecoveryPolicy.INFECTIVE)

    def test_fault_free_equivalence(self, design):
        ref = Present80(TEST_KEY80)
        rng = make_rng(8)
        pts = random_ints(rng, 16, 64)
        sim = design.simulator(16)
        res = design.run(sim, pts, TEST_KEY80, rng=rng)
        got = [
            int(sum(int(b) << i for i, b in enumerate(row)))
            for row in res["ciphertext"]
        ]
        assert got == [ref.encrypt(p) for p in pts]

    def test_effective_faults_release_infected_words(self, design):
        core = design.cores[0]
        fault = FaultSpec.at(
            sbox_input_net(core, 5, 1), FaultType.BIT_FLIP, last_round(core)
        )
        res = run_campaign(design, [fault], n_runs=512, key=TEST_KEY80, seed=11)
        counts = res.counts()
        # a bit flip always corrupts core a: everything infects
        assert counts["infected"] == 512
        assert counts["effective"] == 0 and counts["detected"] == 0

    def test_infected_words_are_useless_for_dfa(self, design, present_spec):
        """The infected outputs are C ⊕ random — the DFA solver must
        eliminate every subkey guess."""
        from repro.attacks import dfa_attack_last_round

        core = design.cores[0]
        fault = FaultSpec.at(
            sbox_input_net(core, 5, 1), FaultType.STUCK_AT_0, last_round(core)
        )
        res = run_campaign(design, [fault], n_runs=2048, key=TEST_KEY80, seed=12)
        infected = res.select(Outcome.INFECTED)[:48]
        assert len(infected) >= 32
        dfa = dfa_attack_last_round(
            present_spec,
            res.expected_bits[infected],
            res.released_bits[infected],
            5,
            1,
            FaultType.STUCK_AT_0,
            key=TEST_KEY80,
        )
        assert dfa.survivors == []

    def test_infected_word_differs_from_raw_faulty_output(self, design):
        """The whole point of infection: what leaves the chip is not the
        deterministic faulty ciphertext."""
        core = design.cores[0]
        fault = FaultSpec.at(
            sbox_input_net(core, 5, 1), FaultType.BIT_FLIP, last_round(core)
        )
        pts = [0x1234567890ABCDEF] * 8
        from repro.faults.injector import FaultInjector

        injector = FaultInjector([fault], 8)
        sim = design.simulator(8, faults=injector)
        res = design.run(sim, pts, TEST_KEY80, rng=13)
        words = {
            int(sum(int(b) << i for i, b in enumerate(row)))
            for row in res["ciphertext"]
        }
        # same plaintext, same fault — but the released words differ run to
        # run because the infection mask is fresh randomness
        assert len(words) > 4
