"""Circuit IR invariants: drivers, ports, validation, stats, topo order."""

import pytest

from repro.netlist.circuit import Circuit, CircuitError
from repro.netlist.gates import Gate, GateType


def xor_pair() -> Circuit:
    c = Circuit("t")
    a = c.add_input("a", 2)
    y = c.add_gate(GateType.XOR, (a[0], a[1]))
    c.set_output("y", [y])
    return c


class TestNets:
    def test_ids_are_dense(self):
        c = Circuit()
        assert [c.new_net() for _ in range(3)] == [0, 1, 2]
        assert c.num_nets == 3

    def test_single_driver_enforced(self):
        c = Circuit()
        a = c.add_input("a", 1)[0]
        with pytest.raises(ValueError):
            c.add_gate(GateType.NOT, (a,), out=a)

    def test_gate_input_must_exist(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.add_gate(GateType.NOT, (7,))

    def test_const_memoised(self):
        c = Circuit()
        assert c.const(0) == c.const(0)
        assert c.const(1) == c.const(1)
        assert c.const(0) != c.const(1)
        assert sum(g.gtype is GateType.CONST0 for g in c.gates) == 1

    def test_const_rejects_non_bit(self):
        with pytest.raises(ValueError):
            Circuit().const(2)

    def test_driver_of(self):
        c = xor_pair()
        y = c.outputs["y"][0]
        assert c.driver_of(y).gtype is GateType.XOR
        assert c.driver_of(999) is None


class TestPorts:
    def test_input_allocates_nets_in_order(self):
        c = Circuit()
        nets = c.add_input("a", 3)
        assert len(nets) == 3
        assert c.inputs["a"] == nets

    def test_duplicate_port_names_rejected(self):
        c = Circuit()
        c.add_input("a", 1)
        with pytest.raises(ValueError):
            c.add_input("a", 2)
        with pytest.raises(ValueError):
            c.set_output("a", [c.inputs["a"][0]])

    def test_output_requires_driven_nets(self):
        c = Circuit()
        c.new_net()
        with pytest.raises(ValueError):
            c.set_output("y", [0])

    def test_output_rejects_empty(self):
        c = xor_pair()
        with pytest.raises(ValueError):
            c.set_output("z", [])

    def test_zero_width_input_rejected(self):
        with pytest.raises(ValueError):
            Circuit().add_input("a", 0)


class TestValidationAndStats:
    def test_valid_circuit_passes(self):
        xor_pair().validate()

    def test_combinational_cycle_detected(self):
        c = Circuit()
        n1, n2 = c.new_net(), c.new_net()
        c.add_gate(GateType.NOT, (n2,), out=n1)
        c.add_gate(GateType.NOT, (n1,), out=n2)
        with pytest.raises(ValueError, match="cycle"):
            c.validate()

    def test_cycle_through_dff_is_fine(self):
        c = Circuit()
        q = c.new_net()
        inv = c.add_gate(GateType.NOT, (q,))
        c.add_gate(GateType.DFF, (inv,), out=q)
        c.set_output("q", [q])
        c.validate()

    def test_stats(self):
        c = xor_pair()
        s = c.stats()
        assert s.num_gates == 3  # 2 inputs + 1 xor
        assert s.num_inputs == 2
        assert s.num_outputs == 1
        assert s.num_dffs == 0
        assert s.depth == 1
        assert s.gate_counts["xor"] == 1
        assert "xor=1" in str(s)

    def test_depth_counts_longest_path(self):
        c = Circuit()
        a = c.add_input("a", 1)[0]
        x = a
        for _ in range(5):
            x = c.add_gate(GateType.NOT, (x,))
        c.set_output("y", [x])
        assert c.depth() == 5

    def test_find_gates_by_tag_prefix(self):
        c = Circuit()
        a = c.add_input("a", 1)[0]
        c.add_gate(GateType.NOT, (a,), tag="core/sbox1/x")
        c.add_gate(GateType.NOT, (a,), tag="core/sbox12/x")
        assert len(c.find_gates("core/sbox1/")) == 1
        assert len(c.find_gates("core/")) == 2

    def test_topo_order_cached_and_invalidated(self):
        c = xor_pair()
        first = c.topo_order()
        assert c.topo_order() is first
        a = c.inputs["a"]
        c.add_gate(GateType.AND, (a[0], a[1]))
        assert c.topo_order() is not first

    def test_repr_mentions_size(self):
        assert "3 gates" in repr(xor_pair())


class TestStructuredErrors:
    """CircuitError carries the offending net/gate for tooling."""

    def test_multiply_driven_net_named(self):
        c = xor_pair()
        y = c.outputs["y"][0]
        # Bypass add_gate's incremental guard by mutating the gate list —
        # the scenario validate() exists to catch.
        c.gates.append(Gate(GateType.BUF, y, (c.inputs["a"][0],)))
        with pytest.raises(CircuitError, match="driven by 2 gates") as excinfo:
            c.validate()
        assert excinfo.value.net == y
        assert excinfo.value.gate is not None

    def test_combinational_cycle_names_gate_and_nets(self):
        c = Circuit()
        n1, n2 = c.new_net(), c.new_net()
        c.add_gate(GateType.NOT, (n2,), out=n1, tag="loop/a")
        c.add_gate(GateType.NOT, (n1,), out=n2, tag="loop/b")
        with pytest.raises(CircuitError, match="combinational cycle") as excinfo:
            c.validate()
        assert excinfo.value.net in (n1, n2)
        assert excinfo.value.gate.tag.startswith("loop/")

    def test_undriven_gate_input_named(self):
        c = Circuit()
        a = c.add_input("a", 1)[0]
        orphan = c.new_net()
        gate_out = c.add_gate(GateType.AND, (a, orphan))
        c.set_output("y", [gate_out])
        with pytest.raises(CircuitError, match="undriven") as excinfo:
            c.validate()
        assert excinfo.value.net == orphan

    def test_second_driver_rejected_at_add_time(self):
        c = xor_pair()
        y = c.outputs["y"][0]
        with pytest.raises(CircuitError, match="already has a driver") as excinfo:
            c.add_gate(GateType.BUF, (c.inputs["a"][0],), out=y)
        assert excinfo.value.net == y

    def test_builder_build_validates(self):
        from repro.netlist.builder import CircuitBuilder

        b = CircuitBuilder("bad")
        a = b.input("a", 1)[0]
        y = b.not_(a)
        b.output("y", [y])
        # Corrupt behind the builder's back; build() must still catch it.
        b.circuit.gates.append(Gate(GateType.BUF, y, (a,)))
        with pytest.raises(CircuitError, match="driven by 2 gates"):
            b.build()
