"""Static timing analysis."""

import pytest

from repro.netlist.builder import CircuitBuilder
from repro.tech.timing import CELL_DELAY, critical_path
from repro.netlist.gates import GateType


class TestCriticalPath:
    def test_chain_delay_adds_up(self):
        b = CircuitBuilder("chain")
        x = b.input("x", 1)
        net = x[0]
        for _ in range(5):
            net = b.not_(net)
        b.output("y", [net])
        report = critical_path(b.circuit)
        assert report.delay == pytest.approx(5 * CELL_DELAY[GateType.NOT])
        # the path lists the source stage plus the five inverters
        assert len(report.path) == 6
        assert report.path[0].startswith("input")

    def test_longest_branch_wins(self):
        b = CircuitBuilder()
        x = b.input("x", 2)
        short = b.not_(x[0])
        long = b.xor(b.xor(x[0], x[1]), x[1])
        b.output("y", [b.and_(short, long)])
        report = critical_path(b.circuit)
        expect = 2 * CELL_DELAY[GateType.XOR] + CELL_DELAY[GateType.AND]
        assert report.delay == pytest.approx(expect)

    def test_register_to_register_path(self):
        b = CircuitBuilder()
        q, connect = b.register(1)
        d = b.not_(b.not_(q[0]))
        connect([d])
        b.output("y", q)
        report = critical_path(b.circuit)
        expect = CELL_DELAY[GateType.DFF] + 2 * CELL_DELAY[GateType.NOT]
        assert report.delay == pytest.approx(expect)

    def test_empty_circuit(self):
        b = CircuitBuilder("empty")
        report = critical_path(b.circuit)
        assert report.delay == 0.0 and report.path == ()

    def test_path_labels_are_readable(self):
        b = CircuitBuilder()
        x = b.input("x", 2)
        b.output("y", [b.and_(x[0], x[1], tag="core/mix")])
        report = critical_path(b.circuit)
        assert any("core/mix" in stage for stage in report.path)

    def test_ratio_to(self):
        b1 = CircuitBuilder()
        x = b1.input("x", 1)
        b1.output("y", [b1.not_(x[0])])
        b2 = CircuitBuilder()
        x2 = b2.input("x", 1)
        b2.output("y", [b2.not_(b2.not_(x2[0]))])
        r1, r2 = critical_path(b1.circuit), critical_path(b2.circuit)
        assert r2.ratio_to(r1) == pytest.approx(2.0)


class TestClockPeriodClaim:
    """Paper §IV-A: same cycle count, and the countermeasure should not
    blow up the clock period either."""

    def test_three_in_one_path_close_to_naive(
        self, naive_design, ours_prime
    ):
        naive_t = critical_path(naive_design.circuit)
        ours_t = critical_path(ours_prime.circuit)
        # merged S-boxes are one variable deeper; allow up to +40%
        assert 1.0 <= ours_t.ratio_to(naive_t) <= 1.4

    def test_same_cycle_count(self, naive_design, ours_prime, ours_per_sbox):
        assert naive_design.cycles == ours_prime.cycles == ours_per_sbox.cycles
