"""Software realisation: correctness, §IV-A cost claim, fault behaviour."""

import pytest

from repro.ciphers.present import Present80
from repro.faults.models import FaultType
from repro.rng import make_rng, random_ints
from repro.software import (
    ProtectedSoftwarePresent,
    SoftwareFault,
    SoftwarePresent,
)

KEY = 0x0011223344556677_8899 * 1  # 80-bit


class TestBaseline:
    def test_matches_reference(self):
        sw = SoftwarePresent(KEY)
        ref = Present80(KEY)
        rng = make_rng(1)
        for pt in random_ints(rng, 10, 64):
            assert sw.encrypt(pt) == ref.encrypt(pt)

    def test_official_vector(self):
        assert SoftwarePresent(0).encrypt(0) == 0x5579C1387B228445

    def test_duplicated_agrees_when_clean(self):
        sw = SoftwarePresent(KEY)
        released, detected = sw.encrypt_duplicated(0x1234)
        assert released == sw.encrypt(0x1234) and not detected


class TestProtectedCorrectness:
    @pytest.mark.parametrize("lam", [0, 1])
    def test_both_domains_match_reference(self, lam):
        sw = ProtectedSoftwarePresent(KEY)
        ref = Present80(KEY)
        rng = make_rng(2)
        for pt in random_ints(rng, 10, 64):
            released, detected = sw.encrypt_protected(pt, lam=lam)
            assert released == ref.encrypt(pt) and not detected

    def test_random_lambda_path(self):
        sw = ProtectedSoftwarePresent(KEY)
        ref = Present80(KEY)
        released, detected = sw.encrypt_protected(0xABCDEF, rng=7)
        assert released == ref.encrypt(0xABCDEF) and not detected


class TestCostClaim:
    """Paper §IV-A: software cost ≈ duplication; code size marginally up."""

    def count(self, run) -> int:
        run_obj, call = run
        call()
        return run_obj.counter.total_ops

    def test_op_count_within_two_percent_of_duplication(self):
        pt = 0x0123456789ABCDEF
        naive = SoftwarePresent(KEY)
        naive.encrypt_duplicated(pt)
        ours = ProtectedSoftwarePresent(KEY)
        ours.encrypt_protected(pt, lam=1)
        ratio = ours.counter.total_ops / naive.counter.total_ops
        assert 1.0 <= ratio <= 1.02

    def test_table_bytes_marginally_increased(self):
        naive = SoftwarePresent(KEY)
        ours = ProtectedSoftwarePresent(KEY)
        assert ours.counter.table_bytes == naive.counter.table_bytes + 32

    def test_lookup_count_identical(self):
        pt = 0x42
        naive = SoftwarePresent(KEY)
        naive.encrypt_duplicated(pt)
        ours = ProtectedSoftwarePresent(KEY)
        ours.encrypt_protected(pt, lam=0)
        assert ours.counter.table_lookups == naive.counter.table_lookups


class TestSoftwareFaults:
    def test_identical_fault_bypasses_duplication(self):
        sw = SoftwarePresent(KEY)
        pt = 0xDEADBEEF12345678
        faults = (
            SoftwareFault(bit=21, fault_type=FaultType.BIT_FLIP, round_=31, computation=0),
            SoftwareFault(bit=21, fault_type=FaultType.BIT_FLIP, round_=31, computation=1),
        )
        released, detected = sw.encrypt_duplicated(pt, faults=faults)
        assert not detected
        assert released is not None and released != sw.encrypt(pt)

    def test_identical_fault_detected_by_protection(self):
        sw = ProtectedSoftwarePresent(KEY)
        pt = 0xDEADBEEF12345678
        for lam in (0, 1):
            faults = (
                SoftwareFault(bit=21, fault_type=FaultType.STUCK_AT_0, round_=31, computation=0),
                SoftwareFault(bit=21, fault_type=FaultType.STUCK_AT_0, round_=31, computation=1),
            )
            released, detected = sw.encrypt_protected(pt, lam=lam, faults=faults)
            assert detected and released is None

    def test_single_fault_never_escapes_protection(self):
        sw = ProtectedSoftwarePresent(KEY)
        ref = Present80(KEY)
        rng = make_rng(5)
        for pt in random_ints(rng, 20, 64):
            fault = SoftwareFault(
                bit=int(rng.integers(64)),
                fault_type=FaultType.STUCK_AT_0,
                round_=int(rng.integers(1, 32)),
            )
            released, detected = sw.encrypt_protected(
                pt, lam=int(rng.integers(2)), faults=(fault,)
            )
            assert detected or released == ref.encrypt(pt)

    def test_sifa_bias_reproduces_in_software(self):
        """Stuck-at-0 on one state bit: the naïve ineffective set is biased
        to runs where the bit was 0; the protected set is λ-balanced."""
        rng = make_rng(9)
        pts = random_ints(rng, 400, 64)
        fault0 = SoftwareFault(bit=12, fault_type=FaultType.STUCK_AT_0, round_=31)

        naive = SoftwarePresent(KEY)
        ref = Present80(KEY)
        biased_bits = []
        for pt in pts:
            released, detected = naive.encrypt_duplicated(pt, faults=(fault0,))
            if released is not None:
                state = ref.round_states(pt)[30] ^ ref.round_keys[30]
                biased_bits.append((state >> 12) & 1)
        assert biased_bits and all(b == 0 for b in biased_bits)

        ours = ProtectedSoftwarePresent(KEY)
        protected_bits = []
        for i, pt in enumerate(pts):
            released, detected = ours.encrypt_protected(
                pt, lam=i % 2, faults=(fault0,)
            )
            if released is not None:
                state = ref.round_states(pt)[30] ^ ref.round_keys[30]
                protected_bits.append((state >> 12) & 1)
        ones = sum(protected_bits)
        assert 0.3 < ones / len(protected_bits) < 0.7
