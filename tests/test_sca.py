"""Side-channel evaluation: power model sanity and the λ-leakage results."""

import numpy as np
import pytest

from repro.netlist.gates import GateType
from repro.rng import make_rng, random_ints
from repro.sca import LeakageModel, max_abs_t, power_trace, welch_t_test
from repro.sca.ttest import TVLA_THRESHOLD
from tests.conftest import TEST_KEY80

FIXED_PT = 0x0123456789ABCDEF
N = 200


class TestWelch:
    def test_identical_groups_give_zero(self):
        rng = make_rng(1)
        traces = rng.normal(size=(50, 10))
        t = welch_t_test(traces, traces.copy())
        assert np.abs(t).max() == pytest.approx(0.0)

    def test_shifted_mean_detected(self):
        rng = make_rng(2)
        a = rng.normal(size=(200, 5))
        b = rng.normal(size=(200, 5))
        b[:, 3] += 2.0
        t = welch_t_test(a, b)
        assert abs(t[3]) > TVLA_THRESHOLD
        assert np.abs(np.delete(t, 3)).max() < TVLA_THRESHOLD

    def test_constant_equal_samples_are_no_evidence(self):
        a = np.ones((10, 3))
        b = np.ones((10, 3))
        assert np.abs(welch_t_test(a, b)).max() == 0.0

    def test_constant_different_samples_are_infinite_evidence(self):
        a = np.zeros((10, 1))
        b = np.ones((10, 1))
        assert np.isinf(welch_t_test(a, b)[0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            welch_t_test(np.zeros((5, 3)), np.zeros((5, 4)))
        with pytest.raises(ValueError):
            welch_t_test(np.zeros((1, 3)), np.zeros((5, 3)))
        with pytest.raises(ValueError):
            welch_t_test(np.zeros(3), np.zeros(3))


class TestPowerModelSanity:
    def test_trace_shape(self, ours_prime):
        traces = power_trace(ours_prime, [FIXED_PT] * 8, TEST_KEY80, rng=1)
        assert traces.shape == (8, ours_prime.cycles)

    def test_hd_data_dependence(self, ours_prime):
        """Fixed-vs-random plaintext must leak on an unmasked datapath —
        the power model is useless if it can't see the data at all."""
        rng = make_rng(7)
        fixed = power_trace(
            ours_prime, [FIXED_PT] * N, TEST_KEY80,
            model=LeakageModel.HAMMING_DISTANCE, rng=1,
        )
        random_ = power_trace(
            ours_prime, random_ints(rng, N, 64), TEST_KEY80,
            model=LeakageModel.HAMMING_DISTANCE, rng=2,
        )
        assert max_abs_t(fixed, random_) > TVLA_THRESHOLD

    def test_lambda_pinning_requires_static_design(self, ours_per_round):
        with pytest.raises(ValueError):
            power_trace(ours_per_round, [0] * 4, TEST_KEY80, lambdas=[0] * 4)


class TestLambdaLeakage:
    """The §IV-B.2 results (see repro.sca docstring and EXPERIMENTS.md)."""

    def groups(self, design, model, nets=None):
        l0 = power_trace(
            design, [FIXED_PT] * N, TEST_KEY80, model=model,
            lambdas=[0] * N, rng=3, nets=nets,
        )
        l1 = power_trace(
            design, [FIXED_PT] * N, TEST_KEY80, model=model,
            lambdas=[1] * N, rng=4, nets=nets,
        )
        return l0, l1

    def test_hd_model_never_sees_lambda(self, ours_prime):
        l0, l1 = self.groups(ours_prime, LeakageModel.HAMMING_DISTANCE)
        assert max_abs_t(l0, l1) < 1e-9  # exactly invariant, not just small

    def test_whole_chip_hw_is_balanced_by_complementary_cores(self, ours_prime):
        l0, l1 = self.groups(ours_prime, LeakageModel.HAMMING_WEIGHT)
        assert max_abs_t(l0, l1) < 1e-9

    def test_single_core_hw_leaks_lambda(self, ours_prime):
        core_a_state = [
            g.out
            for g in ours_prime.circuit.gates
            if g.gtype is GateType.DFF and g.tag.startswith("a/state")
        ]
        l0, l1 = self.groups(
            ours_prime, LeakageModel.HAMMING_WEIGHT, nets=core_a_state
        )
        assert max_abs_t(l0, l1) > TVLA_THRESHOLD

    def test_single_core_hd_blind_except_reset_load(self, ours_prime):
        """HD is inversion-invariant between *encoded* states, so cycles
        1..30 are exactly λ-independent even per core.  Cycle 0 is the
        transition from the all-zero reset state, which degenerates to
        Hamming weight and therefore leaks λ — a real effect worth knowing
        about (randomising the reset state is the textbook fix).
        """
        core_a_state = [
            g.out
            for g in ours_prime.circuit.gates
            if g.gtype is GateType.DFF and g.tag.startswith("a/state")
        ]
        l0, l1 = self.groups(
            ours_prime, LeakageModel.HAMMING_DISTANCE, nets=core_a_state
        )
        steady = max_abs_t(l0[:, 1:], l1[:, 1:])
        load = max_abs_t(l0[:, :1], l1[:, :1])
        assert steady < 1e-9
        assert load > TVLA_THRESHOLD
