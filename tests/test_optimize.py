"""Optimisation passes preserve behaviour and remove redundancy."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.builder import CircuitBuilder
from repro.netlist.circuit import Circuit
from repro.netlist.gates import COMBINATIONAL_TYPES, GateType
from repro.netlist.simulator import Simulator
from repro.synth.optimize import dead_code, optimize, rebuild


def behave(circuit, cycles=0, inputs=None):
    """Fingerprint a circuit's behaviour over all 32 input patterns."""
    batch = 32
    sim = Simulator(circuit, batch=batch)
    for name, nets in circuit.inputs.items():
        sim.set_input_ints(name, [(v * 7 + hash(name)) % (1 << len(nets)) for v in range(batch)]
                           if inputs is None else inputs[name])
    sim.run(cycles)
    sim.eval_comb()
    return {name: sim.get_output_ints(name) for name in circuit.outputs}


class TestRebuild:
    def test_folds_constants(self):
        b = CircuitBuilder()
        x = b.input("x", 1)
        one = b.circuit.const(1)
        y = b.and_(x[0], one)  # == x0
        b.output("y", [b.xor(y, b.circuit.const(0))])
        out = optimize(b.circuit)
        assert behave(b.circuit) == behave(out)
        # everything should have folded down to a wire
        comb = [g for g in out.gates if g.gtype in COMBINATIONAL_TYPES]
        assert len(comb) == 0

    def test_dedupes_structural_twins(self):
        b = CircuitBuilder()
        x = b.input("x", 2)
        y1 = b.xor(x[0], x[1])
        y2 = b.xor(x[1], x[0])  # commutative twin
        b.output("y", [b.and_(y1, y2)])  # a & a -> a after dedupe
        out = optimize(b.circuit)
        assert behave(b.circuit) == behave(out)
        counts = out.stats().gate_counts
        assert counts.get("xor", 0) == 1
        assert counts.get("and", 0) == 0

    def test_double_not_eliminated(self):
        b = CircuitBuilder()
        x = b.input("x", 1)
        b.output("y", [b.not_(b.not_(x[0]))])
        out = optimize(b.circuit)
        assert out.stats().gate_counts.get("not", 0) == 0
        assert behave(b.circuit) == behave(out)

    def test_mux_constant_data_strength_reduced(self):
        b = CircuitBuilder()
        x = b.input("x", 2)
        b.output("y", [b.mux(x[0], b.circuit.const(0), x[1])])
        out = optimize(b.circuit)
        assert behave(b.circuit) == behave(out)
        assert out.stats().gate_counts.get("mux", 0) == 0

    def test_registers_and_init_survive(self):
        b = CircuitBuilder()
        q, connect = b.register(3, init=5)
        connect(b.incrementer(q))
        b.output("q", q)
        out = rebuild(b.circuit)
        assert len(out.dffs()) == 3
        assert behave(b.circuit, cycles=4) == behave(out, cycles=4)

    def test_ports_preserved_verbatim(self):
        b = CircuitBuilder()
        x = b.input("x", 3)
        b.output("y", [b.and_(x[0], x[1]), x[2]])
        out = optimize(b.circuit)
        assert list(out.inputs) == ["x"]
        assert len(out.inputs["x"]) == 3
        assert len(out.outputs["y"]) == 2


class TestDeadCode:
    def test_unreachable_logic_removed(self):
        b = CircuitBuilder()
        x = b.input("x", 2)
        live = b.xor(x[0], x[1])
        for _ in range(10):
            b.and_(x[0], x[1])  # dead
        b.output("y", [live])
        out = dead_code(b.circuit)
        assert out.stats().gate_counts.get("and", 0) == 0
        assert behave(b.circuit) == behave(out)

    def test_dead_register_chain_removed(self):
        b = CircuitBuilder()
        x = b.input("x", 1)
        q_dead, c_dead = b.register(4)
        c_dead(b.incrementer(q_dead))
        b.output("y", [b.buf(x[0])])
        out = dead_code(b.circuit)
        assert len(out.dffs()) == 0

    def test_live_register_kept_through_feedback(self):
        b = CircuitBuilder()
        q, connect = b.register(4)
        connect(b.incrementer(q))
        b.output("q", q)
        out = dead_code(b.circuit)
        assert len(out.dffs()) == 4
        assert behave(b.circuit, cycles=3) == behave(out, cycles=3)

    def test_unused_inputs_stay_in_interface(self):
        b = CircuitBuilder()
        x = b.input("x", 4)
        b.output("y", [b.buf(x[0])])
        out = dead_code(b.circuit)
        assert len(out.inputs["x"]) == 4


class TestOptimizeProperty:
    @staticmethod
    def random_circuit(seed):
        rng = np.random.default_rng(seed)
        c = Circuit("rand")
        nets = list(c.add_input("x", 4))
        nets.append(c.const(0))
        nets.append(c.const(1))
        types = sorted(COMBINATIONAL_TYPES, key=lambda g: g.value)
        dff_count = 0
        for _ in range(40):
            gtype = types[rng.integers(len(types))]
            ins = tuple(int(nets[rng.integers(len(nets))]) for _ in range(gtype.arity))
            nets.append(c.add_gate(gtype, ins))
            if dff_count < 4 and rng.random() < 0.15:
                nets.append(c.add_gate(GateType.DFF, (nets[-1],), init=int(rng.integers(2))))
                dff_count += 1
        c.set_output("y", nets[-4:])
        return c

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_optimize_preserves_behaviour(self, seed):
        circ = self.random_circuit(seed)
        out = optimize(circ)
        assert len(out.gates) <= len(circ.gates)
        for cycles in (0, 3):
            assert behave(circ, cycles=cycles) == behave(out, cycles=cycles)
