"""The evaluation matrix/sweep helpers (small-scale versions of the
asserted benchmarks)."""

from repro.evaluation.matrix import FTA_PLAINTEXTS, run_attack_matrix, run_round_sweep


class TestRoundSweep:
    def test_row_structure(self):
        rows = run_round_sweep(300, rounds=(1, 31))
        assert len(rows) == 2
        for row in rows:
            round_, naive_rate, naive_eff, ours_rate, ours_eff = row
            assert round_ in (1, 31)
            assert 0.0 <= naive_rate <= 1.0 and 0.0 <= ours_rate <= 1.0
            assert naive_eff == 0 and ours_eff == 0

    def test_custom_target(self):
        rows = run_round_sweep(200, rounds=(31,), target_sbox=0, target_bit=3)
        assert len(rows) == 1


class TestAttackMatrixSmall:
    def test_matrix_shape_and_naive_breaks(self):
        """A small-N matrix: the naive row must already break under DFA
        (deterministic given the seed); the ours row must stay clean."""
        matrix = run_attack_matrix(3000)
        assert set(matrix) == {"naive_duplication", "acisp20", "three_in_one"}
        for cells in matrix.values():
            assert set(cells) == {"dfa_identical", "sifa", "fta"}
        assert matrix["naive_duplication"]["dfa_identical"].success
        assert not matrix["three_in_one"]["dfa_identical"].success
        assert not matrix["three_in_one"]["fta"].success
        assert len(FTA_PLAINTEXTS) >= 4
