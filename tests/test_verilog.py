"""Structural Verilog export/import round-trips."""

import pytest

from repro.netlist.builder import CircuitBuilder
from repro.netlist.simulator import Simulator
from repro.netlist.verilog import from_verilog, to_verilog


def small_comb():
    b = CircuitBuilder("leaf")
    x = b.input("x", 4)
    y = [
        b.xor(x[0], x[1]),
        b.mux(x[2], x[0], x[3]),
        b.circuit.const(1),
        b.nand(x[1], x[2]),
    ]
    b.output("y", y)
    return b.circuit


def small_seq():
    b = CircuitBuilder("cnt3")
    q, connect = b.register(3, init=2)
    connect(b.incrementer(q))
    b.output("q", q)
    return b.circuit


class TestExport:
    def test_module_header_and_ports(self):
        text = to_verilog(small_comb())
        assert text.startswith("module leaf(")
        assert "input [3:0] x;" in text
        assert "output [3:0] y;" in text
        assert text.rstrip().endswith("endmodule")

    def test_primitives_and_mux_emitted(self):
        text = to_verilog(small_comb())
        assert "xor g" in text
        assert "nand g" in text
        assert "? n[" in text  # mux as ternary
        assert "1'b1;" in text  # const

    def test_dff_block(self):
        text = to_verilog(small_seq())
        assert "always @(posedge clk or posedge rst)" in text
        assert "<= 1'b1;" in text  # init=2 -> bit1 resets to 1

    def test_module_name_sanitised(self):
        b = CircuitBuilder("weird name!")
        b.input("x", 1)
        b.output("y", [b.circuit.const(0)])
        assert "module weird_name" in to_verilog(b.circuit)


class TestRoundTrip:
    def equivalent(self, c1, c2, cycles=0, width=4, port="y"):
        batch = 16
        s1, s2 = Simulator(c1, batch), Simulator(c2, batch)
        for s in (s1, s2):
            if "x" in c1.inputs:
                s.set_input_ints("x", list(range(batch)))
            s.run(cycles)
            s.eval_comb()
        return s1.get_output_ints(port) == s2.get_output_ints(port)

    def test_comb_roundtrip_behaviour(self):
        original = small_comb()
        rebuilt = from_verilog(to_verilog(original))
        assert self.equivalent(original, rebuilt)

    def test_seq_roundtrip_behaviour(self):
        original = small_seq()
        rebuilt = from_verilog(to_verilog(original))
        assert self.equivalent(original, rebuilt, cycles=5, port="q")

    def test_roundtrip_is_fixpoint(self):
        text = to_verilog(small_seq())
        again = to_verilog(from_verilog(text))
        assert to_verilog(from_verilog(again)) == again

    def test_present_core_roundtrips(self):
        from repro.ciphers.netlist_present import build_present_circuit

        circ, _ = build_present_circuit()
        rebuilt = from_verilog(to_verilog(circ))
        s1, s2 = Simulator(circ, 4), Simulator(rebuilt, 4)
        pts = [0, 1, 0xFFFFFFFFFFFFFFFF, 0x123456789ABCDEF0]
        for s in (s1, s2):
            s.set_input_ints("plaintext", pts)
            s.set_input_ints("key", [0x5555] * 4)
            s.run(31)
            s.eval_comb()
        assert s1.get_output_ints("ciphertext") == s2.get_output_ints("ciphertext")
