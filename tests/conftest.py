"""Shared fixtures.

Heavy objects (cipher specs with synthesised S-boxes, protected designs)
are session-scoped: they are immutable after construction, and rebuilding
them per test would dominate the suite's runtime.
"""

from __future__ import annotations

import pytest

from repro.ciphers.netlist_gift import GiftSpec
from repro.ciphers.netlist_present import PresentSpec
from repro.countermeasures import (
    LambdaVariant,
    build_acisp20,
    build_naive_duplication,
    build_three_in_one,
    build_triplication,
)

TEST_KEY80 = 0x1A2B3C4D5E6F708192A3
TEST_KEY128 = 0x000102030405060708090A0B0C0D0E0F


@pytest.fixture(scope="session")
def present_spec() -> PresentSpec:
    return PresentSpec()

@pytest.fixture(scope="session")
def gift_spec() -> GiftSpec:
    return GiftSpec()


@pytest.fixture(scope="session")
def naive_design(present_spec):
    return build_naive_duplication(present_spec)


@pytest.fixture(scope="session")
def triplication_design(present_spec):
    return build_triplication(present_spec)


@pytest.fixture(scope="session")
def acisp_design(present_spec):
    return build_acisp20(present_spec)


@pytest.fixture(scope="session")
def ours_prime(present_spec):
    return build_three_in_one(present_spec, variant=LambdaVariant.PRIME)


@pytest.fixture(scope="session")
def ours_per_round(present_spec):
    return build_three_in_one(present_spec, variant=LambdaVariant.PER_ROUND)


@pytest.fixture(scope="session")
def ours_per_sbox(present_spec):
    return build_three_in_one(present_spec, variant=LambdaVariant.PER_SBOX)
