"""Cross-cutting property-based tests (hypothesis) on the substrate.

These complement the per-module suites with whole-pipeline invariants:
Verilog round-trips, optimisation/mapping composition, GateCache semantics
against a reference evaluator, and the countermeasure's detect-or-
ineffective invariant under randomly placed faults.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultSpec, FaultType, Outcome, run_campaign
from repro.netlist.circuit import Circuit
from repro.netlist.gates import COMBINATIONAL_TYPES, GateType
from repro.netlist.simulator import Simulator
from repro.netlist.verilog import from_verilog, to_verilog
from repro.synth.optimize import optimize
from repro.tech.mapping import map_to_cells
from tests.conftest import TEST_KEY80


def random_circuit(seed, n_inputs=4, n_gates=25, with_dffs=True):
    rng = np.random.default_rng(seed)
    c = Circuit("rand")
    nets = list(c.add_input("x", n_inputs))
    nets.append(c.const(0))
    nets.append(c.const(1))
    types = sorted(COMBINATIONAL_TYPES, key=lambda g: g.value)
    dffs = 0
    for _ in range(n_gates):
        gtype = types[rng.integers(len(types))]
        ins = tuple(int(nets[rng.integers(len(nets))]) for _ in range(gtype.arity))
        nets.append(c.add_gate(gtype, ins))
        if with_dffs and dffs < 3 and rng.random() < 0.1:
            nets.append(c.add_gate(GateType.DFF, (nets[-1],), init=int(rng.integers(2))))
            dffs += 1
    c.set_output("y", nets[-4:])
    return c


def behaviour(circuit, cycles=2):
    sim = Simulator(circuit, batch=16)
    sim.set_input_ints("x", list(range(16)))
    sim.run(cycles)
    sim.eval_comb()
    return sim.get_output_ints("y")


class TestVerilogRoundTripProperty:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_preserves_behaviour(self, seed):
        circ = random_circuit(seed)
        rebuilt = from_verilog(to_verilog(circ))
        for cycles in (0, 3):
            assert behaviour(circ, cycles) == behaviour(rebuilt, cycles)


class TestPassComposition:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_optimize_then_map_preserves_behaviour(self, seed):
        circ = random_circuit(seed)
        transformed = map_to_cells(optimize(circ))
        for cycles in (0, 2):
            assert behaviour(circ, cycles) == behaviour(transformed, cycles)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_pipeline_exports_valid_verilog(self, seed):
        circ = map_to_cells(optimize(random_circuit(seed)))
        rebuilt = from_verilog(to_verilog(circ))
        assert behaviour(circ) == behaviour(rebuilt)


class TestGateCacheSemanticsProperty:
    """Random op sequences through the GateCache must equal a model
    evaluation (the cache's folds are only allowed to be identities)."""

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=5, max_value=25),
    )
    @settings(max_examples=20, deadline=None)
    def test_against_integer_model(self, seed, n_ops):
        from repro.netlist.builder import CircuitBuilder
        from repro.synth.gatecache import GateCache

        rng = np.random.default_rng(seed)
        builder = CircuitBuilder("gc")
        x = builder.input("x", 4)
        cache = GateCache(builder)

        # model: each net id -> 16-bit truth mask over the 16 input patterns
        model = {}
        for i, net in enumerate(x):
            mask = 0
            for p in range(16):
                mask |= ((p >> i) & 1) << p
            model[net] = mask
        model[cache.zero] = 0
        model[cache.one] = 0xFFFF

        nets = list(x) + [cache.zero, cache.one]
        ops = ["not", "and", "or", "xor", "xnor", "nand", "nor", "mux"]
        for _ in range(n_ops):
            op = ops[rng.integers(len(ops))]
            a, b, c = (nets[rng.integers(len(nets))] for _ in range(3))
            if op == "not":
                net, val = cache.g_not(a), model[a] ^ 0xFFFF
            elif op == "and":
                net, val = cache.g_and(a, b), model[a] & model[b]
            elif op == "or":
                net, val = cache.g_or(a, b), model[a] | model[b]
            elif op == "xor":
                net, val = cache.g_xor(a, b), model[a] ^ model[b]
            elif op == "xnor":
                net, val = cache.g_xnor(a, b), (model[a] ^ model[b]) ^ 0xFFFF
            elif op == "nand":
                net, val = cache.g_nand(a, b), (model[a] & model[b]) ^ 0xFFFF
            elif op == "nor":
                net, val = cache.g_nor(a, b), (model[a] | model[b]) ^ 0xFFFF
            else:
                net = cache.g_mux(a, b, c)
                val = (model[a] & model[c]) | ((model[a] ^ 0xFFFF) & model[b])
            if net in model:
                assert model[net] == val, f"cache folded {op} incorrectly"
            model[net] = val
            nets.append(net)

        builder.output("y", nets[-4:])
        sim = Simulator(builder.circuit, batch=16)
        sim.set_input_ints("x", list(range(16)))
        sim.eval_comb()
        got = sim.get_output_bits("y")
        for j, net in enumerate(nets[-4:]):
            for p in range(16):
                assert got[p, j] == (model[net] >> p) & 1


class TestDetectOrIneffectiveProperty:
    """The paper's core soundness claim as a sampled property: a single
    fault on any S-box wire of either core never releases a wrong word."""

    @given(
        st.integers(min_value=0, max_value=1),  # core
        st.integers(min_value=0, max_value=15),  # sbox
        st.integers(min_value=0, max_value=3),  # bit
        st.sampled_from([FaultType.STUCK_AT_0, FaultType.STUCK_AT_1, FaultType.BIT_FLIP]),
        st.integers(min_value=0, max_value=30),  # cycle
    )
    @settings(max_examples=20, deadline=None)
    def test_never_effective(self, core_idx, sbox, bit, fault_type, cycle):
        # hypothesis doesn't inject fixtures; build once and cache on the class
        design = self._design()
        from repro.faults.models import sbox_input_net

        net = sbox_input_net(design.cores[core_idx], sbox, bit)
        spec = FaultSpec.at(net, fault_type, cycle)
        res = run_campaign(design, [spec], n_runs=32, key=TEST_KEY80, seed=cycle)
        assert res.count(Outcome.EFFECTIVE) == 0

    @classmethod
    def _design(cls):
        if not hasattr(cls, "_cached"):
            from repro.ciphers.netlist_present import PresentSpec
            from repro.countermeasures import build_three_in_one

            cls._cached = build_three_in_one(PresentSpec())
        return cls._cached
