"""Cell libraries and GE area accounting."""

import pytest

from repro.netlist.builder import CircuitBuilder
from repro.netlist.gates import GateType
from repro.tech import NANGATE45, PAPER_CALIBRATED, area_of
from repro.tech.library import CellLibrary


class TestLibraries:
    def test_nand2_is_the_unit(self):
        assert NANGATE45.cost(GateType.NAND) == 1.0
        assert NANGATE45.cost(GateType.NOR) == 1.0

    def test_relative_costs_sane(self):
        assert NANGATE45.cost(GateType.NOT) < NANGATE45.cost(GateType.AND)
        assert NANGATE45.cost(GateType.XOR) > NANGATE45.cost(GateType.AND)
        assert NANGATE45.cost(GateType.DFF) > NANGATE45.cost(GateType.MUX)

    def test_sources_are_free(self):
        for gtype in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
            assert NANGATE45.cost(gtype) == 0.0

    def test_calibrated_dff_matches_paper_register_file(self):
        # 288 duplicated state+key flops must price at Table II's 1807 GE
        assert PAPER_CALIBRATED.cost(GateType.DFF) * 288 == pytest.approx(1807.0)

    def test_combinational_costs_identical_across_libraries(self):
        for gtype in GateType:
            if gtype is GateType.DFF:
                continue
            assert NANGATE45.cost(gtype) == PAPER_CALIBRATED.cost(gtype)

    def test_sequential_classification(self):
        assert NANGATE45.is_sequential(GateType.DFF)
        assert not NANGATE45.is_sequential(GateType.MUX)

    def test_missing_cell_raises(self):
        tiny = CellLibrary(name="tiny", ge={GateType.AND: 1.0})
        with pytest.raises(KeyError):
            tiny.cost(GateType.XOR)


class TestAreaOf:
    def make_circuit(self):
        b = CircuitBuilder("dut")
        x = b.input("x", 2)
        y = b.xor(x[0], x[1])  # 2.00
        z = b.and_(x[0], y)  # 1.33
        q = b.dff(z)  # 6.67 (nangate)
        b.output("y", [q])
        return b.circuit

    def test_split_and_total(self):
        report = area_of(self.make_circuit(), library=NANGATE45)
        assert report.combinational == pytest.approx(3.33)
        assert report.non_combinational == pytest.approx(6.67)
        assert report.total == pytest.approx(10.0)

    def test_cell_counts(self):
        report = area_of(self.make_circuit(), library=NANGATE45)
        assert report.cell_counts == {"xor": 1, "and": 1, "dff": 1}

    def test_ratio_to(self):
        base = area_of(self.make_circuit(), library=NANGATE45)
        assert base.ratio_to(base) == pytest.approx(1.0)

    def test_ratio_to_zero_baseline_rejected(self):
        b = CircuitBuilder("empty")
        b.input("x", 1)
        b.output("y", [b.circuit.inputs["x"][0]])
        zero = area_of(b.circuit)
        with pytest.raises(ZeroDivisionError):
            area_of(self.make_circuit()).ratio_to(zero)

    def test_str_rendering(self):
        text = str(area_of(self.make_circuit(), library=NANGATE45))
        assert "comb=3 GE" in text and "total=10 GE" in text
