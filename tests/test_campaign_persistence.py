"""Campaign save/load round-trips, and re-running attacks offline."""

import numpy as np
import pytest

from repro.attacks import sifa_attack
from repro.faults import (
    RNG_BLOCK,
    CampaignResult,
    ExecutorConfig,
    FaultSpec,
    FaultType,
    run_campaign,
    run_campaign_sharded,
)
from repro.faults.models import sbox_input_net
from tests.conftest import TEST_KEY80


class TestSpecSerialization:
    SPECS = [
        FaultSpec(3, FaultType.STUCK_AT_0),
        FaultSpec.at(17, FaultType.BIT_FLIP, 5),
        FaultSpec.at(99, FaultType.SET_FLIP, [2, 7, 30], probability=0.25,
                     label="laser/b"),
        FaultSpec(0, FaultType.RESET_FLIP, cycles=None, probability=0.0),
    ]

    @pytest.mark.parametrize("spec", SPECS)
    def test_roundtrip_identity(self, spec):
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_dict_is_json_safe(self):
        import json

        for spec in self.SPECS:
            clone = FaultSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
            assert clone == spec

    def test_fault_type_roundtrip(self):
        for ft in FaultType:
            assert FaultType.from_dict(ft.to_dict()) is ft
        assert FaultType.from_dict("STUCK_AT_1") is FaultType.STUCK_AT_1


class TestPersistence:
    def make_campaign(self, naive_design, present_spec, n=3000):
        net = sbox_input_net(naive_design.cores[0], 7, 1)
        fault = FaultSpec.at(net, FaultType.STUCK_AT_0, present_spec.rounds - 2)
        return run_campaign(
            naive_design, [fault], n_runs=n, key=TEST_KEY80, seed=21
        )

    def test_roundtrip_preserves_arrays(self, naive_design, present_spec, tmp_path):
        result = self.make_campaign(naive_design, present_spec, n=500)
        path = tmp_path / "campaign.npz"
        result.save(path)
        loaded = CampaignResult.load(path)
        assert loaded.scheme == result.scheme
        assert loaded.key == result.key
        assert (loaded.released_bits == result.released_bits).all()
        assert (loaded.outcomes == result.outcomes).all()
        assert loaded.counts() == result.counts()
        assert loaded.specs == result.specs

    def test_offline_attack_matches_online(
        self, naive_design, present_spec, tmp_path
    ):
        result = self.make_campaign(naive_design, present_spec)
        path = tmp_path / "campaign.npz"
        result.save(path)
        loaded = CampaignResult.load(path)
        online = sifa_attack(result, present_spec, 7, 1)
        offline = sifa_attack(loaded, present_spec, 7, 1)
        assert online.recovered_bits == offline.recovered_bits
        assert [r.best_guess for r in online.attacked] == [
            r.best_guess for r in offline.attacked
        ]

    def test_large_key_survives_stringification(self, naive_design, present_spec, tmp_path):
        result = self.make_campaign(naive_design, present_spec, n=64)
        assert result.key.bit_length() > 64  # 80-bit keys exceed int64
        path = tmp_path / "c.npz"
        result.save(path)
        assert CampaignResult.load(path).key == result.key


def _fail_from_shard_one(index: int, attempt: int) -> None:
    if index >= 1:
        raise RuntimeError("injected interruption")


class TestResumeAfterCorruption:
    """Torn writes on checkpoint artefacts are detected and recomputed.

    Persistence is atomic (tmp + ``os.replace``), so a torn write cannot
    happen through our own code path — but power loss can still tear the
    rename journal, and media decays.  These tests hand-tear the artefacts
    the way a mid-write kill would and demand the resumed campaign end up
    equal to the uninterrupted run.
    """

    N = 2 * RNG_BLOCK + RNG_BLOCK // 2  # 3 shards at shard_runs=RNG_BLOCK

    def _fault(self, naive_design, present_spec):
        net = sbox_input_net(naive_design.cores[0], 7, 1)
        return FaultSpec.at(net, FaultType.STUCK_AT_0, present_spec.rounds - 2)

    @pytest.fixture(scope="class")
    def uninterrupted(self, naive_design, present_spec):
        fault = self._fault(naive_design, present_spec)
        return run_campaign(
            naive_design, [fault], n_runs=self.N, key=TEST_KEY80, seed=21
        )

    def _assert_equal(self, a, b):
        assert (a.released_bits == b.released_bits).all()
        assert (a.fault_flags == b.fault_flags).all()
        assert (a.outcomes == b.outcomes).all()

    def _checkpointed(self, naive_design, present_spec, ck, **kwargs):
        fault = self._fault(naive_design, present_spec)
        return run_campaign_sharded(
            naive_design, [fault], n_runs=self.N, key=TEST_KEY80, seed=21,
            config=ExecutorConfig(
                shard_runs=RNG_BLOCK, checkpoint_dir=ck,
                retries=0, backoff=0.0, **kwargs,
            ),
        )

    def _resume(self, naive_design, present_spec, ck):
        fault = self._fault(naive_design, present_spec)
        return run_campaign_sharded(
            naive_design, [fault], n_runs=self.N, key=TEST_KEY80, seed=21,
            config=ExecutorConfig(
                shard_runs=RNG_BLOCK, checkpoint_dir=ck,
                retries=0, backoff=0.0, resume=True,
            ),
        )

    def test_truncated_shard_archive_is_recomputed(
        self, naive_design, present_spec, uninterrupted, tmp_path
    ):
        ck = tmp_path / "ck"
        self._checkpointed(naive_design, present_spec, ck)
        shard = ck / "shard_00001.npz"
        shard.write_bytes(shard.read_bytes()[: shard.stat().st_size // 2])
        resumed = self._resume(naive_design, present_spec, ck)
        assert not resumed.partial
        self._assert_equal(resumed, uninterrupted)

    def test_truncated_manifest_is_recovered(
        self, naive_design, present_spec, uninterrupted, tmp_path
    ):
        ck = tmp_path / "ck"
        self._checkpointed(naive_design, present_spec, ck)
        manifest = ck / "manifest.json"
        text = manifest.read_text()
        manifest.write_text(text[: len(text) // 2])  # torn mid-write
        resumed = self._resume(naive_design, present_spec, ck)
        assert not resumed.partial
        self._assert_equal(resumed, uninterrupted)

    def test_interrupted_run_with_torn_artefacts_completes(
        self, naive_design, present_spec, uninterrupted, tmp_path
    ):
        """The worst case: killed mid-campaign AND both artefact kinds torn."""
        ck = tmp_path / "ck"
        fault = self._fault(naive_design, present_spec)
        partial = run_campaign_sharded(
            naive_design, [fault], n_runs=self.N, key=TEST_KEY80, seed=21,
            config=ExecutorConfig(
                shard_runs=RNG_BLOCK, checkpoint_dir=ck,
                retries=0, backoff=0.0,
            ),
            shard_hook=_fail_from_shard_one,
        )
        assert partial.partial  # only shard 0 completed
        shard = ck / "shard_00000.npz"
        shard.write_bytes(shard.read_bytes()[: shard.stat().st_size // 2])
        manifest = ck / "manifest.json"
        text = manifest.read_text()
        manifest.write_text(text[: len(text) // 2])
        resumed = self._resume(naive_design, present_spec, ck)
        assert not resumed.partial
        self._assert_equal(resumed, uninterrupted)
