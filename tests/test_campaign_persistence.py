"""Campaign save/load round-trips, and re-running attacks offline."""

import numpy as np
import pytest

from repro.attacks import sifa_attack
from repro.faults import CampaignResult, FaultSpec, FaultType, run_campaign
from repro.faults.models import sbox_input_net
from tests.conftest import TEST_KEY80


class TestSpecSerialization:
    SPECS = [
        FaultSpec(3, FaultType.STUCK_AT_0),
        FaultSpec.at(17, FaultType.BIT_FLIP, 5),
        FaultSpec.at(99, FaultType.SET_FLIP, [2, 7, 30], probability=0.25,
                     label="laser/b"),
        FaultSpec(0, FaultType.RESET_FLIP, cycles=None, probability=0.0),
    ]

    @pytest.mark.parametrize("spec", SPECS)
    def test_roundtrip_identity(self, spec):
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_dict_is_json_safe(self):
        import json

        for spec in self.SPECS:
            clone = FaultSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
            assert clone == spec

    def test_fault_type_roundtrip(self):
        for ft in FaultType:
            assert FaultType.from_dict(ft.to_dict()) is ft
        assert FaultType.from_dict("STUCK_AT_1") is FaultType.STUCK_AT_1


class TestPersistence:
    def make_campaign(self, naive_design, present_spec, n=3000):
        net = sbox_input_net(naive_design.cores[0], 7, 1)
        fault = FaultSpec.at(net, FaultType.STUCK_AT_0, present_spec.rounds - 2)
        return run_campaign(
            naive_design, [fault], n_runs=n, key=TEST_KEY80, seed=21
        )

    def test_roundtrip_preserves_arrays(self, naive_design, present_spec, tmp_path):
        result = self.make_campaign(naive_design, present_spec, n=500)
        path = tmp_path / "campaign.npz"
        result.save(path)
        loaded = CampaignResult.load(path)
        assert loaded.scheme == result.scheme
        assert loaded.key == result.key
        assert (loaded.released_bits == result.released_bits).all()
        assert (loaded.outcomes == result.outcomes).all()
        assert loaded.counts() == result.counts()
        assert loaded.specs == result.specs

    def test_offline_attack_matches_online(
        self, naive_design, present_spec, tmp_path
    ):
        result = self.make_campaign(naive_design, present_spec)
        path = tmp_path / "campaign.npz"
        result.save(path)
        loaded = CampaignResult.load(path)
        online = sifa_attack(result, present_spec, 7, 1)
        offline = sifa_attack(loaded, present_spec, 7, 1)
        assert online.recovered_bits == offline.recovered_bits
        assert [r.best_guess for r in online.attacked] == [
            r.best_guess for r in offline.attacked
        ]

    def test_large_key_survives_stringification(self, naive_design, present_spec, tmp_path):
        result = self.make_campaign(naive_design, present_spec, n=64)
        assert result.key.bit_length() > 64  # 80-bit keys exceed int64
        path = tmp_path / "c.npz"
        result.save(path)
        assert CampaignResult.load(path).key == result.key
