"""Technology mapping rewrites: behaviour-preserving, area-reducing."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.builder import CircuitBuilder
from repro.netlist.circuit import Circuit
from repro.netlist.gates import COMBINATIONAL_TYPES, GateType
from repro.netlist.simulator import Simulator
from repro.tech import area_of
from repro.tech.mapping import map_to_cells


def behave(circuit, width=4, cycles=0):
    batch = 1 << width
    sim = Simulator(circuit, batch=batch)
    sim.set_input_ints("x", list(range(batch)))
    sim.run(cycles)
    sim.eval_comb()
    return {name: sim.get_output_ints(name) for name in circuit.outputs}


class TestRewrites:
    def test_not_and_becomes_nand(self):
        b = CircuitBuilder()
        x = b.input("x", 4)
        b.output("y", [b.not_(b.and_(x[0], x[1]))])
        mapped = map_to_cells(b.circuit)
        assert mapped.stats().gate_counts == {"input": 4, "nand": 1}
        assert behave(b.circuit) == behave(mapped)

    def test_not_or_becomes_nor(self):
        b = CircuitBuilder()
        x = b.input("x", 4)
        b.output("y", [b.not_(b.or_(x[0], x[1]))])
        mapped = map_to_cells(b.circuit)
        assert mapped.stats().gate_counts == {"input": 4, "nor": 1}
        assert behave(b.circuit) == behave(mapped)

    def test_demorgan_and_of_inverters(self):
        b = CircuitBuilder()
        x = b.input("x", 4)
        b.output("y", [b.and_(b.not_(x[0]), b.not_(x[1]))])
        mapped = map_to_cells(b.circuit)
        assert mapped.stats().gate_counts == {"input": 4, "nor": 1}
        assert behave(b.circuit) == behave(mapped)

    def test_xor_absorbs_inverter(self):
        b = CircuitBuilder()
        x = b.input("x", 4)
        b.output("y", [b.xor(b.not_(x[0]), x[1]), b.xnor(x[2], b.not_(x[3]))])
        mapped = map_to_cells(b.circuit)
        counts = mapped.stats().gate_counts
        assert counts.get("not", 0) == 0
        assert counts.get("xnor", 0) == 1 and counts.get("xor", 0) == 1
        assert behave(b.circuit) == behave(mapped)

    def test_shared_inverter_not_fused(self):
        # the NOT feeds two gates: fusing would duplicate logic, so skip
        b = CircuitBuilder()
        x = b.input("x", 4)
        inv = b.not_(x[0])
        b.output("y", [b.and_(inv, x[1]), b.or_(inv, x[2])])
        mapped = map_to_cells(b.circuit)
        assert mapped.stats().gate_counts.get("not", 0) == 1
        assert behave(b.circuit) == behave(mapped)

    def test_multi_fanout_and_not_fused(self):
        # AND output used twice: NOT(AND) must not steal it
        b = CircuitBuilder()
        x = b.input("x", 4)
        a = b.and_(x[0], x[1])
        b.output("y", [b.not_(a), b.xor(a, x[2])])
        mapped = map_to_cells(b.circuit)
        counts = mapped.stats().gate_counts
        assert counts.get("and", 0) == 1 and counts.get("not", 0) == 1
        assert behave(b.circuit) == behave(mapped)

    def test_area_never_increases_on_patterns(self):
        b = CircuitBuilder()
        x = b.input("x", 4)
        outs = [
            b.not_(b.and_(x[0], x[1])),
            b.and_(b.not_(x[2]), b.not_(x[3])),
            b.xor(b.not_(x[0]), x[3]),
        ]
        b.output("y", outs)
        assert area_of(map_to_cells(b.circuit)).total < area_of(b.circuit).total


class TestOnRealDesigns:
    def test_registers_and_ports_survive(self):
        b = CircuitBuilder()
        x = b.input("x", 4)
        q, connect = b.register(4, init=9)
        connect(b.xor_word(q, x))
        b.output("y", q)
        mapped = map_to_cells(b.circuit)
        assert len(mapped.dffs()) == 4
        assert [g.init for g in mapped.dffs()] == [1, 0, 0, 1]
        assert behave(b.circuit, cycles=3) == behave(mapped, cycles=3)

    def test_present_design_unchanged_behaviour(self, present_spec):
        from repro.ciphers.netlist_present import build_present_circuit
        from repro.ciphers.present import Present80

        circ, _ = build_present_circuit()
        mapped = map_to_cells(circ)
        sim = Simulator(mapped, 4)
        sim.set_input_ints("plaintext", [0, 1, 2, 3])
        sim.set_input_ints("key", [0] * 4)
        sim.run(31)
        sim.eval_comb()
        cipher = Present80(0)
        assert sim.get_output_ints("ciphertext") == [cipher.encrypt(p) for p in range(4)]
        assert area_of(mapped).total <= area_of(circ).total


class TestMappingProperty:
    @staticmethod
    def random_circuit(seed):
        rng = np.random.default_rng(seed)
        c = Circuit("rand")
        nets = list(c.add_input("x", 4))
        types = sorted(COMBINATIONAL_TYPES, key=lambda g: g.value)
        for _ in range(30):
            gtype = types[rng.integers(len(types))]
            ins = tuple(int(nets[rng.integers(len(nets))]) for _ in range(gtype.arity))
            nets.append(c.add_gate(gtype, ins))
        c.set_output("y", nets[-4:])
        return c

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_mapping_preserves_behaviour(self, seed):
        circ = self.random_circuit(seed)
        mapped = map_to_cells(circ)
        assert behave(circ) == behave(mapped)
        assert area_of(mapped).total <= area_of(circ).total + 1e-9
