"""Known-answer conformance: published vectors, netlist vs model vs KAT.

Three layers, per registered cipher:

1. the *software model* must hit every published test vector (and invert
   it — decrypt round-trips through the same schedule);
2. the *full-round netlist* must hit the same vectors, batched, proving
   the datapath and the software model agree on exactly the points the
   spec authors pinned;
3. the *reduced-round regression vectors* (``vectors.REDUCED``) must hold
   for both model and netlist, guarding the round-reduction plumbing.
"""

from __future__ import annotations

import pytest

from tests.cipherlight.conftest import build_bare, run_bare
from tests.cipherlight.vectors import PUBLISHED, REDUCED


def test_every_registered_cipher_has_vectors(cipher_name):
    assert cipher_name in PUBLISHED, (
        f"{cipher_name} is registered but has no published vectors; "
        "add them to tests/cipherlight/vectors.py"
    )
    assert cipher_name in REDUCED


def test_published_vectors_software_model(cipher_name, entry):
    spec = entry.make()
    for key, pt, want in PUBLISHED[cipher_name]:
        cipher = spec.reference(key)
        got = cipher.encrypt(pt)
        assert got == want, f"{cipher_name}: {got:#x} != {want:#x}"
        assert cipher.decrypt(want) == pt


def test_published_vectors_full_round_netlist(cipher_name, entry):
    spec = entry.make()
    circuit, _ = build_bare(spec)
    vectors = PUBLISHED[cipher_name]
    keys = [key for key, _, _ in vectors]
    pts = [pt for _, pt, _ in vectors]
    got = run_bare(circuit, spec, keys, pts)
    for (key, pt, want), ct in zip(vectors, got):
        assert ct == want, f"{cipher_name}: netlist {ct:#x} != KAT {want:#x}"
        # triangle closed: netlist == known answer == software model
        assert ct == spec.reference(key).encrypt(pt)


def test_reduced_round_regression(cipher_name, entry):
    rounds, key, pt, want = REDUCED[cipher_name]
    assert rounds == entry.fast_rounds, (
        f"{cipher_name}: fast_rounds changed; re-pin vectors.REDUCED"
    )
    spec = entry.make(rounds=rounds)
    assert spec.rounds == rounds
    got = spec.reference(key).encrypt(pt)
    assert got == want, f"{cipher_name}/r{rounds}: model {got:#x} != {want:#x}"
    circuit, _ = build_bare(spec)
    (ct,) = run_bare(circuit, spec, [key], [pt])
    assert ct == want, f"{cipher_name}/r{rounds}: netlist {ct:#x} != {want:#x}"


def test_rounds_out_of_range_rejected(entry):
    with pytest.raises(ValueError, match="rounds"):
        entry.make(rounds=0)
    with pytest.raises(ValueError, match="rounds"):
        entry.make(rounds=entry.full_rounds + 1)
