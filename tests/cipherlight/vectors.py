"""Known-answer vectors for every registered cipher.

``PUBLISHED`` holds official test vectors in this package's port-integer
conventions:

- PRESENT-80: the four vectors from the CHES 2007 paper (big-endian state,
  bit 63 most significant — the spec's own numbering maps directly onto
  the 64-bit port integer).
- GIFT-64 / GIFT-128: the vectors published with the CHES 2017 paper
  (bit ``i`` of the integer is spec bit ``b_i``).
- AES-128: the FIPS-197 appendix C example and the first SP 800-38A
  AES-ECB vector, converted from FIPS byte order to the netlist port
  convention (``block_to_int`` — 128-bit little-endian over the state
  bytes).

``REDUCED`` pins regression ciphertexts for each registry entry's
``fast_rounds`` instance under fixed inputs.  These are *not* published
values — they guard the reduced-round plumbing (key-schedule truncation,
final-round selection, round-aware reference oracles) against silent
drift: software model and netlist must both still hit them.
"""

# (key, plaintext, ciphertext) port integers, per canonical cipher name.
PUBLISHED = {
    "present80": [
        (0x00000000000000000000, 0x0000000000000000, 0x5579C1387B228445),
        (0xFFFFFFFFFFFFFFFFFFFF, 0x0000000000000000, 0xE72C46C0F5945049),
        (0x00000000000000000000, 0xFFFFFFFFFFFFFFFF, 0xA112FFC72F68417B),
        (0xFFFFFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF, 0x3333DCD3213210D2),
    ],
    "gift64": [
        (
            0x00000000000000000000000000000000,
            0x0000000000000000,
            0xF62BC3EF34F775AC,
        ),
        (
            0xBD91731EB6BC2713A1F9F6FFC75044E7,
            0xC450C7727A9B8A7D,
            0xE3272885FA94BA8B,
        ),
    ],
    "gift128": [
        (
            0x00000000000000000000000000000000,
            0x00000000000000000000000000000000,
            0xCD0BD738388AD3F668B15A36CEB6FF92,
        ),
        (
            0xFEDCBA9876543210FEDCBA9876543210,
            0xFEDCBA9876543210FEDCBA9876543210,
            0x8422241A6DBF5A9346AF468409EE0152,
        ),
        (
            0xD0F5C59A7700D3E799028FA9F90AD837,
            0xE39C141FA57DBA43F08A85B6A91F86C1,
            0x13EDE67CBDCC3DBF400A62D6977265EA,
        ),
    ],
    "aes128": [
        # FIPS-197 appendix C: key 000102..0f, pt 00112233..eeff
        (
            0x0F0E0D0C0B0A09080706050403020100,
            0xFFEEDDCCBBAA99887766554433221100,
            0x5AC5B47080B7CDD830047B6AD8E0C469,
        ),
        # SP 800-38A F.1.1 AES-ECB-128, block 1
        (
            0x3C4FCF098815F7ABA6D2AE2816157E2B,
            0x2A179373117E3DE9969F402EE2BEC16B,
            0x97EF6624F3CA9EA860367A0DB47BD73A,
        ),
    ],
}

# (rounds, key, plaintext, ciphertext) for the fast reduced-round specs.
REDUCED = {
    "present80": (
        4,
        0x1A2B3C4D5E6F708192A3,
        0x0123456789ABCDEF,
        0xD1747BFD28F0D51F,
    ),
    "gift64": (
        4,
        0x000102030405060708090A0B0C0D0E0F,
        0xFEDCBA9876543210,
        0x757264ACEB25862F,
    ),
    "gift128": (
        3,
        0xD0F5C59A7700D3E799028FA9F90AD837,
        0xE39C141FA57DBA43F08A85B6A91F86C1,
        0x230569473B7027CAF2C427556F8FC08A,
    ),
    "aes128": (
        3,
        0x3C4FCF098815F7ABA6D2AE2816157E2B,
        0x2A179373117E3DE9969F402EE2BEC16B,
        0x25EC77BBEB6EF0768714A6F43C267E69,
    ),
}
