"""Chaos recovery is cipher-agnostic: recover bit-identically, per entry.

``tests/test_chaos.py`` proves the full chaos taxonomy on reduced-round
PRESENT; this module proves the *golden invariant* — a seeded chaos
schedule with a healthy retry path yields results bit-identical to the
undisturbed run — holds for **every registered cipher**, including the
``kill -9``-style pool-worker death and a clean resume over whatever
debris the schedule left in the checkpoint store.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    RNG_BLOCK,
    ExecutorConfig,
    FaultSpec,
    FaultType,
    run_campaign,
    run_campaign_sharded,
)
from repro.faults.models import last_round, sbox_input_net
from repro.resilience import CHAOS_ENV, ChaosFault, ChaosSpec, chaos

from tests.cipherlight.conftest import battery_key

N_RUNS = 2 * RNG_BLOCK + RNG_BLOCK // 2  # 3 shards at shard_runs=RNG_BLOCK
SEED = 29


@pytest.fixture(autouse=True)
def _pristine_chaos(monkeypatch):
    monkeypatch.delenv(CHAOS_ENV, raising=False)
    chaos.disable()
    yield
    chaos.disable()


@pytest.fixture(scope="session")
def campaign_fault(protected):
    core = protected.cores[0]
    net = sbox_input_net(core, 0, 1)
    return FaultSpec.at(net, FaultType.STUCK_AT_0, last_round(core))


@pytest.fixture(scope="session")
def chaos_baseline(protected, fast_spec, campaign_fault):
    """Chaos-free serial ground truth per cipher."""
    return run_campaign(
        protected,
        [campaign_fault],
        n_runs=N_RUNS,
        key=battery_key(fast_spec),
        seed=SEED,
    )


def _assert_identical(a, b):
    assert (a.plaintext_bits == b.plaintext_bits).all()
    assert (a.released_bits == b.released_bits).all()
    assert (a.expected_bits == b.expected_bits).all()
    assert (a.fault_flags == b.fault_flags).all()
    assert (a.outcomes == b.outcomes).all()


def _run(protected, fast_spec, campaign_fault, *, config):
    return run_campaign_sharded(
        protected,
        [campaign_fault],
        n_runs=N_RUNS,
        key=battery_key(fast_spec),
        seed=SEED,
        config=config,
    )


class TestChaosRecoveryPerCipher:
    def test_recovery_and_resume_are_bit_identical(
        self, fast_spec, protected, campaign_fault, chaos_baseline, tmp_path
    ):
        """Worker raises plus a truncated checkpoint shard, then a clean
        resume over the debris — both must reproduce the baseline."""
        ck = tmp_path / "ck"
        chaos.configure(
            ChaosSpec(
                seed=11,
                faults=(
                    ChaosFault("worker", "raise", 0.6, 2),
                    ChaosFault("checkpoint.shard", "truncate", 1.0, 1),
                ),
            )
        )
        try:
            result = _run(
                protected, fast_spec, campaign_fault,
                config=ExecutorConfig(
                    shard_runs=RNG_BLOCK, checkpoint_dir=ck,
                    retries=3, backoff=0.0,
                ),
            )
        finally:
            chaos.disable()
        assert not result.partial
        _assert_identical(result, chaos_baseline)

        resumed = _run(
            protected, fast_spec, campaign_fault,
            config=ExecutorConfig(
                shard_runs=RNG_BLOCK, checkpoint_dir=ck,
                retries=1, backoff=0.0, resume=True,
            ),
        )
        assert not resumed.partial
        _assert_identical(resumed, chaos_baseline)

    def test_pool_survives_kill9_worker_crashes(
        self, fast_spec, protected, campaign_fault, chaos_baseline, tmp_path
    ):
        """os._exit in a pool worker (no cleanup, no exception) is detected,
        the pool restarted, and the campaign completes bit-identically —
        proven here for every registered cipher, not just PRESENT."""
        chaos.configure(
            ChaosSpec(seed=5, faults=(ChaosFault("worker", "crash", 1.0, 1),))
        )
        result = _run(
            protected, fast_spec, campaign_fault,
            config=ExecutorConfig(
                shard_runs=RNG_BLOCK, checkpoint_dir=tmp_path / "ck",
                jobs=2, retries=3, backoff=0.0,
            ),
        )
        assert not result.partial
        _assert_identical(result, chaos_baseline)
