"""The conformance battery proper: every registered cipher, one contract.

For each cipher the battery proves, on the ``fast_rounds`` spec (full
rounds under ``REPRO_CIPHERLIGHT_FULL=1``):

- the protected three-in-one design matches the software reference under
  *all three* simulation backends, bit-identically across backends;
- the fault-ordering contract holds end-to-end on the real datapath
  (chained transforms on a driver and its consumer, identical campaign
  results per backend);
- every countermeasure scheme × supported λ-variant builds and passes
  structural lint, and unsupported variants are rejected loudly;
- a budgeted single-fault certify sweep earns a clean certificate;
- the service request key resolves the cipher through the registry
  (alias-insensitive, deterministic).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.certify import CertifyConfig, certify_design
from repro.countermeasures import (
    LambdaVariant,
    build_acisp20,
    build_naive_duplication,
    build_three_in_one,
    build_triplication,
)
from repro.faults import FaultSpec, FaultType, run_campaign
from repro.faults.models import last_round, sbox_input_net
from repro.netlist.analysis import lint_countermeasure
from repro.netlist.simulator import BACKENDS
from repro.rng import make_rng, random_ints

from tests.cipherlight.conftest import battery_key

N_BATCH = 8


def _bits_to_ints(bits: np.ndarray) -> list[int]:
    return [sum(int(b) << i for i, b in enumerate(row)) for row in bits]


class TestBackendEquivalence:
    def test_protected_matches_reference_under_every_backend(
        self, fast_spec, protected
    ):
        key = battery_key(fast_spec)
        pts = random_ints(make_rng(11), N_BATCH, fast_spec.block_bits)
        expected = [fast_spec.reference(key).encrypt(pt) for pt in pts]
        results = {}
        for backend in BACKENDS:
            sim = protected.simulator(N_BATCH, backend=backend)
            results[backend] = protected.run(sim, pts, key, rng=5)
        for backend, res in results.items():
            assert res["fault"].sum() == 0, backend
            assert _bits_to_ints(res["ciphertext"]) == expected, backend
        ref = results["reference"]
        for backend in BACKENDS:
            np.testing.assert_array_equal(
                ref["ciphertext"], results[backend]["ciphertext"], backend
            )

    def test_fault_ordering_contract_on_real_datapath(self, protected):
        """Chained faults — a stuck-at on an S-box input composed with a
        bit-flip on the same net, plus a flip on the S-box output it
        drives — must classify identically under every backend."""
        core = protected.cores[0]
        net_in = sbox_input_net(core, 0, 0)
        net_out = core.sbox_outputs[0][0]
        specs = [
            FaultSpec.at(net_in, FaultType.STUCK_AT_1, last_round(core)),
            FaultSpec.at(net_in, FaultType.BIT_FLIP, last_round(core)),
            FaultSpec.at(net_out, FaultType.BIT_FLIP, last_round(core)),
        ]
        key = battery_key(protected.spec)
        results = {
            backend: run_campaign(
                protected, specs, n_runs=256, key=key, seed=13, backend=backend
            )
            for backend in BACKENDS
        }
        ref = results.pop("reference")
        for backend, got in results.items():
            assert ref.counts() == got.counts(), backend
            np.testing.assert_array_equal(ref.outcomes, got.outcomes)
            np.testing.assert_array_equal(ref.released_bits, got.released_bits)
            np.testing.assert_array_equal(ref.fault_flags, got.fault_flags)


class TestCountermeasureVariants:
    def test_every_scheme_builds_and_passes_lint(self, fast_spec, entry, protected):
        designs = {
            "three-in-one/prime": protected,
            "naive": build_naive_duplication(fast_spec),
            "acisp20": build_acisp20(fast_spec),
            "triplication": build_triplication(fast_spec),
        }
        for variant in entry.variants:
            if variant == "prime":
                continue
            designs[f"three-in-one/{variant}"] = build_three_in_one(
                fast_spec, variant=LambdaVariant(variant)
            )
        key = battery_key(fast_spec)
        pts = random_ints(make_rng(17), 4, fast_spec.block_bits)
        expected = [fast_spec.reference(key).encrypt(pt) for pt in pts]
        for label, design in designs.items():
            report = lint_countermeasure(design, strict=False)
            assert report.passed, f"{label}: {report}"
            res = design.run(design.simulator(4), pts, key, rng=23)
            assert res["fault"].sum() == 0, label
            assert _bits_to_ints(res["ciphertext"]) == expected, label

    def test_unsupported_variants_rejected(self, fast_spec, entry):
        for variant in ("prime", "per_round", "per_sbox"):
            if variant in entry.variants:
                continue
            with pytest.raises(ValueError):
                build_three_in_one(fast_spec, variant=LambdaVariant(variant))


class TestDetectionSmoke:
    def test_budgeted_single_fault_certify_passes(self, fast_spec, protected):
        config = CertifyConfig(
            budget=512, runs_per_location=16, models=("single",), seed=7
        )
        certificate = certify_design(
            protected, key=battery_key(fast_spec), config=config
        )
        assert certificate.passed
        assert not certificate.witnesses
        assert certificate.cipher == fast_spec.name
        assert certificate.rounds == fast_spec.rounds


class TestServiceIdentity:
    def test_request_key_resolves_through_registry(
        self, cipher_name, entry, fast_spec, protected
    ):
        from repro.service.protocol import CertifyRequest, request_key

        request = CertifyRequest(
            cipher=cipher_name, rounds=fast_spec.rounds, budget=64, seed=3
        )
        key = request_key(request, design=protected)
        assert key == request_key(request, design=protected)  # deterministic
        for alias in entry.aliases:
            aliased = CertifyRequest(
                cipher=alias, rounds=fast_spec.rounds, budget=64, seed=3
            )
            assert request_key(aliased, design=protected) == key

    def test_unknown_cipher_rejected_at_request_construction(self):
        from repro.service.protocol import CertifyRequest

        with pytest.raises(ValueError, match="registered"):
            CertifyRequest(cipher="des")
