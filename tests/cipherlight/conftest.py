"""cipherlight: the cipher-agnostic conformance battery.

Every test in this package is parametrized over the cipher registry, so a
newly registered :class:`~repro.ciphers.spn.CipherSpec` inherits the full
battery for free: published/software KAT equivalence, three-backend
differential equivalence, the fault-ordering contract, structural lint of
every countermeasure variant, a single-fault detection smoke sweep, and
chaos/kill-9 campaign recovery.

Environment knobs (both used by CI):

``REPRO_CIPHERLIGHT_ONLY``
    comma-separated cipher names — restrict the battery to those entries
    (the per-cipher CI matrix job sets one name per shard).
``REPRO_CIPHERLIGHT_FULL=1``
    run the battery on *full-round* specs instead of each entry's
    ``fast_rounds`` instance (the nightly deep sweep).
"""

from __future__ import annotations

import os

import pytest

from repro.ciphers.registry import get_entry, registered_ciphers, resolve_cipher
from repro.netlist.builder import CircuitBuilder
from repro.netlist.simulator import Simulator
from repro.synth.sbox_synth import synthesize_sbox

FULL_ROUNDS = os.environ.get("REPRO_CIPHERLIGHT_FULL") == "1"

_only = os.environ.get("REPRO_CIPHERLIGHT_ONLY")
if _only:
    CIPHERS = tuple(resolve_cipher(n) for n in _only.split(","))
else:
    CIPHERS = registered_ciphers()

#: deterministic battery key per cipher (clipped to the key port width)
BATTERY_KEY = 0x2B7E151628AED2A6ABF7158809CF4F3C


def battery_key(spec) -> int:
    return BATTERY_KEY & ((1 << spec.key_bits) - 1)


def build_bare(spec):
    """An unprotected single-core circuit for ``spec`` (no countermeasure).

    This is the cipher-agnostic equivalent of ``build_present_circuit``:
    a plain S-box, the spec's own ``build_core``, and the ciphertext port.
    """
    builder = CircuitBuilder(f"{spec.name}_bare")
    pt = builder.input("plaintext", spec.block_bits)
    key = builder.input("key", spec.key_bits)
    sbox_circuit = synthesize_sbox(
        spec.sbox.truthtable(), strategy="shannon", name=f"{spec.name}_sbox"
    )
    core = spec.build_core(builder, pt, key, sbox_circuit=sbox_circuit, tag="u")
    builder.output("ciphertext", core.ciphertext)
    builder.circuit.validate()
    return builder.circuit, core


def run_bare(circuit, spec, keys: list[int], pts: list[int]) -> list[int]:
    """Encrypt a batch on an unprotected circuit; returns ciphertext ints."""
    sim = Simulator(circuit, len(pts))
    sim.set_input_ints("plaintext", pts)
    sim.set_input_ints("key", keys)
    sim.run(spec.rounds)
    sim.eval_comb()
    return sim.get_output_ints("ciphertext")


@pytest.fixture(scope="session", params=CIPHERS)
def cipher_name(request) -> str:
    return request.param


@pytest.fixture(scope="session")
def entry(cipher_name):
    return get_entry(cipher_name)


@pytest.fixture(scope="session")
def fast_spec(entry):
    """The battery spec: reduced-round by default, full-round in nightly."""
    return entry.make(rounds=None if FULL_ROUNDS else entry.fast_rounds)


@pytest.fixture(scope="session")
def protected(fast_spec):
    """The paper's three-in-one design over the battery spec."""
    from repro.countermeasures import build_three_in_one

    return build_three_in_one(fast_spec)
