"""The telemetry subsystem: tracing, metrics, progress, stats.

Covers the contracts the rest of the repo leans on: span nesting and
JSONL round-trips, cross-process metrics aggregation through the sharded
executor, progress/ETA math, the zero-overhead disabled path (structural:
the shared no-op span, no sink writes), and the ``repro stats``
subcommand on a recorded trace.
"""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.cli import main
from repro.faults import RNG_BLOCK, FaultSpec, FaultType, run_campaign
from repro.faults.models import sbox_input_net
from repro.telemetry import (
    MetricsRegistry,
    ProgressTracker,
    eta_seconds,
    live_progress,
    metrics,
    render_prometheus,
    run_manifest,
    trace,
)
from repro.telemetry.manifest import MANIFEST_SCHEMA_VERSION, cpu_model
from repro.telemetry.stats import (
    TraceError,
    analyze_request,
    load_trace,
    render_analysis,
    render_stats,
    request_ids,
    summarize,
)
from repro.telemetry.trace import NULL_SPAN
from tests.conftest import TEST_KEY80


@pytest.fixture(autouse=True)
def _tracer_hygiene():
    """Every test starts and ends with a disabled, empty tracer."""
    trace.close()
    yield
    trace.close()


# ------------------------------------------------------------------ tracing


class TestTracing:
    def test_disabled_tracer_hands_out_the_shared_null_span(self):
        assert not trace.enabled
        assert trace.span("x") is NULL_SPAN
        assert trace.span("y", attr=1) is NULL_SPAN
        with trace.span("z") as s:
            assert s is NULL_SPAN
            s.set(more=2)  # chainable no-op
        trace.event("nothing", happens=True)  # must not raise

    def test_span_nesting_links_parent_ids(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace.configure(path)
        with trace.span("outer", layer=1):
            with trace.span("inner", layer=2):
                pass
            with trace.span("inner", layer=2):
                pass
        trace.close()

        records = load_trace(path)
        spans = [r for r in records if r["type"] == "span"]
        # children close before the parent, so outer is written last
        assert [s["name"] for s in spans] == ["inner", "inner", "outer"]
        outer = spans[-1]
        assert outer["parent_id"] is None
        for inner in spans[:2]:
            assert inner["parent_id"] == outer["span_id"]
        assert len({s["span_id"] for s in spans}) == 3

    def test_span_records_duration_and_error(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace.configure(path)
        with pytest.raises(ValueError):
            with trace.span("doomed", n=3):
                raise ValueError("boom")
        trace.close()
        (span,) = [r for r in load_trace(path) if r["type"] == "span"]
        assert span["dur_s"] >= 0.0
        assert span["error"] == "ValueError"
        assert span["attrs"] == {"n": 3}

    def test_manifest_is_first_record_and_round_trips(self, tmp_path):
        path = tmp_path / "t.jsonl"
        manifest = run_manifest(kind="test", command="certify")
        trace.configure(path, manifest=manifest)
        trace.event("tick", i=1)
        trace.close(final_metrics={"counters": {"c": 2}})

        records = load_trace(path)
        assert records[0]["type"] == "manifest"
        assert records[0]["schema"] == MANIFEST_SCHEMA_VERSION
        assert records[0]["command"] == "certify"
        assert records[0]["python"]  # environment fields present
        assert records[-1] == {"type": "metrics", "metrics": {"counters": {"c": 2}}}

    def test_capture_buffers_and_ingest_replays(self, tmp_path):
        with trace.capture() as records:
            with trace.span("worker.unit", shard=4):
                trace.event("inside", ok=True)
        assert not trace.enabled  # capture restored the disabled state
        assert [r["type"] for r in records] == ["event", "span"]

        path = tmp_path / "t.jsonl"
        trace.configure(path)
        trace.ingest(records)
        trace.close()
        assert [r["type"] for r in load_trace(path)] == ["event", "span"]

    def test_unserialisable_attrs_are_coerced_not_fatal(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace.configure(path)
        with trace.span("odd", obj=object(), arr=(1, 2), nested={"k": object()}):
            pass
        trace.close()
        (span,) = load_trace(path)
        assert isinstance(span["attrs"]["obj"], str)
        assert span["attrs"]["arr"] == [1, 2]
        assert isinstance(span["attrs"]["nested"]["k"], str)

    def test_load_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span"}\nnot json\n')
        with pytest.raises(TraceError):
            load_trace(path)
        with pytest.raises(TraceError):
            load_trace(tmp_path / "missing.jsonl")


# -------------------------------------------------------- request correlation


class TestRequestContext:
    def test_bind_works_while_disabled_and_restores(self):
        assert not trace.enabled
        assert trace.context() == {}
        with trace.bind(request_id="req-1", tenant="a"):
            assert trace.context() == {"request_id": "req-1", "tenant": "a"}
            with trace.bind(request_id="req-2"):
                assert trace.context()["request_id"] == "req-2"
            assert trace.context()["request_id"] == "req-1"
        assert trace.context() == {}

    def test_bind_filters_none_values(self):
        with trace.bind(request_id=None):
            assert trace.context() == {}

    def test_bound_context_stamps_all_record_types(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace.configure(path)
        with trace.bind(request_id="req-7"):
            with trace.span("work"):
                trace.event("tick")
        trace.close()
        records = load_trace(path)
        stamped = [r for r in records if r["type"] in ("span", "event")]
        assert stamped and all(r["request_id"] == "req-7" for r in stamped)

    def test_explicit_attr_wins_over_thread_binding(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace.configure(path)
        with trace.bind(request_id="ambient"):
            with trace.span("campaign", request_id="req-42"):
                pass
        trace.close()
        (span,) = load_trace(path)
        assert span["request_id"] == "req-42"

    def test_capture_inside_bind_ships_stamped_records(self, tmp_path):
        """The worker-process pattern: bind ctx, capture, ingest at home."""
        with trace.bind(request_id="req-9"):
            with trace.capture() as records:
                with trace.span("executor.shard", shard=0):
                    pass
        path = tmp_path / "t.jsonl"
        trace.configure(path)
        trace.ingest(records)
        trace.close()
        (span,) = load_trace(path)
        assert span["request_id"] == "req-9"

    def test_adopt_parents_spans_across_threads(self, tmp_path):
        import threading

        path = tmp_path / "t.jsonl"
        trace.configure(path)
        with trace.span("service.campaign") as outer:
            parent_id = outer.span_id

            def worker():
                with trace.adopt(parent_id):
                    with trace.span("certify.sweep"):
                        pass

            t = threading.Thread(target=worker)
            t.start()
            t.join()
        trace.close()
        spans = {r["name"]: r for r in load_trace(path)}
        assert spans["certify.sweep"]["parent_id"] == parent_id
        assert spans["service.campaign"]["parent_id"] is None

    def test_adopt_none_is_noop(self):
        with trace.adopt(None):
            pass  # disabled tracer path: must not raise


# ------------------------------------------------------------------ metrics


class TestMetrics:
    def test_counters_gauges_histograms_snapshot(self):
        reg = MetricsRegistry()
        reg.inc("shards", 2)
        reg.inc("shards")
        reg.set("rate", 12.5)
        reg.observe("dt", 0.25)
        reg.observe("dt", 0.75)
        snap = reg.snapshot()
        assert snap["counters"]["shards"] == 3
        assert snap["gauges"]["rate"] == 12.5
        hist = snap["histograms"]["dt"]
        assert hist["count"] == 2
        assert hist["total"] == pytest.approx(1.0)
        assert hist["min"] == 0.25 and hist["max"] == 0.75

    def test_merge_folds_worker_snapshots(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.inc("shards", 1)
        parent.observe("dt", 0.5)
        worker.inc("shards", 4)
        worker.set("rate", 99.0)
        worker.observe("dt", 0.1)
        worker.observe("dt", 0.9)
        parent.merge(worker.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["shards"] == 5
        assert snap["gauges"]["rate"] == 99.0
        assert snap["histograms"]["dt"] == {
            "count": 3,
            "total": pytest.approx(1.5),
            "min": 0.1,
            "max": 0.9,
        }
        assert parent.histogram("dt").mean == pytest.approx(0.5)

    def test_merge_empty_snapshot_is_identity(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.merge({})
        reg.merge({"histograms": {"h": {"count": 0}}})
        assert reg.snapshot()["counters"] == {"c": 1}
        assert reg.snapshot()["histograms"]["h"]["count"] == 0

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.set("b", 1)
        reg.observe("c", 1)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_render_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.inc("service.requests", 5)
        reg.set("executor.runs_per_second", 123.5)
        reg.observe("shard.dur_s", 0.25)
        reg.observe("shard.dur_s", 0.75)
        text = render_prometheus(reg.snapshot())
        assert text.endswith("\n")
        assert "# TYPE service_requests_total counter" in text
        assert "service_requests_total 5" in text
        assert "# TYPE executor_runs_per_second gauge" in text
        assert "executor_runs_per_second 123.5" in text
        assert "shard_dur_s_count 2" in text
        assert "shard_dur_s_sum 1.0" in text
        assert "shard_dur_s_min 0.25" in text
        assert "shard_dur_s_max 0.75" in text
        # every sample line uses a sanitized name
        for line in text.splitlines():
            name = line.split(" ")[2 if line.startswith("#") else 0]
            assert all(c.isalnum() or c in "_:" for c in name), line

    def test_render_prometheus_empty_snapshot(self):
        assert render_prometheus({}) == "\n"


# ------------------------------------------------- cross-process aggregation


@pytest.mark.slow
def test_pool_campaign_aggregates_worker_telemetry(
    naive_design, present_spec, tmp_path
):
    """A jobs=2 campaign must yield one coherent trace: shard spans from
    worker pids, progress events, and merged executor counters."""
    net = sbox_input_net(naive_design.cores[0], 7, 1)
    fault = FaultSpec.at(net, FaultType.STUCK_AT_0, present_spec.rounds - 2)
    path = tmp_path / "campaign.jsonl"
    metrics.reset()
    trace.configure(path, manifest=run_manifest(kind="test"))
    try:
        run_campaign(
            naive_design, [fault], n_runs=2 * RNG_BLOCK, key=TEST_KEY80,
            seed=7, jobs=2, shard_runs=RNG_BLOCK,
        )
    finally:
        trace.close(final_metrics=metrics.snapshot())

    records = load_trace(path)
    shard_spans = [
        r for r in records if r["type"] == "span" and r["name"] == "executor.shard"
    ]
    assert len(shard_spans) == 2
    assert all(s["pid"] != os.getpid() for s in shard_spans), (
        "shard spans must come from the worker processes"
    )
    progress = [
        r for r in records if r["type"] == "event" and r["name"] == "progress"
    ]
    assert progress, "progress events must flow into the trace"
    last = progress[-1]["attrs"]
    assert last["done"] == last["total"] == 2 * RNG_BLOCK
    assert last["eta_s"] == 0.0

    (final,) = [r for r in records if r["type"] == "metrics"]
    counters = final["metrics"]["counters"]
    assert counters["executor.shards_completed"] == 2
    assert final["metrics"]["gauges"]["executor.runs_per_second"] > 0

    summary = summarize(records)
    assert len(summary["pids"]) >= 3  # parent + two workers
    assert summary["spans"]["executor.shard"]["count"] == 2
    assert summary["retries"] == 0 and summary["failed_shards"] == 0


# ----------------------------------------------------------------- progress


class TestProgress:
    def test_eta_math(self):
        assert eta_seconds(0, 100, 5.0) is None  # nothing done: unknowable
        assert eta_seconds(25, 100, 30.0) == pytest.approx(90.0)
        assert eta_seconds(100, 100, 30.0) == 0.0
        assert eta_seconds(150, 100, 30.0) == 0.0  # overshoot clamps
        assert eta_seconds(10, 0, 5.0) is None  # no known total

    def test_advance_snapshots_and_item_counting(self):
        tracker = ProgressTracker(
            100, label="sweep", total_items=4, enabled=False
        )
        snap = tracker.advance(25, shard=0)
        assert snap["done"] == 25 and snap["total"] == 100
        assert snap["items_done"] == 1 and snap["items_total"] == 4
        assert snap["rate"] >= 0
        snap = tracker.advance(75, items=3)
        assert snap["done"] == 100 and snap["items_done"] == 4
        assert snap["eta_s"] == 0.0

    def test_render_writes_single_line_with_cr(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROGRESS", raising=False)
        stream = io.StringIO()
        tracker = ProgressTracker(
            10, label="job", unit="units", stream=stream, enabled=True,
            min_interval=0.0,
        )
        tracker.advance(5)
        out = stream.getvalue()
        assert out.startswith("\r") and "\n" not in out
        assert "job: 5/10 units" in out
        tracker.advance(5)
        tracker.finish()
        assert stream.getvalue().endswith("\n")

    def test_env_var_gates_rendering(self, monkeypatch):
        stream = io.StringIO()  # not a TTY
        monkeypatch.setenv("REPRO_PROGRESS", "0")
        assert ProgressTracker(1, stream=stream).render is False
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        assert ProgressTracker(1, stream=stream).render is True
        monkeypatch.delenv("REPRO_PROGRESS")
        assert ProgressTracker(1, stream=stream).render is False  # no TTY

    def test_disabled_tracker_never_touches_the_stream(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "0")
        stream = io.StringIO()
        tracker = ProgressTracker(10, stream=stream)
        tracker.advance(10)
        tracker.finish()
        assert stream.getvalue() == ""

    def test_forced_rendering_off_tty_is_plain_single_shot(self, monkeypatch):
        """REPRO_PROGRESS=1 into a pipe must not flood CI logs with \\r."""
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        monkeypatch.delenv("NO_COLOR", raising=False)
        stream = io.StringIO()  # not a TTY
        tracker = ProgressTracker(10, label="job", stream=stream, min_interval=0.0)
        assert tracker.render is True and tracker.live is False
        tracker.advance(5)
        tracker.advance(5)
        assert stream.getvalue() == ""  # nothing until finish
        tracker.finish()
        out = stream.getvalue()
        assert "\r" not in out
        assert out.count("\n") == 1
        assert "job: 10/10" in out

    def test_no_color_downgrades_a_tty_to_plain(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROGRESS", raising=False)
        monkeypatch.setenv("NO_COLOR", "1")

        class FakeTty(io.StringIO):
            def isatty(self):
                return True

        stream = FakeTty()
        tracker = ProgressTracker(4, label="job", stream=stream, min_interval=0.0)
        assert tracker.render is True and tracker.live is False
        tracker.advance(4)
        tracker.finish()
        out = stream.getvalue()
        assert "\r" not in out and "job: 4/4" in out

    def test_live_board_publishes_under_bound_request_id(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "0")
        with trace.bind(request_id="req-55"):
            tracker = ProgressTracker(100, label="certify", total_items=4)
            tracker.advance(25)
        snap = live_progress("req-55")
        assert snap and snap["done"] == 25 and snap["total"] == 100
        assert "req-55" in live_progress()
        tracker.finish()
        assert live_progress("req-55") is None  # cleared on finish

    def test_no_board_entry_without_request_context(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "0")
        before = set(live_progress())
        ProgressTracker(10).advance(5)
        assert set(live_progress()) == before


# ----------------------------------------------------------------- manifest


def test_run_manifest_fields():
    doc = run_manifest(backend="levelized", jobs=4, seed=11)
    assert doc["schema"] == MANIFEST_SCHEMA_VERSION
    assert doc["backend"] == "levelized" and doc["jobs"] == 4 and doc["seed"] == 11
    for field in ("timestamp", "python", "numpy", "platform", "pid"):
        assert doc[field], field
    assert json.loads(json.dumps(doc)) == doc  # JSON-safe


def test_run_manifest_identifies_the_host():
    """Bench-history series are keyed per machine: hostname + CPU model."""
    doc = run_manifest()
    assert "hostname" in doc and "cpu" in doc
    assert doc["hostname"]  # platform.node() is non-empty on real systems
    model = cpu_model()
    assert doc["cpu"] == model
    if model is not None:
        assert isinstance(model, str) and model.strip() == model
    assert json.loads(json.dumps(doc)) == doc  # round-trips through JSON


# -------------------------------------------------------------- repro stats


@pytest.fixture
def recorded_trace(tmp_path):
    """A small but representative trace, recorded through the real tracer."""
    path = tmp_path / "run.jsonl"
    trace.configure(
        path, manifest=run_manifest(command="certify", backend="levelized", jobs=2)
    )
    with trace.span("certify.sweep", shards=2):
        for shard in range(2):
            with trace.span("executor.shard", shard=shard):
                pass
        trace.event(
            "shard.retry", shard=1, attempt=1, error="OSError: transient"
        )
        trace.event(
            "progress",
            label="certify", done=128, total=128, rate=512.0, eta_s=0.0,
        )
    trace.close(
        final_metrics={
            "counters": {"executor.shards_retried": 1},
            "gauges": {"executor.runs_per_second": 512.0},
            "histograms": {},
        }
    )
    return path


class TestStats:
    def test_summarize_aggregates_spans_and_retries(self, recorded_trace):
        summary = summarize(load_trace(recorded_trace))
        assert summary["manifest"]["command"] == "certify"
        assert summary["spans"]["executor.shard"]["count"] == 2
        assert summary["spans"]["certify.sweep"]["count"] == 1
        # sweep wraps the shards, so it dominates cumulative time
        assert next(iter(summary["spans"])) == "certify.sweep"
        assert summary["retries"] == 1
        assert summary["failed_shards"] == 0
        assert summary["progress"]["certify"]["done"] == 128

    def test_render_stats_digest(self, recorded_trace):
        text = render_stats(summarize(load_trace(recorded_trace)))
        assert "command=certify" in text
        assert "certify.sweep" in text
        assert "1 retried" in text
        assert "128/128 units" in text
        assert "executor.shards_retried = 1" in text

    def test_cli_stats_subcommand(self, recorded_trace, capsys):
        assert main(["stats", str(recorded_trace)]) == 0
        out = capsys.readouterr().out
        assert "top spans by cumulative wall time" in out
        assert "executor.shard" in out

    def test_cli_stats_on_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.jsonl")]) == 1
        assert "cannot read trace" in capsys.readouterr().err

    def test_cli_trace_flag_records_a_parseable_trace(self, tmp_path, capsys):
        path = tmp_path / "cli.jsonl"
        assert main(["table2", "--trace", str(path)]) == 0
        records = load_trace(path)
        assert records[0]["type"] == "manifest"
        assert records[0]["command"] == "table2"
        assert records[-1]["type"] == "metrics"
        assert not trace.enabled  # main() closed the tracer

    def test_cli_runs_are_stamped_with_a_synthetic_request_id(self, tmp_path, capsys):
        path = tmp_path / "cli.jsonl"
        assert main(["fig4", "--runs", "128", "--trace", str(path)]) == 0
        records = load_trace(path)
        spans = [r for r in records if r["type"] == "span"]
        assert spans
        rid = spans[0]["request_id"]
        assert rid.startswith("cli-") and rid.endswith("-fig4")
        assert all(s["request_id"] == rid for s in spans)
        # ...which makes any CLI trace analyzable by request id
        assert main(["trace", "analyze", str(path)]) == 0
        assert f"request {rid}" in capsys.readouterr().out


# ------------------------------------------------------- repro trace analyze


@pytest.fixture
def correlated_trace(tmp_path):
    """Two interleaved requests recorded through the real tracer, with the
    daemon's cross-thread adopt pattern for the first."""
    import threading

    path = tmp_path / "svc.jsonl"
    trace.configure(path, manifest=run_manifest(kind="test"))
    with trace.span("service.campaign", request_id="req-000001") as campaign:
        parent = campaign.span_id

        def campaign_thread():
            with trace.bind(request_id="req-000001"), trace.adopt(parent):
                with trace.span("certify.sweep"):
                    for shard in range(3):
                        with trace.span(
                            "executor.shard",
                            shard=shard, lo=shard * 8, hi=shard * 8 + 8, attempt=1,
                        ):
                            pass
                trace.event(
                    "progress", label="certify", done=24, total=24, rate=80.0
                )

        t = threading.Thread(target=campaign_thread)
        t.start()
        t.join()
    with trace.bind(request_id="req-000002"):
        with trace.span("service.campaign"):
            pass
    trace.close()
    return path


class TestTraceAnalyze:
    def test_request_ids_indexes_the_trace(self, correlated_trace):
        ids = request_ids(load_trace(correlated_trace))
        assert set(ids) == {"req-000001", "req-000002"}
        assert ids["req-000001"]["spans"] == 5
        assert "executor.shard" in ids["req-000001"]["names"]

    def test_analyze_reconstructs_one_tree_with_critical_path(
        self, correlated_trace
    ):
        analysis = analyze_request(load_trace(correlated_trace), "req-000001")
        assert analysis["spans"] == 5
        # one root despite the thread hop: adopt() kept the tree connected
        assert [r["name"] for r in analysis["roots"]] == ["service.campaign"]
        path_names = [step["name"] for step in analysis["critical_path"]]
        assert path_names[:3] == [
            "service.campaign", "certify.sweep", "executor.shard",
        ]
        assert analysis["phases"]["executor.shard"]["count"] == 3
        durations = [row["dur_s"] for row in analysis["shards"]]
        assert durations == sorted(durations, reverse=True)  # slowest first
        assert {row["shard"] for row in analysis["shards"]} == {0, 1, 2}
        assert analysis["progress"]["done"] == 24

    def test_analyze_isolates_requests(self, correlated_trace):
        analysis = analyze_request(load_trace(correlated_trace), "req-000002")
        assert analysis["spans"] == 1
        assert analysis["shards"] == []

    def test_analyze_unknown_request_raises(self, correlated_trace):
        with pytest.raises(TraceError):
            analyze_request(load_trace(correlated_trace), "req-999999")

    def test_render_analysis_report(self, correlated_trace):
        analysis = analyze_request(load_trace(correlated_trace), "req-000001")
        text = render_analysis(analysis)
        assert "request req-000001: 5 spans" in text
        assert "critical path: service.campaign" in text
        assert "slowest shards (of 3):" in text
        assert "per-phase wall time:" in text

    def test_cli_analyze_requires_disambiguation(self, correlated_trace, capsys):
        assert main(["trace", "analyze", str(correlated_trace)]) == 1
        out = capsys.readouterr().out
        assert "req-000001" in out and "req-000002" in out

    def test_cli_analyze_by_request_id(self, correlated_trace, capsys):
        assert main(
            ["trace", "analyze", str(correlated_trace), "--request", "req-000001"]
        ) == 0
        out = capsys.readouterr().out
        assert "critical path" in out and "executor.shard" in out

    def test_cli_analyze_autoselects_a_single_request(self, tmp_path, capsys):
        path = tmp_path / "one.jsonl"
        trace.configure(path)
        with trace.bind(request_id="req-000009"):
            with trace.span("service.campaign"):
                pass
        trace.close()
        assert main(["trace", "analyze", str(path)]) == 0
        assert "request req-000009" in capsys.readouterr().out

    def test_cli_analyze_missing_file(self, tmp_path, capsys):
        assert main(["trace", "analyze", str(tmp_path / "no.jsonl")]) == 1
        assert "cannot read trace" in capsys.readouterr().err
