"""The certification daemon: dedupe, backpressure, breaker, drain, chaos.

Robustness is the headline contract of :mod:`repro.service` (ISSUE 8):
these tests hold the daemon to the same standard ``tests/test_chaos.py``
holds the executor — identical concurrent requests cost one simulation,
crash debris resumes to bit-identical certificates, overload sheds with a
structured retry, deadlines degrade instead of dropping, a sick backend
lane is quarantined and routed around, and SIGTERM-style drains always
terminate with a persisted store index.

Real campaigns use a tiny reduced-round PRESENT sweep (~0.3 s); the
scheduling-logic tests (admission, dedupe, breaker, drain) inject a stub
``certify`` so they are fast and fully deterministic.
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.certify import Certificate, CertifyConfig, certify_design
from repro.resilience import CHAOS_ENV, ChaosFault, ChaosSpec, chaos
from repro.resilience.chaos import _fires
from repro.service import (
    CertificationService,
    CertifyRequest,
    CircuitBreaker,
    ResultStore,
    ServiceClient,
    ServiceConfig,
    build_design,
    request_key,
)

KEYHEX = "0x0123456789abcdef0123"

#: the tiny request every end-to-end test reuses (~0.3 s per campaign)
TINY = {
    "scheme": "three-in-one",
    "rounds": 2,
    "budget": 64,
    "runs_per_location": 8,
    "models": ["coupled"],
    "seed": 4,
    "key": KEYHEX,
}


@pytest.fixture(autouse=True)
def _pristine_chaos(monkeypatch):
    monkeypatch.delenv(CHAOS_ENV, raising=False)
    chaos.disable()
    yield
    chaos.disable()


@pytest.fixture(scope="module")
def tiny_design():
    return build_design("three-in-one", variant="prime", rounds=2)


@pytest.fixture(scope="module")
def direct_cert(tiny_design):
    """Ground truth: what certify_design says about TINY, daemon-free."""
    return certify_design(
        tiny_design,
        key=int(KEYHEX, 0),
        config=CertifyConfig(
            budget=64, runs_per_location=8, models=("coupled",), seed=4
        ),
    )


@contextlib.contextmanager
def running(store_dir, *, certify=None, **cfg):
    """A live daemon on an ephemeral port, drained on exit."""
    cfg.setdefault("concurrency", 2)
    service = CertificationService(
        ServiceConfig(store_dir=store_dir, port=0, **cfg), certify=certify
    )
    thread = threading.Thread(target=service.serve, daemon=True)
    thread.start()
    assert service.ready.wait(10), "daemon failed to start"
    try:
        yield service, ServiceClient(f"http://127.0.0.1:{service.port}")
    finally:
        service.request_shutdown()
        thread.join(30)
        assert not thread.is_alive(), "daemon failed to drain"


def _wait(predicate, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ----------------------------------------------------------- content address


class TestRequestKey:
    def test_defaults_normalise_to_the_same_key(self, tiny_design):
        from repro.certify import DEFAULT_MODELS

        spelled_out = CertifyRequest.from_dict(
            {
                **TINY,
                "models": None,
                "backend": "levelized",
                "key": str(int(KEYHEX, 0)),
            }
        )
        defaulted = CertifyRequest.from_dict({**TINY, "models": None})
        assert request_key(spelled_out, tiny_design) == request_key(
            defaulted, tiny_design
        )
        assert defaulted.normalized().models == DEFAULT_MODELS

    def test_every_identity_field_rekeys(self, tiny_design):
        base = CertifyRequest.from_dict(TINY)
        k0 = request_key(base, tiny_design)
        for change in (
            {"seed": 5},
            {"budget": 128},
            {"runs_per_location": 16},
            {"models": ["single"]},
            {"backend": "compiled"},
            {"key": "0x1"},
        ):
            other = CertifyRequest.from_dict({**TINY, **change})
            assert request_key(other, tiny_design) != k0, change

    def test_deadline_is_not_identity(self, tiny_design):
        base = CertifyRequest.from_dict(TINY)
        dead = CertifyRequest.from_dict({**TINY, "deadline_s": 0.5})
        assert request_key(base, tiny_design) == request_key(dead, tiny_design)

    def test_netlist_hash_rekeys_on_structure(self):
        r2 = CertifyRequest.from_dict(TINY)
        r3 = CertifyRequest.from_dict({**TINY, "rounds": 3})
        assert request_key(r2) != request_key(r3)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown request field"):
            CertifyRequest.from_dict({**TINY, "bananas": 1})
        with pytest.raises(ValueError, match="unknown scheme"):
            CertifyRequest.from_dict({**TINY, "scheme": "rot13"})
        with pytest.raises(ValueError):
            CertifyRequest.from_dict({**TINY, "key": "not-a-number"})
        with pytest.raises(ValueError, match="unknown simulator backend"):
            CertifyRequest.from_dict({**TINY, "backend": "turbo"}).normalized()


# -------------------------------------------------------------------- store


class TestResultStore:
    def test_put_get_roundtrip_bit_identical(self, tmp_path, direct_cert):
        store = ResultStore(tmp_path)
        store.put("k" * 64, direct_cert)
        loaded = store.get("k" * 64)
        assert loaded.render(include_timing=False) == direct_cert.render(
            include_timing=False
        )

    def test_refuses_to_cache_degraded(self, tmp_path, tiny_design):
        degraded = certify_design(
            tiny_design,
            key=int(KEYHEX, 0),
            config=CertifyConfig(
                budget=64, runs_per_location=8, models=("coupled",),
                seed=4, wall_budget=0.0,
            ),
        )
        assert degraded.degraded
        with pytest.raises(ValueError, match="degraded"):
            ResultStore(tmp_path).put("k" * 64, degraded)

    def test_torn_index_rebuilds_from_certs(self, tmp_path, direct_cert):
        store = ResultStore(tmp_path)
        store.put("a" * 64, direct_cert)
        # kill -9 mid-index-write: the ledger is torn, the cert is intact
        (tmp_path / "index.json").write_text('{"version": 1, "entr')
        recovered = ResultStore(tmp_path)
        assert "a" * 64 in recovered
        assert recovered.get("a" * 64) is not None

    def test_corrupt_certificate_evicted_not_served(self, tmp_path, direct_cert):
        store = ResultStore(tmp_path)
        store.put("a" * 64, direct_cert)
        path = store.cert_path("a" * 64)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x40
        path.write_bytes(bytes(data))
        assert store.get("a" * 64) is None  # never serve unverifiable bits
        assert "a" * 64 not in store.entries
        assert not path.exists()


# ------------------------------------------------------------------ breaker


class TestCircuitBreaker:
    def test_opens_at_threshold_and_half_opens_after_cooldown(self):
        now = [0.0]
        breaker = CircuitBreaker(
            threshold=3, cooldown_s=10.0, clock=lambda: now[0]
        )
        for _ in range(2):
            breaker.record_failure("present", "compiled", "transient")
            assert breaker.allow("present", "compiled")
        breaker.record_failure("present", "compiled", "crash")
        assert breaker.is_open("present", "compiled")
        assert not breaker.allow("present", "compiled")
        assert breaker.allow("present", "levelized")  # lanes are independent

        now[0] = 10.0  # cooldown elapsed: exactly one half-open probe
        assert breaker.allow("present", "compiled")
        assert not breaker.allow("present", "compiled")  # probe already out

        breaker.record_failure("present", "compiled", "transient")  # probe dies
        assert not breaker.allow("present", "compiled")  # re-opened
        now[0] = 20.0
        assert breaker.allow("present", "compiled")
        breaker.record_success("present", "compiled")  # probe heals the lane
        assert breaker.allow("present", "compiled")
        assert not breaker.is_open("present", "compiled")
        kinds = breaker.snapshot()["present/compiled"]["error_kinds"]
        assert kinds == {"transient": 3, "crash": 1}


# --------------------------------------------------- end to end (real sweeps)


class TestDaemonEndToEnd:
    def test_submit_matches_direct_certify_and_verifies(
        self, tmp_path, direct_cert, capsys
    ):
        from repro.cli import main

        with running(tmp_path / "store") as (service, client):
            status, doc = client.submit(TINY)
        assert status == 200 and doc["status"] == "done"
        assert doc["cached"] is None and doc["backend"] == "levelized"
        served = Certificate.from_dict(doc["certificate"])
        assert served.render(include_timing=False) == direct_cert.render(
            include_timing=False
        )
        # the served document round-trips through `repro verify`
        path = tmp_path / "served.json"
        served.save(path)
        assert main(["verify", str(path)]) == 0
        capsys.readouterr()

    def test_store_dedupe_across_restarts(self, tmp_path):
        store_dir = tmp_path / "store"
        with running(store_dir) as (service, client):
            status, first = client.submit(TINY)
            assert status == 200
            status, second = client.submit(TINY)
            assert status == 200 and second["cached"] == "store"
            assert service.counters["campaigns_started"] == 1
            assert service.counters["dedupe_hits_store"] == 1
            fetched = client.certificate(first["key"])
            assert fetched is not None and fetched["cached"] == "store"
            assert client.certificate("0" * 64) is None
        # a brand-new daemon on the same store serves from disk immediately
        with running(store_dir) as (service, client):
            status, again = client.submit(TINY)
            assert status == 200 and again["cached"] == "store"
            assert service.counters["campaigns_started"] == 0
            c1 = {k: v for k, v in first["certificate"].items() if k != "timing"}
            c2 = {k: v for k, v in again["certificate"].items() if k != "timing"}
            assert c1 == c2

    def test_deadline_degrades_then_resumes_to_full(
        self, tmp_path, direct_cert, capsys
    ):
        """A deadline-truncated request yields a *valid degraded*
        certificate (verify exit 0 + explicit uncovered accounting), leaves
        resumable checkpoints, and is NOT cached; the next identical
        request finishes the sweep and enters the cache."""
        from repro.cli import main

        with running(tmp_path / "store") as (service, client):
            status, doc = client.submit({**TINY, "deadline_s": 0.0})
            assert status == 200 and doc["status"] == "done"
            assert doc["degraded"] and doc["cached"] is None
            degraded = Certificate.from_dict(doc["certificate"])
            cov = degraded.coverage
            assert cov["budget_exhausted"]
            assert cov["locations_uncovered"] == cov["locations_planned"] > 0
            assert sum(cov["uncovered_per_stratum"].values()) == (
                cov["locations_uncovered"]
            )
            path = tmp_path / "degraded.json"
            degraded.save(path)
            assert main(["verify", str(path)]) == 0  # valid, just partial
            assert "DEGRADED" in capsys.readouterr().err
            # accounting survives the disk round-trip
            reloaded = Certificate.load(path)
            assert reloaded.coverage == cov
            assert service.counters["campaigns_degraded"] == 1
            assert service.store.pending_work()  # checkpoints left behind

            # same request, no deadline: resumes the debris, completes,
            # and only now enters the store
            status, full = client.submit(TINY)
            assert status == 200 and not full["degraded"]
            cert = Certificate.from_dict(full["certificate"])
            assert cert.render(include_timing=False) == direct_cert.render(
                include_timing=False
            )
            assert not service.store.pending_work()
            status, cached = client.submit(TINY)
            assert cached["cached"] == "store"


class TestDaemonKill9:
    def _free_port(self):
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            return sock.getsockname()[1]

    def _spawn(self, store, port):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            "src" + os.pathsep + env.get("PYTHONPATH", "")
        ).rstrip(os.pathsep)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--store", str(store), "--port", str(port),
                "--concurrency", "1",
            ],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=120.0)

        def _up():
            try:
                client.health()
                return True
            except Exception:
                return False

        assert _wait(_up, timeout=30), "daemon subprocess never came up"
        return proc, client

    def test_kill9_mid_campaign_restart_serves_bit_identical(self, tmp_path):
        """The acceptance chaos test: `kill -9` the daemon mid-campaign;
        a restart on the same store must serve the same request to a
        bit-identical certificate (resumed from the recovered store)."""
        request = {**TINY, "budget": 1024, "runs_per_location": 16}
        store = tmp_path / "store"
        port = self._free_port()
        proc, client = self._spawn(store, port)
        try:
            submitter = threading.Thread(
                target=self._swallow, args=(client, request)
            )
            submitter.start()
            assert _wait(
                lambda: client.health()["counters"]["campaigns_started"] >= 1,
                timeout=30,
            )
            time.sleep(0.4)  # let it get some work done
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(10)
        submitter.join(10)

        # restart over the debris: torn index / pending work is recovered
        proc, client = self._spawn(store, port)
        try:
            status, doc = client.submit(request)
            assert status == 200 and doc["status"] == "done"
            assert not doc["degraded"]
            served = Certificate.from_dict(doc["certificate"])
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(60) == 0  # graceful drain exits 0

        reference = certify_design(
            build_design("three-in-one", variant="prime", rounds=2),
            key=int(KEYHEX, 0),
            config=CertifyConfig(
                budget=1024, runs_per_location=16, models=("coupled",), seed=4
            ),
        )
        assert served.render(include_timing=False) == reference.render(
            include_timing=False
        )

    @staticmethod
    def _swallow(client, request):
        with contextlib.suppress(Exception):
            client.submit(request)


# ----------------------------------------- scheduling logic (stubbed certify)


def _blocking_certify(release, certificate):
    """A certify stand-in that parks until the test says go."""

    def _certify(design, *, key, config):
        assert release.wait(30), "test never released the campaign"
        return certificate

    return _certify


class TestInflightDedupe:
    def test_identical_concurrent_requests_run_one_campaign(
        self, tmp_path, direct_cert
    ):
        release = threading.Event()
        with running(
            tmp_path / "store",
            certify=_blocking_certify(release, direct_cert),
            concurrency=2,
        ) as (service, client):
            results = {}

            def submit(tag):
                results[tag] = client.submit(TINY)

            first = threading.Thread(target=submit, args=("first",))
            first.start()
            assert _wait(lambda: service.counters["campaigns_started"] == 1)
            second = threading.Thread(target=submit, args=("second",))
            second.start()
            assert _wait(
                lambda: service.counters["dedupe_hits_inflight"] == 1
            )
            release.set()
            first.join(15)
            second.join(15)

            # exactly ONE executor campaign for the identical pair
            assert service.counters["campaigns_started"] == 1
            assert service.counters["dedupe_hits_inflight"] == 1
            statuses = {tag: r[0] for tag, r in results.items()}
            assert statuses == {"first": 200, "second": 200}
            assert results["second"][1]["cached"] == "inflight"
            c1 = results["first"][1]["certificate"]
            c2 = results["second"][1]["certificate"]
            assert {k: v for k, v in c1.items() if k != "timing"} == {
                k: v for k, v in c2.items() if k != "timing"
            }


class TestAdmissionControl:
    def test_overload_sheds_with_retry_after_while_admitted_completes(
        self, tmp_path, direct_cert
    ):
        release = threading.Event()
        with running(
            tmp_path / "store",
            certify=_blocking_certify(release, direct_cert),
            concurrency=1,
            max_queue=1,
        ) as (service, client):
            admitted = {}
            thread = threading.Thread(
                target=lambda: admitted.update(
                    zip(("status", "doc"), client.submit(TINY))
                )
            )
            thread.start()
            assert _wait(lambda: service.health()["in_flight"] == 1)

            # a *distinct* request beyond the bound is shed, structurally
            status, doc, headers = client._request(
                "POST", "/certify", body={**TINY, "seed": 999}
            )
            assert status == 429
            assert doc["status"] == "shed"
            assert doc["retry_after_s"] > 0
            assert "Retry-After" in headers
            assert service.counters["shed"] == 1

            # ...but an identical request is a dedupe hit, not a shed
            # (it costs no simulation, so admission does not apply) — and
            # the admitted campaign still completes fine under overload.
            release.set()
            thread.join(15)
            assert admitted["status"] == 200
            assert admitted["doc"]["status"] == "done"


class TestBreakerRouting:
    def test_sick_backend_lane_opens_and_routes_around(
        self, tmp_path, direct_cert
    ):
        def moody_certify(design, *, key, config):
            if config.backend == "compiled":
                raise RuntimeError("codegen exploded")
            return direct_cert

        with running(
            tmp_path / "store",
            certify=moody_certify,
            breaker_threshold=2,
            breaker_cooldown_s=3600.0,
        ) as (service, client):
            request = {**TINY, "backend": "compiled"}
            for _ in range(2):
                status, doc = client.submit(request)
                assert status == 500
                assert doc["status"] == "error"
                assert doc["error_kind"] == "transient"
            snap = service.breaker.snapshot()["present80/compiled"]
            assert snap["open"] and snap["failures"] == 2

            # third identical request: lane open → rerouted to a healthy
            # bit-exact backend, and the campaign succeeds
            status, doc = client.submit(request)
            assert status == 200 and doc["backend"] == "levelized"
            assert service.counters["rerouted"] == 1

    def test_all_lanes_open_refuses_with_structured_503(self, tmp_path):
        def doomed_certify(design, *, key, config):
            raise RuntimeError("everything is broken")

        with running(
            tmp_path / "store",
            certify=doomed_certify,
            breaker_threshold=1,
            breaker_cooldown_s=3600.0,
        ) as (service, client):
            # each failure opens the lane it ran on; the reroute chain
            # burns through all three backends
            for expected in (500, 500, 500):
                status, doc = client.submit(TINY)
                assert status == expected
            status, doc, headers = client._request(
                "POST", "/certify", body=TINY
            )
            assert status == 503
            assert doc["status"] == "quarantined"
            assert "Retry-After" in headers


class TestDrain:
    def test_drain_stops_admission_finishes_inflight_persists_index(
        self, tmp_path, direct_cert
    ):
        release = threading.Event()
        store_dir = tmp_path / "store"
        with running(
            store_dir,
            certify=_blocking_certify(release, direct_cert),
            concurrency=1,
        ) as (service, client):
            inflight = {}
            thread = threading.Thread(
                target=lambda: inflight.update(
                    zip(("status", "doc"), client.submit(TINY))
                )
            )
            thread.start()
            assert _wait(lambda: service.health()["in_flight"] == 1)

            service.begin_drain()
            status, doc = client.submit({**TINY, "seed": 999})
            assert status == 503 and doc["status"] == "draining"
            assert client.health()["status"] == "draining"

            release.set()
            thread.join(15)
            assert inflight["status"] == 200  # in-flight work finished
        # the context manager completed request_shutdown: daemon exited
        # and the index it persisted is immediately usable
        recovered = ResultStore(store_dir)
        assert len(recovered.entries) == 1


# ------------------------------------------- observability surface (ISSUE 10)


class TestHttpSurface:
    def test_healthz_reports_counters_queue_and_store(self, tmp_path, direct_cert):
        with running(
            tmp_path / "store",
            certify=lambda design, *, key, config: direct_cert,
        ) as (service, client):
            client.submit(TINY)
            health = client.health()
        assert health["status"] == "ok"
        assert health["counters"]["requests"] == 1
        assert health["counters"]["campaigns_started"] == 1
        assert health["store"]["entries"] == 1
        assert "queue_depth" in health and "breaker" in health

    def test_metrics_negotiates_json_and_prometheus(self, tmp_path, direct_cert):
        with running(
            tmp_path / "store",
            certify=lambda design, *, key, config: direct_cert,
        ) as (service, client):
            client.submit(TINY)
            snapshot = client.metrics()
            text = client.metrics_text()
        # default is the JSON snapshot...
        assert snapshot["counters"]["service.requests"] >= 1
        # ...and `Accept: text/plain` switches to Prometheus exposition
        assert "# TYPE service_requests_total counter" in text
        assert re.search(r"^service_requests_total \d+", text, re.M)
        assert text.endswith("\n")

    def test_unknown_paths_are_structured_404s(self, tmp_path):
        with running(tmp_path / "store") as (service, client):
            status, doc, _ = client._request("GET", "/nope")
            assert status == 404 and doc["status"] == "not_found"
            assert doc["path"] == "/nope"
            status, doc, _ = client._request("GET", "/certificate/deadbeef")
            assert status == 404 and doc["status"] == "not_found"
            assert doc["key"] == "deadbeef"

    def test_every_response_carries_the_server_assigned_request_id(
        self, tmp_path, direct_cert
    ):
        with running(
            tmp_path / "store",
            certify=lambda design, *, key, config: direct_cert,
        ) as (service, client):
            status, first = client.submit(TINY)
            assert status == 200 and first["request_id"] == "req-000001"
            status, second = client.submit(TINY)  # store dedupe hit
            assert status == 200 and second["request_id"] == "req-000002"
            status, bad = client.submit({**TINY, "scheme": "rot13"})
            assert status == 400 and bad["request_id"] == "req-000003"

    def test_status_tracks_a_request_through_its_lifecycle(
        self, tmp_path, direct_cert
    ):
        release = threading.Event()
        with running(
            tmp_path / "store",
            certify=_blocking_certify(release, direct_cert),
            concurrency=1,
        ) as (service, client):
            thread = threading.Thread(
                target=self._swallow, args=(client, TINY)
            )
            thread.start()
            assert _wait(lambda: client.health()["in_flight"] == 1)

            st = client.status()
            (item,) = st["requests"]
            assert item["request_id"] == "req-000001"
            assert item["state"] == "running"
            assert item["key"] and item["scheme"] == "three-in-one"
            assert st["recent"] == []

            release.set()
            thread.join(15)
            assert _wait(lambda: not client.status()["requests"])
            st = client.status()
            (done,) = st["recent"]
            assert done["request_id"] == "req-000001"
            assert done["state"] == "done"
            assert done["finished_t"] >= done["queued_t"]

    @staticmethod
    def _swallow(client, request):
        with contextlib.suppress(Exception):
            client.submit(request)


class TestNoWaitSubmit:
    def test_no_wait_shows_live_shard_progress_then_a_certificate(
        self, tmp_path
    ):
        """The acceptance criterion: `submit --no-wait` is acknowledged
        with 202 + request id; while the campaign runs, GET /status shows
        that request with nonzero shard-level progress and an ETA; the
        certificate is then fetchable by key."""
        request = {**TINY, "budget": 4096, "runs_per_location": 8}
        with running(tmp_path / "store", concurrency=1) as (service, client):
            status, doc = client.submit(request, wait=False)
            assert status == 202 and doc["status"] == "accepted"
            rid, key = doc["request_id"], doc["key"]
            assert rid.startswith("req-") and len(key) == 64

            seen = {}

            def midflight():
                for item in client.status()["requests"]:
                    progress = item.get("progress")
                    if (
                        item["request_id"] == rid
                        and progress
                        and 0 < progress["done"] < progress["total"]
                        and progress["eta_s"] is not None
                    ):
                        seen.update(item)
                        return True
                return False

            assert _wait(midflight, timeout=30), "no mid-flight progress seen"
            assert seen["state"] == "running"
            assert 0 < seen["progress"]["pct"] < 100
            assert seen["progress"]["shards_total"] > 1

            assert _wait(
                lambda: client.certificate(key) is not None, timeout=60
            )
            st = client.status()
            assert st["requests"] == []  # registry drained to recents
            assert st["recent"][0]["request_id"] == rid
            assert st["recent"][0]["state"] == "done"
            served = client.certificate(key)
            assert served["cached"] == "store" and not served["degraded"]


# ------------------------------------------------------------- chaos at the
# service sites (the test_chaos.py methodology, extended to the daemon)


class TestServiceChaos:
    def test_new_sites_parse_in_the_mini_language(self):
        spec = ChaosSpec.parse(
            "seed=3;service.request:raise:0.5;service.store:bitrot;"
            "service.drain:delay"
        )
        assert [f.site for f in spec.faults] == [
            "service.request", "service.store", "service.drain",
        ]

    def test_request_chaos_fails_one_request_retry_succeeds(
        self, tmp_path, direct_cert
    ):
        """A transient injected failure on the request path surfaces as a
        structured 500; the client's retry (request index 2) is healthy."""
        fault = ChaosFault("service.request", "raise", 0.5, 0)
        seed = next(
            s for s in range(100)
            if _fires(ChaosSpec(seed=s), fault, 1, 1)
            and not _fires(ChaosSpec(seed=s), fault, 2, 1)
        )
        chaos.configure(ChaosSpec(seed=seed, faults=(fault,)))
        with running(
            tmp_path / "store", certify=lambda design, *, key, config: direct_cert
        ) as (service, client):
            status, doc = client.submit(TINY)
            assert status == 500
            assert "chaos" in doc["error"].lower() or "injected" in doc["error"]
            status, doc = client.submit(TINY)  # the healthy retry path
            assert status == 200 and doc["status"] == "done"

    def test_store_chaos_never_serves_corrupt_certificates(self, tmp_path):
        """Persistent bitrot on every store write: the cache is defeated
        (every hit fails verification and recomputes) but every response
        is still a correct, bit-identical certificate."""
        chaos.configure(
            ChaosSpec(
                seed=1,
                faults=(ChaosFault("service.store", "bitrot", 1.0, 0),),
            )
        )
        with running(tmp_path / "store") as (service, client):
            status1, doc1 = client.submit(TINY)
            status2, doc2 = client.submit(TINY)
            assert status1 == status2 == 200
            assert doc2["cached"] is None  # stored copy failed its checksum
            assert service.counters["campaigns_started"] == 2
            c1 = {k: v for k, v in doc1["certificate"].items() if k != "timing"}
            c2 = {k: v for k, v in doc2["certificate"].items() if k != "timing"}
            assert c1 == c2

    def test_drain_chaos_cannot_prevent_shutdown(self, tmp_path, direct_cert):
        chaos.configure(
            ChaosSpec(
                seed=1, faults=(ChaosFault("service.drain", "raise", 1.0, 0),)
            )
        )
        store_dir = tmp_path / "store"
        with running(
            store_dir, certify=lambda design, *, key, config: direct_cert
        ) as (service, client):
            status, _ = client.submit(TINY)
            assert status == 200
        # the context manager drained despite the injected drain fault;
        # the index was still persisted on the way out
        assert len(ResultStore(store_dir).entries) == 1


# -------------------------------------------------- eager env validation


class TestEagerEnvValidation:
    def test_daemon_refuses_bad_chaos_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "service.request:explode")
        with pytest.raises(ValueError, match="REPRO_CHAOS"):
            CertificationService(ServiceConfig(store_dir=tmp_path))

    def test_daemon_refuses_bad_backend_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BACKEND", "turbo")
        with pytest.raises(ValueError, match="REPRO_SIM_BACKEND"):
            CertificationService(ServiceConfig(store_dir=tmp_path))
