"""Differential testing: the fast kernels vs the reference interpreter.

The per-gate interpreter in :mod:`repro.netlist.simulator` is the
executable definition of the simulation semantics (itself property-tested
against the scalar ``GateType.eval`` in ``test_simulator.py``).  The
levelized opcode-batched kernel *and* the compiled generated-code kernel
must be *bit-exact* against it — for every net, every lane (including the
padding lanes of non-multiple-of-64 batches), every cycle, with and
without faults.  This suite enforces that three-way over hundreds of
seeded random sequential circuits, plus targeted regression tests pinning
the fault-ordering contract all backends share (see the
:class:`~repro.netlist.simulator.Simulator` docstring).  Net state is
compared through :meth:`Simulator.get_nets_packed`, the net-id-addressed
readout every backend must honour regardless of its internal storage
layout (the compiled kernel permutes rows).

The deep sweep (larger circuits, bigger batches, longer runs) is marked
``slow``; the scheduled CI job runs it, the per-PR job skips it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.countermeasures import build_three_in_one
from repro.faults import run_campaign
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSpec, FaultType, last_round, sbox_input_net
from repro.netlist.circuit import Circuit
from repro.netlist.gates import COMBINATIONAL_TYPES, GateType
from repro.netlist.simulator import BACKENDS, Simulator

COMB_TYPES = sorted(COMBINATIONAL_TYPES, key=lambda t: t.value)

#: batch sizes stressing word packing: 1 lane, partial word, exact words,
#: one-bit spill, multi-word with slack
BATCHES = [1, 3, 37, 64, 65, 100, 128, 200]

ALL_ONES = np.uint64(0xFFFF_FFFF_FFFF_FFFF)


def random_sequential_circuit(rng: np.random.Generator, n_gates: int):
    """A random DAG over all 9 combinational cell types plus DFFs.

    DFF output nets are allocated up-front and offered as gate inputs, so
    the generated circuits contain real sequential feedback (state that
    depends on its own previous value), not just feed-forward pipelines.
    """
    c = Circuit("rand")
    width = int(rng.integers(1, 9))
    nets = list(c.add_input("x", width))
    n_dffs = int(rng.integers(0, 5))
    dff_q = [c.new_net() for _ in range(n_dffs)]
    nets.extend(dff_q)
    if rng.random() < 0.5:
        nets.append(c.const(0))
    if rng.random() < 0.5:
        nets.append(c.const(1))
    for _ in range(n_gates):
        gtype = COMB_TYPES[rng.integers(len(COMB_TYPES))]
        ins = tuple(nets[rng.integers(len(nets))] for _ in range(gtype.arity))
        nets.append(c.add_gate(gtype, ins))
    for q in dff_q:
        d = nets[rng.integers(len(nets))]
        c.add_gate(GateType.DFF, (d,), out=q, init=int(rng.integers(2)))
    outs = [nets[i] for i in rng.choice(len(nets), size=min(6, len(nets)), replace=False)]
    c.set_output("y", outs)
    return c


class RandomFaults:
    """A FaultProvider drawing arbitrary per-cycle transforms.

    Covers the stuck-at / flip shapes the injector produces *and* free-form
    transforms (lane-masked XORs), on arbitrary nets — gate outputs, MUX
    select lines, DFF D-pin drivers and Q outputs, primary inputs.
    """

    def __init__(self, rng: np.random.Generator, circuit: Circuit, n_words: int, cycles: int):
        self.by_cycle: dict[int, dict] = {}
        n_faults = int(rng.integers(1, 6))
        for _ in range(n_faults):
            net = int(rng.integers(circuit.num_nets))
            active = [int(cy) for cy in rng.choice(cycles, size=int(rng.integers(1, cycles + 1)), replace=False)]
            kind = int(rng.integers(4))
            if kind == 0:
                transform = lambda v: np.zeros_like(v)
            elif kind == 1:
                transform = lambda v: np.full_like(v, ALL_ONES)
            elif kind == 2:
                transform = lambda v: ~v
            else:
                mask = rng.integers(0, 1 << 63, size=n_words, dtype=np.uint64)
                transform = lambda v, m=mask: v ^ m
            for cy in active:
                table = self.by_cycle.setdefault(cy, {})
                prev = table.get(net)
                if prev is None:
                    table[net] = transform
                else:
                    table[net] = lambda v, a=prev, b=transform: b(a(v))

    def for_cycle(self, cycle: int):
        return self.by_cycle.get(cycle, {})


def assert_backends_agree(circuit: Circuit, batch: int, cycles: int, faults=None, schedule=None):
    """Step every backend in lockstep against the reference oracle."""
    sims = {}
    for backend in BACKENDS:
        sim = Simulator(circuit, batch, faults=faults, backend=backend)
        if schedule is not None:
            sim.set_input_schedule("x", schedule)
        else:
            width = len(circuit.inputs["x"])
            sim.set_input_ints("x", [(i * 2654435761) % (1 << width) for i in range(batch)])
        sims[backend] = sim
    ref = sims.pop("reference")
    all_nets = range(circuit.num_nets)
    for cycle in range(cycles):
        ref.step()
        want = ref.get_nets_packed(all_nets)
        for backend, sim in sims.items():
            sim.step()
            np.testing.assert_array_equal(
                want, sim.get_nets_packed(all_nets),
                err_msg=f"{backend} diverges from reference after cycle {cycle}",
            )
    ref.eval_comb()
    want = ref.get_nets_packed(all_nets)
    want_y = ref.get_output_bits("y")
    for backend, sim in sims.items():
        sim.eval_comb()
        np.testing.assert_array_equal(
            want, sim.get_nets_packed(all_nets),
            err_msg=f"{backend} diverges from reference on final eval_comb",
        )
        np.testing.assert_array_equal(want_y, sim.get_output_bits("y"))


def run_equivalence_case(seed: int, *, n_gates_hi: int, cycles_hi: int, batches=BATCHES):
    rng = np.random.default_rng(seed)
    circuit = random_sequential_circuit(rng, n_gates=int(rng.integers(10, n_gates_hi)))
    batch = batches[rng.integers(len(batches))]
    cycles = int(rng.integers(2, cycles_hi))
    n_words = (batch + 63) // 64

    # clean run
    assert_backends_agree(circuit, batch, cycles)

    # arbitrary-transform faults (gate outputs, selects, sources, DFF pins)
    faults = RandomFaults(rng, circuit, n_words, cycles)
    assert_backends_agree(circuit, batch, cycles, faults=faults)

    # injector-built faults: random specs incl. windows and probabilistic
    # lane masks (one shared injector instance drives both backends)
    specs = []
    for _ in range(int(rng.integers(1, 4))):
        specs.append(
            FaultSpec(
                net=int(rng.integers(circuit.num_nets)),
                fault_type=list(FaultType)[rng.integers(len(FaultType))],
                cycles=(
                    None
                    if rng.random() < 0.3
                    else frozenset(int(cy) for cy in rng.choice(cycles, size=int(rng.integers(1, cycles + 1)), replace=False))
                ),
                probability=float(rng.choice([1.0, 0.5])),
            )
        )
    injector = FaultInjector(specs, batch, rng=int(seed))
    assert_backends_agree(circuit, batch, cycles, faults=injector)


@pytest.mark.parametrize("seed", range(200))
def test_fast_backends_match_reference(seed):
    """200 seeded random circuits, clean + two fault regimes each,
    three-way (reference ↔ levelized ↔ compiled)."""
    run_equivalence_case(seed, n_gates_hi=60, cycles_hi=7)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(1000, 1100))
def test_fast_backends_match_reference_deep(seed):
    """Deep sweep: bigger circuits, longer runs (scheduled CI job)."""
    run_equivalence_case(seed, n_gates_hi=250, cycles_hi=16, batches=[63, 129, 512, 1000])


class TestScheduledInputs:
    def test_schedule_with_faults_agrees(self):
        rng = np.random.default_rng(7)
        circuit = random_sequential_circuit(rng, n_gates=40)
        width = len(circuit.inputs["x"])
        batch = 65
        feed = np.random.default_rng(8).integers(0, 2, size=(10, batch, width)).astype(np.uint8)
        faults = RandomFaults(rng, circuit, (batch + 63) // 64, 8)
        assert_backends_agree(
            circuit, batch, 8, faults=faults, schedule=lambda cy: feed[cy]
        )


class TestFaultOrderingContract:
    """Pin the eval_comb ordering both backends must honour.

    Contract (Simulator docstring): input schedules first, then source-net
    transforms, then gate evaluation with gate-output transforms applied
    in program order — a consumer always reads its driver's *transformed*
    value, even when driver and consumer sit in different levels.
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_schedule_applied_before_source_transform(self, backend):
        from repro.netlist.builder import CircuitBuilder

        b = CircuitBuilder()
        x = b.input("x", 1)
        b.output("y", [b.buf(x[0])])

        class StuckX:
            def for_cycle(self, cycle):
                return {x[0]: lambda v: np.zeros_like(v)}

        sim = Simulator(b.circuit, batch=4, faults=StuckX(), backend=backend)
        # schedule drives ones every cycle; the stuck-at-0 transform must
        # win because source transforms run after schedules
        sim.set_input_schedule("x", lambda cy: np.ones((4, 1), dtype=np.uint8))
        sim.eval_comb()
        assert sim.get_output_ints("y") == [0, 0, 0, 0]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_gate_output_transforms_compose_in_program_order(self, backend):
        from repro.netlist.builder import CircuitBuilder

        b = CircuitBuilder()
        x = b.input("x", 1)
        g1 = b.buf(x[0])  # level 0
        g2 = b.not_(g1)  # level 1
        b.output("y", [g2])

        class ChainFaults:
            def for_cycle(self, cycle):
                return {
                    g1: lambda v: np.full_like(v, ALL_ONES),  # stuck-at-1
                    g2: lambda v: ~v,  # bitflip
                }

        sim = Simulator(b.circuit, batch=2, faults=ChainFaults(), backend=backend)
        sim.set_input_ints("x", [0, 0])
        sim.eval_comb()
        # g1 evaluates to 0, transform forces 1; g2 must read the *faulted*
        # 1 → NOT gives 0; g2's own transform flips to 1.  A kernel that
        # deferred g1's transform past g2's evaluation would produce 0.
        assert sim.get_output_ints("y") == [1, 1]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dff_latches_faulted_d_value(self, backend):
        from repro.netlist.builder import CircuitBuilder

        b = CircuitBuilder()
        q, connect = b.register(1)
        d = b.not_(q[0])  # toggler
        connect([d])
        b.output("q", q)

        class StickD:
            def for_cycle(self, cycle):
                if cycle == 0:
                    return {d: lambda v: np.zeros_like(v)}
                return {}

        sim = Simulator(b.circuit, batch=1, faults=StickD(), backend=backend)
        sim.step()  # d forced to 0 at cycle 0 → q stays 0
        assert sim.get_output_ints("q") == [0]
        sim.step()  # fault gone: q toggles to 1
        assert sim.get_output_ints("q") == [1]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mux_select_fault(self, backend):
        from repro.netlist.builder import CircuitBuilder

        b = CircuitBuilder()
        x = b.input("x", 3)  # (sel, d0, d1)
        b.output("y", [b.mux(x[2], x[0], x[1])])

        class FlipSel:
            def for_cycle(self, cycle):
                return {x[2]: lambda v: ~v}

        sim = Simulator(b.circuit, batch=8, faults=FlipSel(), backend=backend)
        sim.set_input_ints("x", list(range(8)))
        sim.eval_comb()
        got = sim.get_output_ints("y")
        for run in range(8):
            d0, d1, sel = run & 1, (run >> 1) & 1, (run >> 2) & 1
            assert got[run] == (d0 if sel else d1)  # select inverted


@pytest.fixture(scope="module", params=["present80", "gift64"])
def reduced_design(request):
    """Reduced-round protected designs, parametrized over the cipher
    registry so backend equivalence is proven beyond PRESENT."""
    from repro.ciphers.registry import get_entry

    entry = get_entry(request.param)
    return build_three_in_one(entry.make(rounds=entry.fast_rounds))


class TestCampaignEquivalence:
    """End-to-end: identical CampaignResult under every backend."""

    def test_reduced_round_campaign_histograms_identical(self, reduced_design):
        design = reduced_design
        core = design.cores[0]
        specs = [
            FaultSpec.at(
                sbox_input_net(core, 13, 2), FaultType.STUCK_AT_0, last_round(core)
            )
        ]
        key = 0x1A2B3C4D5E6F708192A3
        results = {
            backend: run_campaign(
                design, specs, n_runs=2048, key=key, seed=9, backend=backend
            )
            for backend in BACKENDS
        }
        ref = results.pop("reference")
        for backend, got in results.items():
            assert ref.counts() == got.counts(), backend
            np.testing.assert_array_equal(ref.outcomes, got.outcomes)
            np.testing.assert_array_equal(ref.released_bits, got.released_bits)
            np.testing.assert_array_equal(ref.expected_bits, got.expected_bits)
            np.testing.assert_array_equal(ref.plaintext_bits, got.plaintext_bits)
            np.testing.assert_array_equal(ref.fault_flags, got.fault_flags)

    @pytest.mark.parametrize("backend", ["levelized", "compiled"])
    def test_sharded_fast_backend_equals_single_shot_reference(
        self, reduced_design, tmp_path, backend
    ):
        """The executor path (fast-kernel workers) vs one-shot reference."""
        design = reduced_design
        core = design.cores[0]
        specs = [
            FaultSpec.at(
                sbox_input_net(core, 5, 1), FaultType.BIT_FLIP, last_round(core)
            )
        ]
        key = 0x1A2B3C4D5E6F708192A3
        single = run_campaign(
            design, specs, n_runs=2048, key=key, seed=3, backend="reference"
        )
        sharded = run_campaign(
            design,
            specs,
            n_runs=2048,
            key=key,
            seed=3,
            backend=backend,
            shard_runs=1024,
            checkpoint_dir=tmp_path / f"ckpt-{backend}",
        )
        assert single.counts() == sharded.counts()
        np.testing.assert_array_equal(single.outcomes, sharded.outcomes)
        np.testing.assert_array_equal(single.released_bits, sharded.released_bits)
