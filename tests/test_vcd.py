"""VCD waveform export."""

import pytest

from repro.netlist.builder import CircuitBuilder
from repro.netlist.simulator import Simulator
from repro.netlist.vcd import VcdRecorder, _identifier


def counter_sim(batch=2):
    b = CircuitBuilder("cnt")
    q, connect = b.register(4)
    connect(b.incrementer(q))
    b.output("q", q)
    sim = Simulator(b.circuit, batch=batch)
    return sim, q


class TestIdentifiers:
    def test_unique_and_printable(self):
        ids = [_identifier(i) for i in range(200)]
        assert len(set(ids)) == 200
        for ident in ids:
            assert all(33 <= ord(c) <= 126 for c in ident)


class TestRecorder:
    def test_header_and_vars(self):
        sim, q = counter_sim()
        rec = VcdRecorder(sim, {"count": q})
        text = rec.render()
        assert "$timescale 1 ns $end" in text
        assert "$var wire 4" in text and "count" in text
        assert text.startswith("$date")

    def test_counter_waveform(self, tmp_path):
        sim, q = counter_sim()
        rec = VcdRecorder(sim, {"count": q})
        for _ in range(4):
            sim.step()
            rec.sample()
        path = tmp_path / "cnt.vcd"
        rec.write(path)
        text = path.read_text()
        # initial value then one change per cycle
        assert "#0" in text and "#4" in text
        assert "b0000 " in text
        assert "b0011 " in text

    def test_unchanged_values_not_redumped(self):
        sim, q = counter_sim()
        rec = VcdRecorder(sim, {"count": q})
        rec.sample()  # same cycle, same value
        text = rec.render()
        assert text.count("b0000 ") == 1

    def test_single_bit_format(self):
        sim, q = counter_sim()
        rec = VcdRecorder(sim, {"lsb": [q[0]]})
        sim.step()
        rec.sample()
        text = rec.render()
        assert "$var wire 1" in text
        # scalar dump format: '1!' not 'b1 !'
        assert any(line[0] in "01" and len(line) <= 3 for line in text.splitlines()
                   if line and line[0] in "01")

    def test_lane_selection(self):
        sim, q = counter_sim(batch=4)
        rec = VcdRecorder(sim, {"count": q}, lane=3)
        assert rec.lane == 3
        with pytest.raises(ValueError):
            VcdRecorder(sim, {"count": q}, lane=4)

    def test_empty_signals_rejected(self):
        sim, _ = counter_sim()
        with pytest.raises(ValueError):
            VcdRecorder(sim, {})

    def test_fault_debug_scenario(self, tmp_path):
        """The intended workflow: record a faulted protected run."""
        from repro.ciphers.netlist_present import PresentSpec
        from repro.countermeasures import build_three_in_one
        from repro.faults import FaultInjector, FaultSpec, FaultType
        from repro.faults.models import last_round, sbox_input_net

        design = build_three_in_one(PresentSpec())
        core = design.cores[0]
        fault = FaultSpec.at(
            sbox_input_net(core, 13, 2), FaultType.STUCK_AT_0, last_round(core)
        )
        injector = FaultInjector([fault], 1)
        sim = design.simulator(1, faults=injector)
        sim.set_input_ints("plaintext", [0x1234])
        sim.set_input_ints("key", [0x5678])
        sim.set_input_ints("lambda", [1])
        rec = VcdRecorder(
            sim,
            {
                "state_a": core.state_in,
                "fault_flag": design.circuit.outputs["fault"],
            },
        )
        for _ in range(design.cycles):
            sim.step()
            rec.sample()
        path = tmp_path / "fault.vcd"
        rec.write(path)
        text = path.read_text()
        assert "fault_flag" in text
        # the flag must have gone high by the end (effective or detected)
        lines = text.splitlines()
        flag_id = rec._ids["fault_flag"]
        assert any(line == f"1{flag_id}" for line in lines)
