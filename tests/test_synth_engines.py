"""Synthesis engines: each must compute its truth table exactly, and all
three must agree with each other — property-tested on random functions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ciphers.sbox import GIFT_SBOX, PRESENT_SBOX
from repro.netlist.simulator import Simulator
from repro.synth.sbox_synth import STRATEGIES, synthesize_sbox, verify_sbox_circuit
from repro.synth.truthtable import TruthTable


def eval_circuit(circuit, n_inputs):
    sim = Simulator(circuit, batch=1 << n_inputs)
    sim.set_input_ints("x", list(range(1 << n_inputs)))
    sim.eval_comb()
    return sim.get_output_ints("y")


class TestStrategies:
    @pytest.mark.parametrize("strategy", ["shannon", "bdd", "twolevel"])
    def test_present_sbox_exact(self, strategy):
        tt = PRESENT_SBOX.truthtable()
        circ = synthesize_sbox(tt, strategy=strategy)
        assert eval_circuit(circ, 4) == list(PRESENT_SBOX.table)

    @pytest.mark.parametrize("strategy", ["shannon", "bdd", "twolevel"])
    def test_gift_sbox_exact(self, strategy):
        tt = GIFT_SBOX.truthtable()
        circ = synthesize_sbox(tt, strategy=strategy)
        assert eval_circuit(circ, 4) == list(GIFT_SBOX.table)

    def test_auto_picks_a_valid_circuit(self):
        tt = PRESENT_SBOX.truthtable()
        circ = synthesize_sbox(tt, strategy="auto")
        verify_sbox_circuit(circ, tt)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            synthesize_sbox(PRESENT_SBOX.truthtable(), strategy="magic")
        assert "auto" in STRATEGIES

    def test_constant_functions(self):
        zero = TruthTable(3, 2, [0] * 8)
        ones = TruthTable(3, 2, [3] * 8)
        for strategy in ("shannon", "bdd", "twolevel"):
            assert eval_circuit(synthesize_sbox(zero, strategy=strategy), 3) == [0] * 8
            assert eval_circuit(synthesize_sbox(ones, strategy=strategy), 3) == [3] * 8

    def test_projection_function(self):
        tt = TruthTable.from_function(4, 1, lambda x: (x >> 2) & 1)
        for strategy in ("shannon", "bdd", "twolevel"):
            circ = synthesize_sbox(tt, strategy=strategy)
            assert eval_circuit(circ, 4) == [(x >> 2) & 1 for x in range(16)]

    def test_custom_var_order(self):
        tt = PRESENT_SBOX.truthtable()
        circ = synthesize_sbox(tt, strategy="shannon", var_order=[0, 1, 2, 3])
        verify_sbox_circuit(circ, tt)
        with pytest.raises(ValueError):
            synthesize_sbox(tt, strategy="shannon", var_order=[0, 0, 1, 2])

    def test_unoptimised_output_also_correct(self):
        tt = PRESENT_SBOX.truthtable()
        circ = synthesize_sbox(tt, strategy="shannon", optimize_result=False)
        verify_sbox_circuit(circ, tt)

    def test_verify_raises_on_wrong_circuit(self):
        tt = PRESENT_SBOX.truthtable()
        circ = synthesize_sbox(tt)
        wrong = TruthTable(4, 4, list(GIFT_SBOX.table))
        with pytest.raises(AssertionError):
            verify_sbox_circuit(circ, wrong)

    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_engines_agree_on_random_functions(self, n, m, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        table = [int(v) for v in rng.integers(0, 1 << m, size=1 << n)]
        tt = TruthTable(n, m, table)
        results = {
            s: eval_circuit(synthesize_sbox(tt, strategy=s), n)
            for s in ("shannon", "bdd", "twolevel")
        }
        assert results["shannon"] == table
        assert results["bdd"] == table
        assert results["twolevel"] == table

    def test_merged_aes_sbox_synthesises(self):
        from repro.ciphers.aes import AES_SBOX

        merged = AES_SBOX.merged_truthtable()
        circ = synthesize_sbox(merged, strategy="shannon", name="aes_merged")
        # spot-check both domains rather than all 512 (verify already ran)
        sim = Simulator(circ, batch=4)
        sim.set_input_ints("x", [0x00, 0x53, 0x100 | 0x00, 0x100 | (0x53 ^ 0xFF)])
        sim.eval_comb()
        got = sim.get_output_ints("y")
        assert got[0] == 0x63
        assert got[1] == 0xED
        assert got[2] == AES_SBOX(0xFF) ^ 0xFF
        assert got[3] == AES_SBOX(0x53) ^ 0xFF
