"""Merged (n+1)×m S-box constructions: all must realise the same function."""

import pytest

from repro.ciphers.aes import AES_SBOX
from repro.ciphers.sbox import GIFT_SBOX, PRESENT_SBOX
from repro.countermeasures.merged_sbox import MERGED_CONSTRUCTIONS, build_merged_sbox
from repro.netlist.simulator import Simulator
from repro.tech import area_of


def eval_merged(circ, n):
    sim = Simulator(circ, batch=1 << (n + 1))
    sim.set_input_ints("x", list(range(1 << (n + 1))))
    sim.eval_comb()
    return sim.get_output_ints("y")


class TestConstructions:
    @pytest.mark.parametrize("construction", MERGED_CONSTRUCTIONS)
    @pytest.mark.parametrize("sbox", [PRESENT_SBOX, GIFT_SBOX], ids=lambda s: s.name)
    def test_both_domains_exact(self, construction, sbox):
        circ = build_merged_sbox(sbox, construction=construction)
        got = eval_merged(circ, sbox.n)
        mask = (1 << sbox.n) - 1
        for x in range(1 << sbox.n):
            assert got[x] == sbox(x), f"λ=0 wrong at {x:x}"
            assert got[(1 << sbox.n) + x] == sbox(x ^ mask) ^ mask, f"λ=1 wrong at {x:x}"

    def test_constructions_agree(self):
        results = {
            c: eval_merged(build_merged_sbox(PRESENT_SBOX, construction=c), 4)
            for c in MERGED_CONSTRUCTIONS
        }
        assert results["monolithic"] == results["separate"] == results["xor_wrap"]

    def test_unknown_construction_rejected(self):
        with pytest.raises(ValueError):
            build_merged_sbox(PRESENT_SBOX, construction="quantum")

    def test_xor_wrap_is_cheapest(self):
        areas = {
            c: area_of(build_merged_sbox(PRESENT_SBOX, construction=c)).total
            for c in MERGED_CONSTRUCTIONS
        }
        assert areas["xor_wrap"] <= areas["monolithic"]
        assert areas["xor_wrap"] <= areas["separate"]

    def test_port_shape(self):
        circ = build_merged_sbox(PRESENT_SBOX)
        assert len(circ.inputs["x"]) == 5
        assert len(circ.outputs["y"]) == 4

    def test_aes_merged_monolithic(self):
        circ = build_merged_sbox(AES_SBOX, construction="monolithic")
        got = eval_merged(circ, 8)
        assert got[0x53] == 0xED
        assert got[0x100 | (0x53 ^ 0xFF)] == 0xED ^ 0xFF

    def test_default_name(self):
        circ = build_merged_sbox(PRESENT_SBOX, construction="separate")
        assert circ.name == "present_merged_separate"
