"""Countermeasure circuits: fault-free equivalence with the cipher spec,
recovery policies, and soundness under injected faults."""

import numpy as np
import pytest

from repro.ciphers.netlist_gift import GiftSpec
from repro.ciphers.present import Present80
from repro.countermeasures import (
    LambdaVariant,
    RecoveryPolicy,
    build_acisp20,
    build_naive_duplication,
    build_three_in_one,
    build_triplication,
)
from repro.faults import FaultSpec, FaultType, Outcome, run_campaign
from repro.faults.models import last_round, sbox_input_net
from repro.rng import make_rng, random_ints
from tests.conftest import TEST_KEY80, TEST_KEY128


def ints_from_bits(bits):
    return [int(sum(int(b) << i for i, b in enumerate(row))) for row in bits]


def assert_faultfree_equivalent(design, key, reference, n=24, seed=5):
    rng = make_rng(seed)
    pts = random_ints(rng, n, design.spec.block_bits)
    sim = design.simulator(n)
    res = design.run(sim, pts, key, rng=rng)
    assert not res["fault"].any(), "fault flag raised without any fault"
    got = ints_from_bits(res["ciphertext"])
    assert got == [reference.encrypt(p) for p in pts]


class TestFaultFreeEquivalence:
    def test_naive(self, naive_design):
        assert_faultfree_equivalent(naive_design, TEST_KEY80, Present80(TEST_KEY80))

    def test_triplication(self, triplication_design):
        assert_faultfree_equivalent(
            triplication_design, TEST_KEY80, Present80(TEST_KEY80)
        )

    def test_acisp20(self, acisp_design):
        assert_faultfree_equivalent(acisp_design, TEST_KEY80, Present80(TEST_KEY80))

    def test_three_in_one_prime(self, ours_prime):
        assert_faultfree_equivalent(ours_prime, TEST_KEY80, Present80(TEST_KEY80))

    def test_three_in_one_per_round(self, ours_per_round):
        assert_faultfree_equivalent(ours_per_round, TEST_KEY80, Present80(TEST_KEY80))

    def test_three_in_one_per_sbox(self, ours_per_sbox):
        assert_faultfree_equivalent(ours_per_sbox, TEST_KEY80, Present80(TEST_KEY80))

    @pytest.mark.parametrize("construction", ["separate", "xor_wrap"])
    def test_alternate_merged_constructions(self, present_spec, construction):
        design = build_three_in_one(present_spec, construction=construction)
        assert_faultfree_equivalent(design, TEST_KEY80, Present80(TEST_KEY80))

    def test_gift_three_in_one_all_variants(self, gift_spec):
        from repro.ciphers.gift import Gift64

        for variant in LambdaVariant:
            design = build_three_in_one(gift_spec, variant=variant)
            assert_faultfree_equivalent(
                design, TEST_KEY128, Gift64(TEST_KEY128), n=12
            )

    def test_gift_naive_duplication(self, gift_spec):
        from repro.ciphers.gift import Gift64

        design = build_naive_duplication(gift_spec)
        assert_faultfree_equivalent(design, TEST_KEY128, Gift64(TEST_KEY128), n=12)


class TestLambdaActuallyRandomises:
    def test_internal_state_depends_on_lambda(self, ours_prime):
        """With λ=0 vs λ=1 the raw (pre-decode) outputs must differ —
        otherwise the 'randomised encoding' is not happening."""
        design = ours_prime
        sim = design.simulator(2)
        sim.set_input_ints("plaintext", [0x1234, 0x1234])
        sim.set_input_ints("key", [TEST_KEY80, TEST_KEY80])
        sim.set_input_ints("lambda", [0, 1])
        sim.run(design.cycles)
        sim.eval_comb()
        raw = sim.get_nets_bits(design.cores[0].raw_output)
        assert (raw[0] != raw[1]).any()
        # and the decoded outputs agree
        ct = sim.get_output_bits("ciphertext")
        assert (ct[0] == ct[1]).all()

    def test_raw_outputs_complementary_between_cores(self, ours_prime):
        """Core a in domain λ, core r in λ̄ — their raw outputs are exact
        complements, which is what defeats identical fault masks."""
        design = ours_prime
        sim = design.simulator(4)
        sim.set_input_ints("plaintext", [5, 5, 99, 99])
        sim.set_input_ints("key", [TEST_KEY80] * 4)
        sim.set_input_ints("lambda", [0, 1, 0, 1])
        sim.run(design.cycles)
        sim.eval_comb()
        raw_a = sim.get_nets_bits(design.cores[0].raw_output)
        raw_r = sim.get_nets_bits(design.cores[1].raw_output)
        assert ((raw_a ^ raw_r) == 1).all()


class TestRecoveryPolicies:
    def faulted_run(self, design, key, batch=16):
        core = design.cores[0]
        spec = FaultSpec.at(
            sbox_input_net(core, 2, 0), FaultType.BIT_FLIP, last_round(core)
        )
        res = run_campaign(design, [spec], n_runs=batch, key=key, seed=3)
        return res

    def test_suppress_releases_zeros(self, present_spec):
        design = build_naive_duplication(present_spec, policy=RecoveryPolicy.SUPPRESS)
        res = self.faulted_run(design, TEST_KEY80)
        detected = res.select(Outcome.DETECTED)
        assert len(detected) > 0
        assert not res.released_bits[detected].any(), "suppressed output must be zero"

    def test_garbage_releases_random_word(self, present_spec):
        design = build_naive_duplication(
            present_spec, policy=RecoveryPolicy.RANDOM_GARBAGE
        )
        res = self.faulted_run(design, TEST_KEY80)
        detected = res.select(Outcome.DETECTED)
        assert len(detected) > 0
        released = res.released_bits[detected]
        # garbage is a random word: all-zero for every detected run would be
        # astronomically unlikely, and it must differ from the correct word
        assert released.any()
        assert (released != res.expected_bits[detected]).any()

    def test_garbage_policy_adds_port(self, present_spec):
        design = build_three_in_one(
            present_spec, policy=RecoveryPolicy.RANDOM_GARBAGE
        )
        assert "garbage" in design.circuit.inputs


class TestSingleFaultSoundness:
    """A single fault anywhere in one core must never escape as a wrong
    released word (the detect-or-ineffective invariant), for every scheme
    claiming DFA protection."""

    @pytest.mark.parametrize(
        "fixture",
        ["naive_design", "acisp_design", "ours_prime", "ours_per_sbox"],
    )
    def test_single_faults_never_release_wrong_output(self, fixture, request):
        design = request.getfixturevalue(fixture)
        rng = make_rng(99)
        core = design.cores[0]
        # sample fault locations: sbox inputs, sbox internals, state, key mix
        nets = [sbox_input_net(core, int(rng.integers(16)), int(rng.integers(4)))
                for _ in range(4)]
        instance = design.circuit.find_gates(f"{core.tag}/sbox3/")
        nets += [g.out for g in instance[:4]]
        for fault_type in (FaultType.STUCK_AT_0, FaultType.STUCK_AT_1, FaultType.BIT_FLIP):
            for net in nets[:5]:
                cycle = int(rng.integers(design.cycles))
                spec = FaultSpec.at(net, fault_type, cycle)
                res = run_campaign(design, [spec], n_runs=64, key=TEST_KEY80, seed=7)
                assert res.count(Outcome.EFFECTIVE) == 0, (
                    f"{design.scheme}: fault {fault_type} on net {net} at cycle "
                    f"{cycle} released a wrong ciphertext"
                )

    def test_triplication_corrects_single_faults(self, triplication_design):
        design = triplication_design
        core = design.cores[0]
        spec = FaultSpec.at(
            sbox_input_net(core, 8, 2), FaultType.BIT_FLIP, last_round(core)
        )
        res = run_campaign(design, [spec], n_runs=64, key=TEST_KEY80, seed=11)
        # corrected: every run releases the correct word (attacker view)
        assert res.count(Outcome.INEFFECTIVE) == 64
